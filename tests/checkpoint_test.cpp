#include "embedding/checkpoint.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, RoundTripsBothTables) {
  embedding::EmbeddingTable entities(10, 4);
  embedding::EmbeddingTable relations(3, 8);
  Rng rng(5);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);

  const std::string path = TempPath("roundtrip.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entities.num_rows(), 10u);
  EXPECT_EQ(loaded->entities.dim(), 4u);
  EXPECT_EQ(loaded->relations.num_rows(), 3u);
  EXPECT_EQ(loaded->relations.dim(), 8u);
  for (size_t i = 0; i < 10; ++i) {
    const auto a = entities.Row(i);
    const auto b = loaded->entities.Row(i);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(a[j], b[j]);
    }
  }
}

TEST(CheckpointTest, MissingFileIsIoError) {
  auto loaded = embedding::LoadCheckpoint("/nonexistent/x.ck");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CheckpointTest, BadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.ck");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPT-and-some-padding-bytes-here";
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, TruncationIsDetected) {
  embedding::EmbeddingTable entities(50, 8);
  embedding::EmbeddingTable relations(5, 8);
  Rng rng(7);
  entities.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("trunc.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  // Chop off the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, BitFlipFailsChecksum) {
  embedding::EmbeddingTable entities(20, 4);
  embedding::EmbeddingTable relations(4, 4);
  Rng rng(9);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("bitflip.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);  // Somewhere in the entity payload.
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(64);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, EngineSnapshotEvaluatesIdentically) {
  // Train briefly, snapshot, reload, and verify the checkpointed
  // embeddings score link prediction exactly like the live engine.
  graph::SyntheticSpec spec;
  spec.num_entities = 300;
  spec.num_relations = 8;
  spec.num_triples = 3000;
  spec.seed = 31;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 32;
  config.negatives_per_positive = 4;
  config.num_machines = 2;
  config.cache_capacity = 32;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  engine->Train(2).value();

  const std::string path = TempPath("engine.ck");
  ASSERT_TRUE(core::SaveEngineCheckpoint(*engine, path).ok());
  auto checkpoint = embedding::LoadCheckpoint(path);
  ASSERT_TRUE(checkpoint.ok());
  core::CheckpointLookup lookup(&*checkpoint);

  eval::EvalOptions options;
  options.max_triples = 50;
  const auto live = eval::EvaluateLinkPrediction(
                        engine->Embeddings(), engine->ScoreFn(),
                        dataset.graph, dataset.split.test, options)
                        .value();
  const auto restored = eval::EvaluateLinkPrediction(
                            lookup, engine->ScoreFn(), dataset.graph,
                            dataset.split.test, options)
                            .value();
  EXPECT_DOUBLE_EQ(live.mrr, restored.mrr);
  EXPECT_DOUBLE_EQ(live.mr, restored.mr);
}

}  // namespace
}  // namespace hetkg
