#include "embedding/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/checkpoint_manager.h"
#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

// Pid-qualified so concurrent ctest entries running this same binary
// (hetkg_tests and hetkg_recovery_tests) never share a path.
std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "-" +
         name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(offset));
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
}

TEST(CheckpointTest, RoundTripsBothTables) {
  embedding::EmbeddingTable entities(10, 4);
  embedding::EmbeddingTable relations(3, 8);
  Rng rng(5);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);

  const std::string path = TempPath("roundtrip.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entities.num_rows(), 10u);
  EXPECT_EQ(loaded->entities.dim(), 4u);
  EXPECT_EQ(loaded->relations.num_rows(), 3u);
  EXPECT_EQ(loaded->relations.dim(), 8u);
  for (size_t i = 0; i < 10; ++i) {
    const auto a = entities.Row(i);
    const auto b = loaded->entities.Row(i);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(a[j], b[j]);
    }
  }
}

TEST(CheckpointTest, MissingFileIsIoError) {
  auto loaded = embedding::LoadCheckpoint("/nonexistent/x.ck");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CheckpointTest, BadMagicIsCorruption) {
  const std::string path = TempPath("badmagic.ck");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPT-and-some-padding-bytes-here";
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, TruncationIsDetected) {
  embedding::EmbeddingTable entities(50, 8);
  embedding::EmbeddingTable relations(5, 8);
  Rng rng(7);
  entities.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("trunc.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  // Chop off the tail.
  {
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, BitFlipFailsChecksum) {
  embedding::EmbeddingTable entities(20, 4);
  embedding::EmbeddingTable relations(4, 4);
  Rng rng(9);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("bitflip.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);  // Somewhere in the entity payload.
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(64);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointTest, EngineSnapshotEvaluatesIdentically) {
  // Train briefly, snapshot, reload, and verify the checkpointed
  // embeddings score link prediction exactly like the live engine.
  graph::SyntheticSpec spec;
  spec.num_entities = 300;
  spec.num_relations = 8;
  spec.num_triples = 3000;
  spec.seed = 31;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 32;
  config.negatives_per_positive = 4;
  config.num_machines = 2;
  config.cache_capacity = 32;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  engine->Train(2).value();

  const std::string path = TempPath("engine.ck");
  ASSERT_TRUE(core::SaveEngineCheckpoint(*engine, path).ok());
  auto checkpoint = embedding::LoadCheckpoint(path);
  ASSERT_TRUE(checkpoint.ok());
  core::CheckpointLookup lookup(&*checkpoint);

  eval::EvalOptions options;
  options.max_triples = 50;
  const auto live = eval::EvaluateLinkPrediction(
                        engine->Embeddings(), engine->ScoreFn(),
                        dataset.graph, dataset.split.test, options)
                        .value();
  const auto restored = eval::EvaluateLinkPrediction(
                            lookup, engine->ScoreFn(), dataset.graph,
                            dataset.split.test, options)
                            .value();
  EXPECT_DOUBLE_EQ(live.mrr, restored.mrr);
  EXPECT_DOUBLE_EQ(live.mr, restored.mr);
}

TEST(CheckpointV2Test, SectionRoundTripAndFindAll) {
  embedding::CheckpointWriter writer;
  {
    ByteWriter meta;
    meta.Str("unit-test");
    meta.U64(42);
    writer.AddSection(embedding::SectionTag::kTrainerMeta, std::move(meta));
  }
  for (uint32_t worker = 0; worker < 3; ++worker) {
    ByteWriter w;
    w.U32(worker);
    w.U64(1000 + worker);
    writer.AddSection(embedding::SectionTag::kWorker, std::move(w));
  }
  EXPECT_GT(writer.payload_bytes(), 0u);

  const std::string path = TempPath("v2-sections.ck");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());

  auto reader = embedding::CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const std::string* meta =
      reader->Find(embedding::SectionTag::kTrainerMeta);
  ASSERT_NE(meta, nullptr);
  ByteReader r(*meta);
  EXPECT_EQ(r.Str(), "unit-test");
  EXPECT_EQ(r.U64(), 42u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);

  // Repeated sections come back in file order.
  const auto workers = reader->FindAll(embedding::SectionTag::kWorker);
  ASSERT_EQ(workers.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    ByteReader wr(*workers[i]);
    EXPECT_EQ(wr.U32(), i);
    EXPECT_EQ(wr.U64(), 1000u + i);
  }
  EXPECT_EQ(reader->Find(embedding::SectionTag::kPbgState), nullptr);
}

// Builds a byte-exact legacy HETKGCK1 file: fixed header, raw rows,
// XOR-FNV trailer.
std::string CraftV1File(const embedding::EmbeddingTable& entities,
                        const embedding::EmbeddingTable& relations) {
  std::string bytes = "HETKGCK1";
  auto put_u64 = [&bytes](uint64_t v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u64(entities.num_rows());
  put_u64(entities.dim());
  put_u64(relations.num_rows());
  put_u64(relations.dim());
  uint64_t checksum = 0xCBF29CE484222325ULL;
  for (const auto* table : {&entities, &relations}) {
    for (size_t i = 0; i < table->num_rows(); ++i) {
      for (float v : table->Row(i)) {
        bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
        uint32_t b = 0;
        std::memcpy(&b, &v, sizeof(b));
        checksum = (checksum ^ b) * 0x100000001B3ULL;
      }
    }
  }
  put_u64(checksum);
  return bytes;
}

TEST(CheckpointV2Test, LegacyV1FileStillLoads) {
  embedding::EmbeddingTable entities(4, 3);
  embedding::EmbeddingTable relations(2, 5);
  Rng rng(11);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("legacy-v1.ck");
  WriteFile(path, CraftV1File(entities, relations));

  auto loaded = embedding::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->entities.num_rows(), 4u);
  ASSERT_EQ(loaded->relations.dim(), 5u);
  for (size_t i = 0; i < entities.num_rows(); ++i) {
    const auto a = entities.Row(i);
    const auto b = loaded->entities.Row(i);
    for (size_t j = 0; j < entities.dim(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(CheckpointV2Test, OpenRejectsLegacyV1) {
  embedding::EmbeddingTable entities(2, 2);
  embedding::EmbeddingTable relations(1, 2);
  const std::string path = TempPath("legacy-v1-reject.ck");
  WriteFile(path, CraftV1File(entities, relations));

  // Full-state readers require the sectioned format; legacy files are
  // eval-only and go through LoadCheckpoint.
  auto reader = embedding::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(CheckpointV2Test, BitFlipInSectionPayloadIsCorruption) {
  embedding::EmbeddingTable entities(16, 4);
  embedding::EmbeddingTable relations(4, 4);
  Rng rng(13);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);
  const std::string path = TempPath("v2-bitflip.ck");
  ASSERT_TRUE(embedding::SaveCheckpoint(path, entities, relations).ok());
  FlipByte(path, 48);  // Inside the entity table payload.
  auto reader = embedding::CheckpointReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

std::string FreshDir(const char* name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  return dir;
}

void WriteSnapshot(core::CheckpointManager* manager, uint64_t iteration,
                   uint64_t seed) {
  embedding::EmbeddingTable entities(8, 4);
  embedding::EmbeddingTable relations(2, 4);
  Rng rng(seed);
  entities.InitGaussian(&rng, 1.0f);
  relations.InitGaussian(&rng, 1.0f);
  ASSERT_TRUE(embedding::SaveCheckpoint(manager->SnapshotPath(iteration),
                                        entities, relations)
                  .ok());
  ASSERT_TRUE(manager->Commit(iteration).ok());
}

TEST(CheckpointManagerTest, PrepareSweepsOrphanedTemps) {
  const std::string dir = FreshDir("ckmgr-orphans");
  core::CheckpointManager manager(dir, 3);
  ASSERT_TRUE(manager.Prepare().ok());
  WriteSnapshot(&manager, 10, 1);

  // Simulate a writer that crashed between temp write and rename.
  WriteFile(manager.SnapshotPath(20) + ".tmp", "half-written snapshot");
  WriteFile(dir + "/stray.tmp", "another orphan");

  core::CheckpointManager restarted(dir, 3);
  auto swept = restarted.Prepare();
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 2u);
  EXPECT_FALSE(
      std::filesystem::exists(manager.SnapshotPath(20) + ".tmp"));
  // Real snapshots and the manifest survive the sweep.
  EXPECT_TRUE(std::filesystem::exists(manager.SnapshotPath(10)));
  auto manifest = restarted.ReadManifest();
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->size(), 1u);
  EXPECT_EQ((*manifest)[0].iteration, 10u);
}

TEST(CheckpointManagerTest, CommitRotationPrunesOldest) {
  const std::string dir = FreshDir("ckmgr-rotate");
  core::CheckpointManager manager(dir, 2);
  ASSERT_TRUE(manager.Prepare().ok());
  WriteSnapshot(&manager, 5, 1);
  WriteSnapshot(&manager, 10, 2);
  WriteSnapshot(&manager, 15, 3);

  auto manifest = manager.ReadManifest();
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->size(), 2u);
  EXPECT_EQ((*manifest)[0].iteration, 10u);
  EXPECT_EQ((*manifest)[1].iteration, 15u);
  EXPECT_FALSE(std::filesystem::exists(manager.SnapshotPath(5)));
  EXPECT_TRUE(std::filesystem::exists(manager.SnapshotPath(10)));
  EXPECT_TRUE(std::filesystem::exists(manager.SnapshotPath(15)));
}

TEST(CheckpointManagerTest, ResumeCandidatesNewestFirst) {
  const std::string dir = FreshDir("ckmgr-candidates");
  core::CheckpointManager manager(dir, 0);
  ASSERT_TRUE(manager.Prepare().ok());
  WriteSnapshot(&manager, 3, 1);
  WriteSnapshot(&manager, 6, 2);

  auto from_dir = core::CheckpointManager::ResumeCandidates(dir);
  ASSERT_TRUE(from_dir.ok()) << from_dir.status().ToString();
  ASSERT_EQ(from_dir->size(), 2u);
  EXPECT_EQ((*from_dir)[0], manager.SnapshotPath(6));
  EXPECT_EQ((*from_dir)[1], manager.SnapshotPath(3));

  // A concrete snapshot file resolves to exactly itself.
  auto from_file =
      core::CheckpointManager::ResumeCandidates(manager.SnapshotPath(3));
  ASSERT_TRUE(from_file.ok());
  ASSERT_EQ(from_file->size(), 1u);
  EXPECT_EQ((*from_file)[0], manager.SnapshotPath(3));
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToOlderCandidate) {
  const std::string dir = FreshDir("ckmgr-fallback");
  core::CheckpointManager manager(dir, 0);
  ASSERT_TRUE(manager.Prepare().ok());
  WriteSnapshot(&manager, 8, 1);
  WriteSnapshot(&manager, 16, 2);
  FlipByte(manager.SnapshotPath(16), 40);

  auto candidates = core::CheckpointManager::ResumeCandidates(dir);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);
  auto newest = embedding::CheckpointReader::Open((*candidates)[0]);
  ASSERT_FALSE(newest.ok());
  EXPECT_EQ(newest.status().code(), StatusCode::kCorruption);
  auto older = embedding::CheckpointReader::Open((*candidates)[1]);
  EXPECT_TRUE(older.ok()) << older.status().ToString();
}

}  // namespace
}  // namespace hetkg
