#include "core/prefetcher.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace hetkg::core {
namespace {

std::vector<Triple> MakeTriples(size_t n) {
  std::vector<Triple> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<EntityId>(i % 50),
                   static_cast<RelationId>(i % 5),
                   static_cast<EntityId>((i + 7) % 50)});
  }
  return out;
}

TEST(PrefetcherTest, IterationsPerEpochRoundsUp) {
  const auto triples = MakeTriples(100);
  embedding::UniformNegativeSampler sampler(50, 2, 1);
  Prefetcher p(&triples, 32, &sampler, 1);
  EXPECT_EQ(p.IterationsPerEpoch(), 4u);  // ceil(100/32)
}

TEST(PrefetcherTest, EpochCoversEveryTripleExactlyOnce) {
  const auto triples = MakeTriples(100);
  embedding::UniformNegativeSampler sampler(50, 1, 2);
  Prefetcher p(&triples, 32, &sampler, 3);
  auto window = p.Prefetch(p.IterationsPerEpoch());
  size_t positives = 0;
  for (const auto& batch : window.batches) {
    positives += batch.positives.size();
  }
  EXPECT_EQ(positives, 100u);
  // Last batch of the epoch is the short remainder batch.
  EXPECT_EQ(window.batches.back().positives.size(), 100u % 32u);
}

TEST(PrefetcherTest, NegativesAccompanyEveryBatch) {
  const auto triples = MakeTriples(64);
  embedding::UniformNegativeSampler sampler(50, 4, 5);
  Prefetcher p(&triples, 16, &sampler, 7);
  const auto window = p.Prefetch(2);
  for (const auto& batch : window.batches) {
    EXPECT_EQ(batch.negatives.size(), batch.positives.size() * 4);
  }
}

TEST(PrefetcherTest, FrequenciesCountAllAccesses) {
  std::vector<Triple> triples = {{0, 0, 1}};
  embedding::UniformNegativeSampler sampler(10, 2, 11);
  Prefetcher p(&triples, 1, &sampler, 13);
  const auto window = p.Prefetch(1);
  // Positive touches 3 rows; each of the 2 negatives touches 3 rows.
  EXPECT_EQ(window.total_accesses, 3u + 2u * 3u);
  // The relation is touched by the positive and both negatives.
  EXPECT_EQ(window.frequencies.at(RelationKey(0)), 3u);
}

TEST(PrefetcherTest, CountOnlyMatchesMaterializedCounts) {
  const auto triples = MakeTriples(80);
  embedding::UniformNegativeSampler s1(50, 3, 17);
  embedding::UniformNegativeSampler s2(50, 3, 17);
  Prefetcher a(&triples, 16, &s1, 19);
  Prefetcher b(&triples, 16, &s2, 19);
  const auto window = a.Prefetch(5);
  FrequencyMap counted;
  const uint64_t accesses = b.PrefetchCountOnly(5, &counted);
  EXPECT_EQ(accesses, window.total_accesses);
  EXPECT_EQ(counted.size(), window.frequencies.size());
  for (const auto& [key, freq] : window.frequencies) {
    EXPECT_EQ(counted.at(key), freq);
  }
}

TEST(PrefetcherTest, BatchKeysAreDeduplicated) {
  MiniBatch batch;
  batch.positives = {{1, 0, 2}, {1, 0, 3}};
  embedding::NegativeSample neg;
  neg.positive_index = 0;
  neg.triple = {1, 0, 9};
  neg.corruption = embedding::Corruption::kTail;
  batch.negatives = {neg};
  const auto keys = BatchKeys(batch);
  const std::unordered_set<EmbKey> set(keys.begin(), keys.end());
  EXPECT_EQ(set.size(), keys.size());
  // {e1, e2, e3, e9, r0}.
  EXPECT_EQ(set.size(), 5u);
  EXPECT_TRUE(set.contains(EntityKey(9)));
  EXPECT_TRUE(set.contains(RelationKey(0)));
}

TEST(PrefetcherTest, DeterministicStreams) {
  const auto triples = MakeTriples(60);
  embedding::UniformNegativeSampler s1(50, 2, 23);
  embedding::UniformNegativeSampler s2(50, 2, 23);
  Prefetcher a(&triples, 8, &s1, 29);
  Prefetcher b(&triples, 8, &s2, 29);
  const auto wa = a.Prefetch(4);
  const auto wb = b.Prefetch(4);
  ASSERT_EQ(wa.batches.size(), wb.batches.size());
  for (size_t i = 0; i < wa.batches.size(); ++i) {
    ASSERT_EQ(wa.batches[i].positives.size(),
              wb.batches[i].positives.size());
    for (size_t j = 0; j < wa.batches[i].positives.size(); ++j) {
      EXPECT_EQ(wa.batches[i].positives[j], wb.batches[i].positives[j]);
    }
  }
}

}  // namespace
}  // namespace hetkg::core
