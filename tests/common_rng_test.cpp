#include "common/rng.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace hetkg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), 600);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(9);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Split();
  // Child stream must differ from the parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(v, shuffled);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  ZipfSampler zipf(100, 1.0, 77);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next()];
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 0.8, 1);
  double total = 0.0;
  for (size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.Pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0, 5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next()];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 1.2, 13);
  std::vector<int> counts(50, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[zipf.Next()];
  }
  for (size_t i = 0; i < 10; ++i) {
    const double expected = zipf.Pmf(i) * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.1 + 50.0);
  }
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler alias(weights, 21);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[alias.Next()];
  }
  for (size_t i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0 * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.1);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
  AliasSampler alias(weights, 31);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = alias.Next();
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

}  // namespace
}  // namespace hetkg
