// End-to-end pipeline over user-supplied TSV data: load -> partition ->
// train on the simulated cluster -> evaluate -> checkpoint -> reload.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/loader.h"

namespace hetkg {
namespace {

std::string WriteToyTsv(const char* name, int people, int cities) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  for (int i = 0; i < people; ++i) {
    out << "person" << i << "\tlives_in\tcity" << (i % cities) << "\n";
    out << "person" << i << "\tknows\tperson" << ((i + 1) % people) << "\n";
    out << "person" << i << "\tworks_in\tcity" << ((i + 3) % cities) << "\n";
  }
  for (int c = 0; c < cities; ++c) {
    out << "city" << c << "\tneighbor_of\tcity" << ((c + 1) % cities)
        << "\n";
  }
  return path;
}

TEST(TsvPipelineTest, LoadTrainEvaluateCheckpoint) {
  const std::string train_path = WriteToyTsv("pipe_train.tsv", 40, 6);
  const std::string test_path = WriteToyTsv("pipe_test.tsv", 8, 6);

  auto loaded = graph::LoadTsvDataset(train_path, "", test_path, "toy");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded->graph.num_entities(), 40u);
  EXPECT_EQ(loaded->graph.num_relations(), 4u);

  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.num_machines = 2;
  config.cache_capacity = 16;
  config.seed = 5;
  for (core::SystemKind system :
       {core::SystemKind::kHetKgDps, core::SystemKind::kPbg}) {
    auto engine = core::MakeEngine(system, config, loaded->graph,
                                   loaded->split.train);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto report = (*engine)->Train(20);
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->epochs.back().mean_loss,
              report->epochs.front().mean_loss);

    eval::EvalOptions options;
    options.max_triples = 20;
    auto metrics = eval::EvaluateLinkPrediction(
        (*engine)->Embeddings(), (*engine)->ScoreFn(), loaded->graph,
        loaded->split.test, options);
    ASSERT_TRUE(metrics.ok());
    EXPECT_GT(metrics->mrr, 0.0);

    const std::string ck_path = ::testing::TempDir() + "/pipe.ck";
    ASSERT_TRUE(core::SaveEngineCheckpoint(**engine, ck_path).ok());
    auto checkpoint = embedding::LoadCheckpoint(ck_path);
    ASSERT_TRUE(checkpoint.ok());
    EXPECT_EQ(checkpoint->entities.num_rows(), loaded->graph.num_entities());
  }
}

TEST(TsvPipelineTest, RelationCorruptionFlowsThroughTraining) {
  const std::string train_path = WriteToyTsv("pipe_rc.tsv", 30, 5);
  auto loaded = graph::LoadTsvDataset(train_path, "", "", "toy-rc");
  ASSERT_TRUE(loaded.ok());

  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_sampler = "uniform";
  config.relation_corruption_prob = 0.3;
  config.num_machines = 2;
  config.cache_capacity = 16;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                 loaded->graph, loaded->split.train);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto report = (*engine)->Train(5);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->epochs.back().mean_loss,
            report->epochs.front().mean_loss);
}

TEST(TsvPipelineTest, DegreeWeightedNegativesFlowThroughTraining) {
  const std::string train_path = WriteToyTsv("pipe_dw.tsv", 30, 5);
  auto loaded = graph::LoadTsvDataset(train_path, "", "", "toy-dw");
  ASSERT_TRUE(loaded.ok());

  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_sampler = "uniform";
  config.degree_weighted_negatives = true;
  config.num_machines = 2;
  config.cache_capacity = 16;
  auto engine = core::MakeEngine(core::SystemKind::kDglKe, config,
                                 loaded->graph, loaded->split.train);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto report = (*engine)->Train(5);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->epochs.back().mean_loss,
            report->epochs.front().mean_loss);
}

TEST(TsvPipelineTest, BatchedSamplerRejectsUniformOnlyConfig) {
  const std::string train_path = WriteToyTsv("pipe_bad.tsv", 20, 4);
  auto loaded = graph::LoadTsvDataset(train_path, "", "", "toy-bad");
  ASSERT_TRUE(loaded.ok());
  core::TrainerConfig config;
  config.dim = 8;
  config.num_machines = 2;
  config.relation_corruption_prob = 0.5;  // Needs "uniform".
  auto engine = core::MakeEngine(core::SystemKind::kDglKe, config,
                                 loaded->graph, loaded->split.train);
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace hetkg
