// Fault-injection transport (sim/transport.h): the fault plan is a pure
// function of its seed, every fault path (drop, duplicate, delay,
// outage, retry exhaustion) is deterministic and fully accounted, and
// the PS client degrades gracefully — duplicated pushes never
// double-apply AdaGrad, retry-exhausted pulls fall back to the stale
// cache copy, lost pushes are counted rather than corrupting state.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/ps_engine.h"
#include "core/sync_controller.h"
#include "core/trainer.h"
#include "graph/synthetic.h"
#include "ps/parameter_server.h"
#include "sim/transport.h"

namespace hetkg {
namespace {

using sim::ClusterSim;
using sim::Delivery;
using sim::FaultConfig;
using sim::FaultOutage;
using sim::FaultPlan;
using sim::Transport;

FaultConfig MakeFaults(double drop, double duplicate, double delay,
                       uint64_t seed = 7) {
  FaultConfig config;
  config.enabled = true;
  config.seed = seed;
  config.drop_prob = drop;
  config.duplicate_prob = duplicate;
  config.delay_prob = delay;
  return config;
}

// ---------------------------------------------------------------------
// FaultPlan: deterministic, seed-sensitive, probability-calibrated.
// ---------------------------------------------------------------------

TEST(FaultPlanTest, SameSeedReplaysIdentically) {
  const FaultConfig config = MakeFaults(0.3, 0.2, 0.25, 99);
  const FaultPlan a(config);
  const FaultPlan b(config);
  for (uint64_t tick = 0; tick < 2000; ++tick) {
    ASSERT_EQ(a.AttemptLost(tick, 0, 1), b.AttemptLost(tick, 0, 1)) << tick;
    ASSERT_EQ(a.Duplicates(tick), b.Duplicates(tick)) << tick;
    ASSERT_EQ(a.Delays(tick), b.Delays(tick)) << tick;
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  FaultConfig config = MakeFaults(0.3, 0.0, 0.0, 1);
  const FaultPlan a(config);
  config.seed = 2;
  const FaultPlan b(config);
  size_t differences = 0;
  for (uint64_t tick = 0; tick < 2000; ++tick) {
    if (a.AttemptLost(tick, 0, 1) != b.AttemptLost(tick, 0, 1)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0u);
}

TEST(FaultPlanTest, DropRateTracksConfiguredProbability) {
  const FaultPlan plan(MakeFaults(0.3, 0.0, 0.0, 123));
  size_t drops = 0;
  const size_t kTicks = 20000;
  for (uint64_t tick = 0; tick < kTicks; ++tick) {
    if (plan.AttemptLost(tick, 0, 1)) ++drops;
  }
  const double rate = static_cast<double>(drops) / kTicks;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultPlanTest, DisabledPlanNeverFaults) {
  FaultConfig config = MakeFaults(1.0, 1.0, 1.0);
  config.enabled = false;
  const FaultPlan plan(config);
  for (uint64_t tick = 0; tick < 100; ++tick) {
    EXPECT_FALSE(plan.AttemptLost(tick, 0, 1));
    EXPECT_FALSE(plan.Duplicates(tick));
    EXPECT_FALSE(plan.Delays(tick));
  }
}

TEST(FaultPlanTest, OutageWindowCoversBothDirections) {
  FaultConfig config;
  config.enabled = true;
  config.outages.push_back(FaultOutage{/*machine=*/1, /*start_tick=*/10,
                                       /*end_tick=*/20});
  const FaultPlan plan(config);
  EXPECT_FALSE(plan.InOutage(1, 9));
  EXPECT_TRUE(plan.InOutage(1, 10));
  EXPECT_TRUE(plan.InOutage(1, 19));
  EXPECT_FALSE(plan.InOutage(1, 20));
  EXPECT_FALSE(plan.InOutage(0, 15));
  // Messages to AND from the machine are lost during the window, with
  // no random drop probability configured at all.
  EXPECT_TRUE(plan.AttemptLost(15, 0, 1));
  EXPECT_TRUE(plan.AttemptLost(15, 1, 0));
  EXPECT_FALSE(plan.AttemptLost(15, 0, 2));
  EXPECT_FALSE(plan.AttemptLost(25, 0, 1));
}

// ---------------------------------------------------------------------
// Transport: accounting, retries, degradation, replay determinism.
// ---------------------------------------------------------------------

TEST(TransportTest, PassThroughMatchesDirectClusterAccounting) {
  ClusterSim direct(3);
  direct.RecordRemoteMessage(0, 1, 100);           // A push.
  direct.RecordRemoteMessage(1, 2, 16);            // A pull request...
  direct.RecordRemoteMessage(2, 1, 400);           // ...and its response.

  ClusterSim routed(3);
  Transport transport(&routed);  // Default config: faults disabled.
  const Delivery push = transport.Send(0, 1, 100);
  EXPECT_TRUE(push.delivered);
  EXPECT_FALSE(push.duplicated);
  EXPECT_EQ(push.attempts, 1u);
  const Delivery pull = transport.Exchange(1, 2, 16, 400);
  EXPECT_TRUE(pull.delivered);

  EXPECT_EQ(routed.TotalRemoteBytes(), direct.TotalRemoteBytes());
  EXPECT_EQ(routed.TotalRemoteMessages(), direct.TotalRemoteMessages());
  for (uint32_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(routed.MachineTime(m).comm_seconds,
                     direct.MachineTime(m).comm_seconds);
  }
  // No fault ever fired, so no fault counter was ever created.
  EXPECT_TRUE(transport.metrics().Snapshot().empty());
}

TEST(TransportTest, DropEverythingExhaustsRetriesWithBackoff) {
  FaultConfig config = MakeFaults(1.0, 0.0, 0.0);
  config.max_retries = 3;
  config.retry_backoff_seconds = 0.5;
  ClusterSim cluster(2);
  Transport transport(&cluster, config);

  const Delivery d = transport.Send(0, 1, 936);  // 1000 wire bytes.
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.attempts, 4u);  // First try + 3 retries.
  EXPECT_EQ(transport.metrics().Get(metric::kTransportDroppedMessages), 4u);
  EXPECT_EQ(transport.metrics().Get(metric::kTransportRetries), 3u);
  EXPECT_EQ(transport.metrics().Get(metric::kTransportExhaustedRetries), 1u);

  // The sender paid for every attempt; the receiver saw nothing.
  EXPECT_EQ(cluster.TotalRemoteMessages(), 4u);
  EXPECT_EQ(cluster.TotalRemoteBytes(), 4u * 1000u);
  EXPECT_DOUBLE_EQ(cluster.MachineTime(1).comm_seconds, 0.0);
  // Exponential backoff: 0.5 + 1.0 + 2.0 = 3.5 seconds of stall.
  const sim::NetworkConfig& net = cluster.network_config();
  const double wire = 4u * 1000u / net.bandwidth_bytes_per_sec +
                      4 * net.latency_seconds;
  EXPECT_DOUBLE_EQ(cluster.MachineTime(0).comm_seconds, wire + 3.5);
}

TEST(TransportTest, DuplicateDeliveryChargesTheWireTwice) {
  ClusterSim cluster(2);
  Transport transport(&cluster, MakeFaults(0.0, 1.0, 0.0));
  const Delivery d = transport.Send(0, 1, 90);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(d.duplicated);
  EXPECT_EQ(cluster.TotalRemoteMessages(), 2u);
  EXPECT_EQ(transport.metrics().Get(metric::kTransportDuplicates), 1u);
}

TEST(TransportTest, DelayedExchangeStallsTheRequester) {
  FaultConfig config = MakeFaults(0.0, 0.0, 1.0);
  config.delay_seconds = 0.125;
  ClusterSim cluster(2);
  Transport transport(&cluster, config);

  ClusterSim baseline(2);
  Transport perfect(&baseline);
  perfect.Exchange(0, 1, 8, 64);

  const Delivery d = transport.Exchange(0, 1, 8, 64);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(d.delayed);
  EXPECT_DOUBLE_EQ(cluster.MachineTime(0).comm_seconds,
                   baseline.MachineTime(0).comm_seconds + 0.125);
  EXPECT_EQ(transport.metrics().Get(metric::kTransportDelayed), 1u);
}

TEST(TransportTest, OutageWindowRecoversAfterwards) {
  FaultConfig config;
  config.enabled = true;
  config.max_retries = 10;
  config.outages.push_back(FaultOutage{/*machine=*/1, /*start_tick=*/0,
                                       /*end_tick=*/4});
  ClusterSim cluster(2);
  Transport transport(&cluster, config);
  // Ticks 0-3 fall inside the outage; the attempt at tick 4 delivers.
  const Delivery d = transport.Send(0, 1, 100);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.attempts, 5u);
  EXPECT_EQ(transport.metrics().Get(metric::kTransportDroppedMessages), 4u);
}

TEST(TransportTest, FixedSeedReplaysScenarioBitIdentically) {
  const FaultConfig config = MakeFaults(0.3, 0.2, 0.2, 2024);
  ClusterSim cluster_a(4);
  ClusterSim cluster_b(4);
  Transport a(&cluster_a, config);
  Transport b(&cluster_b, config);
  for (int i = 0; i < 200; ++i) {
    const uint32_t src = static_cast<uint32_t>(i % 4);
    const uint32_t dst = static_cast<uint32_t>((i + 1) % 4);
    const Delivery da = i % 2 == 0 ? a.Send(src, dst, 64)
                                   : a.Exchange(src, dst, 16, 256);
    const Delivery db = i % 2 == 0 ? b.Send(src, dst, 64)
                                   : b.Exchange(src, dst, 16, 256);
    ASSERT_EQ(da.delivered, db.delivered) << i;
    ASSERT_EQ(da.duplicated, db.duplicated) << i;
    ASSERT_EQ(da.delayed, db.delayed) << i;
    ASSERT_EQ(da.attempts, db.attempts) << i;
  }
  EXPECT_EQ(a.metrics().Snapshot(), b.metrics().Snapshot());
  EXPECT_EQ(cluster_a.TotalRemoteBytes(), cluster_b.TotalRemoteBytes());
  EXPECT_EQ(cluster_a.TotalRemoteMessages(),
            cluster_b.TotalRemoteMessages());
  for (uint32_t m = 0; m < 4; ++m) {
    EXPECT_DOUBLE_EQ(cluster_a.MachineTime(m).comm_seconds,
                     cluster_b.MachineTime(m).comm_seconds);
  }
  // The faulty run actually exercised the fault paths.
  EXPECT_GT(a.metrics().Get(metric::kTransportDroppedMessages), 0u);
  EXPECT_GT(a.metrics().Get(metric::kTransportDuplicates), 0u);
}

// ---------------------------------------------------------------------
// ParameterServer under faults: idempotent pushes, stale-serving pulls,
// validated construction.
// ---------------------------------------------------------------------

struct FaultyPs {
  ClusterSim cluster{2};
  std::unique_ptr<Transport> transport;
  std::unique_ptr<ps::ParameterServer> server;

  explicit FaultyPs(const FaultConfig& faults) {
    transport = std::make_unique<Transport>(&cluster, faults);
    ps::PsConfig config;
    config.num_entities = 10;
    config.num_relations = 4;
    config.entity_dim = 4;
    config.relation_dim = 4;
    config.learning_rate = 0.5;
    // Entities 0-4 on machine 0, 5-9 on machine 1.
    std::vector<uint32_t> owner(10);
    for (size_t e = 0; e < 10; ++e) owner[e] = e < 5 ? 0 : 1;
    server =
        ps::ParameterServer::Create(config, owner, &cluster, transport.get())
            .value();
    server->InitEmbeddings();
  }
};

TEST(FaultInjectionPsTest, DuplicatedPushDoesNotDoubleApplyAdaGrad) {
  FaultyPs duplicated(MakeFaults(0.0, 1.0, 0.0));
  FaultyPs perfect(FaultConfig{});

  const float zero[] = {0.0f, 0.0f, 0.0f, 0.0f};
  const float grad[] = {2.0f, -2.0f, 0.0f, 0.0f};
  const std::vector<EmbKey> keys = {EntityKey(7)};  // Remote from worker 0.
  const std::vector<std::span<const float>> grads = {
      std::span<const float>(grad)};
  duplicated.server->SetValue(EntityKey(7), zero);
  perfect.server->SetValue(EntityKey(7), zero);

  const ps::PushResult faulty =
      duplicated.server->PushGradBatch(0, keys, grads);
  const ps::PushResult clean = perfect.server->PushGradBatch(0, keys, grads);
  EXPECT_EQ(faulty.duplicates_ignored, 1u);
  EXPECT_EQ(clean.duplicates_ignored, 0u);
  EXPECT_EQ(duplicated.server->metrics().Get(
                metric::kTransportDuplicatesIgnored),
            1u);

  // The duplicated delivery was applied exactly once: values match the
  // fault-free server bit for bit.
  const auto faulty_value = duplicated.server->Value(EntityKey(7));
  const auto clean_value = perfect.server->Value(EntityKey(7));
  for (size_t i = 0; i < faulty_value.size(); ++i) {
    EXPECT_EQ(faulty_value[i], clean_value[i]) << i;
  }
  // The duplicate copy did cross the wire, though.
  EXPECT_GT(duplicated.cluster.TotalRemoteBytes(),
            perfect.cluster.TotalRemoteBytes());
}

TEST(FaultInjectionPsTest, ExhaustedPullLeavesDestinationUntouched) {
  FaultConfig faults = MakeFaults(1.0, 0.0, 0.0);
  faults.max_retries = 2;
  FaultyPs f(faults);

  // One local key (machine 0 owns entities 0-4) and one remote key.
  std::vector<float> out(8, -123.0f);
  const std::vector<EmbKey> keys = {EntityKey(1), EntityKey(7)};
  std::vector<std::span<float>> spans = {
      std::span<float>(out.data(), 4), std::span<float>(out.data() + 4, 4)};
  const ps::PullResult result = f.server->PullBatch(0, keys, spans);

  // The local shard cannot fail; the remote shard exhausted retries.
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0], 1u);
  EXPECT_NE(out[0], -123.0f);  // Local value served.
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(out[i], -123.0f) << "failed pull must not write";
  }
  EXPECT_EQ(f.transport->metrics().Get(metric::kTransportExhaustedRetries),
            1u);
}

TEST(FaultInjectionPsTest, LostPushDropsGradientsWithoutCorruption) {
  FaultyPs f(MakeFaults(1.0, 0.0, 0.0));
  std::vector<float> before(f.server->Value(EntityKey(7)).begin(),
                            f.server->Value(EntityKey(7)).end());
  const float grad[] = {1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<EmbKey> keys = {EntityKey(7)};
  const std::vector<std::span<const float>> grads = {
      std::span<const float>(grad)};
  const ps::PushResult result = f.server->PushGradBatch(0, keys, grads);
  EXPECT_EQ(result.lost_rows, 1u);
  EXPECT_EQ(f.server->metrics().Get(metric::kTransportLostPushRows), 1u);
  const auto after = f.server->Value(EntityKey(7));
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "lost push must not mutate the row";
  }
}

TEST(FaultInjectionPsTest, CreateRejectsOutOfRangeEntityOwner) {
  ClusterSim cluster(2);
  ps::PsConfig config;
  config.num_entities = 4;
  config.num_relations = 2;
  config.entity_dim = 4;
  config.relation_dim = 4;
  // Owner id == num_machines is the first invalid value.
  const auto at_boundary =
      ps::ParameterServer::Create(config, {0, 1, 0, 2}, &cluster);
  ASSERT_FALSE(at_boundary.ok());
  EXPECT_EQ(at_boundary.status().code(), StatusCode::kOutOfRange);
  const auto far_out =
      ps::ParameterServer::Create(config, {0, 0, 0, 9}, &cluster);
  ASSERT_FALSE(far_out.ok());
  EXPECT_EQ(far_out.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(
      ps::ParameterServer::Create(config, {0, 1, 0, 1}, &cluster).ok());
}

TEST(FaultInjectionPsTest, CreateRejectsTransportOverForeignCluster) {
  ClusterSim cluster(2);
  ClusterSim other(2);
  Transport transport(&other);
  ps::PsConfig config;
  config.num_entities = 2;
  config.num_relations = 2;
  config.entity_dim = 4;
  config.relation_dim = 4;
  const auto created =
      ps::ParameterServer::Create(config, {0, 1}, &cluster, &transport);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Degradation semantics: staleness bound under lost refreshes, and the
// engine-level stale-serve fallback.
// ---------------------------------------------------------------------

TEST(FaultDegradationTest, DegradedStalenessBoundGrowsLinearly) {
  core::SyncConfig config;
  config.strategy = core::CacheStrategy::kCps;
  config.staleness_bound = 8;
  const auto sync = core::SyncController::Create(config).value();
  EXPECT_EQ(sync.MaxStaleness(), 8u);
  EXPECT_EQ(sync.DegradedMaxStaleness(0), 8u);   // No lost refresh: P.
  EXPECT_EQ(sync.DegradedMaxStaleness(1), 16u);  // One lost round: 2P.
  EXPECT_EQ(sync.DegradedMaxStaleness(3), 32u);

  core::SyncConfig no_cache;
  no_cache.strategy = core::CacheStrategy::kNone;
  no_cache.write_back_period = 0;
  const auto none = core::SyncController::Create(no_cache).value();
  EXPECT_EQ(none.DegradedMaxStaleness(5), 0u);
}

core::TrainerConfig SmallFaultyConfig(core::SystemKind system,
                                      const FaultConfig& faults) {
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_chunk_size = 4;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.sync.strategy = system == core::SystemKind::kHetKgCps
                             ? core::CacheStrategy::kCps
                             : core::CacheStrategy::kDps;
  config.seed = 11;
  config.fault = faults;
  return config;
}

TEST(FaultDegradationTest, ExhaustedRefreshServesStaleCacheAndCounts) {
  graph::SyntheticSpec spec;
  spec.name = "faulty";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 1500;
  spec.seed = 33;
  const auto dataset = graph::GenerateDataset(spec).value();

  // Heavy loss with no retries: refresh pulls frequently exhaust, so
  // the stale-serve path must fire.
  FaultConfig faults = MakeFaults(0.5, 0.0, 0.0, 77);
  faults.max_retries = 0;
  const auto config =
      SmallFaultyConfig(core::SystemKind::kHetKgCps, faults);
  auto engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  const auto report = engine->Train(2).value();
  EXPECT_GT(report.metrics.Get(metric::kTransportStaleServes), 0u);
  EXPECT_GT(report.metrics.Get(metric::kTransportDroppedMessages), 0u);

  // Replay: the same fault seed reproduces the identical run.
  auto replay_engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                        dataset.graph, dataset.split.train)
                           .value();
  const auto replay = replay_engine->Train(2).value();
  EXPECT_EQ(replay.metrics.Snapshot(), report.metrics.Snapshot());
  ASSERT_EQ(replay.epochs.size(), report.epochs.size());
  for (size_t e = 0; e < report.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(replay.epochs[e].mean_loss,
                     report.epochs[e].mean_loss);
  }
}

TEST(FaultDegradationTest, FaultFreeConfigKeepsMetricsFreeOfFaultNames) {
  graph::SyntheticSpec spec;
  spec.name = "clean";
  spec.num_entities = 150;
  spec.num_relations = 6;
  spec.num_triples = 800;
  spec.seed = 12;
  const auto dataset = graph::GenerateDataset(spec).value();
  const auto config =
      SmallFaultyConfig(core::SystemKind::kHetKgDps, FaultConfig{});
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  const auto report = engine->Train(1).value();
  EXPECT_EQ(report.metrics.Get(metric::kTransportRetries), 0u);
  EXPECT_EQ(report.metrics.Get(metric::kTransportDroppedMessages), 0u);
  EXPECT_EQ(report.metrics.Get(metric::kTransportStaleServes), 0u);
  bool has_transport_counter = false;
  for (const auto& [name, value] : report.metrics.Snapshot()) {
    if (name.rfind("transport.", 0) == 0) has_transport_counter = true;
  }
  EXPECT_FALSE(has_transport_counter);
}

}  // namespace
}  // namespace hetkg
