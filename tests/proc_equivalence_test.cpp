// Process-runtime equivalence suite (DESIGN.md §13): drives the real
// trainer binary (HETKG_TRAIN_BIN, injected by CMake) as subprocesses
// and asserts the headline invariant — with the same seed and thread
// count, a --runtime=proc run over real worker processes produces a
// byte-identical training-state snapshot to the in-process sim run, at
// 1/2/4 workers, over both transports, and across a real SIGKILL of a
// worker mid-epoch followed by checkpoint recovery.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETKG_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HETKG_TSAN 1
#endif

namespace hetkg {
namespace {

// Pid-qualified so concurrent ctest entries never share a directory.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs the trainer with the base scenario plus `extra_args`, capturing
// stdout+stderr into `log_path`. Returns the process exit code.
int RunTrainer(const std::string& extra_args, const std::string& log_path) {
  const std::string cmd = std::string(HETKG_TRAIN_BIN) +
                          " --dataset fb15k --triple_fraction 0.01"
                          " --epochs 2 --seed 77 --threads 2 " +
                          extra_args + " > " + log_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  return WEXITSTATUS(rc);
}

class ProcEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef HETKG_TSAN
    GTEST_SKIP() << "proc runtime forks multi-threaded trainer processes; "
                    "covered by the non-sanitizer CI matrix";
#endif
  }
};

TEST_F(ProcEquivalenceTest, SimAndProcSnapshotsAreByteIdentical) {
  const std::string dir = FreshDir("proc-equiv");
  for (const int workers : {1, 2, 4}) {
    const std::string sim_state =
        dir + "/sim" + std::to_string(workers) + ".state";
    const std::string proc_state =
        dir + "/proc" + std::to_string(workers) + ".state";
    ASSERT_EQ(RunTrainer("--machines " + std::to_string(workers) +
                             " --save_state " + sim_state,
                         dir + "/sim.log"),
              0)
        << ReadFileBytes(dir + "/sim.log");
    ASSERT_EQ(RunTrainer("--runtime proc --workers " +
                             std::to_string(workers) + " --save_state " +
                             proc_state,
                         dir + "/proc.log"),
              0)
        << ReadFileBytes(dir + "/proc.log");
    const std::string sim_bytes = ReadFileBytes(sim_state);
    ASSERT_FALSE(sim_bytes.empty());
    EXPECT_EQ(sim_bytes, ReadFileBytes(proc_state))
        << "proc snapshot diverged from sim at " << workers << " workers";
  }
}

TEST_F(ProcEquivalenceTest, TcpTransportMatchesSim) {
  const std::string dir = FreshDir("proc-tcp");
  ASSERT_EQ(RunTrainer("--machines 2 --save_state " + dir + "/sim.state",
                       dir + "/sim.log"),
            0);
  ASSERT_EQ(RunTrainer("--runtime proc --workers 2 --proc_transport tcp"
                       " --save_state " +
                           dir + "/tcp.state",
                       dir + "/tcp.log"),
            0)
      << ReadFileBytes(dir + "/tcp.log");
  EXPECT_EQ(ReadFileBytes(dir + "/sim.state"),
            ReadFileBytes(dir + "/tcp.state"));
}

TEST_F(ProcEquivalenceTest, SigkilledWorkerRecoversBitIdentically) {
  const std::string dir = FreshDir("proc-kill");
  // Both runs checkpoint on the same cadence: periodic saves feed the
  // kCheckpointSaves counter inside the snapshot, so the uninterrupted
  // reference needs them too.
  const std::string common =
      "--runtime proc --workers 2 --checkpoint_every 20 ";
  ASSERT_EQ(RunTrainer(common + "--checkpoint_dir " + dir +
                           "/ck_ref --save_state " + dir + "/ref.state",
                       dir + "/ref.log"),
            0)
      << ReadFileBytes(dir + "/ref.log");
  // Worker 1 raises SIGKILL on receiving the step command for global
  // iteration 47 — mid-epoch-2 at this scale — then the coordinator
  // restores the latest snapshot and re-forks the fleet.
  ASSERT_EQ(RunTrainer(common + "--proc_kill 1:47 --checkpoint_dir " + dir +
                           "/ck_kill --save_state " + dir + "/kill.state",
                       dir + "/kill.log"),
            0)
      << ReadFileBytes(dir + "/kill.log");
  const std::string ref = ReadFileBytes(dir + "/ref.state");
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, ReadFileBytes(dir + "/kill.state"))
      << "post-SIGKILL recovery diverged from the uninterrupted run";
}

TEST_F(ProcEquivalenceTest, KillWithoutCheckpointsFailsCleanly) {
  const std::string dir = FreshDir("proc-kill-nock");
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --proc_kill 1:47",
                       dir + "/run.log"),
            0);
  const std::string log = ReadFileBytes(dir + "/run.log");
  EXPECT_NE(log.find("no checkpoint is restorable"), std::string::npos)
      << log;
}

TEST_F(ProcEquivalenceTest, ProcRejectsUnsupportedModes) {
  const std::string dir = FreshDir("proc-reject");
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --async true",
                       dir + "/async.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/async.log")
                .find("deterministic scheduler"),
            std::string::npos);
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --system pbg",
                       dir + "/pbg.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/pbg.log")
                .find("parameter-server engines only"),
            std::string::npos);
  EXPECT_NE(
      RunTrainer("--runtime proc --workers 2 --fault_worker_crash 0:10",
                 dir + "/simfault.log"),
      0);
  EXPECT_NE(ReadFileBytes(dir + "/simfault.log").find("real worker"),
            std::string::npos);
}

}  // namespace
}  // namespace hetkg
