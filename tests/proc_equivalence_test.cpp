// Process-runtime equivalence suite (DESIGN.md §13): drives the real
// trainer binary (HETKG_TRAIN_BIN, injected by CMake) as subprocesses
// and asserts the headline invariant — with the same seed and thread
// count, a --runtime=proc run over real worker processes produces a
// byte-identical training-state snapshot to the in-process sim run, at
// 1/2/4 workers, over both transports, and across a real SIGKILL of a
// worker mid-epoch followed by checkpoint recovery.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETKG_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HETKG_TSAN 1
#endif

namespace hetkg {
namespace {

// Pid-qualified so concurrent ctest entries never share a directory.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Runs the trainer with the base scenario plus `extra_args`, capturing
// stdout+stderr into `log_path`. Returns the process exit code.
int RunTrainer(const std::string& extra_args, const std::string& log_path) {
  const std::string cmd = std::string(HETKG_TRAIN_BIN) +
                          " --dataset fb15k --triple_fraction 0.01"
                          " --epochs 2 --seed 77 --threads 2 " +
                          extra_args + " > " + log_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  return WEXITSTATUS(rc);
}

class ProcEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef HETKG_TSAN
    GTEST_SKIP() << "proc runtime forks multi-threaded trainer processes; "
                    "covered by the non-sanitizer CI matrix";
#endif
  }
};

TEST_F(ProcEquivalenceTest, SimAndProcSnapshotsAreByteIdentical) {
  const std::string dir = FreshDir("proc-equiv");
  for (const int workers : {1, 2, 4}) {
    const std::string sim_state =
        dir + "/sim" + std::to_string(workers) + ".state";
    const std::string proc_state =
        dir + "/proc" + std::to_string(workers) + ".state";
    ASSERT_EQ(RunTrainer("--machines " + std::to_string(workers) +
                             " --save_state " + sim_state,
                         dir + "/sim.log"),
              0)
        << ReadFileBytes(dir + "/sim.log");
    ASSERT_EQ(RunTrainer("--runtime proc --workers " +
                             std::to_string(workers) + " --save_state " +
                             proc_state,
                         dir + "/proc.log"),
              0)
        << ReadFileBytes(dir + "/proc.log");
    const std::string sim_bytes = ReadFileBytes(sim_state);
    ASSERT_FALSE(sim_bytes.empty());
    EXPECT_EQ(sim_bytes, ReadFileBytes(proc_state))
        << "proc snapshot diverged from sim at " << workers << " workers";
  }
}

TEST_F(ProcEquivalenceTest, TcpTransportMatchesSim) {
  const std::string dir = FreshDir("proc-tcp");
  ASSERT_EQ(RunTrainer("--machines 2 --save_state " + dir + "/sim.state",
                       dir + "/sim.log"),
            0);
  ASSERT_EQ(RunTrainer("--runtime proc --workers 2 --proc_transport tcp"
                       " --save_state " +
                           dir + "/tcp.state",
                       dir + "/tcp.log"),
            0)
      << ReadFileBytes(dir + "/tcp.log");
  EXPECT_EQ(ReadFileBytes(dir + "/sim.state"),
            ReadFileBytes(dir + "/tcp.state"));
}

TEST_F(ProcEquivalenceTest, SigkilledWorkerRecoversBitIdentically) {
  const std::string dir = FreshDir("proc-kill");
  // Both runs checkpoint on the same cadence: periodic saves feed the
  // kCheckpointSaves counter inside the snapshot, so the uninterrupted
  // reference needs them too.
  const std::string common =
      "--runtime proc --workers 2 --checkpoint_every 20 ";
  ASSERT_EQ(RunTrainer(common + "--checkpoint_dir " + dir +
                           "/ck_ref --save_state " + dir + "/ref.state",
                       dir + "/ref.log"),
            0)
      << ReadFileBytes(dir + "/ref.log");
  // Worker 1 raises SIGKILL on receiving the step command for global
  // iteration 47 — mid-epoch-2 at this scale — then the coordinator
  // restores the latest snapshot and re-forks the fleet.
  ASSERT_EQ(RunTrainer(common + "--proc_kill 1:47 --checkpoint_dir " + dir +
                           "/ck_kill --save_state " + dir + "/kill.state",
                       dir + "/kill.log"),
            0)
      << ReadFileBytes(dir + "/kill.log");
  const std::string ref = ReadFileBytes(dir + "/ref.state");
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, ReadFileBytes(dir + "/kill.state"))
      << "post-SIGKILL recovery diverged from the uninterrupted run";
}

// Cross-process observability (DESIGN.md §14): turning on tracing and
// metrics export under --runtime=proc must not move a single trained
// bit, on either transport, while the merged artifacts prove the
// worker telemetry actually arrived — the Perfetto file carries the
// workers' track groups and the metrics JSON carries per-worker
// counters plus real transport RPC latency histograms.
TEST_F(ProcEquivalenceTest, ObsRunsKeepSnapshotsByteIdentical) {
  const std::string dir = FreshDir("proc-obs");
  for (const int workers : {1, 2, 4}) {
    const std::string tag = std::to_string(workers);
    const std::string off_state = dir + "/off" + tag + ".state";
    ASSERT_EQ(RunTrainer("--runtime proc --workers " + tag +
                             " --save_state " + off_state,
                         dir + "/off" + tag + ".log"),
              0)
        << ReadFileBytes(dir + "/off" + tag + ".log");
    const std::string off_bytes = ReadFileBytes(off_state);
    ASSERT_FALSE(off_bytes.empty());
    for (const std::string transport : {"shm", "tcp"}) {
      const std::string base = dir + "/" + transport + tag;
      ASSERT_EQ(RunTrainer("--runtime proc --workers " + tag +
                               " --proc_transport " + transport +
                               " --save_state " + base + ".state" +
                               " --trace_out " + base + ".trace.json" +
                               " --metrics_json " + base + ".metrics.json",
                           base + ".log"),
                0)
          << ReadFileBytes(base + ".log");
      EXPECT_EQ(off_bytes, ReadFileBytes(base + ".state"))
          << "obs-on " << transport << " snapshot diverged at " << workers
          << " workers";
      const std::string trace = ReadFileBytes(base + ".trace.json");
      EXPECT_NE(trace.find("\"worker 0\""), std::string::npos)
          << transport << " trace is missing the worker 0 track group";
      const std::string metrics = ReadFileBytes(base + ".metrics.json");
      EXPECT_NE(metrics.find("net.rpc.latency_us." + transport),
                std::string::npos)
          << "metrics JSON is missing the " << transport
          << " RPC latency histogram";
      EXPECT_NE(metrics.find(".w0"), std::string::npos)
          << "metrics JSON is missing per-worker gauges";
    }
  }
}

// A SIGKILLed worker's last trace events survive it: the coordinator
// harvests the flight-recorder ring (inherited shm pages, or the
// worker's spill file under tcp) and appends it to the merged trace as
// a `flight.w<id>` track — and the traced kill run still recovers to
// the exact bytes of the untraced kill run.
TEST_F(ProcEquivalenceTest, SigkillRunCapturesFlightRecorderTrack) {
  const std::string dir = FreshDir("proc-obs-kill");
  for (const std::string transport : {"shm", "tcp"}) {
    const std::string common = "--runtime proc --workers 2 --proc_transport " +
                               transport +
                               " --checkpoint_every 20 --proc_kill 1:47 ";
    const std::string base = dir + "/" + transport;
    ASSERT_EQ(RunTrainer(common + "--checkpoint_dir " + base +
                             "_ck_off --save_state " + base + "_off.state",
                         base + "_off.log"),
              0)
        << ReadFileBytes(base + "_off.log");
    ASSERT_EQ(RunTrainer(common + "--checkpoint_dir " + base +
                             "_ck_on --save_state " + base + "_on.state" +
                             " --trace_out " + base + ".trace.json",
                         base + "_on.log"),
              0)
        << ReadFileBytes(base + "_on.log");
    const std::string off_bytes = ReadFileBytes(base + "_off.state");
    ASSERT_FALSE(off_bytes.empty());
    EXPECT_EQ(off_bytes, ReadFileBytes(base + "_on.state"))
        << "traced " << transport << " kill run diverged from untraced";
    const std::string trace = ReadFileBytes(base + ".trace.json");
    EXPECT_NE(trace.find("\"flight.w1\""), std::string::npos)
        << transport
        << " merged trace is missing the killed worker's flight track";
  }
}

TEST_F(ProcEquivalenceTest, KillWithoutCheckpointsFailsCleanly) {
  const std::string dir = FreshDir("proc-kill-nock");
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --proc_kill 1:47",
                       dir + "/run.log"),
            0);
  const std::string log = ReadFileBytes(dir + "/run.log");
  EXPECT_NE(log.find("no checkpoint is restorable"), std::string::npos)
      << log;
}

TEST_F(ProcEquivalenceTest, ProcRejectsUnsupportedModes) {
  const std::string dir = FreshDir("proc-reject");
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --async true",
                       dir + "/async.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/async.log")
                .find("deterministic scheduler"),
            std::string::npos);
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --system pbg",
                       dir + "/pbg.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/pbg.log")
                .find("parameter-server engines only"),
            std::string::npos);
  EXPECT_NE(
      RunTrainer("--runtime proc --workers 2 --fault_worker_crash 0:10",
                 dir + "/simfault.log"),
      0);
  EXPECT_NE(ReadFileBytes(dir + "/simfault.log").find("real worker"),
            std::string::npos);
}

}  // namespace
}  // namespace hetkg
