#include "embedding/embedding_table.h"

#include <cmath>

#include <gtest/gtest.h>

#include "embedding/adagrad.h"
#include "embedding/loss.h"

namespace hetkg::embedding {
namespace {

TEST(EmbeddingTableTest, ShapeAndZeroInit) {
  EmbeddingTable table(10, 4);
  EXPECT_EQ(table.num_rows(), 10u);
  EXPECT_EQ(table.dim(), 4u);
  EXPECT_EQ(table.SizeBytes(), 10 * 4 * sizeof(float));
  for (float v : table.Row(3)) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(EmbeddingTableTest, SetAndAccumulateRow) {
  EmbeddingTable table(2, 3);
  const float vals[] = {1.0f, 2.0f, 3.0f};
  table.SetRow(1, vals);
  EXPECT_EQ(table.Row(1)[2], 3.0f);
  const float delta[] = {0.5f, -1.0f, 1.0f};
  table.AccumulateRow(1, delta);
  EXPECT_FLOAT_EQ(table.Row(1)[0], 1.5f);
  EXPECT_FLOAT_EQ(table.Row(1)[1], 1.0f);
  EXPECT_FLOAT_EQ(table.Row(1)[2], 4.0f);
  // Row 0 untouched.
  EXPECT_EQ(table.Row(0)[0], 0.0f);
}

TEST(EmbeddingTableTest, XavierInitStaysInBound) {
  EmbeddingTable table(100, 16);
  Rng rng(3);
  table.InitXavierUniform(&rng);
  const float bound = 6.0f / std::sqrt(16.0f);
  bool any_nonzero = false;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (float v : table.Row(i)) {
      EXPECT_LE(std::fabs(v), bound);
      if (v != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(EmbeddingTableTest, GaussianInitHasRequestedSpread) {
  EmbeddingTable table(1000, 16);
  Rng rng(4);
  table.InitGaussian(&rng, 0.1f);
  double sumsq = 0.0;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (float v : table.Row(i)) {
      sumsq += static_cast<double>(v) * v;
    }
  }
  const double std_est = std::sqrt(sumsq / (1000.0 * 16.0));
  EXPECT_NEAR(std_est, 0.1, 0.01);
}

TEST(EmbeddingTableTest, L2NormalizeMakesUnitRows) {
  EmbeddingTable table(2, 3);
  const float vals[] = {3.0f, 0.0f, 4.0f};
  table.SetRow(0, vals);
  table.L2NormalizeRow(0);
  EXPECT_NEAR(RowNorm(table.Row(0)), 1.0, 1e-6);
  EXPECT_FLOAT_EQ(table.Row(0)[0], 0.6f);
  // Zero rows stay zero (no division by zero).
  table.L2NormalizeRow(1);
  EXPECT_EQ(table.Row(1)[0], 0.0f);
}

TEST(RowMathTest, DotAndNorm) {
  const float a[] = {1.0f, 2.0f, 2.0f};
  const float b[] = {2.0f, 1.0f, 0.0f};
  EXPECT_NEAR(RowDot(a, b), 4.0, 1e-9);
  EXPECT_NEAR(RowNorm(a), 3.0, 1e-9);
}

TEST(AdaGradTest, FirstStepIsLearningRateSized) {
  // With zero accumulator: step = lr * g / sqrt(g^2 + eps) ~= lr*sign(g).
  EmbeddingTable table(1, 2);
  AdaGrad opt(1, 2, /*learning_rate=*/0.5);
  const float grad[] = {2.0f, -2.0f};
  opt.Apply(0, table.Row(0), grad);
  EXPECT_NEAR(table.Row(0)[0], -0.5, 1e-4);
  EXPECT_NEAR(table.Row(0)[1], 0.5, 1e-4);
}

TEST(AdaGradTest, StepsShrinkWithAccumulation) {
  EmbeddingTable table(1, 1);
  AdaGrad opt(1, 1, 0.1);
  const float grad[] = {1.0f};
  float prev = table.Row(0)[0];
  double prev_step = 1e9;
  for (int i = 0; i < 5; ++i) {
    opt.Apply(0, table.Row(0), grad);
    const double step = std::fabs(table.Row(0)[0] - prev);
    EXPECT_LT(step, prev_step);
    prev_step = step;
    prev = table.Row(0)[0];
  }
}

TEST(AdaGradTest, RowsHaveIndependentState) {
  EmbeddingTable table(2, 1);
  AdaGrad opt(2, 1, 0.1);
  const float grad[] = {1.0f};
  for (int i = 0; i < 10; ++i) {
    opt.Apply(0, table.Row(0), grad);
  }
  // Row 1 still takes a full-size first step.
  opt.Apply(1, table.Row(1), grad);
  EXPECT_NEAR(table.Row(1)[0], -0.1, 1e-4);
  EXPECT_GT(opt.AccumulatorRow(0)[0], opt.AccumulatorRow(1)[0]);
}

TEST(AdaGradTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 with AdaGrad; gradient = 2(x - 3).
  EmbeddingTable table(1, 1);
  AdaGrad opt(1, 1, 0.8);
  for (int i = 0; i < 3000; ++i) {
    const float x = table.Row(0)[0];
    const float grad[] = {2.0f * (x - 3.0f)};
    opt.Apply(0, table.Row(0), grad);
  }
  EXPECT_NEAR(table.Row(0)[0], 3.0f, 0.05f);
}

TEST(MarginLossTest, ZeroWhenMarginSatisfied) {
  MarginRankingLoss loss(1.0);
  const LossGrad g = loss.PairLoss(/*pos=*/5.0, /*neg=*/1.0);
  EXPECT_EQ(g.loss, 0.0);
  EXPECT_EQ(g.dpos, 0.0);
  EXPECT_EQ(g.dneg, 0.0);
}

TEST(MarginLossTest, LinearInViolation) {
  MarginRankingLoss loss(1.0);
  const LossGrad g = loss.PairLoss(/*pos=*/0.0, /*neg=*/0.5);
  EXPECT_NEAR(g.loss, 1.5, 1e-9);
  EXPECT_EQ(g.dpos, -1.0);
  EXPECT_EQ(g.dneg, 1.0);
}

TEST(LogisticLossTest, GradientsMatchFiniteDifference) {
  LogisticLoss loss(4);
  const double eps = 1e-6;
  for (double pos : {-2.0, 0.0, 1.5}) {
    for (double neg : {-1.0, 0.0, 2.0}) {
      const LossGrad g = loss.PairLoss(pos, neg);
      const double dpos_num =
          (loss.PairLoss(pos + eps, neg).loss - loss.PairLoss(pos - eps, neg).loss) /
          (2 * eps);
      const double dneg_num =
          (loss.PairLoss(pos, neg + eps).loss - loss.PairLoss(pos, neg - eps).loss) /
          (2 * eps);
      EXPECT_NEAR(g.dpos, dpos_num, 1e-5);
      EXPECT_NEAR(g.dneg, dneg_num, 1e-5);
      EXPECT_GT(g.loss, 0.0);
    }
  }
}

TEST(LogisticLossTest, StableAtExtremeScores) {
  LogisticLoss loss(1);
  const LossGrad g = loss.PairLoss(1000.0, -1000.0);
  EXPECT_TRUE(std::isfinite(g.loss));
  EXPECT_NEAR(g.loss, 0.0, 1e-6);
  const LossGrad g2 = loss.PairLoss(-1000.0, 1000.0);
  EXPECT_TRUE(std::isfinite(g2.loss));
  EXPECT_NEAR(g2.dpos, -1.0, 1e-6);
  EXPECT_NEAR(g2.dneg, 1.0, 1e-6);
}

TEST(LossFactoryTest, ParsesKnownNames) {
  EXPECT_TRUE(MakeLossFunction("margin", 1.0, 8).ok());
  EXPECT_TRUE(MakeLossFunction("logistic", 1.0, 8).ok());
  EXPECT_FALSE(MakeLossFunction("hinge", 1.0, 8).ok());
}

}  // namespace
}  // namespace hetkg::embedding
