#include "graph/knowledge_graph.h"

#include <gtest/gtest.h>

#include "graph/loader.h"
#include "graph/stats.h"
#include "graph/synthetic.h"

namespace hetkg::graph {
namespace {

KnowledgeGraph TinyGraph() {
  // 0 -r0-> 1, 1 -r1-> 2, 0 -r0-> 2, 2 -r1-> 3 and a parallel 0 -r1-> 1.
  std::vector<Triple> triples = {
      {0, 0, 1}, {1, 1, 2}, {0, 0, 2}, {2, 1, 3}, {0, 1, 1}};
  return KnowledgeGraph::Create(4, 2, triples, "tiny").value();
}

TEST(KnowledgeGraphTest, CreateValidatesIds) {
  std::vector<Triple> bad_entity = {{0, 0, 9}};
  EXPECT_FALSE(KnowledgeGraph::Create(4, 2, bad_entity).ok());
  std::vector<Triple> bad_relation = {{0, 7, 1}};
  EXPECT_FALSE(KnowledgeGraph::Create(4, 2, bad_relation).ok());
  EXPECT_FALSE(KnowledgeGraph::Create(0, 2, {}).ok());
  EXPECT_FALSE(KnowledgeGraph::Create(4, 0, {}).ok());
}

TEST(KnowledgeGraphTest, CountsAndDegrees) {
  const auto g = TinyGraph();
  EXPECT_EQ(g.num_entities(), 4u);
  EXPECT_EQ(g.num_relations(), 2u);
  EXPECT_EQ(g.num_triples(), 5u);
  const auto deg = g.EntityDegrees();
  EXPECT_EQ(deg[0], 3u);  // Head of 3 triples.
  EXPECT_EQ(deg[1], 3u);  // Tail of 2, head of 1.
  EXPECT_EQ(deg[2], 3u);
  EXPECT_EQ(deg[3], 1u);
  const auto rel = g.RelationFrequencies();
  EXPECT_EQ(rel[0], 2u);
  EXPECT_EQ(rel[1], 3u);
}

TEST(KnowledgeGraphTest, ContainsTriple) {
  const auto g = TinyGraph();
  EXPECT_TRUE(g.ContainsTriple({0, 0, 1}));
  EXPECT_TRUE(g.ContainsTriple({2, 1, 3}));
  EXPECT_FALSE(g.ContainsTriple({3, 1, 2}));
  EXPECT_FALSE(g.ContainsTriple({0, 1, 2}));
}

TEST(KnowledgeGraphTest, CsrCollapsesParallelEdges) {
  const auto g = TinyGraph();
  const auto& csr = g.BuildCsr();
  ASSERT_EQ(csr.offsets.size(), 5u);
  // Vertex 0 neighbors: 1 (weight 2: r0 and r1 edges) and 2 (weight 1).
  const auto begin = csr.offsets[0];
  const auto end = csr.offsets[1];
  ASSERT_EQ(end - begin, 2u);
  EXPECT_EQ(csr.neighbors[begin], 1u);
  EXPECT_EQ(csr.weights[begin], 2u);
  EXPECT_EQ(csr.neighbors[begin + 1], 2u);
  EXPECT_EQ(csr.weights[begin + 1], 1u);
  // Symmetry: vertex 3 has exactly one neighbor, 2.
  EXPECT_EQ(csr.offsets[4] - csr.offsets[3], 1u);
  EXPECT_EQ(csr.neighbors[csr.offsets[3]], 2u);
}

TEST(SplitTest, FractionsRespected) {
  std::vector<Triple> triples;
  for (EntityId i = 0; i + 1 < 100; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
  }
  const auto split = SplitTriples(triples, 0.1, 0.2, 5).value();
  EXPECT_EQ(split.valid.size(), 9u);   // floor(99 * 0.1)
  EXPECT_EQ(split.test.size(), 19u);   // floor(99 * 0.2)
  EXPECT_EQ(split.train.size(), 99u - 9u - 19u);
}

TEST(SplitTest, PartitionsAreDisjointAndComplete) {
  std::vector<Triple> triples;
  for (EntityId i = 0; i + 1 < 60; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
  }
  const auto split = SplitTriples(triples, 0.25, 0.25, 9).value();
  std::unordered_set<Triple, TripleHash> seen;
  for (const auto* part : {&split.train, &split.valid, &split.test}) {
    for (const Triple& t : *part) {
      EXPECT_TRUE(seen.insert(t).second) << "duplicate across splits";
    }
  }
  EXPECT_EQ(seen.size(), triples.size());
}

TEST(SplitTest, RejectsBadFractions) {
  std::vector<Triple> triples = {{0, 0, 1}};
  EXPECT_FALSE(SplitTriples(triples, 0.6, 0.5, 1).ok());
  EXPECT_FALSE(SplitTriples(triples, -0.1, 0.2, 1).ok());
}

TEST(SyntheticTest, MatchesSpecCounts) {
  SyntheticSpec spec;
  spec.num_entities = 300;
  spec.num_relations = 7;
  spec.num_triples = 2500;
  spec.seed = 3;
  const auto g = GenerateSynthetic(spec).value();
  EXPECT_EQ(g.num_entities(), 300u);
  EXPECT_EQ(g.num_relations(), 7u);
  EXPECT_EQ(g.num_triples(), 2500u);
}

TEST(SyntheticTest, DeduplicationProducesUniqueTriples) {
  SyntheticSpec spec;
  spec.num_entities = 200;
  spec.num_relations = 5;
  spec.num_triples = 3000;
  spec.seed = 4;
  const auto g = GenerateSynthetic(spec).value();
  std::unordered_set<Triple, TripleHash> seen;
  for (const Triple& t : g.triples()) {
    EXPECT_TRUE(seen.insert(t).second);
    EXPECT_NE(t.head, t.tail);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 4;
  spec.num_triples = 500;
  spec.seed = 12;
  const auto a = GenerateSynthetic(spec).value();
  const auto b = GenerateSynthetic(spec).value();
  ASSERT_EQ(a.num_triples(), b.num_triples());
  for (size_t i = 0; i < a.num_triples(); ++i) {
    EXPECT_EQ(a.triple(i), b.triple(i));
  }
}

TEST(SyntheticTest, RejectsOverDenseDedupSpec) {
  SyntheticSpec spec;
  spec.num_entities = 10;
  spec.num_relations = 1;
  spec.num_triples = 80;  // 10*10*1 = 100 < 4*80.
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(SyntheticTest, AccessSkewMatchesPaperObservation) {
  // Sec. IV-B: on FB15k the top 1% of entities take ~6% of accesses and
  // the top 1% of relations ~36%. The generator is calibrated to land
  // in that neighbourhood.
  const auto g = GenerateSynthetic(Fb15kSpec()).value();
  const auto freq = CountEpochAccesses(g, /*negatives=*/8, /*seed=*/1);
  const double entity_share = TopShare(freq.entity, 0.01);
  const double relation_share = TopShare(freq.relation, 0.01);
  EXPECT_GT(entity_share, 0.03);
  EXPECT_LT(entity_share, 0.12);
  EXPECT_GT(relation_share, 0.22);
  EXPECT_LT(relation_share, 0.52);
}

TEST(SyntheticTest, PresetSpecsMatchPaperTable) {
  const auto fb = Fb15kSpec();
  EXPECT_EQ(fb.num_entities, 14951u);
  EXPECT_EQ(fb.num_relations, 1345u);
  EXPECT_EQ(fb.num_triples, 592213u);
  const auto wn = Wn18Spec();
  EXPECT_EQ(wn.num_entities, 40943u);
  EXPECT_EQ(wn.num_relations, 18u);
  EXPECT_EQ(wn.num_triples, 151442u);
  const auto fb86 = Freebase86mSpec(0.01);
  EXPECT_EQ(fb86.num_relations, 14824u);
  EXPECT_NEAR(static_cast<double>(fb86.num_entities), 86054151.0 * 0.01,
              2.0);
}

TEST(StatsTest, TopShareAndGini) {
  // Uniform distribution: top 10% holds ~10%, Gini ~0.
  std::vector<uint32_t> uniform(100, 5);
  EXPECT_NEAR(TopShare(uniform, 0.1), 0.1, 1e-9);
  EXPECT_NEAR(ComputeSkew(uniform).gini, 0.0, 1e-9);

  // One-hot distribution: top 1% holds everything, Gini ~ 1.
  std::vector<uint32_t> onehot(100, 0);
  onehot[42] = 1000;
  EXPECT_NEAR(TopShare(onehot, 0.01), 1.0, 1e-9);
  EXPECT_GT(ComputeSkew(onehot).gini, 0.95);
}

TEST(LoaderTest, ParsesTsvAndBuildsVocab) {
  Vocabulary entities;
  Vocabulary relations;
  const auto triples = ParseTsvTriples(
                           "alice\tknows\tbob\n"
                           "bob\tknows\tcarol\n"
                           "\n"
                           "# comment line\n"
                           "alice\tlikes\tcarol\n",
                           &entities, &relations)
                           .value();
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(entities.size(), 3u);
  EXPECT_EQ(relations.size(), 2u);
  EXPECT_EQ(entities.Token(triples[0].head), "alice");
  EXPECT_EQ(relations.Token(triples[2].relation), "likes");
  EXPECT_EQ(*entities.Get("carol"), triples[1].tail);
  EXPECT_FALSE(entities.Get("dave").ok());
}

TEST(LoaderTest, RejectsMalformedLines) {
  Vocabulary entities;
  Vocabulary relations;
  const auto result =
      ParseTsvTriples("alice\tknows\n", &entities, &relations);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(LoaderTest, LoadsDatasetFromFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string train_path = dir + "/train.tsv";
  const std::string test_path = dir + "/test.tsv";
  {
    FILE* f = fopen(train_path.c_str(), "w");
    fputs("a\tr1\tb\nb\tr1\tc\n", f);
    fclose(f);
    f = fopen(test_path.c_str(), "w");
    fputs("a\tr1\tc\n", f);
    fclose(f);
  }
  const auto ds = LoadTsvDataset(train_path, "", test_path, "mini").value();
  EXPECT_EQ(ds.split.train.size(), 2u);
  EXPECT_EQ(ds.split.valid.size(), 0u);
  EXPECT_EQ(ds.split.test.size(), 1u);
  EXPECT_EQ(ds.graph.num_triples(), 3u);
  EXPECT_EQ(ds.graph.num_entities(), 3u);
  EXPECT_TRUE(ds.graph.ContainsTriple(ds.split.test[0]));
}

TEST(LoaderTest, MissingFileIsIoError) {
  const auto result = LoadTsvDataset("/nonexistent/path.tsv", "", "");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace hetkg::graph
