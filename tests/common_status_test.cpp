#include "common/status.h"

#include <gtest/gtest.h>

namespace hetkg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  HETKG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Doubler(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  HETKG_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 9);
  Result<int> err = UsesAssignOrReturn(-4);
  EXPECT_FALSE(err.ok());
}

}  // namespace
}  // namespace hetkg
