#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace hetkg {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a\t\tb\t", '\t');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(TrimString("  x y \r\n"), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString(" \t "), "");
}

TEST(StringUtilTest, ParseIntegers) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("-1", &u));
}

TEST(StringUtilTest, ParseDoubles) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble("2.5e-3", &d));
  EXPECT_DOUBLE_EQ(d, 0.0025);
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(StringUtilTest, HumanRendering) {
  EXPECT_EQ(HumanBytes(1536.0), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3.0 * 1024 * 1024 * 1024), "3.00 GiB");
  EXPECT_EQ(HumanSeconds(0.0021), "2.1 ms");
  EXPECT_EQ(HumanSeconds(200.0), "3.3 min");
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", ".tsv"));
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, prev);
    prev = value;
  }
  // p50 in the right ballpark for a uniform 1..1000 stream.
  EXPECT_GT(h.Quantile(0.5), 250.0);
  EXPECT_LT(h.Quantile(0.5), 800.0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  b.Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBucket) {
  // log2 of a negative value is UB territory; Add must clamp instead.
  Histogram h;
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  // Quantiles stay inside the observed range and finite.
  for (double q : {0.0, 0.5, 1.0}) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, h.min());
    EXPECT_LE(value, h.max());
  }
}

TEST(MetricsTest, IncrementAndGet) {
  MetricRegistry m;
  EXPECT_EQ(m.Get("x"), 0u);
  m.Increment("x");
  m.Increment("x", 4);
  EXPECT_EQ(m.Get("x"), 5u);
}

TEST(MetricsTest, MergeAndSnapshot) {
  MetricRegistry a;
  MetricRegistry b;
  a.Increment("x", 1);
  b.Increment("x", 2);
  b.Increment("y", 3);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 3u);
  EXPECT_EQ(a.Get("y"), 3u);
  const auto snapshot = a.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "x");  // Name-ordered.
}

TEST(FlagsTest, ParsesAllForms) {
  FlagParser flags;
  flags.Define("alpha", "1", "");
  flags.Define("beta", "x", "");
  flags.Define("gamma", "false", "");
  const char* argv[] = {"prog", "--alpha=7", "--beta", "hello", "--gamma"};
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("alpha"), 7);
  EXPECT_EQ(flags.GetString("beta"), "hello");
  EXPECT_TRUE(flags.GetBool("gamma"));
  EXPECT_TRUE(flags.IsSet("alpha"));
}

TEST(FlagsTest, DefaultsApplyWhenUnset) {
  FlagParser flags;
  flags.Define("dim", "16", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("dim"), 16);
  EXPECT_FALSE(flags.IsSet("dim"));
}

TEST(FlagsTest, RejectsUnknownAndPositional) {
  FlagParser flags;
  flags.Define("known", "1", "");
  const char* argv1[] = {"prog", "--unknown=2"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv1)).ok());
  FlagParser flags2;
  flags2.Define("known", "1", "");
  const char* argv2[] = {"prog", "stray"};
  EXPECT_FALSE(flags2.Parse(2, const_cast<char**>(argv2)).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  FlagParser flags;
  flags.Define("dim", "16", "embedding dimension");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--dim"), std::string::npos);
  EXPECT_NE(usage.find("embedding dimension"), std::string::npos);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1);
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  // A release build used to divide by zero in ParallelFor's chunk math;
  // the constructor now clamps the thread count.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ConcurrentParallelForWaitsOnlyForOwnWork) {
  // Two callers sharing one pool: each ParallelFor must observe ALL of
  // its own iterations done when it returns, even while the other
  // caller's tasks are still in flight. The old pool-global in_flight_
  // wait let a caller return while its own chunks were still queued
  // behind the other caller's.
  ThreadPool pool(4);
  constexpr size_t kIterations = 2000;
  constexpr int kRounds = 20;
  auto hammer = [&pool]() {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::atomic<int>> touched(kIterations);
      pool.ParallelFor(kIterations, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      });
      for (const auto& t : touched) {
        ASSERT_EQ(t.load(), 1);  // Complete exactly once on return.
      }
    }
  };
  std::thread other(hammer);
  hammer();
  other.join();
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A task that itself calls ParallelFor must not deadlock: the waiting
  // caller helps drain the queue instead of blocking on a pool-global
  // counter that its own wait keeps nonzero.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(8, [&](size_t ib, size_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

}  // namespace
}  // namespace hetkg
