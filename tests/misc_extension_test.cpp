#include <fstream>

#include <gtest/gtest.h>

#include "core/report_io.h"
#include "core/trainer.h"
#include "graph/synthetic.h"
#include "partition/metis_partitioner.h"

namespace hetkg {
namespace {

TEST(ReportCsvTest, RendersHeaderAndRows) {
  core::TrainReport report;
  core::EpochReport e;
  e.epoch = 0;
  e.mean_loss = 0.5;
  e.epoch_time.compute_seconds = 0.1;
  e.epoch_time.comm_seconds = 0.4;
  e.cumulative_seconds = 0.5;
  e.wall_seconds = 0.05;
  e.cache_hit_ratio = 0.25;
  e.remote_bytes = 1024;
  report.epochs.push_back(e);
  e.epoch = 1;
  e.has_valid_metrics = true;
  e.valid_metrics.mrr = 0.33;
  report.epochs.push_back(e);

  const std::string csv = core::TrainReportCsv(report);
  EXPECT_NE(csv.find("epoch,mean_loss"), std::string::npos);
  EXPECT_NE(csv.find("0,0.500000,0.100000,0.400000"), std::string::npos);
  // Row 0 has no valid MRR (trailing comma), row 1 does.
  EXPECT_NE(csv.find("1024,\n"), std::string::npos);
  EXPECT_NE(csv.find("1024,0.330000\n"), std::string::npos);
}

TEST(ReportCsvTest, WritesFile) {
  graph::SyntheticSpec spec;
  spec.num_entities = 200;
  spec.num_relations = 5;
  spec.num_triples = 1500;
  spec.seed = 2;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 32;
  config.negatives_per_positive = 2;
  config.num_machines = 2;
  config.cache_capacity = 16;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  const auto report = engine->Train(2).value();

  const std::string path = ::testing::TempDir() + "/report.csv";
  ASSERT_TRUE(core::WriteTrainReportCsv(report, path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // Header + 2 epochs.

  EXPECT_FALSE(
      core::WriteTrainReportCsv(report, "/nonexistent/dir/x.csv").ok());
}

TEST(MetisOptionsTest, TighterImbalanceGivesBetterBalance) {
  graph::SyntheticSpec spec;
  spec.num_entities = 4000;
  spec.num_relations = 10;
  spec.num_triples = 30000;
  spec.planted_structure = false;
  spec.seed = 6;
  const auto g = graph::GenerateSynthetic(spec).value();

  partition::MetisOptions tight;
  tight.imbalance = 1.02;
  partition::MetisOptions loose;
  loose.imbalance = 1.5;
  const auto tight_stats = partition::ComputePartitionStats(
      g, partition::MetisPartitioner(tight).Partition(g, 4).value());
  const auto loose_stats = partition::ComputePartitionStats(
      g, partition::MetisPartitioner(loose).Partition(g, 4).value());
  // Degree-weighted balance bounds the entity-count balance only
  // loosely, but tighter slack must not be WORSE on cut+balance
  // combined: the loose run trades balance for cut.
  EXPECT_LE(tight_stats.cut_fraction, 1.0);
  EXPECT_LE(loose_stats.cut_fraction, tight_stats.cut_fraction + 0.05);
}

TEST(MetisOptionsTest, MoreRefinePassesNeverHurtCut) {
  graph::SyntheticSpec spec;
  spec.num_entities = 3000;
  spec.num_relations = 8;
  spec.num_triples = 20000;
  spec.planted_structure = false;
  spec.seed = 8;
  const auto g = graph::GenerateSynthetic(spec).value();

  partition::MetisOptions none;
  none.refine_passes = 0;
  partition::MetisOptions many;
  many.refine_passes = 8;
  const auto cut_none = partition::ComputePartitionStats(
      g, partition::MetisPartitioner(none).Partition(g, 4).value());
  const auto cut_many = partition::ComputePartitionStats(
      g, partition::MetisPartitioner(many).Partition(g, 4).value());
  EXPECT_LE(cut_many.cut_triples, cut_none.cut_triples);
}

TEST(MetisOptionsTest, DifferentSeedsBothProduceValidPartitions) {
  graph::SyntheticSpec spec;
  spec.num_entities = 1000;
  spec.num_relations = 5;
  spec.num_triples = 8000;
  spec.planted_structure = false;
  spec.seed = 10;
  const auto g = graph::GenerateSynthetic(spec).value();
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    partition::MetisOptions options;
    options.seed = seed;
    const auto parts =
        partition::MetisPartitioner(options).Partition(g, 3).value();
    const auto stats = partition::ComputePartitionStats(g, parts);
    EXPECT_LT(stats.cut_fraction, 1.0);
    for (uint64_t count : stats.part_entities) {
      EXPECT_GT(count, 0u);
    }
  }
}

}  // namespace
}  // namespace hetkg
