#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

using core::SystemKind;
using core::TrainerConfig;

graph::SyntheticDataset SmallDataset() {
  graph::SyntheticSpec spec;
  spec.name = "tiny";
  spec.num_entities = 500;
  spec.num_relations = 12;
  spec.num_triples = 6000;
  spec.entity_exponent = 0.7;
  spec.relation_exponent = 1.0;
  spec.seed = 7;
  return graph::GenerateDataset(spec).value();
}

TrainerConfig SmallConfig() {
  TrainerConfig config;
  config.dim = 32;
  config.batch_size = 64;
  config.negatives_per_positive = 16;
  config.num_machines = 4;
  config.cache_capacity = 128;
  config.sync.staleness_bound = 8;
  config.sync.dps_window = 16;
  config.seed = 11;
  return config;
}

class SystemTrainingTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(SystemTrainingTest, LossDecreasesAndMrrBeatsRandom) {
  const auto dataset = SmallDataset();
  auto engine = core::MakeEngine(GetParam(), SmallConfig(), dataset.graph,
                                 dataset.split.train)
                    .value();
  auto report = engine->Train(10).value();
  ASSERT_EQ(report.epochs.size(), 10u);

  // Loss goes down substantially over training.
  EXPECT_LT(report.epochs.back().mean_loss,
            report.epochs.front().mean_loss * 0.8);

  // Link prediction beats the random-ranking baseline by a wide margin.
  eval::EvalOptions eval_options;
  eval_options.max_triples = 150;
  auto metrics = eval::EvaluateLinkPrediction(
                     engine->Embeddings(), engine->ScoreFn(), dataset.graph,
                     dataset.split.test, eval_options)
                     .value();
  // Random MRR over ~500 candidates is ~0.013; trained must clear 4x that.
  EXPECT_GT(metrics.mrr, 0.055) << "system " << engine->name();
  EXPECT_GT(metrics.hits10, 0.16);

  // Simulated time is positive and split across compute + comm.
  EXPECT_GT(report.total_time.compute_seconds, 0.0);
  EXPECT_GT(report.total_time.comm_seconds, 0.0);
  EXPECT_GT(report.total_remote_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemTrainingTest,
                         ::testing::Values(SystemKind::kHetKgCps,
                                           SystemKind::kHetKgDps,
                                           SystemKind::kDglKe,
                                           SystemKind::kPbg),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(core::SystemKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(IntegrationTest, CacheReducesRemoteTrafficVsDglKe) {
  const auto dataset = SmallDataset();
  const TrainerConfig config = SmallConfig();

  auto cached = core::MakeEngine(SystemKind::kHetKgCps, config, dataset.graph,
                                 dataset.split.train)
                    .value();
  auto uncached = core::MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                                   dataset.split.train)
                      .value();
  auto cached_report = cached->Train(3).value();
  auto uncached_report = uncached->Train(3).value();

  // The headline claim: the hot-embedding cache cuts remote bytes.
  EXPECT_LT(cached_report.total_remote_bytes,
            uncached_report.total_remote_bytes);
  // And the cache actually hits.
  EXPECT_GT(cached_report.overall_hit_ratio, 0.10);
  EXPECT_EQ(uncached_report.overall_hit_ratio, 0.0);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto dataset = SmallDataset();
  const TrainerConfig config = SmallConfig();
  auto run = [&](SystemKind kind) {
    auto engine =
        core::MakeEngine(kind, config, dataset.graph, dataset.split.train)
            .value();
    return engine->Train(2).value();
  };
  for (SystemKind kind : {SystemKind::kHetKgCps, SystemKind::kHetKgDps,
                          SystemKind::kDglKe, SystemKind::kPbg}) {
    const auto a = run(kind);
    const auto b = run(kind);
    EXPECT_DOUBLE_EQ(a.epochs.back().mean_loss, b.epochs.back().mean_loss);
    EXPECT_EQ(a.total_remote_bytes, b.total_remote_bytes);
    EXPECT_DOUBLE_EQ(a.total_time.comm_seconds, b.total_time.comm_seconds);
  }
}

TEST(IntegrationTest, ValidationCurveIsPopulated) {
  const auto dataset = SmallDataset();
  auto engine = core::MakeEngine(SystemKind::kHetKgDps, SmallConfig(),
                                 dataset.graph, dataset.split.train)
                    .value();
  eval::EvalOptions options;
  options.max_triples = 50;
  engine->EnableValidation(&dataset.graph, dataset.split.valid, options);
  auto report = engine->Train(3).value();
  for (const auto& epoch : report.epochs) {
    EXPECT_TRUE(epoch.has_valid_metrics);
    EXPECT_GT(epoch.valid_metrics.mrr, 0.0);
  }
}

}  // namespace
}  // namespace hetkg
