#include <gtest/gtest.h>

#include "core/pbg_engine.h"
#include "core/ps_engine.h"
#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg::core {
namespace {

graph::SyntheticDataset Dataset(uint64_t seed = 3) {
  graph::SyntheticSpec spec;
  spec.name = "engine-test";
  spec.num_entities = 800;
  spec.num_relations = 20;
  spec.num_triples = 8000;
  spec.seed = seed;
  return graph::GenerateDataset(spec).value();
}

TrainerConfig BaseConfig() {
  TrainerConfig config;
  config.dim = 8;
  config.batch_size = 32;
  config.negatives_per_positive = 4;
  config.num_machines = 4;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 8;
  config.sync.dps_window = 32;
  config.seed = 77;
  return config;
}

TEST(MakeEngineTest, RejectsInvalidConfigs) {
  const auto dataset = Dataset();
  TrainerConfig config = BaseConfig();
  config.num_machines = 0;
  EXPECT_FALSE(MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                          dataset.split.train)
                   .ok());
  config = BaseConfig();
  config.partitioner = "voodoo";
  EXPECT_FALSE(MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                          dataset.split.train)
                   .ok());
  config = BaseConfig();
  EXPECT_FALSE(MakeEngine(SystemKind::kDglKe, config, dataset.graph, {})
                   .ok());
  config = BaseConfig();
  config.pbg_partitions = 2;  // < machines.
  EXPECT_FALSE(MakeEngine(SystemKind::kPbg, config, dataset.graph,
                          dataset.split.train)
                   .ok());
}

TEST(MakeEngineTest, SystemNamesRoundTrip) {
  EXPECT_EQ(*ParseSystemKind("dglke"), SystemKind::kDglKe);
  EXPECT_EQ(*ParseSystemKind("pbg"), SystemKind::kPbg);
  EXPECT_EQ(*ParseSystemKind("HET-KG-C"), SystemKind::kHetKgCps);
  EXPECT_EQ(*ParseSystemKind("dps"), SystemKind::kHetKgDps);
  EXPECT_FALSE(ParseSystemKind("spark").ok());
  EXPECT_EQ(SystemKindName(SystemKind::kPbg), "PBG");
}

TEST(PsEngineTest, DpsRebuildCadenceMatchesWindow) {
  const auto dataset = Dataset();
  TrainerConfig config = BaseConfig();
  config.sync.dps_window = 16;
  auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(2).value();
  // Each worker rebuilds at iteration 0 and every 16 iterations after.
  auto* ps = dynamic_cast<PsTrainingEngine*>(engine.get());
  ASSERT_NE(ps, nullptr);
  const size_t total_iters = 2 * ps->IterationsPerEpoch();
  const uint64_t expected_per_worker = (total_iters + 15) / 16;
  const uint64_t rebuilds = report.metrics.Get(metric::kCacheRebuilds);
  EXPECT_NEAR(static_cast<double>(rebuilds),
              static_cast<double>(expected_per_worker * 4), 4.0);
}

TEST(PsEngineTest, CpsNeverRebuildsAfterConstruction) {
  const auto dataset = Dataset();
  auto engine = MakeEngine(SystemKind::kHetKgCps, BaseConfig(), dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(3).value();
  // Exactly one construction per worker.
  EXPECT_EQ(report.metrics.Get(metric::kCacheRebuilds), 4u);
}

TEST(PsEngineTest, RefreshTrafficScalesInverselyWithStaleness) {
  const auto dataset = Dataset();
  uint64_t refresh_rows_p2 = 0;
  uint64_t refresh_rows_p16 = 0;
  for (size_t staleness : {2u, 16u}) {
    TrainerConfig config = BaseConfig();
    config.sync.staleness_bound = staleness;
    auto engine = MakeEngine(SystemKind::kHetKgCps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    (staleness == 2 ? refresh_rows_p2 : refresh_rows_p16) =
        report.metrics.Get(metric::kCacheRefreshRows);
  }
  // P=2 refreshes ~8x as often as P=16.
  EXPECT_GT(refresh_rows_p2, refresh_rows_p16 * 6);
}

class CacheCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CacheCapacitySweep, HitRatioGrowsWithCapacity) {
  static std::map<size_t, double>* hit_by_capacity =
      new std::map<size_t, double>();
  const auto dataset = Dataset();
  TrainerConfig config = BaseConfig();
  config.cache_capacity = GetParam();
  auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(1).value();
  (*hit_by_capacity)[GetParam()] = report.overall_hit_ratio;
  // Monotone against every smaller capacity measured so far.
  for (const auto& [capacity, hit] : *hit_by_capacity) {
    if (capacity < GetParam()) {
      EXPECT_GE(report.overall_hit_ratio + 1e-9, hit)
          << "capacity " << GetParam() << " vs " << capacity;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(8, 32, 128, 512));

TEST(PsEngineTest, HeterogeneityQuotaControlsCacheMix) {
  // With quota: 25% of the cache is reserved for entities. Without:
  // relations (hotter) crowd entities out and the hit ratio rises.
  const auto dataset = Dataset();
  double hit_quota = 0.0;
  double hit_blind = 0.0;
  for (bool aware : {true, false}) {
    TrainerConfig config = BaseConfig();
    config.heterogeneity_aware = aware;
    auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(1).value();
    (aware ? hit_quota : hit_blind) = report.overall_hit_ratio;
  }
  EXPECT_GE(hit_blind + 1e-9, hit_quota);
}

TEST(PsEngineTest, MoreMachinesSplitTheComputeWork) {
  const auto dataset = Dataset();
  double compute_2 = 0.0;
  double compute_8 = 0.0;
  double total_2 = 0.0;
  double total_8 = 0.0;
  for (size_t machines : {2u, 8u}) {
    TrainerConfig config = BaseConfig();
    config.num_machines = machines;
    auto engine = MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(1).value();
    (machines == 2 ? compute_2 : compute_8) =
        report.total_time.compute_seconds;
    (machines == 2 ? total_2 : total_8) = report.total_time.total_seconds();
  }
  // The critical-path compute shrinks close to linearly; the total time
  // must not regress beyond the communication growth a tiny skewed graph
  // inevitably has (hot relation rows concentrate on one shard).
  EXPECT_LT(compute_8, compute_2 * 0.45);
  EXPECT_LT(total_8, total_2 * 1.6);
}

TEST(PsEngineTest, TransHTrainsThroughWiderRelationRows) {
  const auto dataset = Dataset();
  TrainerConfig config = BaseConfig();
  config.model = embedding::ModelKind::kTransH;
  auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(2).value();
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_EQ(engine->Embeddings().Relation(0).size(), 16u);  // 2 * dim.
}

TEST(PbgEngineTest, TrainsEveryTripleEachEpoch) {
  const auto dataset = Dataset();
  auto engine = MakeEngine(SystemKind::kPbg, BaseConfig(), dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(2).value();
  EXPECT_EQ(report.metrics.Get(metric::kTriplesTrained),
            2 * dataset.split.train.size());
}

TEST(PbgEngineTest, SwapTrafficRecorded) {
  const auto dataset = Dataset();
  auto engine = MakeEngine(SystemKind::kPbg, BaseConfig(), dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(1).value();
  EXPECT_GT(report.metrics.Get(metric::kPartitionSwaps), 0u);
  EXPECT_GT(report.metrics.Get(metric::kPartitionSwapBytes), 0u);
  EXPECT_GT(report.metrics.Get(metric::kDenseRelationBytes), 0u);
}

TEST(PbgEngineTest, SlowerThanPsBaselinesOnRelationHeavyGraphs) {
  // PBG's weakness is treating relations as dense weights; it needs a
  // non-toy relation vocabulary to show (the paper's graphs have 18 to
  // 14,824 relations, and PBG loses on all of them).
  graph::SyntheticSpec spec;
  spec.name = "relation-heavy";
  spec.num_entities = 5000;
  spec.num_relations = 600;
  spec.num_triples = 20000;
  spec.seed = 5;
  const auto dataset = graph::GenerateDataset(spec).value();
  auto pbg = MakeEngine(SystemKind::kPbg, BaseConfig(), dataset.graph,
                        dataset.split.train)
                 .value();
  auto dglke = MakeEngine(SystemKind::kDglKe, BaseConfig(), dataset.graph,
                          dataset.split.train)
                   .value();
  const double pbg_time = pbg->Train(1).value().total_time.total_seconds();
  const double dglke_time =
      dglke->Train(1).value().total_time.total_seconds();
  EXPECT_GT(pbg_time, dglke_time);
}


TEST(PsEngineTest, OnAccessRefreshUsesLessTrafficThanFullTable) {
  const auto dataset = Dataset();
  uint64_t full_rows = 0;
  uint64_t on_access_rows = 0;
  uint64_t full_bytes = 0;
  uint64_t on_access_bytes = 0;
  for (RefreshMode mode : {RefreshMode::kFullTable, RefreshMode::kOnAccess}) {
    TrainerConfig config = BaseConfig();
    config.cache_capacity = 512;  // Oversized: plenty of cold rows.
    config.sync.refresh_mode = mode;
    auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    if (mode == RefreshMode::kFullTable) {
      full_rows = report.metrics.Get(metric::kCacheRefreshRows);
      full_bytes = report.total_remote_bytes;
    } else {
      on_access_rows = report.metrics.Get(metric::kCacheRefreshRows);
      on_access_bytes = report.total_remote_bytes;
    }
  }
  EXPECT_LT(on_access_rows, full_rows / 2);
  EXPECT_LT(on_access_bytes, full_bytes);
}

TEST(PsEngineTest, OnAccessRefreshTrainsToSameQuality) {
  const auto dataset = Dataset();
  double loss_full = 0.0;
  double loss_access = 0.0;
  for (RefreshMode mode : {RefreshMode::kFullTable, RefreshMode::kOnAccess}) {
    TrainerConfig config = BaseConfig();
    config.sync.refresh_mode = mode;
    auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(3).value();
    (mode == RefreshMode::kFullTable ? loss_full : loss_access) =
        report.epochs.back().mean_loss;
  }
  EXPECT_NEAR(loss_full, loss_access, 0.1);
}


TEST(PsEngineTest, WriteBackCutsPushTraffic) {
  const auto dataset = Dataset();
  uint64_t through_pushes = 0;
  uint64_t back_pushes = 0;
  uint64_t through_bytes = 0;
  uint64_t back_bytes = 0;
  double through_loss = 0.0;
  double back_loss = 0.0;
  for (size_t period : {1u, 8u}) {
    TrainerConfig config = BaseConfig();
    config.cache_capacity = 256;
    config.sync.write_back_period = period;
    auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    if (period == 1) {
      through_pushes = report.metrics.Get(metric::kRemotePushRows);
      through_bytes = report.total_remote_bytes;
      through_loss = report.epochs.back().mean_loss;
      EXPECT_EQ(report.metrics.Get(metric::kWriteBackFlushes), 0u);
    } else {
      back_pushes = report.metrics.Get(metric::kRemotePushRows);
      back_bytes = report.total_remote_bytes;
      back_loss = report.epochs.back().mean_loss;
      EXPECT_GT(report.metrics.Get(metric::kWriteBackFlushes), 0u);
    }
  }
  // Accumulated pushes collapse K iterations of a hot row into one.
  EXPECT_LT(back_pushes, through_pushes);
  EXPECT_LT(back_bytes, through_bytes);
  // Accuracy is not materially harmed by the bounded write delay.
  EXPECT_NEAR(back_loss, through_loss, 0.1);
}

TEST(PsEngineTest, WriteBackPeriodValidated) {
  const auto dataset = Dataset();
  TrainerConfig config = BaseConfig();
  config.sync.write_back_period = 0;
  EXPECT_FALSE(MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                          dataset.split.train)
                   .ok());
}

}  // namespace
}  // namespace hetkg::core
