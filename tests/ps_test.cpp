#include "ps/parameter_server.h"

#include <gtest/gtest.h>

namespace hetkg::ps {
namespace {

struct PsFixture {
  sim::ClusterSim cluster{2};
  std::unique_ptr<ParameterServer> server;

  explicit PsFixture(bool normalize = false) {
    PsConfig config;
    config.num_entities = 10;
    config.num_relations = 4;
    config.entity_dim = 4;
    config.relation_dim = 4;
    config.learning_rate = 0.5;
    config.normalize_entities = normalize;
    // Entities 0-4 on machine 0, 5-9 on machine 1.
    std::vector<uint32_t> owner(10);
    for (size_t e = 0; e < 10; ++e) owner[e] = e < 5 ? 0 : 1;
    server = ParameterServer::Create(config, owner, &cluster).value();
    server->InitEmbeddings();
  }
};

TEST(ParameterServerTest, CreateValidates) {
  sim::ClusterSim cluster(2);
  PsConfig config;
  config.num_entities = 4;
  config.num_relations = 2;
  config.entity_dim = 4;
  config.relation_dim = 4;
  EXPECT_FALSE(
      ParameterServer::Create(config, {0, 0, 0}, &cluster).ok());  // Size.
  EXPECT_FALSE(
      ParameterServer::Create(config, {0, 0, 0, 9}, &cluster).ok());  // Range.
  EXPECT_TRUE(ParameterServer::Create(config, {0, 1, 0, 1}, &cluster).ok());
}

TEST(ParameterServerTest, OwnershipMapping) {
  PsFixture f;
  EXPECT_EQ(f.server->OwnerOf(EntityKey(2)), 0u);
  EXPECT_EQ(f.server->OwnerOf(EntityKey(7)), 1u);
  // Relations are sharded round-robin over 2 machines.
  EXPECT_EQ(f.server->OwnerOf(RelationKey(0)), 0u);
  EXPECT_EQ(f.server->OwnerOf(RelationKey(1)), 1u);
  EXPECT_EQ(f.server->OwnerOf(RelationKey(2)), 0u);
}

TEST(ParameterServerTest, PullReturnsCurrentValues) {
  PsFixture f;
  const float value[] = {1.0f, 2.0f, 3.0f, 4.0f};
  f.server->SetValue(EntityKey(3), value);
  std::vector<float> out(4);
  std::vector<EmbKey> keys = {EntityKey(3)};
  std::vector<std::span<float>> spans = {std::span<float>(out)};
  f.server->PullBatch(0, keys, spans);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(ParameterServerTest, LocalPullCostsNoNetwork) {
  PsFixture f;
  std::vector<float> out(4);
  std::vector<EmbKey> keys = {EntityKey(1)};  // Owned by machine 0.
  std::vector<std::span<float>> spans = {std::span<float>(out)};
  f.server->PullBatch(/*worker=*/0, keys, spans);
  EXPECT_EQ(f.cluster.TotalRemoteBytes(), 0u);
  EXPECT_EQ(f.server->metrics().Get(metric::kLocalPullRows), 1u);
  EXPECT_EQ(f.server->metrics().Get(metric::kRemotePullRows), 0u);
}

TEST(ParameterServerTest, RemotePullCostsRequestAndResponse) {
  PsFixture f;
  std::vector<float> out(4);
  std::vector<EmbKey> keys = {EntityKey(7)};  // Owned by machine 1.
  std::vector<std::span<float>> spans = {std::span<float>(out)};
  f.server->PullBatch(/*worker=*/0, keys, spans);
  EXPECT_GT(f.cluster.TotalRemoteBytes(), 0u);
  EXPECT_EQ(f.cluster.TotalRemoteMessages(), 2u);  // Request + response.
  EXPECT_EQ(f.server->metrics().Get(metric::kRemotePullRows), 1u);
}

TEST(ParameterServerTest, BatchingGroupsMessagesByShard) {
  PsFixture f;
  // Three remote rows in one batch: still exactly one request/response
  // pair to machine 1.
  std::vector<float> out(12);
  std::vector<EmbKey> keys = {EntityKey(6), EntityKey(7), EntityKey(8)};
  std::vector<std::span<float>> spans = {
      std::span<float>(out.data(), 4), std::span<float>(out.data() + 4, 4),
      std::span<float>(out.data() + 8, 4)};
  f.server->PullBatch(0, keys, spans);
  EXPECT_EQ(f.cluster.TotalRemoteMessages(), 2u);
}

TEST(ParameterServerTest, PushAppliesAdaGradOnServer) {
  PsFixture f;
  const float zero[] = {0.0f, 0.0f, 0.0f, 0.0f};
  f.server->SetValue(EntityKey(2), zero);
  const float grad[] = {2.0f, -2.0f, 0.0f, 0.0f};
  std::vector<EmbKey> keys = {EntityKey(2)};
  std::vector<std::span<const float>> grads = {std::span<const float>(grad)};
  f.server->PushGradBatch(0, keys, grads);
  const auto value = f.server->Value(EntityKey(2));
  // First AdaGrad step: -lr * sign(g).
  EXPECT_NEAR(value[0], -0.5f, 1e-4);
  EXPECT_NEAR(value[1], 0.5f, 1e-4);
  EXPECT_NEAR(value[2], 0.0f, 1e-6);
}

TEST(ParameterServerTest, NormalizesEntitiesWhenConfigured) {
  PsFixture f(/*normalize=*/true);
  const float grad[] = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<EmbKey> keys = {EntityKey(4)};
  std::vector<std::span<const float>> grads = {std::span<const float>(grad)};
  f.server->PushGradBatch(1, keys, grads);
  const auto value = f.server->Value(EntityKey(4));
  double norm_sq = 0.0;
  for (float v : value) norm_sq += static_cast<double>(v) * v;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);
}

TEST(ParameterServerTest, RelationRowsCanBeWider) {
  sim::ClusterSim cluster(1);
  PsConfig config;
  config.num_entities = 2;
  config.num_relations = 2;
  config.entity_dim = 4;
  config.relation_dim = 8;  // TransH layout.
  std::vector<uint32_t> owner = {0, 0};
  auto server = ParameterServer::Create(config, owner, &cluster).value();
  server->InitEmbeddings();
  EXPECT_EQ(server->RowDim(EntityKey(0)), 4u);
  EXPECT_EQ(server->RowDim(RelationKey(0)), 8u);
  EXPECT_EQ(server->RowBytes(RelationKey(1)), 32u);
  EXPECT_EQ(server->Value(RelationKey(0)).size(), 8u);
}

TEST(ParameterServerTest, InitializationIsDeterministic) {
  PsFixture a;
  PsFixture b;
  for (EntityId e = 0; e < 10; ++e) {
    const auto va = a.server->Value(EntityKey(e));
    const auto vb = b.server->Value(EntityKey(e));
    for (size_t i = 0; i < va.size(); ++i) {
      EXPECT_EQ(va[i], vb[i]);
    }
  }
}

}  // namespace
}  // namespace hetkg::ps
