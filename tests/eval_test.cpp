#include "eval/link_prediction.h"

#include <gtest/gtest.h>

#include "embedding/embedding_table.h"

namespace hetkg::eval {
namespace {

/// Planted lookup where entity i sits at position i on a line and the
/// single relation translates by +1: triple (i, 0, i+1) is perfectly
/// predictable with TransE.
class LineLookup : public EmbeddingLookup {
 public:
  explicit LineLookup(size_t n) : n_(n) {
    entities_.resize(n * 2);
    for (size_t i = 0; i < n; ++i) {
      entities_[2 * i] = static_cast<float>(i);
      entities_[2 * i + 1] = 0.0f;
    }
    relation_ = {1.0f, 0.0f};
  }
  std::span<const float> Entity(EntityId id) const override {
    return {entities_.data() + 2 * id, 2};
  }
  std::span<const float> Relation(RelationId) const override {
    return relation_;
  }
  size_t num_entities() const override { return n_; }
  size_t num_relations() const override { return 1; }

 private:
  size_t n_;
  std::vector<float> entities_;
  std::array<float, 2> relation_;
};

graph::KnowledgeGraph LineGraph(size_t n) {
  std::vector<Triple> triples;
  for (EntityId i = 0; i + 1 < n; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
  }
  return graph::KnowledgeGraph::Create(n, 1, triples, "line").value();
}

TEST(LinkPredictionTest, PerfectEmbeddingsGetPerfectRanks) {
  const size_t n = 20;
  LineLookup lookup(n);
  const auto graph = LineGraph(n);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test = {{5, 0, 6}, {10, 0, 11}};
  EvalOptions options;
  options.filtered = false;
  const auto metrics =
      EvaluateLinkPrediction(lookup, *fn, graph, test, options).value();
  EXPECT_NEAR(metrics.mrr, 1.0, 1e-9);
  EXPECT_NEAR(metrics.hits1, 1.0, 1e-9);
  EXPECT_NEAR(metrics.mr, 1.0, 1e-9);
  EXPECT_EQ(metrics.rankings, 4u);  // Head + tail per triple.
}

TEST(LinkPredictionTest, FilteredBeatsRawWhenPositivesCollide) {
  // Make entity 6 reachable from both 5 and 7 via extra true triples so
  // raw ranking is polluted by known positives.
  const size_t n = 20;
  LineLookup lookup(n);
  std::vector<Triple> triples;
  for (EntityId i = 0; i + 1 < n; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
  }
  // A "shortcut" true triple whose tail is very close to 5 + 1:
  triples.push_back({5, 0, 7});
  const auto graph =
      graph::KnowledgeGraph::Create(n, 1, triples, "line+").value();
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();

  std::vector<Triple> test = {{5, 0, 6}};
  EvalOptions raw;
  raw.filtered = false;
  EvalOptions filtered;
  filtered.filtered = true;
  const auto raw_m =
      EvaluateLinkPrediction(lookup, *fn, graph, test, raw).value();
  const auto filt_m =
      EvaluateLinkPrediction(lookup, *fn, graph, test, filtered).value();
  EXPECT_GE(filt_m.mrr, raw_m.mrr);
  EXPECT_NEAR(filt_m.mrr, 1.0, 1e-9);
}

TEST(LinkPredictionTest, CandidateSamplingBoundsWork) {
  const size_t n = 100;
  LineLookup lookup(n);
  const auto graph = LineGraph(n);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test = {{50, 0, 51}};
  EvalOptions options;
  options.num_candidates = 10;
  options.filtered = false;
  const auto metrics =
      EvaluateLinkPrediction(lookup, *fn, graph, test, options).value();
  // The true completion still wins against any candidate subset.
  EXPECT_NEAR(metrics.mrr, 1.0, 1e-9);
}

TEST(LinkPredictionTest, MaxTriplesCapsWork) {
  const size_t n = 50;
  LineLookup lookup(n);
  const auto graph = LineGraph(n);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test(graph.triples().begin(), graph.triples().end());
  EvalOptions options;
  options.max_triples = 5;
  const auto metrics =
      EvaluateLinkPrediction(lookup, *fn, graph, test, options).value();
  EXPECT_EQ(metrics.rankings, 10u);
}

TEST(LinkPredictionTest, MultiThreadedMatchesSingleThreaded) {
  const size_t n = 60;
  LineLookup lookup(n);
  const auto graph = LineGraph(n);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test(graph.triples().begin(), graph.triples().end());
  EvalOptions single;
  single.num_threads = 1;
  EvalOptions multi;
  multi.num_threads = 4;
  const auto a =
      EvaluateLinkPrediction(lookup, *fn, graph, test, single).value();
  const auto b =
      EvaluateLinkPrediction(lookup, *fn, graph, test, multi).value();
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
  EXPECT_DOUBLE_EQ(a.mr, b.mr);
  EXPECT_EQ(a.rankings, b.rankings);
}

TEST(LinkPredictionTest, EmptyTestSetIsError) {
  LineLookup lookup(5);
  const auto graph = LineGraph(5);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  EXPECT_FALSE(
      EvaluateLinkPrediction(lookup, *fn, graph, {}, EvalOptions{}).ok());
}

TEST(LinkPredictionTest, BadEmbeddingsScoreNearRandom) {
  // Hash-pattern embeddings carry no relational signal, so ranks land
  // mid-pack rather than near 1.
  const size_t n = 40;
  class JunkLookup : public EmbeddingLookup {
   public:
    JunkLookup() : table_(40, 2), relation_{0.37f, -0.21f} {
      for (EntityId id = 0; id < 40; ++id) {
        const float vals[2] = {
            static_cast<float>((id * 2654435761u) % 97) / 97.0f,
            static_cast<float>((id * 40503u) % 89) / 89.0f};
        table_.SetRow(id, vals);
      }
    }
    std::span<const float> Entity(EntityId id) const override {
      return table_.Row(id);
    }
    std::span<const float> Relation(RelationId) const override {
      return relation_;
    }
    size_t num_entities() const override { return 40; }
    size_t num_relations() const override { return 1; }

   private:
    embedding::EmbeddingTable table_;
    std::array<float, 2> relation_;
  };
  JunkLookup lookup;
  const auto graph = LineGraph(n);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test(graph.triples().begin(), graph.triples().end());
  EvalOptions options;
  options.filtered = false;
  const auto metrics =
      EvaluateLinkPrediction(lookup, *fn, graph, test, options).value();
  // Junk ranks in the middle of the pack, nowhere near 1.
  EXPECT_GT(metrics.mr, 5.0);
  EXPECT_LT(metrics.hits1, 0.3);
}


TEST(HotColdEvalTest, SplitsTestSetByRelationFrequency) {
  const size_t n = 30;
  LineLookup lookup(n);
  // Two relations: relation 0 occurs 25 times, relation 1 occurs 4.
  std::vector<Triple> triples;
  for (EntityId i = 0; i + 1 < 26; ++i) {
    triples.push_back({i, 0, static_cast<EntityId>(i + 1)});
  }
  for (EntityId i = 0; i < 4; ++i) {
    triples.push_back({i, 1, static_cast<EntityId>(i + 2)});
  }
  const auto graph =
      graph::KnowledgeGraph::Create(n, 2, triples, "two-rel").value();
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  std::vector<Triple> test = {{5, 0, 6}, {10, 0, 11}, {1, 1, 3}};
  EvalOptions options;
  options.filtered = false;
  const auto split = EvaluateByRelationHotness(
                         lookup, *fn, graph, test,
                         graph.RelationFrequencies(), options)
                         .value();
  EXPECT_EQ(split.hot.rankings, 4u);   // Two relation-0 triples.
  EXPECT_EQ(split.cold.rankings, 2u);  // One relation-1 triple.
  // Relation 0's +1 structure is perfectly modeled by the line lookup.
  EXPECT_NEAR(split.hot.mrr, 1.0, 1e-9);
}

TEST(HotColdEvalTest, EmptyTestSetIsError) {
  LineLookup lookup(5);
  const auto graph = LineGraph(5);
  auto fn = embedding::MakeScoreFunction(embedding::ModelKind::kTransEL2, 2)
                .value();
  EXPECT_FALSE(EvaluateByRelationHotness(lookup, *fn, graph, {},
                                         graph.RelationFrequencies(),
                                         EvalOptions{})
                   .ok());
}

}  // namespace
}  // namespace hetkg::eval
