#include "core/hot_embedding_table.h"

#include <gtest/gtest.h>

#include "core/baseline_caches.h"
#include "core/hot_filter.h"
#include "core/sync_controller.h"

namespace hetkg::core {
namespace {

TEST(HotEmbeddingTableTest, AssignAdmitsUpToQuota) {
  HotEmbeddingTable table(2, 3, 4, 4, 0.1);
  EXPECT_EQ(table.capacity(), 5u);
  const std::vector<EmbKey> keys = {EntityKey(1), EntityKey(2), EntityKey(3),
                                    RelationKey(0), RelationKey(1)};
  const auto admitted = table.Assign(keys);
  // Entity quota is 2, so EntityKey(3) is dropped.
  EXPECT_EQ(admitted.size(), 4u);
  EXPECT_TRUE(table.Contains(EntityKey(1)));
  EXPECT_TRUE(table.Contains(EntityKey(2)));
  EXPECT_FALSE(table.Contains(EntityKey(3)));
  EXPECT_TRUE(table.Contains(RelationKey(0)));
  EXPECT_EQ(table.size(), 4u);
}

TEST(HotEmbeddingTableTest, ReassignKeepsRetainedValues) {
  HotEmbeddingTable table(2, 2, 2, 2, 0.1);
  table.Assign(std::vector<EmbKey>{EntityKey(1), EntityKey(2)});
  const float v1[] = {1.0f, 2.0f};
  table.Refresh(EntityKey(1), v1);

  // New set keeps key 1, replaces key 2 with key 5.
  const auto admitted =
      table.Assign(std::vector<EmbKey>{EntityKey(1), EntityKey(5)});
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], EntityKey(5));
  EXPECT_FALSE(table.Contains(EntityKey(2)));
  // Retained key kept its locally updated value.
  EXPECT_FLOAT_EQ(table.Row(EntityKey(1))[0], 1.0f);
  EXPECT_FLOAT_EQ(table.Row(EntityKey(1))[1], 2.0f);
}

TEST(HotEmbeddingTableTest, LocalGradientUsesAdaGrad) {
  HotEmbeddingTable table(1, 1, 2, 2, 0.5);
  table.Assign(std::vector<EmbKey>{EntityKey(0)});
  const float grad[] = {2.0f, -2.0f};
  table.ApplyLocalGradient(EntityKey(0), grad, /*normalize=*/false);
  // First AdaGrad step = lr * sign(g).
  EXPECT_NEAR(table.Row(EntityKey(0))[0], -0.5f, 1e-4);
  EXPECT_NEAR(table.Row(EntityKey(0))[1], 0.5f, 1e-4);
}

TEST(HotEmbeddingTableTest, SlotReuseResetsOptimizerState) {
  HotEmbeddingTable table(1, 0, 1, 1, 0.5);
  table.Assign(std::vector<EmbKey>{EntityKey(0)});
  const float grad[] = {1.0f};
  for (int i = 0; i < 10; ++i) {
    table.ApplyLocalGradient(EntityKey(0), grad, false);
  }
  // Replace key 0 with key 9: the fresh key must take a full first step
  // (accumulator reset), not a tiny decayed one.
  table.Assign(std::vector<EmbKey>{EntityKey(9)});
  const float zero[] = {0.0f};
  table.Refresh(EntityKey(9), zero);
  table.ApplyLocalGradient(EntityKey(9), grad, false);
  EXPECT_NEAR(table.Row(EntityKey(9))[0], -0.5f, 1e-4);
}

TEST(HotEmbeddingTableTest, NormalizeEntitiesOnUpdate) {
  HotEmbeddingTable table(1, 0, 4, 4, 0.1);
  table.Assign(std::vector<EmbKey>{EntityKey(3)});
  const float init[] = {1.0f, 0.0f, 0.0f, 0.0f};
  table.Refresh(EntityKey(3), init);
  const float grad[] = {0.0f, -1.0f, 0.0f, 0.0f};
  table.ApplyLocalGradient(EntityKey(3), grad, /*normalize=*/true);
  const auto row = table.Row(EntityKey(3));
  double norm_sq = 0.0;
  for (float v : row) norm_sq += static_cast<double>(v) * v;
  EXPECT_NEAR(norm_sq, 1.0, 1e-5);
}

TEST(ComputeQuotaTest, SplitsByEntityRatio) {
  const auto quota = ComputeQuota({100, 0.25, true}, 1000, 1000);
  EXPECT_EQ(quota.entity_slots, 25u);
  EXPECT_EQ(quota.relation_slots, 75u);
}

TEST(ComputeQuotaTest, SurplusFlowsToOtherKind) {
  // Only 10 relations exist: the unused 65 relation slots go to
  // entities.
  const auto quota = ComputeQuota({100, 0.25, true}, 1000, 10);
  EXPECT_EQ(quota.entity_slots, 90u);
  EXPECT_EQ(quota.relation_slots, 10u);
}

TEST(ComputeQuotaTest, HeterogeneityBlindUsesFullCapacity) {
  const auto quota = ComputeQuota({100, 0.25, false}, 1000, 1000);
  EXPECT_EQ(quota.entity_slots, 100u);
  EXPECT_EQ(quota.relation_slots, 100u);
}

FrequencyMap MakeFreq(
    std::initializer_list<std::pair<EmbKey, uint32_t>> items) {
  FrequencyMap freq;
  for (const auto& [k, v] : items) freq[k] = v;
  return freq;
}

TEST(FilterHotKeysTest, TakesTopKPerKind) {
  const auto freq = MakeFreq({{EntityKey(1), 10},
                              {EntityKey(2), 30},
                              {EntityKey(3), 20},
                              {RelationKey(1), 100},
                              {RelationKey(2), 50}});
  const FilterOptions options{3, 1.0 / 3.0, true};
  const FilterQuota quota{1, 2};
  const auto hot = FilterHotKeys(freq, options, quota);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0], EntityKey(2));     // Top entity.
  EXPECT_EQ(hot[1], RelationKey(1));   // Top relations.
  EXPECT_EQ(hot[2], RelationKey(2));
}

TEST(FilterHotKeysTest, HeterogeneityBlindTakesGlobalTopK) {
  const auto freq = MakeFreq({{EntityKey(1), 10},
                              {EntityKey(2), 30},
                              {RelationKey(1), 100},
                              {RelationKey(2), 50}});
  const FilterOptions options{2, 0.25, false};
  const FilterQuota quota = ComputeQuota(options, 100, 100);
  const auto hot = FilterHotKeys(freq, options, quota);
  ASSERT_EQ(hot.size(), 2u);
  // Relations dominate the global ranking — the caching preference the
  // paper warns about.
  EXPECT_EQ(hot[0], RelationKey(1));
  EXPECT_EQ(hot[1], RelationKey(2));
}

TEST(FilterHotKeysTest, DeterministicTieBreaking) {
  const auto freq = MakeFreq(
      {{EntityKey(5), 7}, {EntityKey(3), 7}, {EntityKey(9), 7}});
  const FilterOptions options{2, 1.0, true};
  const FilterQuota quota{2, 0};
  const auto hot = FilterHotKeys(freq, options, quota);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0], EntityKey(3));
  EXPECT_EQ(hot[1], EntityKey(5));
}

TEST(FilterHotKeysTest, PredictedHitRatio) {
  const auto freq = MakeFreq({{EntityKey(1), 60}, {EntityKey(2), 40}});
  const std::vector<EmbKey> hot = {EntityKey(1)};
  EXPECT_NEAR(PredictedHitRatio(freq, hot, 100), 0.6, 1e-9);
  EXPECT_EQ(PredictedHitRatio(freq, hot, 0), 0.0);
}

TEST(SyncControllerTest, RefreshEveryPIterations) {
  const auto sync =
      SyncController::Create({CacheStrategy::kCps, 4, 16}).value();
  EXPECT_FALSE(sync.ShouldRefresh(0));
  EXPECT_FALSE(sync.ShouldRefresh(1));
  EXPECT_TRUE(sync.ShouldRefresh(4));
  EXPECT_FALSE(sync.ShouldRefresh(5));
  EXPECT_TRUE(sync.ShouldRefresh(8));
  EXPECT_EQ(sync.MaxStaleness(), 4u);
}

TEST(SyncControllerTest, RebuildOnlyForDps) {
  const auto cps =
      SyncController::Create({CacheStrategy::kCps, 4, 16}).value();
  EXPECT_FALSE(cps.ShouldRebuild(16));
  const auto dps =
      SyncController::Create({CacheStrategy::kDps, 4, 16}).value();
  EXPECT_FALSE(dps.ShouldRebuild(0));
  EXPECT_FALSE(dps.ShouldRebuild(8));
  EXPECT_TRUE(dps.ShouldRebuild(16));
  EXPECT_TRUE(dps.ShouldRebuild(32));
}

TEST(SyncControllerTest, NoCacheNeverSyncs) {
  const auto none =
      SyncController::Create({CacheStrategy::kNone, 8, 16}).value();
  EXPECT_FALSE(none.ShouldRefresh(8));
  EXPECT_FALSE(none.ShouldRebuild(16));
  EXPECT_EQ(none.MaxStaleness(), 0u);
}

TEST(SyncControllerTest, RejectsZeroThresholds) {
  EXPECT_FALSE(SyncController::Create({CacheStrategy::kCps, 0, 16}).ok());
  EXPECT_FALSE(SyncController::Create({CacheStrategy::kDps, 4, 0}).ok());
  EXPECT_TRUE(SyncController::Create({CacheStrategy::kNone, 0, 0}).ok());
}

TEST(SyncControllerTest, WriteBackPeriodOnlyConstrainedWhenCacheActive) {
  // kNone runs no cache, so its don't-care zeros must be accepted —
  // a DGL-KE config with write_back_period = 0 used to be rejected.
  SyncConfig none;
  none.strategy = CacheStrategy::kNone;
  none.staleness_bound = 0;
  none.dps_window = 64;
  none.write_back_period = 0;
  EXPECT_TRUE(SyncController::Create(none).ok());

  SyncConfig cps = none;
  cps.strategy = CacheStrategy::kCps;
  cps.staleness_bound = 8;
  EXPECT_FALSE(SyncController::Create(cps).ok());  // wb = 0 still invalid.
  cps.write_back_period = 1;
  EXPECT_TRUE(SyncController::Create(cps).ok());

  SyncConfig dps = cps;
  dps.strategy = CacheStrategy::kDps;
  dps.write_back_period = 0;
  EXPECT_FALSE(SyncController::Create(dps).ok());
}

TEST(FifoCacheTest, EvictsOldestFirst) {
  FifoCache cache(2);
  EXPECT_FALSE(cache.Access(EntityKey(1)));
  EXPECT_FALSE(cache.Access(EntityKey(2)));
  EXPECT_TRUE(cache.Access(EntityKey(1)));   // Hit; FIFO order unchanged.
  EXPECT_FALSE(cache.Access(EntityKey(3)));  // Evicts 1 (oldest).
  EXPECT_FALSE(cache.Access(EntityKey(1)));
  EXPECT_NEAR(cache.HitRatio(), 1.0 / 5.0, 1e-9);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Access(EntityKey(1));
  cache.Access(EntityKey(2));
  EXPECT_TRUE(cache.Access(EntityKey(1)));   // 1 becomes most recent.
  EXPECT_FALSE(cache.Access(EntityKey(3)));  // Evicts 2.
  EXPECT_TRUE(cache.Access(EntityKey(1)));
  EXPECT_FALSE(cache.Access(EntityKey(2)));
}

TEST(LfuCacheTest, KeepsFrequentKeys) {
  LfuCache cache(2);
  for (int i = 0; i < 5; ++i) cache.Access(EntityKey(1));
  cache.Access(EntityKey(2));
  // Key 3 evicts key 2 (frequency 1 < 5), never key 1.
  cache.Access(EntityKey(3));
  EXPECT_TRUE(cache.Access(EntityKey(1)));
  EXPECT_FALSE(cache.Access(EntityKey(2)));
}

TEST(LfuCacheTest, HistoryCountsSurviveEviction) {
  LfuCache cache(1);
  cache.Access(EntityKey(1));
  cache.Access(EntityKey(1));
  cache.Access(EntityKey(2));  // Evicts 1, but 1's count (2) persists.
  cache.Access(EntityKey(1));  // Re-admitted with frequency 3.
  cache.Access(EntityKey(2));  // freq(2)=2 < freq(1)=3 after this access?
  // Behaviour check: cache holds exactly one key at any time.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ImportanceCacheTest, StaticSetNeverChanges) {
  ImportanceCache cache({EntityKey(1), RelationKey(0)});
  EXPECT_TRUE(cache.Access(EntityKey(1)));
  EXPECT_TRUE(cache.Access(RelationKey(0)));
  EXPECT_FALSE(cache.Access(EntityKey(2)));
  EXPECT_FALSE(cache.Access(EntityKey(2)));  // Still a miss: no admission.
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TopDegreeKeysTest, RanksAcrossKinds) {
  const std::vector<uint32_t> degrees = {5, 50, 10};
  const std::vector<uint32_t> rel_freqs = {100, 1};
  const auto keys = TopDegreeKeys(degrees, rel_freqs, 3);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], RelationKey(0));
  EXPECT_EQ(keys[1], EntityKey(1));
  EXPECT_EQ(keys[2], EntityKey(2));
}

}  // namespace
}  // namespace hetkg::core
