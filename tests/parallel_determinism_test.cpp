// Determinism of the intra-batch parallel path: training and evaluation
// decompose their hot loops into chunks whose count depends only on the
// work size, and merge per-chunk partials in fixed order, so results
// must be BIT-identical at any --threads value.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/parallel_batch.h"
#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

using core::SystemKind;
using core::TrainerConfig;

TEST(ParallelBatchTest, ChunkCountDependsOnlyOnPairCount) {
  EXPECT_EQ(core::BatchChunkCount(0), 0u);
  EXPECT_EQ(core::BatchChunkCount(1), 1u);
  EXPECT_EQ(core::BatchChunkCount(32), 1u);
  EXPECT_EQ(core::BatchChunkCount(33), 2u);
  EXPECT_EQ(core::BatchChunkCount(256), 8u);
  // Capped: paper-scale batches (512 x 128 pairs) stay bounded.
  EXPECT_EQ(core::BatchChunkCount(512 * 128), 64u);
}

TEST(ParallelBatchTest, ScorerBitIdenticalWithAndWithoutPool) {
  const size_t dim = 16;
  auto score_fn =
      embedding::MakeScoreFunction(embedding::ModelKind::kTransEL1, dim)
          .value();
  auto loss_fn = embedding::MakeLossFunction("margin", 1.0, 4).value();

  // Synthetic resolved batch: 24 keys (16 entities + 8 relations, all
  // the same width for simplicity of this test), 40 positives x 4
  // negatives.
  const size_t num_keys = 24;
  const size_t rel_base = 16;
  Rng rng(99);
  std::vector<float> table(num_keys * dim);
  for (float& v : table) {
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  }
  std::vector<std::span<float>> rows;
  std::vector<size_t> offsets = {0};
  for (size_t k = 0; k < num_keys; ++k) {
    rows.emplace_back(table.data() + k * dim, dim);
    offsets.push_back(offsets.back() + dim);
  }

  std::vector<core::ResolvedTriple> positives;
  std::vector<core::ResolvedPair> pairs;
  for (size_t p = 0; p < 40; ++p) {
    core::ResolvedTriple pos;
    pos.head = static_cast<uint32_t>(rng.NextBounded(rel_base));
    pos.relation = static_cast<uint32_t>(
        rel_base + rng.NextBounded(num_keys - rel_base));
    pos.tail = static_cast<uint32_t>(rng.NextBounded(rel_base));
    positives.push_back(pos);
    for (size_t n = 0; n < 4; ++n) {
      core::ResolvedPair pair;
      pair.positive_index = static_cast<uint32_t>(p);
      pair.negative = pos;
      (n % 2 == 0 ? pair.negative.head : pair.negative.tail) =
          static_cast<uint32_t>(rng.NextBounded(rel_base));
      pairs.push_back(pair);
    }
  }

  auto run = [&](ThreadPool* pool) {
    core::ParallelBatchScorer scorer;
    std::vector<float> grads(offsets.back(), 0.0f);
    std::vector<double> pos_scores;
    const core::BatchStats stats =
        scorer.Run(*score_fn, *loss_fn, positives, pairs, rows, offsets,
                   grads, &pos_scores, pool);
    return std::make_tuple(stats, grads, pos_scores);
  };

  const auto [serial_stats, serial_grads, serial_scores] = run(nullptr);
  EXPECT_EQ(serial_stats.pairs, pairs.size());
  EXPECT_GT(serial_stats.backward_calls, 0u);

  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    const auto [stats, grads, scores] = run(&pool);
    EXPECT_EQ(stats.loss_sum, serial_stats.loss_sum) << threads;
    EXPECT_EQ(stats.pairs, serial_stats.pairs);
    EXPECT_EQ(stats.backward_calls, serial_stats.backward_calls);
    ASSERT_EQ(grads.size(), serial_grads.size());
    for (size_t j = 0; j < grads.size(); ++j) {
      ASSERT_EQ(grads[j], serial_grads[j])
          << "grad float " << j << " diverged at " << threads << " threads";
    }
    ASSERT_EQ(scores, serial_scores);
  }
}

graph::SyntheticDataset TinyDataset() {
  graph::SyntheticSpec spec;
  spec.name = "det";
  spec.num_entities = 300;
  spec.num_relations = 10;
  spec.num_triples = 3000;
  spec.seed = 21;
  return graph::GenerateDataset(spec).value();
}

struct RunResult {
  std::vector<float> embeddings;
  std::vector<double> losses;
  std::vector<std::pair<std::string, uint64_t>> metrics;
  std::vector<double> valid_mrrs;
};

RunResult TrainOnce(SystemKind system, const graph::SyntheticDataset& dataset,
                    size_t num_threads,
                    const sim::FaultConfig& fault = {},
                    size_t num_epochs = 2) {
  TrainerConfig config;
  config.dim = 16;
  config.batch_size = 32;
  config.negatives_per_positive = 8;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.pbg_partitions = 4;
  config.seed = 5;
  config.num_threads = num_threads;
  config.fault = fault;
  auto engine =
      core::MakeEngine(system, config, dataset.graph, dataset.split.train)
          .value();
  eval::EvalOptions valid_options;
  valid_options.max_triples = 40;
  valid_options.num_candidates = 100;
  engine->EnableValidation(&dataset.graph, dataset.split.valid,
                           valid_options);
  auto report = engine->Train(num_epochs).value();

  RunResult result;
  const eval::EmbeddingLookup& lookup = engine->Embeddings();
  for (size_t e = 0; e < lookup.num_entities(); ++e) {
    const auto row = lookup.Entity(static_cast<EntityId>(e));
    result.embeddings.insert(result.embeddings.end(), row.begin(), row.end());
  }
  for (size_t r = 0; r < lookup.num_relations(); ++r) {
    const auto row = lookup.Relation(static_cast<RelationId>(r));
    result.embeddings.insert(result.embeddings.end(), row.begin(), row.end());
  }
  for (const auto& epoch : report.epochs) {
    result.losses.push_back(epoch.mean_loss);
    if (epoch.has_valid_metrics) {
      result.valid_mrrs.push_back(epoch.valid_metrics.mrr);
    }
  }
  result.metrics = report.metrics.Snapshot();
  return result;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(ParallelDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const auto dataset = TinyDataset();
  const RunResult serial = TrainOnce(GetParam(), dataset, 1);
  ASSERT_FALSE(serial.embeddings.empty());
  ASSERT_FALSE(serial.valid_mrrs.empty());

  for (size_t threads : {2, 4, 8}) {
    const RunResult parallel = TrainOnce(GetParam(), dataset, threads);
    // Exact double equality on the loss/validation traces: any
    // scheduling-dependent accumulation order would break this.
    EXPECT_EQ(parallel.losses, serial.losses) << threads << " threads";
    EXPECT_EQ(parallel.valid_mrrs, serial.valid_mrrs);
    EXPECT_EQ(parallel.metrics, serial.metrics);
    ASSERT_EQ(parallel.embeddings.size(), serial.embeddings.size());
    for (size_t j = 0; j < serial.embeddings.size(); ++j) {
      ASSERT_EQ(parallel.embeddings[j], serial.embeddings[j])
          << "embedding float " << j << " diverged at " << threads
          << " threads";
    }
  }
}

// ---------------------------------------------------------------------
// Checkpoint files written by the staged (pipelined) sync engine must
// be byte-identical at any --threads value: the pipeline stages
// rendezvous once per iteration in deterministic mode, so every
// snapshot captures exactly the same training state regardless of how
// the intra-batch work was scheduled.
// ---------------------------------------------------------------------

std::map<std::string, std::string> CheckpointDirBytes(
    const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    files[entry.path().filename().string()] =
        std::string(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  return files;
}

TEST(ParallelDeterminismCheckpointTest, FilesBitIdenticalAcrossThreads) {
  const auto dataset = TinyDataset();

  const auto run = [&dataset](size_t threads) {
    const std::string dir = ::testing::TempDir() + "/det-ck-" +
                            std::to_string(threads) + "-" +
                            std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    TrainerConfig config;
    config.dim = 16;
    config.batch_size = 32;
    config.negatives_per_positive = 8;
    config.num_machines = 2;
    config.cache_capacity = 64;
    config.sync.staleness_bound = 4;
    config.sync.dps_window = 8;
    config.seed = 5;
    config.num_threads = threads;
    config.checkpoint_dir = dir;
    config.checkpoint_every = 25;
    config.keep_checkpoints = 2;
    auto engine = core::MakeEngine(SystemKind::kHetKgDps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    EXPECT_TRUE(engine->Train(2).ok());
    return CheckpointDirBytes(dir);
  };

  const auto serial = run(1);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (const auto& [name, bytes] : serial) {
      const auto it = parallel.find(name);
      ASSERT_NE(it, parallel.end()) << name;
      EXPECT_EQ(it->second, bytes)
          << "checkpoint file " << name << " diverged";
    }
  }
}

// ---------------------------------------------------------------------
// Fault-tolerant training: a lossy worker <-> PS network must not break
// either guarantee — training still converges (the degradation paths
// serve stale-but-bounded values instead of stopping), and the run
// stays bit-identical across thread counts (fault decisions live on the
// transport's logical clock, never on scheduling order).
// ---------------------------------------------------------------------

sim::FaultConfig LossyNetwork() {
  sim::FaultConfig fault;
  fault.enabled = true;
  fault.seed = 97;
  fault.drop_prob = 0.02;
  fault.duplicate_prob = 0.01;
  fault.delay_prob = 0.02;
  return fault;
}

class FaultTolerantTrainingTest
    : public ::testing::TestWithParam<SystemKind> {};

TEST_P(FaultTolerantTrainingTest, ConvergesAndStaysDeterministic) {
  const auto dataset = TinyDataset();
  const sim::FaultConfig fault = LossyNetwork();
  const size_t kEpochs = 4;
  const RunResult serial = TrainOnce(GetParam(), dataset, 1, fault, kEpochs);

  // Convergence under faults: the loss still goes down over training.
  ASSERT_EQ(serial.losses.size(), kEpochs);
  EXPECT_LT(serial.losses.back(), serial.losses.front());

  // The lossy network actually interfered (this is not a vacuous run).
  uint64_t dropped = 0;
  for (const auto& [name, value] : serial.metrics) {
    if (name == metric::kTransportDroppedMessages) dropped = value;
  }
  EXPECT_GT(dropped, 0u);

  // Bit-identical across thread counts, faults and all.
  for (size_t threads : {2, 4, 8}) {
    const RunResult parallel =
        TrainOnce(GetParam(), dataset, threads, fault, kEpochs);
    EXPECT_EQ(parallel.losses, serial.losses) << threads << " threads";
    EXPECT_EQ(parallel.valid_mrrs, serial.valid_mrrs);
    EXPECT_EQ(parallel.metrics, serial.metrics);
    ASSERT_EQ(parallel.embeddings.size(), serial.embeddings.size());
    for (size_t j = 0; j < serial.embeddings.size(); ++j) {
      ASSERT_EQ(parallel.embeddings[j], serial.embeddings[j])
          << "embedding float " << j << " diverged at " << threads
          << " threads under faults";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CacheEngines, FaultTolerantTrainingTest,
                         ::testing::Values(SystemKind::kHetKgCps,
                                           SystemKind::kHetKgDps),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(core::SystemKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

INSTANTIATE_TEST_SUITE_P(Engines, ParallelDeterminismTest,
                         ::testing::Values(SystemKind::kHetKgDps,
                                           SystemKind::kDglKe,
                                           SystemKind::kPbg),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(core::SystemKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hetkg
