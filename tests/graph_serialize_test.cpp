#include "graph/serialize.h"

#include <fstream>

#include <gtest/gtest.h>

#include "graph/synthetic.h"

namespace hetkg::graph {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

SyntheticDataset SmallDataset() {
  SyntheticSpec spec;
  spec.name = "serialize-test";
  spec.num_entities = 200;
  spec.num_relations = 6;
  spec.num_triples = 1500;
  spec.seed = 17;
  return GenerateDataset(spec).value();
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("ds_roundtrip.bin");
  ASSERT_TRUE(SaveDataset(path, dataset.graph, dataset.split).ok());

  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.num_entities(), dataset.graph.num_entities());
  EXPECT_EQ(loaded->graph.num_relations(), dataset.graph.num_relations());
  EXPECT_EQ(loaded->graph.num_triples(), dataset.graph.num_triples());
  EXPECT_EQ(loaded->graph.name(), dataset.graph.name());
  ASSERT_EQ(loaded->split.train.size(), dataset.split.train.size());
  ASSERT_EQ(loaded->split.valid.size(), dataset.split.valid.size());
  ASSERT_EQ(loaded->split.test.size(), dataset.split.test.size());
  for (size_t i = 0; i < dataset.split.train.size(); ++i) {
    EXPECT_EQ(loaded->split.train[i], dataset.split.train[i]);
  }
  for (size_t i = 0; i < dataset.split.test.size(); ++i) {
    EXPECT_EQ(loaded->split.test[i], dataset.split.test[i]);
  }
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto loaded = LoadDataset("/nonexistent/ds.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, GarbageIsCorruption) {
  const std::string path = TempPath("ds_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset snapshot at all, sorry";
  }
  auto loaded = LoadDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, TruncationIsCorruption) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("ds_trunc.bin");
  ASSERT_TRUE(SaveDataset(path, dataset.graph, dataset.split).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size() * 3 / 4));
  }
  auto loaded = LoadDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FlippedTripleFailsChecksum) {
  const auto dataset = SmallDataset();
  const std::string path = TempPath("ds_flip.bin");
  ASSERT_TRUE(SaveDataset(path, dataset.graph, dataset.split).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(120);  // Inside the triple payload.
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(120);
    byte = static_cast<char>(byte ^ 0x1);
    f.write(&byte, 1);
  }
  auto loaded = LoadDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace hetkg::graph
