#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace hetkg::sim {
namespace {

TEST(ClusterSimTest, RemoteMessageChargesBothNics) {
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 1000.0;
  net.latency_seconds = 0.5;
  net.header_bytes = 10;
  ClusterSim sim(2, net);
  sim.RecordRemoteMessage(0, 1, 90);  // 100 wire bytes.
  // Sender: 100 bytes out + 1 message latency.
  const auto t0 = sim.MachineTime(0);
  EXPECT_NEAR(t0.comm_seconds, 100.0 / 1000.0 + 0.5, 1e-12);
  // Receiver: 100 bytes in, no initiated message.
  const auto t1 = sim.MachineTime(1);
  EXPECT_NEAR(t1.comm_seconds, 100.0 / 1000.0, 1e-12);
  EXPECT_EQ(sim.TotalRemoteBytes(), 100u);
  EXPECT_EQ(sim.TotalRemoteMessages(), 1u);
}

TEST(ClusterSimTest, ComputeUsesFlopRate) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(1, NetworkConfig{}, compute);
  sim.RecordCompute(0, 500000);
  EXPECT_NEAR(sim.MachineTime(0).compute_seconds, 0.5, 1e-12);
  EXPECT_EQ(sim.TotalFlops(), 500000u);
}

TEST(ClusterSimTest, LocalCopyIsMemoryBandwidthOnly) {
  NetworkConfig net;
  net.memory_bandwidth_bytes_per_sec = 1e6;
  ClusterSim sim(1, net);
  sim.RecordLocalCopy(0, 500000);
  const auto t = sim.MachineTime(0);
  EXPECT_NEAR(t.compute_seconds, 0.5, 1e-12);
  EXPECT_EQ(t.comm_seconds, 0.0);
  EXPECT_EQ(sim.TotalRemoteBytes(), 0u);
}

TEST(ClusterSimTest, CriticalPathPicksSlowestMachine) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(3, NetworkConfig{}, compute);
  sim.RecordCompute(0, 100);
  sim.RecordCompute(1, 2000000);  // 2 seconds: the straggler.
  sim.RecordCompute(2, 100);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 2.0, 1e-9);
}

TEST(ClusterSimTest, ExternalTransfersChargeOneSide) {
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 100.0;
  net.latency_seconds = 0.0;
  net.header_bytes = 0;
  ClusterSim sim(2, net);
  sim.RecordExternalIn(0, 50);
  sim.RecordExternalOut(0, 50);
  EXPECT_NEAR(sim.MachineTime(0).comm_seconds, 1.0, 1e-12);
  EXPECT_EQ(sim.MachineTime(1).comm_seconds, 0.0);
}

TEST(ClusterSimTest, ResetClearsCounters) {
  ClusterSim sim(2);
  sim.RecordRemoteMessage(0, 1, 1000);
  sim.RecordCompute(0, 1000);
  sim.Reset();
  EXPECT_EQ(sim.TotalRemoteBytes(), 0u);
  EXPECT_EQ(sim.TotalFlops(), 0u);
  EXPECT_EQ(sim.CriticalPath().total_seconds(), 0.0);
}

TEST(ClusterSimTest, DefaultConfigMatchesPaperTestbed) {
  // 1 Gbps = 125 MB/s (Sec. VI-A: "network bandwidth of 1Gbps").
  NetworkConfig net;
  EXPECT_NEAR(net.bandwidth_bytes_per_sec, 125e6, 1.0);
}


TEST(ClusterSimTest, StragglerStretchesCriticalPath) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(2, NetworkConfig{}, compute);
  sim.RecordCompute(0, 1000000);
  sim.RecordCompute(1, 1000000);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 1.0, 1e-9);
  sim.SetMachineSlowdown(1, 3.0);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 3.0, 1e-9);
  // Communication is unaffected by the slowdown.
  sim.RecordRemoteMessage(0, 1, 1000);
  EXPECT_NEAR(sim.MachineTime(1).comm_seconds,
              sim.MachineTime(0).comm_seconds -
                  sim.network_config().latency_seconds,
              1e-9);
}

TEST(ClusterSimTest, GoldenAccountingForScriptedSequence) {
  // Regression anchor: a scripted message/compute/fault sequence with
  // every total written out by hand. Any change to the cost model's
  // arithmetic shows up here as an exact-value failure.
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 1000.0;
  net.latency_seconds = 0.25;
  net.header_bytes = 20;
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(3, net, compute);
  sim.SetMachineSlowdown(2, 2.0);

  sim.RecordRemoteMessage(0, 1, 180);   // 200 wire bytes, 0 -> 1.
  sim.RecordRemoteMessage(1, 0, 80);    // 100 wire bytes, 1 -> 0.
  sim.RecordDroppedMessage(0, 280);     // 300 wire bytes, lost.
  sim.RecordStall(0, 0.5);              // Retry backoff.
  sim.RecordRemoteMessage(0, 2, 380);   // 400 wire bytes, 0 -> 2.
  sim.RecordLocalCopy(1, 3000);
  sim.RecordCompute(1, 250000);
  sim.RecordCompute(2, 500000);
  sim.RecordExternalOut(2, 480);        // 500 wire bytes to shared FS.

  // Bytes out: m0 = 200 + 300 + 400, m1 = 100, m2 = 500.
  EXPECT_EQ(sim.TotalRemoteBytes(), 1500u);
  // Messages initiated: m0 = 3, m1 = 1, m2 = 1.
  EXPECT_EQ(sim.TotalRemoteMessages(), 5u);
  EXPECT_EQ(sim.TotalFlops(), 750000u);

  // m0: (900 out + 100 in) / 1000 + 3 * 0.25 latency + 0.5 stall.
  EXPECT_DOUBLE_EQ(sim.MachineTime(0).comm_seconds, 1.0 + 0.75 + 0.5);
  EXPECT_DOUBLE_EQ(sim.MachineTime(0).compute_seconds, 0.0);
  // m1: (100 out + 200 in) / 1000 + 1 * 0.25;
  //     compute = 250000 / 1e6 + 3000 local bytes at default mem bw.
  EXPECT_DOUBLE_EQ(sim.MachineTime(1).comm_seconds, 0.3 + 0.25);
  EXPECT_NEAR(sim.MachineTime(1).compute_seconds,
              0.25 + 3000.0 / net.memory_bandwidth_bytes_per_sec, 1e-12);
  // m2: (500 out + 400 in) / 1000 + 1 * 0.25; compute slowed 2x.
  EXPECT_DOUBLE_EQ(sim.MachineTime(2).comm_seconds, 0.9 + 0.25);
  EXPECT_DOUBLE_EQ(sim.MachineTime(2).compute_seconds, 2.0 * 0.5);

  // Critical path = m0: 2.25 total vs m1 ~0.80 vs m2 2.15.
  EXPECT_DOUBLE_EQ(sim.CriticalPath().total_seconds(), 2.25);

  // Reset clears every counter but the slowdown persists: the same
  // compute on m2 still takes 2x.
  sim.Reset();
  EXPECT_EQ(sim.TotalRemoteBytes(), 0u);
  EXPECT_EQ(sim.TotalRemoteMessages(), 0u);
  EXPECT_DOUBLE_EQ(sim.MachineTime(0).comm_seconds, 0.0);
  sim.RecordCompute(2, 500000);
  EXPECT_DOUBLE_EQ(sim.MachineTime(2).compute_seconds, 1.0);
}

TEST(ClusterSimTest, SlowdownSurvivesReset) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(1, NetworkConfig{}, compute);
  sim.SetMachineSlowdown(0, 2.0);
  sim.Reset();
  sim.RecordCompute(0, 1000000);
  EXPECT_NEAR(sim.MachineTime(0).compute_seconds, 2.0, 1e-9);
}

}  // namespace
}  // namespace hetkg::sim
