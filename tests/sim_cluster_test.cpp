#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace hetkg::sim {
namespace {

TEST(ClusterSimTest, RemoteMessageChargesBothNics) {
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 1000.0;
  net.latency_seconds = 0.5;
  net.header_bytes = 10;
  ClusterSim sim(2, net);
  sim.RecordRemoteMessage(0, 1, 90);  // 100 wire bytes.
  // Sender: 100 bytes out + 1 message latency.
  const auto t0 = sim.MachineTime(0);
  EXPECT_NEAR(t0.comm_seconds, 100.0 / 1000.0 + 0.5, 1e-12);
  // Receiver: 100 bytes in, no initiated message.
  const auto t1 = sim.MachineTime(1);
  EXPECT_NEAR(t1.comm_seconds, 100.0 / 1000.0, 1e-12);
  EXPECT_EQ(sim.TotalRemoteBytes(), 100u);
  EXPECT_EQ(sim.TotalRemoteMessages(), 1u);
}

TEST(ClusterSimTest, ComputeUsesFlopRate) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(1, NetworkConfig{}, compute);
  sim.RecordCompute(0, 500000);
  EXPECT_NEAR(sim.MachineTime(0).compute_seconds, 0.5, 1e-12);
  EXPECT_EQ(sim.TotalFlops(), 500000u);
}

TEST(ClusterSimTest, LocalCopyIsMemoryBandwidthOnly) {
  NetworkConfig net;
  net.memory_bandwidth_bytes_per_sec = 1e6;
  ClusterSim sim(1, net);
  sim.RecordLocalCopy(0, 500000);
  const auto t = sim.MachineTime(0);
  EXPECT_NEAR(t.compute_seconds, 0.5, 1e-12);
  EXPECT_EQ(t.comm_seconds, 0.0);
  EXPECT_EQ(sim.TotalRemoteBytes(), 0u);
}

TEST(ClusterSimTest, CriticalPathPicksSlowestMachine) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(3, NetworkConfig{}, compute);
  sim.RecordCompute(0, 100);
  sim.RecordCompute(1, 2000000);  // 2 seconds: the straggler.
  sim.RecordCompute(2, 100);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 2.0, 1e-9);
}

TEST(ClusterSimTest, ExternalTransfersChargeOneSide) {
  NetworkConfig net;
  net.bandwidth_bytes_per_sec = 100.0;
  net.latency_seconds = 0.0;
  net.header_bytes = 0;
  ClusterSim sim(2, net);
  sim.RecordExternalIn(0, 50);
  sim.RecordExternalOut(0, 50);
  EXPECT_NEAR(sim.MachineTime(0).comm_seconds, 1.0, 1e-12);
  EXPECT_EQ(sim.MachineTime(1).comm_seconds, 0.0);
}

TEST(ClusterSimTest, ResetClearsCounters) {
  ClusterSim sim(2);
  sim.RecordRemoteMessage(0, 1, 1000);
  sim.RecordCompute(0, 1000);
  sim.Reset();
  EXPECT_EQ(sim.TotalRemoteBytes(), 0u);
  EXPECT_EQ(sim.TotalFlops(), 0u);
  EXPECT_EQ(sim.CriticalPath().total_seconds(), 0.0);
}

TEST(ClusterSimTest, DefaultConfigMatchesPaperTestbed) {
  // 1 Gbps = 125 MB/s (Sec. VI-A: "network bandwidth of 1Gbps").
  NetworkConfig net;
  EXPECT_NEAR(net.bandwidth_bytes_per_sec, 125e6, 1.0);
}


TEST(ClusterSimTest, StragglerStretchesCriticalPath) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(2, NetworkConfig{}, compute);
  sim.RecordCompute(0, 1000000);
  sim.RecordCompute(1, 1000000);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 1.0, 1e-9);
  sim.SetMachineSlowdown(1, 3.0);
  EXPECT_NEAR(sim.CriticalPath().compute_seconds, 3.0, 1e-9);
  // Communication is unaffected by the slowdown.
  sim.RecordRemoteMessage(0, 1, 1000);
  EXPECT_NEAR(sim.MachineTime(1).comm_seconds,
              sim.MachineTime(0).comm_seconds -
                  sim.network_config().latency_seconds,
              1e-9);
}

TEST(ClusterSimTest, SlowdownSurvivesReset) {
  ComputeConfig compute;
  compute.flops_per_second = 1e6;
  ClusterSim sim(1, NetworkConfig{}, compute);
  sim.SetMachineSlowdown(0, 2.0);
  sim.Reset();
  sim.RecordCompute(0, 1000000);
  EXPECT_NEAR(sim.MachineTime(0).compute_seconds, 2.0, 1e-9);
}

}  // namespace
}  // namespace hetkg::sim
