#include <gtest/gtest.h>

#include "core/trainer.h"
#include "graph/synthetic.h"

namespace hetkg::core {
namespace {

const graph::SyntheticDataset& SharedDataset() {
  static const graph::SyntheticDataset* dataset = [] {
    graph::SyntheticSpec spec;
    spec.name = "property";
    spec.num_entities = 600;
    spec.num_relations = 16;
    spec.num_triples = 6000;
    spec.seed = 12;
    return new graph::SyntheticDataset(graph::GenerateDataset(spec).value());
  }();
  return *dataset;
}

TrainerConfig PropConfig() {
  TrainerConfig config;
  config.dim = 8;
  config.batch_size = 32;
  config.negatives_per_positive = 4;
  config.num_machines = 4;
  config.cache_capacity = 64;
  config.seed = 21;
  return config;
}

/// Every scoring model must train end-to-end through the distributed
/// engine: loss decreases and the report is well-formed.
class ModelSweep : public ::testing::TestWithParam<embedding::ModelKind> {};

TEST_P(ModelSweep, TrainsEndToEnd) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.model = GetParam();
  auto engine = MakeEngine(SystemKind::kHetKgDps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(3).value();
  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  EXPECT_GT(report.total_time.total_seconds(), 0.0);
  EXPECT_GT(report.overall_hit_ratio, 0.0);
  // Relation rows have the model's declared width.
  auto fn = embedding::MakeScoreFunction(GetParam(), config.dim).value();
  EXPECT_EQ(engine->Embeddings().Relation(0).size(),
            fn->RelationDim(config.dim));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSweep,
    ::testing::Values(embedding::ModelKind::kTransEL1,
                      embedding::ModelKind::kTransEL2,
                      embedding::ModelKind::kDistMult,
                      embedding::ModelKind::kComplEx,
                      embedding::ModelKind::kTransH,
                      embedding::ModelKind::kTransR,
                      embedding::ModelKind::kTransD,
                      embedding::ModelKind::kHolE,
                      embedding::ModelKind::kRescal),
    [](const ::testing::TestParamInfo<embedding::ModelKind>& info) {
      std::string name(embedding::ModelKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

/// Both loss functions drive convergence.
class LossSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(LossSweep, LossDecreases) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.loss = GetParam();
  auto engine = MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(3).value();
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
}

INSTANTIATE_TEST_SUITE_P(Losses, LossSweep,
                         ::testing::Values("margin", "logistic"));

/// Remote traffic falls monotonically as the staleness bound grows (the
/// refresh amortizes over more iterations) — the Fig. 8(b) invariant.
TEST(TrafficPropertyTest, RemoteBytesMonotoneInStaleness) {
  const auto& dataset = SharedDataset();
  uint64_t previous = UINT64_MAX;
  for (size_t staleness : {1u, 2u, 4u, 8u, 32u}) {
    TrainerConfig config = PropConfig();
    config.sync.staleness_bound = staleness;
    auto engine = MakeEngine(SystemKind::kHetKgCps, config, dataset.graph,
                             dataset.split.train)
                      .value();
    auto report = engine->Train(1).value();
    EXPECT_LE(report.total_remote_bytes, previous)
        << "staleness " << staleness;
    previous = report.total_remote_bytes;
  }
}

/// A single-machine deployment moves zero remote bytes: everything is
/// a local (shared-memory) transfer.
TEST(TrafficPropertyTest, SingleMachineHasNoRemoteTraffic) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.num_machines = 1;
  auto engine = MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(1).value();
  EXPECT_EQ(report.total_remote_bytes, 0u);
  EXPECT_EQ(report.total_time.comm_seconds, 0.0);
  EXPECT_GT(report.total_time.compute_seconds, 0.0);
}

/// A cache larger than the whole embedding space degenerates to full
/// replication: after construction every request hits.
TEST(TrafficPropertyTest, OversizedCacheHitsAlmostAlways) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.cache_capacity =
      dataset.graph.num_entities() + dataset.graph.num_relations();
  config.cache_entity_ratio =
      static_cast<double>(dataset.graph.num_entities()) /
      (dataset.graph.num_entities() + dataset.graph.num_relations());
  auto engine = MakeEngine(SystemKind::kHetKgCps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(2).value();
  EXPECT_GT(report.overall_hit_ratio, 0.95);
}

/// Batch size larger than the training set still works (single short
/// batch per epoch).
TEST(EdgeCaseTest, GiantBatchSize) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.batch_size = dataset.split.train.size() * 2;
  auto engine = MakeEngine(SystemKind::kDglKe, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(2).value();
  EXPECT_EQ(report.epochs.size(), 2u);
  EXPECT_GT(report.metrics.Get(metric::kTriplesTrained), 0u);
}

/// Staleness P = 1 means the cache is refreshed before every iteration:
/// cached reads are never stale, so accuracy must match DGL-KE's run
/// closely (same data order is not guaranteed, so compare loosely).
TEST(EdgeCaseTest, StalenessOneTracksGlobalValues) {
  const auto& dataset = SharedDataset();
  TrainerConfig config = PropConfig();
  config.sync.staleness_bound = 1;
  auto engine = MakeEngine(SystemKind::kHetKgCps, config, dataset.graph,
                           dataset.split.train)
                    .value();
  auto report = engine->Train(3).value();
  auto dglke = MakeEngine(SystemKind::kDglKe, PropConfig(), dataset.graph,
                          dataset.split.train)
                   .value();
  auto baseline = dglke->Train(3).value();
  EXPECT_NEAR(report.epochs.back().mean_loss,
              baseline.epochs.back().mean_loss, 0.15);
}

/// Two epochs of Train(1)+Train(1) equal one Train(2) in sim-time
/// accounting (training is resumable).
TEST(EdgeCaseTest, TrainingIsResumable) {
  const auto& dataset = SharedDataset();
  auto a = MakeEngine(SystemKind::kHetKgDps, PropConfig(), dataset.graph,
                      dataset.split.train)
               .value();
  auto b = MakeEngine(SystemKind::kHetKgDps, PropConfig(), dataset.graph,
                      dataset.split.train)
               .value();
  auto r1 = a->Train(1).value();
  auto r2 = a->Train(1).value();
  auto r12 = b->Train(2).value();
  EXPECT_DOUBLE_EQ(r2.epochs.back().mean_loss,
                   r12.epochs.back().mean_loss);
  EXPECT_EQ(r1.total_remote_bytes + r2.total_remote_bytes,
            r12.total_remote_bytes);
}

}  // namespace
}  // namespace hetkg::core
