// Kernel-layer equivalence (DESIGN.md §10): the batched ScoreBatch /
// ScoreBackwardBatch / AdaGrad::ApplyBatch APIs must be BIT-identical
// to looping the scalar API, for every model and every --kernel
// setting, and the kernel paths must be bit-identical to each other —
// --kernel is a pure performance knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/trainer.h"
#include "embedding/adagrad.h"
#include "embedding/kernels.h"
#include "embedding/score_function.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

using embedding::GradView;
using embedding::ModelKind;
using embedding::ScoreFunction;
using embedding::TripleView;
namespace kernels = embedding::kernels;

/// Restores the process-wide kernel mode on scope exit, so tests can
/// flip dispatch without leaking state into other tests.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(kernels::KernelMode mode)
      : saved_(kernels::ActiveMode()) {
    kernels::SetKernelMode(mode);
  }
  ~ScopedKernelMode() { kernels::SetKernelMode(saved_); }

 private:
  kernels::KernelMode saved_;
};

constexpr ModelKind kAllModels[] = {
    ModelKind::kTransEL1, ModelKind::kTransEL2, ModelKind::kDistMult,
    ModelKind::kComplEx,  ModelKind::kTransH,   ModelKind::kTransR,
    ModelKind::kTransD,   ModelKind::kHolE,     ModelKind::kRescal,
};

bool RequiresEvenDim(ModelKind kind) {
  return kind == ModelKind::kComplEx || kind == ModelKind::kTransD;
}

/// A pool of entity/relation rows plus a positive and a mixed bag of
/// negatives (tail-corrupt sharing the positive's (h, r) rows — the
/// hoisted path — head-corrupt, relation-corrupt, and one self-loop
/// whose head and tail gradients alias the same row).
struct BatchFixture {
  size_t dim = 0;
  size_t rdim = 0;
  std::vector<float> entities;   // kNumEntities x dim
  std::vector<float> relations;  // kNumRelations x rdim
  TripleView positive;
  std::vector<TripleView> views;      // [0] = positive, [1..] negatives.
  std::vector<double> upstreams;      // [0] = positive's upstream.
  std::vector<size_t> head_keys;      // Entity index per view.
  std::vector<size_t> rel_keys;       // Relation index per view.
  std::vector<size_t> tail_keys;      // Entity index per view.

  static constexpr size_t kNumEntities = 12;
  static constexpr size_t kNumRelations = 4;

  std::span<const float> Entity(size_t e) const {
    return {entities.data() + e * dim, dim};
  }
  std::span<const float> Relation(size_t r) const {
    return {relations.data() + r * rdim, rdim};
  }
};

BatchFixture MakeFixture(const ScoreFunction& fn, size_t dim, uint64_t seed) {
  BatchFixture fx;
  fx.dim = dim;
  fx.rdim = fn.RelationDim(dim);
  Rng rng(seed);
  fx.entities.resize(BatchFixture::kNumEntities * dim);
  for (float& v : fx.entities) {
    v = static_cast<float>(rng.NextUniform(-0.8, 0.8));
  }
  fx.relations.resize(BatchFixture::kNumRelations * fx.rdim);
  for (float& v : fx.relations) {
    v = static_cast<float>(rng.NextUniform(-0.8, 0.8));
  }

  auto add = [&](size_t h, size_t r, size_t t, double upstream) {
    fx.views.push_back({fx.Entity(h), fx.Relation(r), fx.Entity(t)});
    fx.head_keys.push_back(h);
    fx.rel_keys.push_back(r);
    fx.tail_keys.push_back(t);
    fx.upstreams.push_back(upstream);
  };

  // Positive: (e0, r0, e1).
  add(0, 0, 1, rng.NextUniform(-1.0, 1.0));
  fx.positive = fx.views[0];
  // Tail-corrupt negatives (shared (h, r) → hoisted inside the kernel).
  for (size_t t : {2, 3, 4, 5, 6}) {
    add(0, 0, t, rng.NextUniform(-1.0, 1.0));
  }
  // One zero upstream on a tail-corrupt entry (must be skipped).
  add(0, 0, 7, 0.0);
  // Head-corrupt negatives (full vectorized form).
  for (size_t h : {8, 9, 10}) {
    add(h, 0, 1, rng.NextUniform(-1.0, 1.0));
  }
  // Relation-corrupt negative.
  add(0, 1, 1, rng.NextUniform(-1.0, 1.0));
  // Self-loop: head and tail gradients alias one row.
  add(11, 2, 11, rng.NextUniform(-1.0, 1.0));
  return fx;
}

/// Per-key gradient buffers for one full batch-backward application.
struct GradBuffers {
  std::vector<float> entities;
  std::vector<float> relations;

  explicit GradBuffers(const BatchFixture& fx)
      : entities(BatchFixture::kNumEntities * fx.dim, 0.0f),
        relations(BatchFixture::kNumRelations * fx.rdim, 0.0f) {}

  GradView View(const BatchFixture& fx, size_t k) {
    return {{entities.data() + fx.head_keys[k] * fx.dim, fx.dim},
            {relations.data() + fx.rel_keys[k] * fx.rdim, fx.rdim},
            {entities.data() + fx.tail_keys[k] * fx.dim, fx.dim}};
  }
};

std::vector<size_t> DimsFor(ModelKind kind) {
  // 30 and 64: even, one NOT a multiple of the lane width (8); 5 and
  // 19: odd (tail-loop coverage) where the model allows it.
  std::vector<size_t> dims = {8, 30, 64};
  if (!RequiresEvenDim(kind)) {
    dims.push_back(5);
    dims.push_back(19);
  }
  return dims;
}

/// Runs ScoreBatch + ScoreBackwardBatch under the CURRENT kernel mode
/// and checks both against the scalar per-triple loop, bitwise. Fills
/// `out` (scores, grads) so callers can also compare across modes.
/// (void so ASSERT_* may be used.)
struct BatchResult {
  std::vector<double> scores;
  std::vector<float> entity_grads;
  std::vector<float> relation_grads;
};

void RunAndCheckAgainstScalarLoop(const ScoreFunction& fn,
                                  const BatchFixture& fx, BatchResult* out) {
  kernels::KernelScratch scratch;

  // Forward: batch vs per-triple Score.
  out->scores.resize(fx.views.size());
  fn.ScoreBatch(fx.positive, fx.views, out->scores, &scratch);
  for (size_t k = 0; k < fx.views.size(); ++k) {
    const double expect =
        fn.Score(fx.views[k].h, fx.views[k].r, fx.views[k].t);
    ASSERT_EQ(out->scores[k], expect)
        << fn.name() << " dim=" << fx.dim << " view " << k;
  }

  // Backward: batch vs scalar loop, into separate buffers.
  GradBuffers batch_bufs(fx);
  GradBuffers loop_bufs(fx);
  std::vector<GradView> grad_views(fx.views.size());
  for (size_t k = 0; k < fx.views.size(); ++k) {
    // Entries with a zero upstream keep an empty GradView — the batch
    // contract says they are skipped and never dereferenced.
    if (fx.upstreams[k] != 0.0) grad_views[k] = batch_bufs.View(fx, k);
  }
  fn.ScoreBackwardBatch(fx.positive, fx.views, fx.upstreams, grad_views,
                        &scratch);
  for (size_t k = 0; k < fx.views.size(); ++k) {
    if (fx.upstreams[k] == 0.0) continue;
    const GradView g = loop_bufs.View(fx, k);
    fn.ScoreBackward(fx.views[k].h, fx.views[k].r, fx.views[k].t,
                     fx.upstreams[k], g.h, g.r, g.t);
  }
  ASSERT_EQ(batch_bufs.entities.size(), loop_bufs.entities.size());
  for (size_t j = 0; j < batch_bufs.entities.size(); ++j) {
    ASSERT_EQ(batch_bufs.entities[j], loop_bufs.entities[j])
        << fn.name() << " dim=" << fx.dim << " entity grad float " << j;
  }
  for (size_t j = 0; j < batch_bufs.relations.size(); ++j) {
    ASSERT_EQ(batch_bufs.relations[j], loop_bufs.relations[j])
        << fn.name() << " dim=" << fx.dim << " relation grad float " << j;
  }
  out->entity_grads = std::move(batch_bufs.entities);
  out->relation_grads = std::move(batch_bufs.relations);
}

TEST(KernelBatchEquivalenceTest, BatchMatchesScalarLoopOnEveryPath) {
  for (ModelKind kind : kAllModels) {
    for (size_t dim : DimsFor(kind)) {
      auto fn = embedding::MakeScoreFunction(kind, dim).value();
      const BatchFixture fx = MakeFixture(*fn, dim, 1000 + dim);

      std::optional<BatchResult> scalar_result;
      for (kernels::KernelMode mode :
           {kernels::KernelMode::kScalar, kernels::KernelMode::kVector}) {
        ScopedKernelMode scoped(mode);
        BatchResult result;
        RunAndCheckAgainstScalarLoop(*fn, fx, &result);
        if (::testing::Test::HasFatalFailure()) return;
        if (!scalar_result.has_value()) {
          scalar_result = result;
          continue;
        }
        // Across modes: scalar and vector paths produce the same bits.
        ASSERT_EQ(result.scores, scalar_result->scores)
            << fn->name() << " dim=" << dim;
        ASSERT_EQ(result.entity_grads, scalar_result->entity_grads)
            << fn->name() << " dim=" << dim;
        ASSERT_EQ(result.relation_grads, scalar_result->relation_grads)
            << fn->name() << " dim=" << dim;
      }
    }
  }
}

TEST(KernelEdgeCaseTest, EmptyNegativesAreANoOp) {
  for (kernels::KernelMode mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kVector}) {
    ScopedKernelMode scoped(mode);
    for (ModelKind kind : kAllModels) {
      const size_t dim = 16;
      auto fn = embedding::MakeScoreFunction(kind, dim).value();
      const BatchFixture fx = MakeFixture(*fn, dim, 7);
      kernels::KernelScratch scratch;
      fn->ScoreBatch(fx.positive, {}, {}, &scratch);
      fn->ScoreBackwardBatch(fx.positive, {}, {}, {}, &scratch);
    }
  }
}

TEST(KernelEdgeCaseTest, TransEL2ZeroGradientAtExactMinimum) {
  // h == t elementwise and r == 0 put every e_j at exactly 0, where the
  // L2 gradient -e/||e|| is defined to be zero: no grads may change.
  const size_t dim = 24;
  auto fn =
      embedding::MakeScoreFunction(ModelKind::kTransEL2, dim).value();
  std::vector<float> h(dim);
  Rng rng(3);
  for (float& v : h) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  std::vector<float> r(dim, 0.0f);
  std::vector<float> t = h;

  for (kernels::KernelMode mode :
       {kernels::KernelMode::kScalar, kernels::KernelMode::kVector}) {
    ScopedKernelMode scoped(mode);
    const TripleView ref{h, r, t};
    const std::vector<TripleView> views = {ref};
    std::vector<double> scores(1);
    kernels::KernelScratch scratch;
    fn->ScoreBatch(ref, views, scores, &scratch);
    EXPECT_EQ(scores[0], 0.0) << kernels::KernelModeName(mode);

    std::vector<float> gh(dim, 0.0f), gr(dim, 0.0f), gt(dim, 0.0f);
    const std::vector<GradView> grads = {GradView{gh, gr, gt}};
    const std::vector<double> upstreams = {1.0};
    fn->ScoreBackwardBatch(ref, views, upstreams, grads, &scratch);
    for (size_t j = 0; j < dim; ++j) {
      ASSERT_EQ(gh[j], 0.0f) << kernels::KernelModeName(mode);
      ASSERT_EQ(gr[j], 0.0f);
      ASSERT_EQ(gt[j], 0.0f);
    }
  }
}

TEST(KernelAdaGradTest, ApplyBatchBitIdenticalToApply) {
  for (size_t dim : {1u, 5u, 8u, 27u, 64u, 400u}) {
    Rng rng(40 + dim);
    const size_t kRows = 3;
    std::vector<float> init(kRows * dim);
    for (float& v : init) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));

    std::optional<std::vector<float>> first_rows;
    for (kernels::KernelMode mode :
         {kernels::KernelMode::kScalar, kernels::KernelMode::kVector}) {
      ScopedKernelMode scoped(mode);
      embedding::AdaGrad scalar_opt(kRows, dim, 0.1);
      embedding::AdaGrad batch_opt(kRows, dim, 0.1);
      std::vector<float> scalar_rows = init;
      std::vector<float> batch_rows = init;
      // Several steps so the accumulators are nontrivial.
      Rng grad_rng(99);
      for (int step = 0; step < 4; ++step) {
        for (size_t row = 0; row < kRows; ++row) {
          std::vector<float> grad(dim);
          for (float& g : grad) {
            g = static_cast<float>(grad_rng.NextUniform(-0.5, 0.5));
          }
          scalar_opt.Apply(row, {scalar_rows.data() + row * dim, dim}, grad);
          batch_opt.ApplyBatch(row, {batch_rows.data() + row * dim, dim},
                               grad);
        }
      }
      ASSERT_EQ(batch_rows, scalar_rows)
          << "dim=" << dim << " mode=" << kernels::KernelModeName(mode);
      for (size_t row = 0; row < kRows; ++row) {
        const auto a = scalar_opt.AccumulatorRow(row);
        const auto b = batch_opt.AccumulatorRow(row);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
            << "dim=" << dim << " row=" << row;
      }
      if (!first_rows.has_value()) {
        first_rows = batch_rows;
      } else {
        ASSERT_EQ(batch_rows, *first_rows) << "dim=" << dim;
      }
    }
  }
}

TEST(KernelDispatchTest, ParseAndNames) {
  EXPECT_EQ(kernels::ParseKernelMode("auto").value(),
            kernels::KernelMode::kAuto);
  EXPECT_EQ(kernels::ParseKernelMode("scalar").value(),
            kernels::KernelMode::kScalar);
  EXPECT_EQ(kernels::ParseKernelMode("vector").value(),
            kernels::KernelMode::kVector);
  EXPECT_FALSE(kernels::ParseKernelMode("avx512").ok());
  EXPECT_EQ(kernels::KernelPathName(kernels::KernelPath::kScalar), "scalar");
  EXPECT_EQ(kernels::KernelPathName(kernels::KernelPath::kPortableVector),
            "portable-vector");
  EXPECT_EQ(kernels::KernelPathName(kernels::KernelPath::kAvx2), "avx2");
}

TEST(KernelDispatchTest, ExplicitModeWinsGaugeTracksPath) {
  {
    ScopedKernelMode scoped(kernels::KernelMode::kScalar);
    EXPECT_EQ(kernels::ActivePath(), kernels::KernelPath::kScalar);
    EXPECT_FALSE(kernels::UseVectorPath());
    EXPECT_EQ(kernels::DispatchGauge(), 0.0);
  }
  {
    ScopedKernelMode scoped(kernels::KernelMode::kVector);
    EXPECT_NE(kernels::ActivePath(), kernels::KernelPath::kScalar);
    EXPECT_TRUE(kernels::UseVectorPath());
    EXPECT_EQ(kernels::DispatchGauge(),
              static_cast<double>(kernels::ActivePath()));
  }
}

TEST(KernelDispatchTest, EnvironmentSteersAutoOnly) {
  const char* saved = std::getenv("HETKG_KERNEL");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("HETKG_KERNEL", "scalar", 1);
  EXPECT_EQ(kernels::ResolveKernelPath(kernels::KernelMode::kAuto),
            kernels::KernelPath::kScalar);
  // Explicit modes ignore the environment (the equivalence tests rely
  // on this to force both paths under a CI-set HETKG_KERNEL).
  EXPECT_NE(kernels::ResolveKernelPath(kernels::KernelMode::kVector),
            kernels::KernelPath::kScalar);

  ::setenv("HETKG_KERNEL", "vector", 1);
  EXPECT_NE(kernels::ResolveKernelPath(kernels::KernelMode::kAuto),
            kernels::KernelPath::kScalar);
  EXPECT_EQ(kernels::ResolveKernelPath(kernels::KernelMode::kScalar),
            kernels::KernelPath::kScalar);

  // Unknown values fall back to the CPU-feature default.
  ::setenv("HETKG_KERNEL", "quantum", 1);
  EXPECT_NE(kernels::ResolveKernelPath(kernels::KernelMode::kAuto),
            kernels::KernelPath::kScalar);

  if (saved != nullptr) {
    ::setenv("HETKG_KERNEL", saved_value.c_str(), 1);
  } else {
    ::unsetenv("HETKG_KERNEL");
  }
}

// ---------------------------------------------------------------------
// End-to-end: whole training runs must be bit-identical across
// --kernel settings (the training-level analogue of the unit checks).
// ---------------------------------------------------------------------

struct TrainOutput {
  std::vector<float> embeddings;
  std::vector<double> losses;
  std::vector<std::pair<std::string, uint64_t>> metrics;
};

TrainOutput TrainWithKernel(core::SystemKind system, ModelKind model,
                            const graph::SyntheticDataset& dataset,
                            const std::string& kernel) {
  core::TrainerConfig config;
  config.model = model;
  config.dim = 16;
  config.batch_size = 32;
  config.negatives_per_positive = 8;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.pbg_partitions = 4;
  config.seed = 5;
  config.num_threads = 2;
  config.kernel = kernel;
  auto engine =
      core::MakeEngine(system, config, dataset.graph, dataset.split.train)
          .value();
  auto report = engine->Train(2).value();

  TrainOutput out;
  const eval::EmbeddingLookup& lookup = engine->Embeddings();
  for (size_t e = 0; e < lookup.num_entities(); ++e) {
    const auto row = lookup.Entity(static_cast<EntityId>(e));
    out.embeddings.insert(out.embeddings.end(), row.begin(), row.end());
  }
  for (size_t r = 0; r < lookup.num_relations(); ++r) {
    const auto row = lookup.Relation(static_cast<RelationId>(r));
    out.embeddings.insert(out.embeddings.end(), row.begin(), row.end());
  }
  for (const auto& epoch : report.epochs) {
    out.losses.push_back(epoch.mean_loss);
  }
  out.metrics = report.metrics.Snapshot();
  return out;
}

TEST(KernelTrainingIdentityTest, BitIdenticalAcrossKernelSettings) {
  // Engine setup persists the configured mode process-wide; restore it.
  ScopedKernelMode scoped(kernels::ActiveMode());

  graph::SyntheticSpec spec;
  spec.name = "kernel-det";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 2000;
  spec.seed = 33;
  const auto dataset = graph::GenerateDataset(spec).value();

  for (ModelKind model : {ModelKind::kTransEL1, ModelKind::kDistMult,
                          ModelKind::kComplEx}) {
    const TrainOutput scalar = TrainWithKernel(core::SystemKind::kHetKgDps,
                                               model, dataset, "scalar");
    ASSERT_FALSE(scalar.losses.empty());
    for (const std::string& kernel : {std::string("vector"),
                                      std::string("auto")}) {
      const TrainOutput other = TrainWithKernel(core::SystemKind::kHetKgDps,
                                                model, dataset, kernel);
      EXPECT_EQ(other.losses, scalar.losses)
          << embedding::ModelKindName(model) << " --kernel=" << kernel;
      EXPECT_EQ(other.metrics, scalar.metrics);
      ASSERT_EQ(other.embeddings.size(), scalar.embeddings.size());
      for (size_t j = 0; j < scalar.embeddings.size(); ++j) {
        ASSERT_EQ(other.embeddings[j], scalar.embeddings[j])
            << embedding::ModelKindName(model) << " embedding float " << j
            << " diverged under --kernel=" << kernel;
      }
    }
  }
}

}  // namespace
}  // namespace hetkg
