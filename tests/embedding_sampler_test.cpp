#include "embedding/negative_sampler.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace hetkg::embedding {
namespace {

std::vector<Triple> MakePositives(size_t n) {
  std::vector<Triple> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<EntityId>(i), static_cast<RelationId>(i % 3),
                   static_cast<EntityId>(i + 100)});
  }
  return out;
}

TEST(UniformSamplerTest, ProducesRequestedCount) {
  UniformNegativeSampler sampler(1000, 4, 1);
  const auto positives = MakePositives(16);
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  EXPECT_EQ(negs.size(), 64u);
}

TEST(UniformSamplerTest, CorruptsExactlyOneEndpoint) {
  UniformNegativeSampler sampler(1000, 8, 2);
  const auto positives = MakePositives(32);
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  for (const auto& neg : negs) {
    const Triple& pos = positives[neg.positive_index];
    EXPECT_EQ(neg.triple.relation, pos.relation);
    if (neg.corrupted_head()) {
      EXPECT_EQ(neg.triple.tail, pos.tail);
    } else {
      EXPECT_EQ(neg.triple.head, pos.head);
    }
  }
}

TEST(UniformSamplerTest, CorruptsBothSidesOverTime) {
  UniformNegativeSampler sampler(1000, 16, 3);
  const auto positives = MakePositives(64);
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  size_t heads = 0;
  for (const auto& n : negs) {
    if (n.corrupted_head()) ++heads;
  }
  EXPECT_GT(heads, negs.size() / 4);
  EXPECT_LT(heads, negs.size() * 3 / 4);
}

TEST(UniformSamplerTest, DeterministicGivenSeed) {
  const auto positives = MakePositives(8);
  std::vector<NegativeSample> a, b;
  UniformNegativeSampler s1(100, 2, 42);
  UniformNegativeSampler s2(100, 2, 42);
  s1.Sample(positives, &a);
  s2.Sample(positives, &b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].triple, b[i].triple);
  }
}

TEST(BatchedSamplerTest, SharesNegativePoolWithinChunk) {
  BatchedNegativeSampler sampler(10000, 4, /*chunk_size=*/8, 5);
  const auto positives = MakePositives(8);  // One chunk.
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  ASSERT_EQ(negs.size(), 32u);
  // All 8 positives must see the same 4 replacement entities.
  std::unordered_set<EntityId> pool;
  for (size_t k = 0; k < 4; ++k) {
    pool.insert(negs[k].corrupted_head() ? negs[k].triple.head
                                       : negs[k].triple.tail);
  }
  EXPECT_LE(pool.size(), 4u);
  for (const auto& neg : negs) {
    const EntityId replacement =
        neg.corrupted_head() ? neg.triple.head : neg.triple.tail;
    EXPECT_TRUE(pool.contains(replacement));
  }
}

TEST(BatchedSamplerTest, DistinctChunksGetDistinctPools) {
  BatchedNegativeSampler sampler(1000000, 4, /*chunk_size=*/4, 6);
  const auto positives = MakePositives(8);  // Two chunks.
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  std::unordered_set<EntityId> pool1, pool2;
  for (size_t i = 0; i < negs.size(); ++i) {
    const EntityId repl =
        negs[i].corrupted_head() ? negs[i].triple.head : negs[i].triple.tail;
    (negs[i].positive_index < 4 ? pool1 : pool2).insert(repl);
  }
  // With a million entities the chance of overlap is negligible.
  for (EntityId e : pool1) {
    EXPECT_FALSE(pool2.contains(e));
  }
}

TEST(BatchedSamplerTest, ReducesEntityDraws) {
  UniformNegativeSampler uniform(1000, 64, 1);
  BatchedNegativeSampler batched(1000, 64, /*chunk_size=*/16, 1);
  EXPECT_EQ(uniform.EntityDrawsPerBatch(256), 256u * 64u);
  EXPECT_EQ(batched.EntityDrawsPerBatch(256), 16u * 64u);
}

TEST(SamplerFactoryTest, ParsesNames) {
  EXPECT_TRUE(MakeNegativeSampler("uniform", 10, 2, 4, 1).ok());
  EXPECT_TRUE(MakeNegativeSampler("batched", 10, 2, 4, 1).ok());
  EXPECT_FALSE(MakeNegativeSampler("nce", 10, 2, 4, 1).ok());
  EXPECT_FALSE(MakeNegativeSampler("uniform", 1, 2, 4, 1).ok());
}


TEST(UniformSamplerTest, RelationCorruptionProducesRelationNegatives) {
  UniformNegativeSampler sampler(1000, 16, 7);
  ASSERT_TRUE(sampler.EnableRelationCorruption(0.5, 10).ok());
  const auto positives = MakePositives(64);
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  size_t relation_corruptions = 0;
  for (const auto& neg : negs) {
    const Triple& pos = positives[neg.positive_index];
    if (neg.corruption == Corruption::kRelation) {
      ++relation_corruptions;
      EXPECT_EQ(neg.triple.head, pos.head);
      EXPECT_EQ(neg.triple.tail, pos.tail);
      EXPECT_LT(neg.triple.relation, 10u);
    } else {
      EXPECT_EQ(neg.triple.relation, pos.relation);
    }
  }
  // ~50% of 1024 negatives.
  EXPECT_GT(relation_corruptions, negs.size() / 3);
  EXPECT_LT(relation_corruptions, negs.size() * 2 / 3);
}

TEST(UniformSamplerTest, RelationCorruptionValidation) {
  UniformNegativeSampler sampler(100, 4, 8);
  EXPECT_FALSE(sampler.EnableRelationCorruption(-0.1, 10).ok());
  EXPECT_FALSE(sampler.EnableRelationCorruption(1.5, 10).ok());
  EXPECT_FALSE(sampler.EnableRelationCorruption(0.5, 1).ok());
  EXPECT_TRUE(sampler.EnableRelationCorruption(0.0, 0).ok());
}

TEST(UniformSamplerTest, DegreeWeightingFavorsHubs) {
  const size_t n = 100;
  UniformNegativeSampler sampler(n, 8, 9);
  std::vector<uint32_t> degrees(n, 1);
  degrees[7] = 100000;  // One massive hub.
  ASSERT_TRUE(sampler.EnableDegreeWeighting(degrees).ok());
  const auto positives = MakePositives(200);
  std::vector<NegativeSample> negs;
  sampler.Sample(positives, &negs);
  size_t hub_draws = 0;
  for (const auto& neg : negs) {
    const EntityId repl =
        neg.corrupted_head() ? neg.triple.head : neg.triple.tail;
    if (repl == 7) ++hub_draws;
  }
  // degree^0.75 weighting: the hub holds ~97% of the mass.
  EXPECT_GT(hub_draws, negs.size() / 2);
}

TEST(UniformSamplerTest, DegreeWeightingValidatesSize) {
  UniformNegativeSampler sampler(100, 4, 10);
  std::vector<uint32_t> wrong_size(50, 1);
  EXPECT_FALSE(sampler.EnableDegreeWeighting(wrong_size).ok());
}

TEST(SamplerSpecTest, BatchedRejectsUniformOnlyFeatures) {
  NegativeSamplerSpec spec;
  spec.name = "batched";
  spec.num_entities = 100;
  spec.negatives_per_positive = 4;
  spec.chunk_size = 4;
  spec.relation_corruption_prob = 0.3;
  spec.num_relations = 10;
  EXPECT_FALSE(MakeNegativeSampler(spec).ok());
}

TEST(SamplerSpecTest, UniformSpecComposesFeatures) {
  std::vector<uint32_t> degrees(100, 2);
  NegativeSamplerSpec spec;
  spec.name = "uniform";
  spec.num_entities = 100;
  spec.negatives_per_positive = 4;
  spec.seed = 3;
  spec.relation_corruption_prob = 0.25;
  spec.num_relations = 5;
  spec.entity_degrees = &degrees;
  auto sampler = MakeNegativeSampler(spec);
  ASSERT_TRUE(sampler.ok());
  const auto positives = MakePositives(32);
  std::vector<NegativeSample> negs;
  (*sampler)->Sample(positives, &negs);
  EXPECT_EQ(negs.size(), 128u);
}

}  // namespace
}  // namespace hetkg::embedding
