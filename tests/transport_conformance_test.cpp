// Channel conformance suite (DESIGN.md §13): one parameterized battery
// run against every transport — the in-process LocalChannel baseline,
// the shared-memory ring pair, and TCP over loopback. Each case checks
// one clause of the Channel contract; a transport that passes here is
// interchangeable under the process runtime's RPC layer. The Messenger
// cases additionally pin the sequence-number duplicate-drop guard that
// makes delivery exactly-once over a duplicating link.

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/fault_channel.h"
#include "net/local_channel.h"
#include "net/shm_ring.h"
#include "net/tcp_channel.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETKG_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HETKG_TSAN 1
#endif

namespace hetkg::net {
namespace {

enum class TransportUnderTest { kLocal, kShm, kTcp };

std::string TransportName(
    const ::testing::TestParamInfo<TransportUnderTest>& info) {
  switch (info.param) {
    case TransportUnderTest::kLocal:
      return "Local";
    case TransportUnderTest::kShm:
      return "ShmRing";
    case TransportUnderTest::kTcp:
      return "TcpLoopback";
  }
  return "Unknown";
}

// A connected endpoint pair plus whatever must stay alive behind it
// (the TCP listener for the loopback pair).
struct ChannelPair {
  std::unique_ptr<Channel> a;
  std::unique_ptr<Channel> b;
  std::unique_ptr<TcpListener> listener;
};

// Small ring so the streaming/backpressure path is actually exercised
// by the large-frame case instead of fitting in one shot.
constexpr size_t kTestRingBytes = 64 << 10;

class TransportConformanceTest
    : public ::testing::TestWithParam<TransportUnderTest> {
 protected:
  void SetUp() override {
#ifdef HETKG_TSAN
    if (GetParam() == TransportUnderTest::kShm) {
      GTEST_SKIP() << "shm ring uses process-shared robust mutexes, "
                      "which TSan does not model";
    }
#endif
  }

  ChannelPair MakePair() {
    ChannelPair pair;
    switch (GetParam()) {
      case TransportUnderTest::kLocal: {
        auto [a, b] = LocalChannel::CreatePair();
        pair.a = std::move(a);
        pair.b = std::move(b);
        break;
      }
      case TransportUnderTest::kShm: {
        auto created = ShmRingChannel::CreatePair(kTestRingBytes);
        EXPECT_TRUE(created.ok()) << created.status().ToString();
        pair.a = std::move(created.value().first);
        pair.b = std::move(created.value().second);
        break;
      }
      case TransportUnderTest::kTcp: {
        auto listener = TcpListener::Create(0);
        EXPECT_TRUE(listener.ok()) << listener.status().ToString();
        pair.listener = std::move(listener).value();
        // connect() completes against the backlog before Accept runs,
        // so a single thread can build both ends.
        auto connected =
            TcpConnect("127.0.0.1", pair.listener->port(), RetryPolicy{});
        EXPECT_TRUE(connected.ok()) << connected.status().ToString();
        auto accepted = pair.listener->Accept(5'000);
        EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
        pair.a = std::move(connected).value();
        pair.b = std::move(accepted).value();
        break;
      }
    }
    return pair;
  }
};

TEST_P(TransportConformanceTest, FramesArriveWholeAndInOrder) {
  ChannelPair pair = MakePair();
  const std::vector<std::string> frames = {
      "alpha", std::string(1, '\0'), "gamma", std::string(2000, 'x')};
  for (const std::string& f : frames) ASSERT_TRUE(pair.a->Send(f));
  for (const std::string& f : frames) {
    std::string got;
    ASSERT_EQ(pair.b->Recv(&got, 5'000), RecvStatus::kOk);
    EXPECT_EQ(got, f);
  }
}

TEST_P(TransportConformanceTest, BothDirectionsAreIndependent) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.a->Send("to-b"));
  ASSERT_TRUE(pair.b->Send("to-a"));
  std::string got;
  ASSERT_EQ(pair.b->Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "to-b");
  ASSERT_EQ(pair.a->Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "to-a");
}

TEST_P(TransportConformanceTest, ZeroLengthFrameRoundTrips) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.a->Send(std::string_view()));
  ASSERT_TRUE(pair.a->Send("after"));
  std::string got = "sentinel";
  ASSERT_EQ(pair.b->Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_TRUE(got.empty());
  ASSERT_EQ(pair.b->Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "after");
}

TEST_P(TransportConformanceTest, FrameLargerThanAnyBufferStreamsThrough) {
  ChannelPair pair = MakePair();
  // Larger than the shm ring capacity and any default socket buffer:
  // forces the sender to stream under backpressure while the receiver
  // drains concurrently.
  std::string big(3 << 20, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 31 + (i >> 11));
  }
  std::thread sender(
      [&pair, &big] { EXPECT_TRUE(pair.a->Send(big)); });
  std::string got;
  ASSERT_EQ(pair.b->Recv(&got, 30'000), RecvStatus::kOk);
  sender.join();
  EXPECT_EQ(got, big);
}

TEST_P(TransportConformanceTest, RecvTimesOutThenRecovers) {
  ChannelPair pair = MakePair();
  std::string got;
  EXPECT_EQ(pair.b->Recv(&got, 50), RecvStatus::kTimeout);
  ASSERT_TRUE(pair.a->Send("late"));
  ASSERT_EQ(pair.b->Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "late");
}

TEST_P(TransportConformanceTest, CloseWakesABlockedRecv) {
  ChannelPair pair = MakePair();
  RecvStatus blocked_result = RecvStatus::kOk;
  std::thread receiver([&pair, &blocked_result] {
    std::string got;
    blocked_result = pair.b->Recv(&got, -1);
  });
  // Give the receiver time to actually block, then close from another
  // thread — the contract's close-while-blocked clause.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pair.b->Close();
  receiver.join();
  EXPECT_EQ(blocked_result, RecvStatus::kClosed);
}

TEST_P(TransportConformanceTest, SendAfterCloseFails) {
  ChannelPair pair = MakePair();
  pair.a->Close();
  EXPECT_FALSE(pair.a->Send("ghost"));
}

TEST_P(TransportConformanceTest, MessengerDropsDuplicateDelivery) {
  ChannelPair pair = MakePair();
  Messenger sender(pair.a.get());
  Messenger receiver(pair.b.get());
  ASSERT_TRUE(sender.Send("first"));
  // Re-send the consumed sequence number: a transport-level duplicate
  // (e.g. a retried send whose first copy did arrive).
  ASSERT_TRUE(sender.SendWithSeq(sender.last_sent_seq(), "first"));
  ASSERT_TRUE(sender.Send("second"));
  std::string got;
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "first");
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "second");  // The duplicate was silently dropped.
  EXPECT_EQ(receiver.Recv(&got, 50), RecvStatus::kTimeout);
}

TEST_P(TransportConformanceTest, MessengerDropsStaleReplay) {
  ChannelPair pair = MakePair();
  Messenger sender(pair.a.get());
  Messenger receiver(pair.b.get());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sender.Send("m" + std::to_string(i)));
  }
  // Replay an old sequence (1) after newer ones were sent.
  ASSERT_TRUE(sender.SendWithSeq(1, "m0"));
  ASSERT_TRUE(sender.Send("tail"));
  std::string got;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
    EXPECT_EQ(got, "m" + std::to_string(i));
  }
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "tail");
}

// --- Fault-wrapped battery (DESIGN.md §15) --------------------------------
// The FaultChannel decorator mangles real wire frames below the
// Messenger, so these cases exercise the genuine detection (CRC-32
// trailer) and healing (go-back-N retransmit) paths on every transport.

// Fast-converging retransmit shape for tests.
Messenger::ReliableConfig TestReliable(const WireFaultConfig& fault) {
  Messenger::ReliableConfig config = ReliableFromWireFaults(fault);
  config.base_backoff_ms = 10;
  config.max_backoff_ms = 100;
  return config;
}

// Drives the sender's retransmit pump and the receiver's delivery loop
// until a payload lands (or the bounded budget runs out). The sender's
// Recv consumes the acks flowing back on its own direction.
RecvStatus PumpUntilDelivered(Messenger* sender, Messenger* receiver,
                              std::string* got) {
  RecvStatus status = RecvStatus::kTimeout;
  for (int i = 0; i < 200 && status == RecvStatus::kTimeout; ++i) {
    std::string ignored;
    (void)sender->Recv(&ignored, 30);
    status = receiver->Recv(got, 30);
  }
  return status;
}

TEST_P(TransportConformanceTest, CrcTrailerDetectsCorruptFrame) {
  ChannelPair pair = MakePair();
  WireFaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.corrupt_ticks = {0};  // Flip one byte of the first sent frame.
  FaultChannel faulty(pair.a.get(), fault, /*link_salt=*/1);
  NetFaultStats stats;
  faulty.set_fault_stats(&stats);
  Messenger sender(&faulty);
  Messenger receiver(pair.b.get());
  receiver.set_fault_stats(&stats);
  ASSERT_TRUE(sender.Send("poisoned payload"));
  std::string got;
  // Without the retransmit layer a CRC failure surfaces as a typed
  // corrupt verdict — never as a delivered-but-wrong payload.
  EXPECT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kCorrupt);
  EXPECT_EQ(stats.injected_corruptions.load(), 1u);
  EXPECT_EQ(stats.crc_errors.load(), 1u);
  // The link itself stays usable for clean frames.
  ASSERT_TRUE(sender.Send("clean"));
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "clean");
}

TEST_P(TransportConformanceTest, RetransmitHealsMidFrameReset) {
  ChannelPair pair = MakePair();
  WireFaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.reset_ticks = {0};  // Truncate the first sent frame mid-wire.
  FaultChannel faulty(pair.a.get(), fault, /*link_salt=*/1);
  NetFaultStats stats;
  faulty.set_fault_stats(&stats);
  Messenger sender(&faulty);
  Messenger receiver(pair.b.get());
  sender.set_fault_stats(&stats);
  sender.EnableReliable(TestReliable(fault));
  receiver.EnableReliable(TestReliable(fault));
  ASSERT_TRUE(sender.Send("survives the reset"));
  std::string got;
  ASSERT_EQ(PumpUntilDelivered(&sender, &receiver, &got), RecvStatus::kOk);
  EXPECT_EQ(got, "survives the reset");
  EXPECT_EQ(stats.injected_resets.load(), 1u);
  EXPECT_GE(stats.retransmits.load(), 1u);
}

TEST_P(TransportConformanceTest, RetransmitHealsDroppedFrame) {
  ChannelPair pair = MakePair();
  WireFaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.drop_ticks = {0};  // Swallow the first sent frame entirely.
  FaultChannel faulty(pair.a.get(), fault, /*link_salt=*/1);
  Messenger sender(&faulty);
  Messenger receiver(pair.b.get());
  sender.EnableReliable(TestReliable(fault));
  receiver.EnableReliable(TestReliable(fault));
  ASSERT_TRUE(sender.Send("survives the drop"));
  std::string got;
  ASSERT_EQ(PumpUntilDelivered(&sender, &receiver, &got), RecvStatus::kOk);
  EXPECT_EQ(got, "survives the drop");
}

TEST_P(TransportConformanceTest, WireDuplicateDeliveredExactlyOnce) {
  ChannelPair pair = MakePair();
  WireFaultConfig fault;
  fault.enabled = true;
  fault.seed = 7;
  fault.duplicate_ticks = {0};  // The first frame crosses the wire twice.
  FaultChannel faulty(pair.a.get(), fault, /*link_salt=*/1);
  NetFaultStats stats;
  faulty.set_fault_stats(&stats);
  Messenger sender(&faulty);
  Messenger receiver(pair.b.get());
  receiver.set_fault_stats(&stats);
  ASSERT_TRUE(sender.Send("once"));
  ASSERT_TRUE(sender.Send("twice"));
  std::string got;
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "once");
  ASSERT_EQ(receiver.Recv(&got, 5'000), RecvStatus::kOk);
  EXPECT_EQ(got, "twice");  // The wire-level duplicate was dropped.
  EXPECT_EQ(receiver.Recv(&got, 50), RecvStatus::kTimeout);
  EXPECT_EQ(stats.injected_duplicates.load(), 1u);
  EXPECT_EQ(stats.duplicate_frames_dropped.load(), 1u);
}

TEST_P(TransportConformanceTest, RecvOrDeadlineSurfacesTypedTimeout) {
  ChannelPair pair = MakePair();
  Messenger receiver(pair.b.get());
  std::string payload;
  const Status status = receiver.RecvOrDeadline(&payload, 80);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
}

TEST_P(TransportConformanceTest, HeartbeatIsInvisibleButRefreshesLiveness) {
  ChannelPair pair = MakePair();
  Messenger sender(pair.a.get());
  Messenger receiver(pair.b.get());
  NetFaultStats stats;
  receiver.set_fault_stats(&stats);
  ASSERT_TRUE(sender.SendHeartbeat());
  std::string got;
  // The beacon is swallowed — never surfaced as a payload — but it
  // counts, and it refreshes the watchdog's activity clock.
  EXPECT_EQ(receiver.Recv(&got, 200), RecvStatus::kTimeout);
  EXPECT_EQ(stats.heartbeats_received.load(), 1u);
  EXPECT_LT(receiver.MillisSinceActivity(), 5'000);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformanceTest,
                         ::testing::Values(TransportUnderTest::kLocal,
                                           TransportUnderTest::kShm,
                                           TransportUnderTest::kTcp),
                         TransportName);

}  // namespace
}  // namespace hetkg::net
