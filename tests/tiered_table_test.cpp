// Two-tier embedding storage tests (DESIGN.md §16): cold-row codec
// error bounds and scalar/vector bit identity, the mmap slab
// lifecycle, orphan sweeps (live slabs and checkpoint sidecars),
// fp32-tiered byte identity with the in-RAM baseline across thread
// counts, quantized thread determinism, and checkpoint resume of a
// quantized tiered run.

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/checkpoint_manager.h"
#include "core/trainer.h"
#include "embedding/adagrad.h"
#include "embedding/embedding_table.h"
#include "embedding/kernels.h"
#include "embedding/tiered_store.h"
#include "graph/synthetic.h"

namespace hetkg {
namespace {

namespace fs = std::filesystem;
namespace kernels = embedding::kernels;
using embedding::ColdDtype;
using embedding::EmbeddingTable;
using embedding::TieredOptions;

// Pid-qualified so concurrent ctest entries running this same binary
// never share a directory.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TieredOptions Tiered(const std::string& dir, ColdDtype dtype) {
  TieredOptions opts;
  opts.enabled = true;
  opts.cold_dir = dir;
  opts.dtype = dtype;
  return opts;
}

/// Restores the process-wide kernel mode on scope exit.
class ScopedKernelMode {
 public:
  explicit ScopedKernelMode(kernels::KernelMode mode)
      : saved_(kernels::ActiveMode()) {
    kernels::SetKernelMode(mode);
  }
  ~ScopedKernelMode() { kernels::SetKernelMode(saved_); }

 private:
  kernels::KernelMode saved_;
};

std::vector<float> RandomRow(size_t dim, uint64_t seed, float spread) {
  Rng rng(seed);
  std::vector<float> row(dim);
  for (float& v : row) {
    v = static_cast<float>(rng.NextUniform(-spread, spread));
  }
  return row;
}

// ---- Codec error bounds ----------------------------------------------

TEST(TieredCodecTest, Fp16RoundTripWithinHalfUlp) {
  // binary16 has 11 significand bits: RNE round-trip error is at most
  // 2^-11 relative for normal values.
  const std::vector<float> row = RandomRow(512, 7, 4.0f);
  std::vector<uint16_t> enc(row.size());
  std::vector<float> dec(row.size());
  kernels::EncodeRowFp16(row, enc.data());
  kernels::DecodeRowFp16(enc.data(), dec);
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_LE(std::fabs(dec[i] - row[i]),
              std::fabs(row[i]) * (1.0f / 2048.0f) + 1e-7f)
        << "element " << i;
  }
}

TEST(TieredCodecTest, Fp16ExactValuesSurvive) {
  // Powers of two, zero, and small integers are exactly representable.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 1024.0f, 0.25f}) {
    EXPECT_EQ(kernels::Fp16ToFloat(kernels::Fp16FromFloat(v)), v);
  }
}

TEST(TieredCodecTest, Int8RoundTripWithinHalfStep) {
  const std::vector<float> row = RandomRow(512, 9, 2.0f);
  std::vector<uint8_t> q(row.size());
  std::vector<float> dec(row.size());
  float scale = 0.0f;
  float min = 0.0f;
  kernels::EncodeRowInt8(row, q.data(), &scale, &min);
  kernels::DecodeRowInt8(q.data(), scale, min, dec);
  // Affine quantization error is bounded by half a step; allow float
  // rounding slack on top.
  const float bound = scale * 0.5f + 1e-5f;
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_LE(std::fabs(dec[i] - row[i]), bound) << "element " << i;
  }
}

TEST(TieredCodecTest, Int8ConstantRowIsExact) {
  const std::vector<float> row(64, 0.75f);
  std::vector<uint8_t> q(row.size());
  std::vector<float> dec(row.size());
  float scale = 1.0f;
  float min = 0.0f;
  kernels::EncodeRowInt8(row, q.data(), &scale, &min);
  EXPECT_EQ(scale, 0.0f);
  kernels::DecodeRowInt8(q.data(), scale, min, dec);
  for (float v : dec) {
    EXPECT_EQ(v, 0.75f);
  }
}

TEST(TieredCodecTest, ScalarAndVectorCodecsBitIdentical) {
  // The codec contract: --kernel is a pure performance knob even when
  // cold rows round-trip through fp16/int8.
  const std::vector<float> row = RandomRow(515, 11, 8.0f);  // Odd tail.
  std::vector<uint16_t> h_scalar(row.size()), h_vector(row.size());
  std::vector<uint8_t> q_scalar(row.size()), q_vector(row.size());
  std::vector<float> d_scalar(row.size()), d_vector(row.size());
  float scale_s = 0, min_s = 0, scale_v = 0, min_v = 0;
  {
    ScopedKernelMode mode(kernels::KernelMode::kScalar);
    kernels::EncodeRowFp16(row, h_scalar.data());
    kernels::EncodeRowInt8(row, q_scalar.data(), &scale_s, &min_s);
  }
  {
    ScopedKernelMode mode(kernels::KernelMode::kVector);
    kernels::EncodeRowFp16(row, h_vector.data());
    kernels::EncodeRowInt8(row, q_vector.data(), &scale_v, &min_v);
  }
  EXPECT_EQ(h_scalar, h_vector);
  EXPECT_EQ(q_scalar, q_vector);
  EXPECT_EQ(scale_s, scale_v);
  EXPECT_EQ(min_s, min_v);
  {
    ScopedKernelMode mode(kernels::KernelMode::kScalar);
    kernels::DecodeRowFp16(h_scalar.data(), d_scalar);
  }
  {
    ScopedKernelMode mode(kernels::KernelMode::kVector);
    kernels::DecodeRowFp16(h_vector.data(), d_vector);
  }
  EXPECT_EQ(std::memcmp(d_scalar.data(), d_vector.data(),
                        row.size() * sizeof(float)),
            0);
}

// ---- Mmap slab + sweep -----------------------------------------------

TEST(TieredStoreTest, MmapFileLifecycle) {
  const std::string dir = FreshDir("tier-mmap");
  const std::string path = dir + "/slab.bin";
  auto file = embedding::MmapFile::Create(path, 4096);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(file->valid());
  EXPECT_EQ(file->size(), 4096u);
  EXPECT_EQ(file->data()[0], 0);  // Zero-filled.
  file->data()[100] = 0xAB;
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_EQ(fs::file_size(path), 4096u);

  // Moving transfers ownership; the source must not unmap on destroy.
  embedding::MmapFile moved = std::move(file).value();
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.data()[100], 0xAB);
  moved.AdviseWillNeed(0, 4096);
  moved.DropResidency();
  // Dropping residency must not lose dirty data (file-backed shared).
  EXPECT_EQ(moved.data()[100], 0xAB);
}

TEST(TieredStoreTest, SweepRemovesOnlyLiveSlabSuffix) {
  const std::string dir = FreshDir("tier-sweep");
  std::ofstream(dir + "/entity.cold.tmp") << "x";
  std::ofstream(dir + "/relation.cold.tmp") << "x";
  std::ofstream(dir + "/keep.bin") << "x";
  std::ofstream(dir + "/ck-000000000005.hetkg") << "x";
  EXPECT_EQ(embedding::SweepOrphanedColdFiles(dir), 2u);
  EXPECT_FALSE(fs::exists(dir + "/entity.cold.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/keep.bin"));
  EXPECT_TRUE(fs::exists(dir + "/ck-000000000005.hetkg"));
  EXPECT_EQ(embedding::SweepOrphanedColdFiles(dir), 0u);
  EXPECT_EQ(embedding::SweepOrphanedColdFiles(dir + "/missing"), 0u);
}

TEST(TieredStoreTest, ManagerPrepareSweepsOrphanSidecars) {
  const std::string dir = FreshDir("tier-prepare");
  // A container with its sidecar (live), an orphan sidecar whose
  // container is gone, and a stale temp file.
  std::ofstream(dir + "/ck-000000000005.hetkg") << "c";
  std::ofstream(dir + "/ck-000000000005.hetkg.cold1") << "s";
  std::ofstream(dir + "/ck-000000000002.hetkg.cold1") << "o";
  std::ofstream(dir + "/ck-000000000009.hetkg.cold2.tmp") << "t";
  core::CheckpointManager manager(dir, 3);
  auto removed = manager.Prepare();
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 2u);  // The orphan sidecar + the temp file.
  EXPECT_TRUE(fs::exists(dir + "/ck-000000000005.hetkg.cold1"));
  EXPECT_FALSE(fs::exists(dir + "/ck-000000000002.hetkg.cold1"));
  EXPECT_FALSE(fs::exists(dir + "/ck-000000000009.hetkg.cold2.tmp"));
}

// ---- Tiered table semantics ------------------------------------------

TEST(TieredTableTest, Fp32TieredInitBitIdenticalToInRam) {
  const std::string dir = FreshDir("tier-fp32-init");
  EmbeddingTable ram(64, 16);
  auto tiered = EmbeddingTable::CreateTiered(
      64, 16, Tiered(dir, ColdDtype::kFp32), "entity");
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
  ASSERT_TRUE(tiered->tiered());
  ASSERT_TRUE(tiered->row_addressable());

  Rng a(99), b(99);
  ram.InitGaussian(&a, 0.1f);
  tiered->InitGaussian(&b, 0.1f);
  for (size_t i = 0; i < ram.num_rows(); ++i) {
    const auto lhs = ram.Row(i);
    const auto rhs = tiered->Row(i);
    ASSERT_EQ(std::memcmp(lhs.data(), rhs.data(),
                          lhs.size() * sizeof(float)),
              0)
        << "row " << i;
  }
  EXPECT_GT(tiered->ColdBytes(), 0u);
  EXPECT_TRUE(tiered->SyncCold().ok());
}

TEST(TieredTableTest, QuantizedReadWriteAndColdReadCounter) {
  const std::string dir = FreshDir("tier-int8-rw");
  auto table = EmbeddingTable::CreateTiered(
      8, 32, Tiered(dir, ColdDtype::kInt8), "entity");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_FALSE(table->row_addressable());
  EXPECT_EQ(table->EncodedRowBytes(), embedding::ColdRowBytes(
                                          ColdDtype::kInt8, 32));

  const std::vector<float> row = RandomRow(32, 5, 1.0f);
  table->SetRow(3, row);
  const uint64_t before = table->cold_reads();
  std::vector<float> out(32);
  table->ReadRowInto(3, out);
  EXPECT_GT(table->cold_reads(), before);

  // DecodedRow must agree bit-for-bit with ReadRowInto: both decode
  // the same stored bytes.
  const auto span = table->DecodedRow(3);
  ASSERT_EQ(span.size(), out.size());
  EXPECT_EQ(std::memcmp(span.data(), out.data(),
                        out.size() * sizeof(float)),
            0);

  // Accumulate goes through decode -> fp32 add -> re-encode; the result
  // must match hand-computing the same steps.
  std::vector<float> expect(out);
  const std::vector<float> delta = RandomRow(32, 6, 0.1f);
  for (size_t j = 0; j < expect.size(); ++j) expect[j] += delta[j];
  std::vector<uint8_t> enc(table->EncodedRowBytes());
  embedding::EncodeColdRow(ColdDtype::kInt8, expect, enc.data());
  std::vector<float> expect_dec(32);
  embedding::DecodeColdRow(ColdDtype::kInt8, enc.data(), expect_dec);
  table->AccumulateRow(3, delta);
  table->ReadRowInto(3, out);
  EXPECT_EQ(std::memcmp(out.data(), expect_dec.data(),
                        out.size() * sizeof(float)),
            0);
}

TEST(TieredTableTest, AdaGradAccumulatorStaysFp32UnderQuantizedOpts) {
  const std::string dir = FreshDir("tier-accum");
  auto opt = embedding::AdaGrad::CreateTiered(
      16, 8, 0.1, Tiered(dir, ColdDtype::kInt8), "entity.accum");
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  // The slab holds raw fp32 regardless of the cold dtype: optimizer
  // state is never quantized.
  EXPECT_EQ(opt->ColdBytes(), 16u * 8u * sizeof(float));
  std::vector<float> row(8, 0.0f);
  std::vector<float> grad(8, 0.5f);
  opt->Apply(0, row, grad);
  EXPECT_GT(opt->AccumulatorRow(0)[0], 0.0f);
  EXPECT_TRUE(opt->SyncCold().ok());
}

// ---- End-to-end training equivalence ---------------------------------

graph::SyntheticSpec TierSpec() {
  graph::SyntheticSpec spec;
  spec.name = "tiered";
  spec.num_entities = 300;
  spec.num_relations = 10;
  spec.num_triples = 2000;
  spec.seed = 77;
  return spec;
}

core::TrainerConfig TierConfig() {
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_chunk_size = 4;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.seed = 13;
  return config;
}

std::string TrainAndSaveState(const core::TrainerConfig& config,
                              const graph::SyntheticDataset& dataset,
                              const std::string& out) {
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->Train(2).ok());
  const Status saved = (*engine)->SaveTrainState(out);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return ReadFileBytes(out);
}

// The fp32 cold tier is a pure placement change: its snapshots must be
// byte-identical to the in-RAM baseline's, at every thread count.
TEST(TieredTrainingTest, Fp32SnapshotByteIdenticalToRamAcrossThreads) {
  const auto dataset = graph::GenerateDataset(TierSpec()).value();
  const std::string base = FreshDir("tier-fp32-equiv");

  core::TrainerConfig ram_config = TierConfig();
  const std::string ram_bytes =
      TrainAndSaveState(ram_config, dataset, base + "/ram.state");
  ASSERT_FALSE(ram_bytes.empty());

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string tag = std::to_string(threads);
    core::TrainerConfig config = TierConfig();
    config.num_threads = threads;
    config.storage =
        Tiered(FreshDir("tier-fp32-cold-" + tag), ColdDtype::kFp32);
    EXPECT_EQ(TrainAndSaveState(config, dataset,
                                base + "/tiered-" + tag + ".state"),
              ram_bytes);
  }
}

// Quantized cold tiers change the trajectory (rows round-trip through
// int8) but must stay deterministic: any thread count produces the same
// container and sidecar bytes.
TEST(TieredTrainingTest, QuantizedSnapshotDeterministicAcrossThreads) {
  const auto dataset = graph::GenerateDataset(TierSpec()).value();
  const std::string base = FreshDir("tier-int8-equiv");

  core::TrainerConfig ref_config = TierConfig();
  ref_config.storage = Tiered(FreshDir("tier-int8-cold-1"), ColdDtype::kInt8);
  const std::string ref_state = base + "/t1.state";
  const std::string ref_bytes =
      TrainAndSaveState(ref_config, dataset, ref_state);
  // Quantized snapshots ship the tables as cold sidecar files next to
  // the container (entity = .cold1, relation = .cold2, accumulators =
  // .cold11/.cold12).
  ASSERT_TRUE(fs::exists(ref_state + ".cold1"));
  ASSERT_TRUE(fs::exists(ref_state + ".cold11"));

  for (const size_t threads : {size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string tag = std::to_string(threads);
    core::TrainerConfig config = TierConfig();
    config.num_threads = threads;
    config.storage =
        Tiered(FreshDir("tier-int8-cold-" + tag), ColdDtype::kInt8);
    const std::string state = base + "/t" + tag + ".state";
    EXPECT_EQ(TrainAndSaveState(config, dataset, state), ref_bytes);
    EXPECT_EQ(ReadFileBytes(state + ".cold1"),
              ReadFileBytes(ref_state + ".cold1"));
    EXPECT_EQ(ReadFileBytes(state + ".cold2"),
              ReadFileBytes(ref_state + ".cold2"));
    EXPECT_EQ(ReadFileBytes(state + ".cold11"),
              ReadFileBytes(ref_state + ".cold11"));
    EXPECT_EQ(ReadFileBytes(state + ".cold12"),
              ReadFileBytes(ref_state + ".cold12"));
  }
}

// Halt + resume of a quantized tiered run ends bit-identical to an
// uninterrupted one: the sidecars round-trip the encoded slabs exactly.
TEST(TieredTrainingTest, QuantizedHaltResumeBitIdentical) {
  const auto dataset = graph::GenerateDataset(TierSpec()).value();
  const std::string base = FreshDir("tier-resume");

  core::TrainerConfig ref_config = TierConfig();
  ref_config.storage = Tiered(FreshDir("tier-resume-cold-ref"),
                              ColdDtype::kInt8);
  ref_config.checkpoint_dir = base + "/ck-ref";
  ref_config.checkpoint_every = 5;
  const std::string ref_bytes =
      TrainAndSaveState(ref_config, dataset, base + "/ref.state");

  core::TrainerConfig crash_config = TierConfig();
  crash_config.storage = Tiered(FreshDir("tier-resume-cold-crash"),
                                ColdDtype::kInt8);
  crash_config.checkpoint_dir = base + "/ck";
  crash_config.checkpoint_every = 5;
  crash_config.halt_after_iterations = 12;
  auto crashed = core::MakeEngine(core::SystemKind::kHetKgDps, crash_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(crashed->Train(2).ok());

  core::TrainerConfig resume_config = TierConfig();
  resume_config.storage = Tiered(FreshDir("tier-resume-cold-resume"),
                                 ColdDtype::kInt8);
  resume_config.checkpoint_dir = base + "/ck";
  resume_config.checkpoint_every = 5;
  auto resumed = core::MakeEngine(core::SystemKind::kHetKgDps,
                                  resume_config, dataset.graph,
                                  dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(base + "/ck").ok());
  ASSERT_TRUE(resumed->Train(2).ok());
  const Status saved = resumed->SaveTrainState(base + "/resumed.state");
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  EXPECT_EQ(ReadFileBytes(base + "/resumed.state"), ref_bytes);
}

// A tiered fp32 engine restores a snapshot written by an in-RAM run and
// vice versa: the container format is identical (HETKGCK2) in both.
TEST(TieredTrainingTest, Fp32SnapshotsInterchangeableWithRam) {
  const auto dataset = graph::GenerateDataset(TierSpec()).value();
  const std::string base = FreshDir("tier-interop");

  core::TrainerConfig ram_config = TierConfig();
  ram_config.checkpoint_dir = base + "/ck";
  ram_config.checkpoint_every = 5;
  auto ram_engine = core::MakeEngine(core::SystemKind::kHetKgDps,
                                     ram_config, dataset.graph,
                                     dataset.split.train)
                        .value();
  ASSERT_TRUE(ram_engine->Train(1).ok());
  ASSERT_TRUE(ram_engine->SaveTrainState(base + "/ram.state").ok());

  core::TrainerConfig tier_config = TierConfig();
  tier_config.storage = Tiered(FreshDir("tier-interop-cold"),
                               ColdDtype::kFp32);
  auto tier_engine = core::MakeEngine(core::SystemKind::kHetKgDps,
                                      tier_config, dataset.graph,
                                      dataset.split.train)
                         .value();
  ASSERT_TRUE(tier_engine->RestoreTrainState(base + "/ram.state").ok());
  ASSERT_TRUE(tier_engine->SaveTrainState(base + "/tier.state").ok());
  EXPECT_EQ(ReadFileBytes(base + "/tier.state"),
            ReadFileBytes(base + "/ram.state"));
}

// PBG trains partition-at-a-time in one process and must reject the
// tiered flag instead of silently ignoring it.
TEST(TieredTrainingTest, PbgRejectsTieredStorage) {
  const auto dataset = graph::GenerateDataset(TierSpec()).value();
  core::TrainerConfig config = TierConfig();
  config.pbg_partitions = 4;
  config.storage = Tiered(FreshDir("tier-pbg"), ColdDtype::kFp32);
  auto engine = core::MakeEngine(core::SystemKind::kPbg, config,
                                 dataset.graph, dataset.split.train);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hetkg
