// Edge cases across module boundaries that the per-module suites do not
// reach.
#include <gtest/gtest.h>

#include "core/hot_filter.h"
#include "core/prefetcher.h"
#include "core/trainer.h"
#include "graph/synthetic.h"
#include "partition/bucketizer.h"

namespace hetkg {
namespace {

TEST(FilterEdgeTest, EmptyFrequencyMapYieldsEmptyHotSet) {
  core::FrequencyMap empty;
  const core::FilterOptions options{64, 0.25, true};
  const auto quota = core::ComputeQuota(options, 100, 100);
  EXPECT_TRUE(core::FilterHotKeys(empty, options, quota).empty());
  EXPECT_EQ(core::PredictedHitRatio(empty, {}, 0), 0.0);
}

TEST(FilterEdgeTest, CapacityZeroCachesNothing) {
  core::FrequencyMap freq;
  freq[EntityKey(1)] = 10;
  const core::FilterOptions options{0, 0.25, true};
  const auto quota = core::ComputeQuota(options, 100, 100);
  EXPECT_EQ(quota.entity_slots + quota.relation_slots, 0u);
  EXPECT_TRUE(core::FilterHotKeys(freq, options, quota).empty());
}

TEST(PrefetcherEdgeTest, SingleTripleDataset) {
  const std::vector<Triple> one = {{0, 0, 1}};
  embedding::UniformNegativeSampler sampler(5, 2, 1);
  core::Prefetcher prefetcher(&one, 8, &sampler, 2);
  EXPECT_EQ(prefetcher.IterationsPerEpoch(), 1u);
  const auto window = prefetcher.Prefetch(3);  // Wraps twice.
  ASSERT_EQ(window.batches.size(), 3u);
  for (const auto& batch : window.batches) {
    ASSERT_EQ(batch.positives.size(), 1u);
    EXPECT_EQ(batch.positives[0], one[0]);
  }
}

TEST(BucketizerEdgeTest, SinglePartitionSingleBucket) {
  std::vector<Triple> triples = {{0, 0, 1}, {1, 0, 2}};
  const auto g =
      graph::KnowledgeGraph::Create(3, 1, triples, "tiny").value();
  partition::PbgBucketizer bucketizer(1);
  const auto plan = bucketizer.Build(g, 1, 1).value();
  ASSERT_EQ(plan.bucket_triples.size(), 1u);
  EXPECT_EQ(plan.bucket_triples[0].size(), 2u);
  ASSERT_EQ(plan.schedule.size(), 1u);
  EXPECT_EQ(plan.schedule[0].size(), 1u);
}

TEST(EngineEdgeTest, TwoEntityGraphTrains) {
  // The minimum viable knowledge graph: two entities, one relation.
  std::vector<Triple> triples;
  for (int i = 0; i < 40; ++i) {
    triples.push_back({0, 0, 1});
  }
  const auto g =
      graph::KnowledgeGraph::Create(2, 1, triples, "minimal").value();
  core::TrainerConfig config;
  config.dim = 4;
  config.batch_size = 8;
  config.negatives_per_positive = 1;
  config.num_machines = 2;
  config.cache_capacity = 2;
  auto engine =
      core::MakeEngine(core::SystemKind::kHetKgCps, config, g, triples);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto report = (*engine)->Train(2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epochs.size(), 2u);
}

TEST(EngineEdgeTest, MoreMachinesThanUsefulStillRuns) {
  graph::SyntheticSpec spec;
  spec.num_entities = 50;
  spec.num_relations = 3;
  spec.num_triples = 200;
  spec.seed = 4;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 4;
  config.batch_size = 4;
  config.negatives_per_positive = 2;
  config.num_machines = 8;  // 25 triples per worker.
  config.cache_capacity = 8;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->Train(1).ok());
}

TEST(EngineEdgeTest, DpsWindowOfOneRebuildsEveryIteration) {
  graph::SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 4;
  spec.num_triples = 600;
  spec.seed = 9;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 4;
  config.batch_size = 16;
  config.negatives_per_positive = 2;
  config.num_machines = 2;
  config.cache_capacity = 16;
  config.sync.dps_window = 1;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  auto report = engine->Train(1).value();
  // Every iteration of every worker rebuilds.
  const uint64_t rebuilds = report.metrics.Get(metric::kCacheRebuilds);
  EXPECT_GT(rebuilds, 2u * 10u);
}

TEST(EngineEdgeTest, StalenessLargerThanEpochNeverRefreshesWithinIt) {
  graph::SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 4;
  spec.num_triples = 600;
  spec.seed = 10;
  const auto dataset = graph::GenerateDataset(spec).value();
  core::TrainerConfig config;
  config.dim = 4;
  config.batch_size = 16;
  config.negatives_per_positive = 2;
  config.num_machines = 2;
  config.cache_capacity = 16;
  config.sync.staleness_bound = 1000000;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  auto report = engine->Train(1).value();
  EXPECT_EQ(report.metrics.Get(metric::kCacheRefreshRows), 0u);
}

}  // namespace
}  // namespace hetkg
