// MetricRegistry v2 (counters + gauges + histograms) and Histogram
// edge-case semantics, including the SnapshotJson contract that the
// obs/ metrics exporter builds on.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/metrics.h"
#include "obs/json.h"

namespace hetkg {
namespace {

TEST(MetricRegistryTest, MergeSumsDisjointCounters) {
  MetricRegistry a;
  MetricRegistry b;
  a.Increment("x", 3);
  b.Increment("y", 5);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 3u);
  EXPECT_EQ(a.Get("y"), 5u);
  EXPECT_EQ(a.Snapshot().size(), 2u);
  // The source registry is untouched.
  EXPECT_EQ(b.Get("x"), 0u);
  EXPECT_EQ(b.Get("y"), 5u);
}

TEST(MetricRegistryTest, MergeOverlappingCountersGaugesHistograms) {
  MetricRegistry a;
  MetricRegistry b;
  a.Increment("n", 2);
  b.Increment("n", 7);
  a.SetGauge("g", 1.0);
  b.SetGauge("g", 4.0);
  a.Observe("h", 1.0);
  a.Observe("h", 3.0);
  b.Observe("h", 5.0);
  a.Merge(b);

  // Counters sum, gauges take the incoming value, histograms pool.
  EXPECT_EQ(a.Get("n"), 9u);
  EXPECT_EQ(a.GetGauge("g"), 4.0);
  const Histogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 9.0);
  EXPECT_EQ(h->min(), 1.0);
  EXPECT_EQ(h->max(), 5.0);
}

TEST(MetricRegistryTest, ClearZeroesButPreservesNames) {
  MetricRegistry m;
  m.Increment("c", 10);
  m.SetGauge("g", 2.5);
  m.Observe("h", 8.0);
  m.Clear();

  const auto counters = m.Snapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "c");
  EXPECT_EQ(counters[0].second, 0u);

  const auto gauges = m.GaugeSnapshot();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].first, "g");
  EXPECT_EQ(gauges[0].second, 0.0);

  const Histogram* h = m.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricRegistryTest, SnapshotJsonGolden) {
  MetricRegistry m;
  m.Increment("b.count", 2);
  m.Increment("a.count", 1);
  m.SetGauge("ratio", 0.5);
  m.Observe("lat", 4.0);

  // Maps iterate in key order, numbers use to_chars shortest form, so
  // the rendering is fully deterministic.
  EXPECT_EQ(m.SnapshotJson(),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"ratio\":0.5},"
            "\"histograms\":{\"lat\":{\"count\":1,\"sum\":4,\"min\":4,"
            "\"max\":4,\"mean\":4,\"p50\":4,\"p95\":4,\"p99\":4}}}");
}

TEST(MetricRegistryTest, SnapshotJsonParsesBack) {
  MetricRegistry m;
  m.Increment("ps.pulls", 42);
  m.SetGauge("cache.hit_ratio", 0.875);
  m.Observe("ps.pull_sim_seconds", 0.25);
  m.Observe("ps.pull_sim_seconds", 0.75);

  auto parsed = obs::ParseJson(m.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  const obs::JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* pulls = counters->Find("ps.pulls");
  ASSERT_NE(pulls, nullptr);
  EXPECT_EQ(pulls->number, 42.0);
  const obs::JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("cache.hit_ratio")->number, 0.875);
  const obs::JsonValue* hist = parsed->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const obs::JsonValue* lat = hist->Find("ps.pull_sim_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->number, 2.0);
  EXPECT_EQ(lat->Find("sum")->number, 1.0);
}

TEST(MetricRegistryTest, SnapshotStaysCountersOnly) {
  // The determinism tests compare Snapshot() across runs; gauges and
  // histograms (which may carry wall-clock-derived values) must never
  // leak into it.
  MetricRegistry m;
  m.Increment("c", 1);
  m.SetGauge("g", 2.0);
  m.Observe("h", 3.0);
  const auto snapshot = m.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "c");
}

TEST(HistogramEdgeTest, EmptyHistogramReportsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramEdgeTest, SingleSampleQuantilesStayInItsBucket) {
  Histogram h;
  h.Add(6.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 6.0);
  EXPECT_EQ(h.max(), 6.0);
  EXPECT_EQ(h.Mean(), 6.0);
  // 6 lands in the [4, 8) bucket; every quantile must interpolate
  // inside it.
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, 4.0) << "q=" << q;
    EXPECT_LE(v, 8.0) << "q=" << q;
  }
}

TEST(HistogramEdgeTest, AllEqualSamplesShareOneBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(16.0);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 16.0);
  EXPECT_EQ(h.max(), 16.0);
  EXPECT_EQ(h.Mean(), 16.0);
  // 16 is the lower edge of [16, 32); p50 and p99 may interpolate
  // within the bucket but can never leave it.
  EXPECT_GE(h.Quantile(0.5), 16.0);
  EXPECT_LE(h.Quantile(0.5), 32.0);
  EXPECT_GE(h.Quantile(0.99), 16.0);
  EXPECT_LE(h.Quantile(0.99), 32.0);
}

TEST(HistogramEdgeTest, QuantileClampsOutOfRangeArguments) {
  Histogram h;
  h.Add(2.0);
  EXPECT_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(2.0), h.Quantile(1.0));
}

}  // namespace
}  // namespace hetkg
