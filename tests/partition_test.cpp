#include "partition/partitioner.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/synthetic.h"
#include "partition/bucketizer.h"
#include "partition/metis_partitioner.h"

namespace hetkg::partition {
namespace {

graph::KnowledgeGraph CommunityGraph(size_t communities, size_t per_comm,
                                     size_t intra_edges, size_t inter_edges,
                                     uint64_t seed) {
  // Dense communities with sparse cross edges — the structure a min-cut
  // partitioner must discover.
  hetkg::Rng rng(seed);
  std::vector<Triple> triples;
  const size_t n = communities * per_comm;
  for (size_t c = 0; c < communities; ++c) {
    for (size_t e = 0; e < intra_edges; ++e) {
      const EntityId a = static_cast<EntityId>(c * per_comm +
                                               rng.NextBounded(per_comm));
      const EntityId b = static_cast<EntityId>(c * per_comm +
                                               rng.NextBounded(per_comm));
      if (a == b) continue;
      triples.push_back({a, 0, b});
    }
  }
  for (size_t e = 0; e < inter_edges; ++e) {
    const EntityId a = static_cast<EntityId>(rng.NextBounded(n));
    const EntityId b = static_cast<EntityId>(rng.NextBounded(n));
    if (a == b) continue;
    triples.push_back({a, 1, b});
  }
  return graph::KnowledgeGraph::Create(n, 2, triples, "community").value();
}

TEST(RandomPartitionerTest, CoversAllPartsRoughlyEvenly) {
  const auto g = CommunityGraph(4, 50, 300, 20, 1);
  RandomPartitioner partitioner(7);
  const auto parts = partitioner.Partition(g, 4).value();
  ASSERT_EQ(parts.entity_part.size(), g.num_entities());
  const auto stats = ComputePartitionStats(g, parts);
  EXPECT_LT(stats.balance, 1.5);
  for (uint64_t count : stats.part_entities) {
    EXPECT_GT(count, 0u);
  }
}

TEST(RandomPartitionerTest, RejectsZeroParts) {
  const auto g = CommunityGraph(2, 10, 30, 5, 2);
  RandomPartitioner partitioner(7);
  EXPECT_FALSE(partitioner.Partition(g, 0).ok());
}

TEST(MetisPartitionerTest, RecoversCommunityStructure) {
  const auto g = CommunityGraph(4, 64, 800, 40, 3);
  MetisPartitioner metis;
  const auto parts = metis.Partition(g, 4).value();
  const auto stats = ComputePartitionStats(g, parts);
  // Balanced within the configured slack (+ a little for granularity).
  EXPECT_LT(stats.balance, 1.20);
  // Cut is dominated by the sparse inter-community edges.
  EXPECT_LT(stats.cut_fraction, 0.15);
}

TEST(MetisPartitionerTest, BeatsRandomOnCut) {
  const auto g = CommunityGraph(8, 40, 400, 80, 4);
  MetisPartitioner metis;
  RandomPartitioner random(5);
  const auto metis_stats =
      ComputePartitionStats(g, metis.Partition(g, 4).value());
  const auto random_stats =
      ComputePartitionStats(g, random.Partition(g, 4).value());
  EXPECT_LT(metis_stats.cut_triples, random_stats.cut_triples / 2);
}

TEST(MetisPartitionerTest, SinglePartIsTrivial) {
  const auto g = CommunityGraph(2, 20, 60, 10, 6);
  MetisPartitioner metis;
  const auto parts = metis.Partition(g, 1).value();
  for (uint32_t p : parts.entity_part) {
    EXPECT_EQ(p, 0u);
  }
  EXPECT_EQ(ComputePartitionStats(g, parts).cut_triples, 0u);
}

TEST(MetisPartitionerTest, WorksOnLargerSyntheticGraph) {
  graph::SyntheticSpec spec;
  spec.num_entities = 5000;
  spec.num_relations = 20;
  spec.num_triples = 40000;
  spec.planted_structure = false;  // Speed; structure irrelevant here.
  spec.seed = 9;
  const auto g = graph::GenerateSynthetic(spec).value();
  MetisPartitioner metis;
  RandomPartitioner random(1);
  const auto metis_stats =
      ComputePartitionStats(g, metis.Partition(g, 4).value());
  const auto random_stats =
      ComputePartitionStats(g, random.Partition(g, 4).value());
  // Power-law graphs do not cut as cleanly as planted communities, but
  // multilevel KL must still beat random clearly.
  EXPECT_LT(metis_stats.cut_fraction, random_stats.cut_fraction * 0.9);
  EXPECT_LT(metis_stats.balance, 1.25);
}

TEST(AssignTriplesTest, EveryTripleAssignedToAnEndpointPart) {
  const auto g = CommunityGraph(4, 30, 200, 30, 8);
  MetisPartitioner metis;
  const auto parts = metis.Partition(g, 4).value();
  const auto assignment = AssignTriples(g, parts);
  ASSERT_EQ(assignment.size(), 4u);
  size_t total = 0;
  for (size_t w = 0; w < assignment.size(); ++w) {
    total += assignment[w].size();
    for (const Triple& t : assignment[w]) {
      const bool local = parts.entity_part[t.head] == w ||
                         parts.entity_part[t.tail] == w;
      EXPECT_TRUE(local);
    }
  }
  EXPECT_EQ(total, g.num_triples());
}

TEST(AssignTriplesTest, LoadIsBalanced) {
  const auto g = CommunityGraph(4, 50, 500, 60, 10);
  MetisPartitioner metis;
  const auto parts = metis.Partition(g, 4).value();
  const auto assignment = AssignTriples(g, parts);
  size_t min_load = SIZE_MAX;
  size_t max_load = 0;
  for (const auto& list : assignment) {
    min_load = std::min(min_load, list.size());
    max_load = std::max(max_load, list.size());
  }
  EXPECT_LT(max_load, 2 * min_load + 10);
}

TEST(BucketizerTest, BucketsPartitionTheTriples) {
  const auto g = CommunityGraph(4, 40, 300, 40, 11);
  PbgBucketizer bucketizer(3);
  const auto plan = bucketizer.Build(g, 4, 2).value();
  size_t total = 0;
  for (size_t b = 0; b < plan.bucket_triples.size(); ++b) {
    const uint32_t i = static_cast<uint32_t>(b / plan.num_partitions);
    const uint32_t j = static_cast<uint32_t>(b % plan.num_partitions);
    for (const Triple& t : plan.bucket_triples[b]) {
      EXPECT_EQ(plan.entity_part[t.head], i);
      EXPECT_EQ(plan.entity_part[t.tail], j);
    }
    total += plan.bucket_triples[b].size();
  }
  EXPECT_EQ(total, g.num_triples());
}

TEST(BucketizerTest, ScheduleRoundsHaveDisjointPartitions) {
  const auto g = CommunityGraph(6, 30, 250, 50, 12);
  PbgBucketizer bucketizer(4);
  const auto plan = bucketizer.Build(g, 6, 3).value();
  size_t scheduled = 0;
  for (const auto& round : plan.schedule) {
    EXPECT_LE(round.size(), 3u);
    std::unordered_set<uint32_t> locked;
    for (uint32_t b : round) {
      const uint32_t i = b / plan.num_partitions;
      const uint32_t j = b % plan.num_partitions;
      EXPECT_TRUE(locked.insert(i).second);
      if (j != i) {
        EXPECT_TRUE(locked.insert(j).second);
      }
      ++scheduled;
    }
  }
  // Every non-empty bucket appears exactly once across the schedule.
  size_t nonempty = 0;
  for (const auto& bucket : plan.bucket_triples) {
    if (!bucket.empty()) ++nonempty;
  }
  EXPECT_EQ(scheduled, nonempty);
}

TEST(BucketizerTest, RejectsInvalidArguments) {
  const auto g = CommunityGraph(2, 10, 40, 5, 13);
  PbgBucketizer bucketizer(1);
  EXPECT_FALSE(bucketizer.Build(g, 0, 2).ok());
  EXPECT_FALSE(bucketizer.Build(g, 4, 0).ok());
}

}  // namespace
}  // namespace hetkg::partition
