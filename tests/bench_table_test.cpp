// bench::Table rendering: column widths must be computed over all rows
// (not just headers), and ToCsv must follow RFC 4180 quoting. Also
// covers the per-run output-path suffixing used by multi-system benches.
#include <gtest/gtest.h>

#include <string>

#include "harness.h"

namespace hetkg::bench {
namespace {

TEST(BenchTableTest, AlignsColumnsToWidestCell) {
  Table table({"S", "Value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-system-name", "2"});
  const std::string out = table.ToString();

  // Every rendered line is equally wide: widths come from the widest
  // cell of each column across headers AND rows.
  size_t line_length = std::string::npos;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    if (line_length == std::string::npos) {
      line_length = eol - pos;
    } else {
      EXPECT_EQ(eol - pos, line_length) << out;
    }
    pos = eol + 1;
  }
  EXPECT_NE(out.find("a-much-longer-system-name"), std::string::npos);
}

TEST(BenchTableTest, ToCsvQuotesOnlyWhenNeeded) {
  Table table({"System", "Note"});
  table.AddRow({"plain", "no quoting needed"});
  table.AddRow({"with,comma", "say \"hi\""});
  table.AddRow({"multi\nline", "trailing"});
  EXPECT_EQ(table.ToCsv(),
            "System,Note\n"
            "plain,no quoting needed\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n"
            "\"multi\nline\",trailing\n");
}

TEST(BenchTableTest, ToCsvEmptyTableIsJustHeaders) {
  Table table({"A", "B"});
  EXPECT_EQ(table.ToCsv(), "A,B\n");
}

TEST(BenchPathTest, SuffixedPathInsertsBeforeExtension) {
  EXPECT_EQ(SuffixedPath("run.json", "cps"), "run_cps.json");
  EXPECT_EQ(SuffixedPath("/tmp/out/run.json", "cps"), "/tmp/out/run_cps.json");
  EXPECT_EQ(SuffixedPath("noext", "cps"), "noext_cps");
  // A dot inside a directory name is not an extension.
  EXPECT_EQ(SuffixedPath("/tmp/v1.2/run", "cps"), "/tmp/v1.2/run_cps");
  // Disabled outputs (empty paths) stay disabled.
  EXPECT_EQ(SuffixedPath("", "cps"), "");
  EXPECT_EQ(SuffixedPath("run.json", ""), "run.json");
}

}  // namespace
}  // namespace hetkg::bench
