#include "embedding/score_function.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hetkg::embedding {
namespace {

/// Numerically checks ScoreBackward against central finite differences
/// for every parameter of h, r, and t. This is the load-bearing
/// correctness test for the hand-derived gradients: a wrong sign or a
/// missing chain-rule term fails it immediately.
void CheckGradients(ModelKind kind, size_t dim, uint64_t seed,
                    double tolerance = 2e-3) {
  auto fn_result = MakeScoreFunction(kind, dim);
  ASSERT_TRUE(fn_result.ok()) << fn_result.status().ToString();
  const auto& fn = *fn_result.value();
  const size_t rdim = fn.RelationDim(dim);

  Rng rng(seed);
  std::vector<float> h(dim);
  std::vector<float> r(rdim);
  std::vector<float> t(dim);
  for (auto& v : h) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  for (auto& v : r) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  for (auto& v : t) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));

  const double upstream = 1.7;
  std::vector<float> gh(dim, 0.0f);
  std::vector<float> gr(rdim, 0.0f);
  std::vector<float> gt(dim, 0.0f);
  fn.ScoreBackward(h, r, t, upstream, gh, gr, gt);

  const double eps = 1e-3;
  auto numeric = [&](std::vector<float>* param, size_t i) {
    const float saved = (*param)[i];
    (*param)[i] = saved + static_cast<float>(eps);
    const double plus = fn.Score(h, r, t);
    (*param)[i] = saved - static_cast<float>(eps);
    const double minus = fn.Score(h, r, t);
    (*param)[i] = saved;
    return upstream * (plus - minus) / (2.0 * eps);
  };

  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(gh[i], numeric(&h, i), tolerance)
        << "dh[" << i << "] for " << fn.name();
    EXPECT_NEAR(gt[i], numeric(&t, i), tolerance)
        << "dt[" << i << "] for " << fn.name();
  }
  for (size_t i = 0; i < rdim; ++i) {
    EXPECT_NEAR(gr[i], numeric(&r, i), tolerance)
        << "dr[" << i << "] for " << fn.name();
  }
}

class GradientCheckTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(GradientCheckTest, MatchesFiniteDifferences) {
  CheckGradients(GetParam(), 8, 101);
  CheckGradients(GetParam(), 16, 202);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, GradientCheckTest,
    ::testing::Values(ModelKind::kTransEL1, ModelKind::kTransEL2,
                      ModelKind::kDistMult, ModelKind::kComplEx,
                      ModelKind::kTransH, ModelKind::kTransR,
                      ModelKind::kTransD, ModelKind::kHolE,
                      ModelKind::kRescal),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      std::string name(ModelKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScoreFunctionTest, TransEPerfectTripleScoresZero) {
  auto fn = MakeScoreFunction(ModelKind::kTransEL2, 4).value();
  std::vector<float> h = {1.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> r = {0.0f, 1.0f, 0.0f, 0.0f};
  std::vector<float> t = {1.0f, 1.0f, 0.0f, 0.0f};  // t = h + r.
  EXPECT_NEAR(fn->Score(h, r, t), 0.0, 1e-9);
  // Any perturbation lowers the score.
  t[0] = 2.0f;
  EXPECT_LT(fn->Score(h, r, t), -0.5);
}

TEST(ScoreFunctionTest, TransEL1UsesManhattanDistance) {
  auto fn = MakeScoreFunction(ModelKind::kTransEL1, 2).value();
  std::vector<float> h = {0.0f, 0.0f};
  std::vector<float> r = {0.0f, 0.0f};
  std::vector<float> t = {3.0f, 4.0f};
  EXPECT_NEAR(fn->Score(h, r, t), -7.0, 1e-6);
  auto l2 = MakeScoreFunction(ModelKind::kTransEL2, 2).value();
  EXPECT_NEAR(l2->Score(h, r, t), -5.0, 1e-6);
}

TEST(ScoreFunctionTest, DistMultIsSymmetricInHeadTail) {
  auto fn = MakeScoreFunction(ModelKind::kDistMult, 8).value();
  Rng rng(5);
  std::vector<float> h(8), r(8), t(8);
  for (auto& v : h) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : r) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : t) v = static_cast<float>(rng.NextGaussian());
  EXPECT_NEAR(fn->Score(h, r, t), fn->Score(t, r, h), 1e-9);
}

TEST(ScoreFunctionTest, ComplExModelsAsymmetricRelations) {
  auto fn = MakeScoreFunction(ModelKind::kComplEx, 8).value();
  Rng rng(6);
  std::vector<float> h(8), r(8), t(8);
  for (auto& v : h) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : r) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : t) v = static_cast<float>(rng.NextGaussian());
  EXPECT_GT(std::fabs(fn->Score(h, r, t) - fn->Score(t, r, h)), 1e-4);
}

TEST(ScoreFunctionTest, ComplExRejectsOddDimension) {
  auto fn = MakeScoreFunction(ModelKind::kComplEx, 7);
  EXPECT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScoreFunctionTest, TransHInvariantToInPlaneTranslationOfNormal) {
  // Scaling w must not change the score (w is normalized internally).
  auto fn = MakeScoreFunction(ModelKind::kTransH, 4).value();
  Rng rng(7);
  std::vector<float> h(4), r(8), t(4);
  for (auto& v : h) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : r) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : t) v = static_cast<float>(rng.NextGaussian());
  const double base = fn->Score(h, r, t);
  for (size_t i = 0; i < 4; ++i) r[i] *= 3.0f;  // Scale w half only.
  EXPECT_NEAR(fn->Score(h, r, t), base, 1e-5);
}

TEST(ScoreFunctionTest, RescalRelationDimIsSquared) {
  auto fn = MakeScoreFunction(ModelKind::kRescal, 6).value();
  EXPECT_EQ(fn->RelationDim(6), 36u);
}

TEST(ScoreFunctionTest, RescalIdentityMatrixGivesDotProduct) {
  auto fn = MakeScoreFunction(ModelKind::kRescal, 3).value();
  std::vector<float> h = {1.0f, 2.0f, 3.0f};
  std::vector<float> t = {4.0f, 5.0f, 6.0f};
  std::vector<float> m(9, 0.0f);
  m[0] = m[4] = m[8] = 1.0f;
  EXPECT_NEAR(fn->Score(h, m, t), 32.0, 1e-6);
}

TEST(ScoreFunctionTest, ParseAndNameRoundTrip) {
  for (auto kind : {ModelKind::kTransEL1, ModelKind::kTransEL2,
                    ModelKind::kDistMult, ModelKind::kComplEx,
                    ModelKind::kTransH, ModelKind::kRescal}) {
    auto fn = MakeScoreFunction(kind, 8).value();
    EXPECT_EQ(fn->kind(), kind);
    EXPECT_FALSE(fn->name().empty());
  }
  EXPECT_EQ(*ParseModelKind("transe"), ModelKind::kTransEL1);
  EXPECT_EQ(*ParseModelKind("distmult"), ModelKind::kDistMult);
  EXPECT_FALSE(ParseModelKind("conveMist").ok());
}

TEST(ScoreFunctionTest, FlopsEstimatesArePositiveAndScaleWithDim) {
  for (auto kind : {ModelKind::kTransEL1, ModelKind::kDistMult,
                    ModelKind::kComplEx, ModelKind::kTransH,
                    ModelKind::kRescal}) {
    auto fn = MakeScoreFunction(kind, 8).value();
    EXPECT_GT(fn->FlopsPerTriple(8), 0u);
    EXPECT_GT(fn->FlopsPerTriple(64), fn->FlopsPerTriple(8));
  }
}

}  // namespace
}  // namespace hetkg::embedding
