// Crash-recovery tests (DESIGN.md §9): halt + resume bit-identity at
// several thread counts, resume under active message faults, in-sim
// worker-crash / PS-shard-restart determinism, manifest fallback on a
// corrupt snapshot, and PBG epoch-granularity resume.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>

#include <gtest/gtest.h>

#include "core/checkpoint_manager.h"
#include "core/trainer.h"
#include "graph/synthetic.h"
#include "sim/transport.h"

namespace hetkg {
namespace {

// Pid-qualified so concurrent ctest entries running this same binary
// (hetkg_tests and hetkg_recovery_tests) never share a directory.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

void FlipByte(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(offset));
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
}

graph::SyntheticSpec SmallSpec() {
  graph::SyntheticSpec spec;
  spec.name = "recovery";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 1500;
  spec.seed = 33;
  return spec;
}

core::TrainerConfig RecoveryConfig() {
  core::TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_chunk_size = 4;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.seed = 21;
  return config;
}

/// Byte-exact serialization of the trained global embeddings — the
/// headline invariant compares these across runs.
std::string EmbeddingBytes(const eval::EmbeddingLookup& emb) {
  std::string bytes;
  const auto append = [&bytes](std::span<const float> row) {
    bytes.append(reinterpret_cast<const char*>(row.data()),
                 row.size() * sizeof(float));
  };
  for (size_t i = 0; i < emb.num_entities(); ++i) {
    append(emb.Entity(static_cast<EntityId>(i)));
  }
  for (size_t i = 0; i < emb.num_relations(); ++i) {
    append(emb.Relation(static_cast<RelationId>(i)));
  }
  return bytes;
}

void ExpectReportsMatch(const core::TrainReport& a,
                        const core::TrainReport& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].mean_loss, b.epochs[e].mean_loss);
    EXPECT_DOUBLE_EQ(a.epochs[e].cumulative_seconds,
                     b.epochs[e].cumulative_seconds);
  }
  EXPECT_EQ(a.metrics.Snapshot(), b.metrics.Snapshot());
}

// A run halted mid-epoch (simulated hard crash) and resumed from its
// checkpoint directory must end bit-identical to an uninterrupted run
// with the same snapshot schedule, at any compute-thread count.
TEST(RecoveryTest, HaltResumeBitIdenticalAcrossThreads) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  // Uninterrupted reference; checkpoints on (different directory) so
  // the checkpoint.* counters in the metric snapshots are comparable.
  core::TrainerConfig ref_config = RecoveryConfig();
  ref_config.checkpoint_dir = FreshDir("rec-threads-ref");
  ref_config.checkpoint_every = 5;
  auto ref_engine = core::MakeEngine(core::SystemKind::kHetKgDps, ref_config,
                                     dataset.graph, dataset.split.train)
                        .value();
  const auto reference = ref_engine->Train(2).value();
  const std::string ref_bytes = EmbeddingBytes(ref_engine->Embeddings());

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir =
        FreshDir("rec-threads-" + std::to_string(threads));

    core::TrainerConfig crash_config = RecoveryConfig();
    crash_config.num_threads = threads;
    crash_config.checkpoint_dir = dir;
    crash_config.checkpoint_every = 5;
    crash_config.halt_after_iterations = 12;
    auto crashed =
        core::MakeEngine(core::SystemKind::kHetKgDps, crash_config,
                         dataset.graph, dataset.split.train)
            .value();
    ASSERT_TRUE(crashed->Train(2).ok());

    core::TrainerConfig resume_config = RecoveryConfig();
    resume_config.num_threads = threads;
    resume_config.checkpoint_dir = dir;
    resume_config.checkpoint_every = 5;
    auto resumed =
        core::MakeEngine(core::SystemKind::kHetKgDps, resume_config,
                         dataset.graph, dataset.split.train)
            .value();
    ASSERT_TRUE(resumed->RestoreTrainState(dir).ok());
    EXPECT_EQ(resumed->RecoveryMetrics().Get(metric::kCheckpointRestores),
              1u);
    const auto report = resumed->Train(2).value();

    EXPECT_EQ(EmbeddingBytes(resumed->Embeddings()), ref_bytes);
    ExpectReportsMatch(report, reference);
  }
}

// With no checkpoint directory configured, training must stay
// bit-identical to a checkpointing run — saving snapshots takes no
// branch that perturbs the model.
TEST(RecoveryTest, CheckpointingDoesNotPerturbTraining) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  auto plain = core::MakeEngine(core::SystemKind::kHetKgCps,
                                RecoveryConfig(), dataset.graph,
                                dataset.split.train)
                   .value();
  const auto plain_report = plain->Train(2).value();

  core::TrainerConfig ck_config = RecoveryConfig();
  ck_config.checkpoint_dir = FreshDir("rec-perturb");
  ck_config.checkpoint_every = 5;
  ck_config.keep_checkpoints = 2;
  auto checkpointed = core::MakeEngine(core::SystemKind::kHetKgCps,
                                       ck_config, dataset.graph,
                                       dataset.split.train)
                          .value();
  const auto ck_report = checkpointed->Train(2).value();

  EXPECT_EQ(EmbeddingBytes(plain->Embeddings()),
            EmbeddingBytes(checkpointed->Embeddings()));
  ASSERT_EQ(plain_report.epochs.size(), ck_report.epochs.size());
  for (size_t e = 0; e < plain_report.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(plain_report.epochs[e].mean_loss,
                     ck_report.epochs[e].mean_loss);
  }
  EXPECT_GT(ck_report.metrics.Get(metric::kCheckpointSaves), 0u);
  EXPECT_GT(ck_report.metrics.Get(metric::kCheckpointBytes), 0u);
}

// Halt + resume while the transport is actively dropping and delaying
// messages: the fault plan is pure-function-of-seed state that the
// snapshot carries, so the resumed run replays the exact fault
// decisions of the uninterrupted one.
TEST(RecoveryTest, ResumeUnderMessageFaultsBitIdentical) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  core::TrainerConfig base = RecoveryConfig();
  base.fault.enabled = true;
  base.fault.seed = 77;
  base.fault.drop_prob = 0.05;
  base.checkpoint_every = 5;

  core::TrainerConfig ref_config = base;
  ref_config.checkpoint_dir = FreshDir("rec-faulty-ref");
  auto ref_engine = core::MakeEngine(core::SystemKind::kHetKgCps, ref_config,
                                     dataset.graph, dataset.split.train)
                        .value();
  const auto reference = ref_engine->Train(2).value();
  EXPECT_GT(reference.metrics.Get(metric::kTransportDroppedMessages), 0u);

  const std::string dir = FreshDir("rec-faulty");
  core::TrainerConfig crash_config = base;
  crash_config.checkpoint_dir = dir;
  crash_config.halt_after_iterations = 12;
  auto crashed = core::MakeEngine(core::SystemKind::kHetKgCps, crash_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(crashed->Train(2).ok());

  core::TrainerConfig resume_config = base;
  resume_config.checkpoint_dir = dir;
  auto resumed = core::MakeEngine(core::SystemKind::kHetKgCps, resume_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(dir).ok());
  const auto report = resumed->Train(2).value();

  EXPECT_EQ(EmbeddingBytes(resumed->Embeddings()),
            EmbeddingBytes(ref_engine->Embeddings()));
  ExpectReportsMatch(report, reference);
}

// An in-sim worker crash recovered from a checkpoint is deterministic:
// the same schedule replayed twice (fresh directories) produces
// identical embeddings and metric snapshots.
TEST(RecoveryTest, WorkerCrashRecoveryIsDeterministic) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  const auto run = [&dataset](const std::string& dir) {
    core::TrainerConfig config = RecoveryConfig();
    config.checkpoint_dir = FreshDir(dir);
    config.checkpoint_every = 5;
    sim::ProcessFault crash;
    crash.kind = sim::ProcessFaultKind::kWorkerCrash;
    crash.machine = 1;
    crash.tick = 150;
    config.fault.process_faults.push_back(crash);
    auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    return std::make_pair(EmbeddingBytes(engine->Embeddings()),
                          std::move(report));
  };

  const auto [bytes_a, report_a] = run("rec-crash-a");
  const auto [bytes_b, report_b] = run("rec-crash-b");
  EXPECT_EQ(report_a.metrics.Get(metric::kRecoveryWorkerCrashes), 1u);
  EXPECT_EQ(bytes_a, bytes_b);
  ExpectReportsMatch(report_a, report_b);
}

// A worker crash with no checkpoint directory takes the cold-restart
// path: the run still completes and is deterministic.
TEST(RecoveryTest, WorkerCrashColdRestartWithoutCheckpoints) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  const auto run = [&dataset]() {
    core::TrainerConfig config = RecoveryConfig();
    sim::ProcessFault crash;
    crash.kind = sim::ProcessFaultKind::kWorkerCrash;
    crash.machine = 0;
    crash.tick = 1;  // Due at the first iteration boundary.
    config.fault.process_faults.push_back(crash);
    auto engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    return std::make_pair(EmbeddingBytes(engine->Embeddings()),
                          std::move(report));
  };

  const auto [bytes_a, report_a] = run();
  const auto [bytes_b, report_b] = run();
  EXPECT_EQ(report_a.metrics.Get(metric::kRecoveryWorkerCrashes), 1u);
  EXPECT_EQ(report_a.metrics.Get(metric::kRecoveryReplayedIterations), 0u);
  EXPECT_EQ(bytes_a, bytes_b);
  ExpectReportsMatch(report_a, report_b);
}

// A PS shard restart reloads the shard from the latest snapshot (or
// re-initializes from the seed) and the scenario is deterministic.
TEST(RecoveryTest, PsShardRestartIsDeterministic) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  const auto run = [&dataset](const std::string& dir) {
    core::TrainerConfig config = RecoveryConfig();
    config.checkpoint_dir = FreshDir(dir);
    config.checkpoint_every = 5;
    sim::ProcessFault restart;
    restart.kind = sim::ProcessFaultKind::kPsShardRestart;
    restart.machine = 0;
    restart.tick = 150;
    config.fault.process_faults.push_back(restart);
    auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    auto report = engine->Train(2).value();
    return std::make_pair(EmbeddingBytes(engine->Embeddings()),
                          std::move(report));
  };

  const auto [bytes_a, report_a] = run("rec-ps-a");
  const auto [bytes_b, report_b] = run("rec-ps-b");
  EXPECT_EQ(report_a.metrics.Get(metric::kRecoveryPsShardRestarts), 1u);
  EXPECT_EQ(bytes_a, bytes_b);
  ExpectReportsMatch(report_a, report_b);
}

// Corrupting the newest snapshot makes RestoreTrainState fall back to
// the previous manifest entry — and resuming from that older snapshot
// still converges to the bit-identical uninterrupted result, because
// the resumed run deterministically retrains the gap.
TEST(RecoveryTest, ManifestFallbackOnCorruptNewestSnapshot) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  core::TrainerConfig ref_config = RecoveryConfig();
  ref_config.checkpoint_dir = FreshDir("rec-fallback-ref");
  ref_config.checkpoint_every = 5;
  auto ref_engine = core::MakeEngine(core::SystemKind::kHetKgDps, ref_config,
                                     dataset.graph, dataset.split.train)
                        .value();
  const auto reference = ref_engine->Train(2).value();

  const std::string dir = FreshDir("rec-fallback");
  core::TrainerConfig crash_config = RecoveryConfig();
  crash_config.checkpoint_dir = dir;
  crash_config.checkpoint_every = 5;
  crash_config.halt_after_iterations = 12;  // Snapshots at 5 and 10.
  auto crashed = core::MakeEngine(core::SystemKind::kHetKgDps, crash_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(crashed->Train(2).ok());

  auto candidates = core::CheckpointManager::ResumeCandidates(dir);
  ASSERT_TRUE(candidates.ok());
  ASSERT_GE(candidates->size(), 2u);
  FlipByte((*candidates)[0], 40);

  core::TrainerConfig resume_config = RecoveryConfig();
  resume_config.checkpoint_dir = dir;
  resume_config.checkpoint_every = 5;
  auto resumed = core::MakeEngine(core::SystemKind::kHetKgDps, resume_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(dir).ok());
  EXPECT_GE(resumed->RecoveryMetrics().Get(metric::kCheckpointFallbacks),
            1u);
  EXPECT_EQ(resumed->RecoveryMetrics().Get(metric::kCheckpointRestores),
            1u);
  const auto report = resumed->Train(2).value();

  EXPECT_EQ(EmbeddingBytes(resumed->Embeddings()),
            EmbeddingBytes(ref_engine->Embeddings()));
  ExpectReportsMatch(report, reference);
}

// PBG checkpoints at epoch granularity: training n epochs, then
// restoring into a fresh engine and asking for the full schedule,
// finishes bit-identical to an uninterrupted run without checkpoints
// (PBG keeps its checkpoint counters process-local).
TEST(RecoveryTest, PbgEpochResumeBitIdentical) {
  const auto dataset = graph::GenerateDataset(SmallSpec()).value();

  core::TrainerConfig config = RecoveryConfig();
  config.pbg_partitions = 4;

  auto reference = core::MakeEngine(core::SystemKind::kPbg, config,
                                    dataset.graph, dataset.split.train)
                       .value();
  const auto ref_report = reference->Train(3).value();

  core::TrainerConfig ck_config = config;
  ck_config.checkpoint_dir = FreshDir("rec-pbg");
  ck_config.checkpoint_every = 1;  // Epochs, for PBG.
  auto partial = core::MakeEngine(core::SystemKind::kPbg, ck_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(partial->Train(2).ok());

  auto resumed = core::MakeEngine(core::SystemKind::kPbg, ck_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(ck_config.checkpoint_dir).ok());
  EXPECT_EQ(resumed->RecoveryMetrics().Get(metric::kCheckpointRestores),
            1u);
  const auto report = resumed->Train(3).value();

  EXPECT_EQ(EmbeddingBytes(resumed->Embeddings()),
            EmbeddingBytes(reference->Embeddings()));
  // The resumed Train(3) continues at epoch 2, so its report holds the
  // final epoch only; that epoch must match the reference exactly.
  ASSERT_GE(report.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(report.epochs.back().mean_loss,
                   ref_report.epochs.back().mean_loss);
  EXPECT_DOUBLE_EQ(report.epochs.back().cumulative_seconds,
                   ref_report.epochs.back().cumulative_seconds);
}

}  // namespace
}  // namespace hetkg
