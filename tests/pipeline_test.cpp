// Pipeline engine tests (DESIGN.md §12): BoundedQueue semantics,
// stage lifecycle, the bounded-staleness clock, the async engine's
// staleness-bound property + checkpoint/fault behaviour, and the
// regression tests for this PR's bugfix sweep (fault-spec parsing,
// checkpoint fsync plumbing, kernel env-snapshot consistency).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint_manager.h"
#include "core/pipeline.h"
#include "core/ps_engine.h"
#include "core/trainer.h"
#include "embedding/checkpoint.h"
#include "embedding/kernels.h"
#include "graph/synthetic.h"
#include "harness.h"
#include "sim/transport.h"

namespace hetkg {
namespace {

using core::BoundedQueue;
using core::BoundedStalenessClock;
using core::Pipeline;
using core::SystemKind;
using core::TrainerConfig;

// ---------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndHighWater) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
  EXPECT_EQ(q.size(), 0u);
  // High water is a lifetime mark, not the current depth.
  EXPECT_EQ(q.high_water(), 3u);
}

TEST(BoundedQueueTest, TryPushTryPopNeverBlock) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(10));
  EXPECT_TRUE(q.TryPush(20));
  EXPECT_FALSE(q.TryPush(30));  // Full.
  EXPECT_EQ(q.TryPop().value(), 10);
  EXPECT_EQ(q.TryPop().value(), 20);
  EXPECT_FALSE(q.TryPop().has_value());  // Empty.
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_FALSE(q.TryPush(2));
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2));  // Blocks: queue is full.
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_GE(q.push_stalls(), 1u);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.Push(7));
  });
  EXPECT_EQ(q.Pop().value(), 7);  // Blocks until the producer runs.
  producer.join();
  EXPECT_GE(q.pop_stalls(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsBufferedItemsThenEndsStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3));  // Rejected after close...
  EXPECT_EQ(q.Pop().value(), 1);  // ...but buffered work still drains.
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // End of stream.
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());  // The blocked push was rejected.
}

TEST(BoundedQueueTest, ReopenStartsNextSegment) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  q.Reopen();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 2);
}

// Regression: Reopen() used to carry the previous segment's stall and
// high-water counters into the next segment, double-counting them in
// every per-segment sample after the first (the engine accumulates the
// per-segment values into run totals at each segment boundary).
TEST(BoundedQueueTest, ReopenResetsObservabilityCounters) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { ASSERT_TRUE(q.Push(2)); });  // Stalls: full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  producer.join();
  std::thread consumer([&] { EXPECT_EQ(q.Pop().value(), 3); });  // Stalls.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.Push(3));
  consumer.join();
  EXPECT_GE(q.push_stalls(), 1u);
  EXPECT_GE(q.pop_stalls(), 1u);
  EXPECT_EQ(q.high_water(), 1u);
  q.Close();
  q.Reopen();
  EXPECT_EQ(q.push_stalls(), 0u);
  EXPECT_EQ(q.pop_stalls(), 0u);
  EXPECT_EQ(q.high_water(), 0u);
  ASSERT_TRUE(q.Push(9));  // The new segment counts from zero.
  EXPECT_EQ(q.high_water(), 1u);
  EXPECT_EQ(q.Pop().value(), 9);
}

// ---------------------------------------------------------------------
// PipelineStage / Pipeline
// ---------------------------------------------------------------------

TEST(PipelineStageTest, BodyRunsUntilFalseAndJoins) {
  std::atomic<int> calls{0};
  core::PipelineStage stage("count", [&] { return ++calls < 5; });
  EXPECT_EQ(stage.name(), "count");
  stage.Start();
  stage.Join();
  EXPECT_TRUE(stage.joined());
  EXPECT_EQ(calls.load(), 5);
}

TEST(PipelineStageTest, TickRunsBodyInline) {
  int calls = 0;
  core::PipelineStage stage("inline", [&] { return ++calls < 2; });
  EXPECT_TRUE(stage.Tick());
  EXPECT_FALSE(stage.Tick());
  EXPECT_EQ(calls, 2);
}

TEST(PipelineTest, StagesStreamThroughQueueUntilClose) {
  BoundedQueue<int> q(2);
  std::atomic<int> sum{0};
  int next = 1;

  Pipeline pipeline;
  pipeline.AddStage("produce", [&] {
    if (next > 10) {
      q.Close();
      return false;
    }
    return q.Push(next++);
  });
  pipeline.AddStage("consume", [&] {
    auto item = q.Pop();
    if (!item.has_value()) return false;
    sum += *item;
    return true;
  });
  ASSERT_EQ(pipeline.num_stages(), 2u);
  pipeline.Start();
  pipeline.Join();
  EXPECT_EQ(sum.load(), 55);  // 1 + 2 + ... + 10.
}

// ---------------------------------------------------------------------
// BoundedStalenessClock
// ---------------------------------------------------------------------

TEST(BoundedStalenessClockTest, AdmitsIterationsWithinBound) {
  BoundedStalenessClock clock;
  clock.Reset(0);
  // With bound 2 and nothing completed, iterations 0..2 are admissible
  // immediately (they lag the table by at most 2 iterations).
  clock.WaitAdmissible(0, 2);
  clock.WaitAdmissible(1, 2);
  clock.WaitAdmissible(2, 2);
  EXPECT_EQ(clock.waits(), 0u);
}

TEST(BoundedStalenessClockTest, ZeroBoundIsFullRendezvous) {
  BoundedStalenessClock clock;
  clock.Reset(0);
  clock.WaitAdmissible(0, 0);  // First iteration never waits.
  std::atomic<bool> admitted{false};
  std::thread puller([&] {
    clock.WaitAdmissible(1, 0);  // Blocks until iteration 0 has pushed.
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  clock.MarkCompleted(0);
  puller.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(clock.completed(), 1u);
  EXPECT_GE(clock.waits(), 1u);
}

TEST(BoundedStalenessClockTest, ResetSupportsResumeMidStream) {
  BoundedStalenessClock clock;
  clock.Reset(7);
  EXPECT_EQ(clock.completed(), 7u);
  clock.WaitAdmissible(9, 2);  // 9 <= 7 + 2: admissible at once.
  EXPECT_EQ(clock.waits(), 0u);
  clock.MarkCompleted(7);
  EXPECT_EQ(clock.completed(), 8u);
}

// ---------------------------------------------------------------------
// Async engine: staleness-bound property, checkpointing, faults
// ---------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

graph::SyntheticDataset PipelineDataset() {
  graph::SyntheticSpec spec;
  spec.name = "pipeline";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 1500;
  spec.seed = 33;
  return graph::GenerateDataset(spec).value();
}

TrainerConfig AsyncConfig(size_t staleness) {
  TrainerConfig config;
  config.dim = 8;
  config.batch_size = 16;
  config.negatives_per_positive = 4;
  config.negative_chunk_size = 4;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.sync.async_pipeline = true;
  config.sync.pipeline_staleness = staleness;
  config.seed = 21;
  return config;
}

// The HET-style bound (Sec. IV-C applied to the pipeline): no pull may
// observe global tables lagging its iteration by more than N fully
// pushed iterations, at every configured N — and training still
// converges while stages overlap.
TEST(AsyncPipelineTest, StalenessBoundHoldsAndTrainingConverges) {
  const auto dataset = PipelineDataset();
  for (const size_t staleness : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("staleness=" + std::to_string(staleness));
    auto engine = core::MakeEngine(SystemKind::kHetKgDps,
                                   AsyncConfig(staleness), dataset.graph,
                                   dataset.split.train)
                      .value();
    const auto report = engine->Train(2).value();
    ASSERT_EQ(report.epochs.size(), 2u);
    EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);

    const auto* ps = static_cast<core::PsTrainingEngine*>(engine.get());
    EXPECT_LE(ps->MaxObservedPipelineLag(), staleness);
    // The overlap model only hides time when stages may run ahead.
    if (staleness == 0) {
      EXPECT_EQ(report.total_time.overlap_seconds, 0.0);
    } else {
      EXPECT_GT(report.total_time.overlap_seconds, 0.0);
    }
  }
}

// Async reports carry the pipeline stall/depth profile (sync reports
// must not: they are bit-identity-checked elsewhere).
TEST(AsyncPipelineTest, ReportsPipelineMetrics) {
  const auto dataset = PipelineDataset();
  auto engine = core::MakeEngine(SystemKind::kHetKgDps, AsyncConfig(2),
                                 dataset.graph, dataset.split.train)
                    .value();
  const auto report = engine->Train(1).value();
  bool saw_stalls = false;
  for (const auto& [name, value] : report.metrics.Snapshot()) {
    if (name == metric::kPipelineStalls) saw_stalls = true;
  }
  EXPECT_TRUE(saw_stalls);
  bool saw_depth = false;
  bool saw_lag = false;
  for (const auto& [name, value] : report.metrics.GaugeSnapshot()) {
    if (name == metric::kPipelineQueueDepthSample) saw_depth = true;
    if (name == metric::kPipelineMaxRowLag) saw_lag = true;
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_lag);

  TrainerConfig sync_config = AsyncConfig(2);
  sync_config.sync.async_pipeline = false;
  auto sync_engine = core::MakeEngine(SystemKind::kHetKgDps, sync_config,
                                      dataset.graph, dataset.split.train)
                         .value();
  const auto sync_report = sync_engine->Train(1).value();
  for (const auto& [name, value] : sync_report.metrics.Snapshot()) {
    EXPECT_NE(name, metric::kPipelineStalls);
  }
  for (const auto& [name, value] : sync_report.metrics.GaugeSnapshot()) {
    EXPECT_NE(name, metric::kPipelineQueueDepthSample);
  }
}

// Checkpoints are taken at drained-pipeline barriers, so an async run
// halted mid-epoch resumes from its snapshot and completes; the resumed
// engine continues from the checkpointed iteration, not from zero.
TEST(AsyncPipelineTest, CheckpointResumeCompletesInAsyncMode) {
  const auto dataset = PipelineDataset();
  const std::string dir = FreshDir("pipe-async-resume");

  TrainerConfig crash_config = AsyncConfig(2);
  crash_config.checkpoint_dir = dir;
  crash_config.checkpoint_every = 5;
  crash_config.halt_after_iterations = 12;
  auto crashed = core::MakeEngine(SystemKind::kHetKgDps, crash_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(crashed->Train(2).ok());

  TrainerConfig resume_config = AsyncConfig(2);
  resume_config.checkpoint_dir = dir;
  resume_config.checkpoint_every = 5;
  auto resumed = core::MakeEngine(SystemKind::kHetKgDps, resume_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(dir).ok());
  EXPECT_EQ(resumed->RecoveryMetrics().Get(metric::kCheckpointRestores), 1u);
  const auto report = resumed->Train(2).value();
  ASSERT_EQ(report.epochs.size(), 2u);
  EXPECT_LT(report.epochs.back().mean_loss, report.epochs.front().mean_loss);
  const auto* ps = static_cast<core::PsTrainingEngine*>(resumed.get());
  EXPECT_LE(ps->MaxObservedPipelineLag(), 2u);
}

// Process faults fire at segment barriers in async mode: the scheduled
// worker crash is detected, recovery runs, and training completes with
// the staleness bound still intact.
TEST(AsyncPipelineTest, WorkerCrashRecoveredInAsyncMode) {
  const auto dataset = PipelineDataset();
  TrainerConfig config = AsyncConfig(2);
  config.checkpoint_dir = FreshDir("pipe-async-crash");
  config.checkpoint_every = 5;
  sim::ProcessFault crash;
  crash.kind = sim::ProcessFaultKind::kWorkerCrash;
  crash.machine = 1;
  crash.tick = 150;
  config.fault.process_faults.push_back(crash);
  auto engine = core::MakeEngine(SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  const auto report = engine->Train(2).value();
  EXPECT_EQ(report.metrics.Get(metric::kRecoveryWorkerCrashes), 1u);
  ASSERT_EQ(report.epochs.size(), 2u);
  const auto* ps = static_cast<core::PsTrainingEngine*>(engine.get());
  EXPECT_LE(ps->MaxObservedPipelineLag(), 2u);
}

// ---------------------------------------------------------------------
// Bugfix regressions: --fault_worker_crash / --fault_ps_restart parsing
// ---------------------------------------------------------------------

TEST(ProcessFaultParseTest, AcceptsValidSchedule) {
  const auto faults =
      bench::ParseProcessFaultSpec("0:10,1:250",
                                   sim::ProcessFaultKind::kWorkerCrash)
          .value();
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].machine, 0u);
  EXPECT_EQ(faults[0].tick, 10u);
  EXPECT_EQ(faults[1].machine, 1u);
  EXPECT_EQ(faults[1].tick, 250u);
  EXPECT_EQ(faults[1].kind, sim::ProcessFaultKind::kWorkerCrash);
}

TEST(ProcessFaultParseTest, RejectsMachineIdAboveUint32) {
  // 2^32 does not fit a uint32 machine id; before the fix strtoul on
  // LP64 silently accepted it (unsigned long is 64-bit there).
  const auto result = bench::ParseProcessFaultSpec(
      "4294967296:10", sim::ProcessFaultKind::kWorkerCrash);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProcessFaultParseTest, RejectsTickOverflow) {
  // Overflows uint64: strtoull sets ERANGE and clamps to ULLONG_MAX,
  // which the pre-fix parser accepted as a wrapped/clamped tick.
  const auto result = bench::ParseProcessFaultSpec(
      "1:99999999999999999999999999", sim::ProcessFaultKind::kPsShardRestart);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProcessFaultParseTest, RejectsMalformedItems) {
  for (const std::string spec :
       {"abc", "1", "1:", ":5", "1:x", "1:2:3", "-1:5", "1:-5", "1: 5",
        "+1:5", "1:5,"}) {
    SCOPED_TRACE("spec=\"" + spec + "\"");
    EXPECT_FALSE(bench::ParseProcessFaultSpec(
                     spec, sim::ProcessFaultKind::kWorkerCrash)
                     .ok());
  }
  // The empty default of --fault_worker_crash is an empty schedule,
  // not an error.
  EXPECT_TRUE(bench::ParseProcessFaultSpec(
                  "", sim::ProcessFaultKind::kWorkerCrash)
                  .value()
                  .empty());
}

// ---------------------------------------------------------------------
// Bugfix regressions: checkpoint fsync plumbing
// ---------------------------------------------------------------------

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CheckpointFsyncTest, DurabilityDoesNotChangeFileBytes) {
  embedding::CheckpointWriter writer;
  ByteWriter payload;
  payload.U64(42);
  payload.F32(1.5f);
  writer.AddSection(embedding::SectionTag::kEngineCounters,
                    std::move(payload));

  const std::string durable_path = FreshDir("ck-fsync") + "-durable.ck";
  const std::string fast_path = FreshDir("ck-fsync") + "-fast.ck";
  ASSERT_TRUE(writer.WriteAtomic(durable_path, /*durable=*/true).ok());
  ASSERT_TRUE(writer.WriteAtomic(fast_path, /*durable=*/false).ok());
  const std::string durable_bytes = ReadAllBytes(durable_path);
  ASSERT_FALSE(durable_bytes.empty());
  // fsync orders writes to stable storage; it must never change them.
  EXPECT_EQ(durable_bytes, ReadAllBytes(fast_path));
  // No temp file survives the atomic rename on either path.
  EXPECT_FALSE(std::filesystem::exists(durable_path + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(fast_path + ".tmp"));
}

TEST(CheckpointFsyncTest, ManagerAndConfigPlumbTheFlag) {
  EXPECT_TRUE(TrainerConfig{}.checkpoint_fsync);  // Durable by default.
  core::CheckpointManager durable(FreshDir("ckm-durable"), 2);
  EXPECT_TRUE(durable.fsync_enabled());
  core::CheckpointManager fast(FreshDir("ckm-fast"), 2, /*fsync=*/false);
  EXPECT_FALSE(fast.fsync_enabled());
}

// Training with --checkpoint_fsync=false writes snapshots that restore
// exactly like durable ones — the flag trades durability, not content.
TEST(CheckpointFsyncTest, NonDurableCheckpointsStillRestore) {
  const auto dataset = PipelineDataset();
  TrainerConfig config = AsyncConfig(0);
  config.sync.async_pipeline = false;
  config.checkpoint_fsync = false;
  config.checkpoint_dir = FreshDir("pipe-nofsync");
  config.checkpoint_every = 5;
  config.halt_after_iterations = 12;
  auto crashed = core::MakeEngine(SystemKind::kHetKgDps, config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(crashed->Train(2).ok());

  TrainerConfig resume_config = config;
  resume_config.halt_after_iterations = 0;
  auto resumed = core::MakeEngine(SystemKind::kHetKgDps, resume_config,
                                  dataset.graph, dataset.split.train)
                     .value();
  ASSERT_TRUE(resumed->RestoreTrainState(config.checkpoint_dir).ok());
  EXPECT_TRUE(resumed->Train(2).ok());
}

// ---------------------------------------------------------------------
// Bugfix regression: kernel dispatch reads HETKG_KERNEL exactly once
// ---------------------------------------------------------------------

TEST(KernelEnvSnapshotTest, SnapshotAndDispatchObserveTheSameValue) {
  using embedding::kernels::ActivePath;
  using embedding::kernels::DispatchEnvSnapshot;
  using embedding::kernels::KernelMode;
  using embedding::kernels::KernelPath;
  using embedding::kernels::SetKernelMode;

  ASSERT_EQ(::setenv("HETKG_KERNEL", "scalar", 1), 0);
  SetKernelMode(KernelMode::kAuto);
  EXPECT_EQ(ActivePath(), KernelPath::kScalar);
  EXPECT_EQ(DispatchEnvSnapshot(), "scalar");

  // The pre-fix code called getenv twice (dispatch, then the startup
  // log); a change between the calls made the log disagree with the
  // actual dispatch. The snapshot is taken once per resolution, so
  // mutating the environment afterwards cannot desynchronize them.
  ASSERT_EQ(::unsetenv("HETKG_KERNEL"), 0);
  EXPECT_EQ(ActivePath(), KernelPath::kScalar);
  EXPECT_EQ(DispatchEnvSnapshot(), "scalar");

  // The next resolution re-reads the (now unset) environment.
  SetKernelMode(KernelMode::kAuto);
  EXPECT_EQ(DispatchEnvSnapshot(), "<unset>");
}

}  // namespace
}  // namespace hetkg
