// End-to-end observability: traced CPS and DPS training runs must emit
// a valid Chrome trace-event JSON file (parse round-trip) with properly
// nested spans per thread, the metrics exporter must produce a
// per-epoch time-series, and turning the whole obs layer on must not
// change a single trained bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "graph/synthetic.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace hetkg {
namespace {

using core::SystemKind;
using core::TrainerConfig;

std::string TempPath(const std::string& name) {
  // ctest runs this binary several times concurrently under different
  // gtest filters; a pid-qualified path keeps those processes from
  // racing on the same file.
  return ::testing::TempDir() + "hetkg_obs_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

graph::SyntheticDataset ObsDataset() {
  graph::SyntheticSpec spec;
  spec.name = "obs";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 2000;
  spec.seed = 33;
  return graph::GenerateDataset(spec).value();
}

struct ObsRun {
  std::vector<float> embeddings;
  std::vector<double> losses;
  core::TrainReport report;
};

ObsRun TrainWithObs(SystemKind system, const graph::SyntheticDataset& dataset,
                    size_t num_threads, const obs::ObsConfig& obs_config) {
  TrainerConfig config;
  config.dim = 16;
  config.batch_size = 32;
  config.negatives_per_positive = 8;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.pbg_partitions = 4;
  config.seed = 5;
  config.num_threads = num_threads;
  config.obs = obs_config;
  auto engine =
      core::MakeEngine(system, config, dataset.graph, dataset.split.train)
          .value();
  ObsRun run;
  run.report = engine->Train(2).value();
  const eval::EmbeddingLookup& lookup = engine->Embeddings();
  for (size_t e = 0; e < lookup.num_entities(); ++e) {
    const auto row = lookup.Entity(static_cast<EntityId>(e));
    run.embeddings.insert(run.embeddings.end(), row.begin(), row.end());
  }
  for (size_t r = 0; r < lookup.num_relations(); ++r) {
    const auto row = lookup.Relation(static_cast<RelationId>(r));
    run.embeddings.insert(run.embeddings.end(), row.begin(), row.end());
  }
  for (const auto& epoch : run.report.epochs) {
    run.losses.push_back(epoch.mean_loss);
  }
  return run;
}

struct SpanEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
};

/// Asserts the "X" events of one thread form a proper forest: sorted by
/// start (ties broken longest-first), every span either nests fully
/// inside the enclosing open span or starts after it ends.
void ExpectProperNesting(int64_t tid, std::vector<SpanEvent> spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<SpanEvent> stack;
  for (const SpanEvent& s : spans) {
    while (!stack.empty() && stack.back().ts + stack.back().dur <= s.ts) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur)
          << "span " << s.name << " on tid " << tid
          << " overlaps but does not nest inside " << stack.back().name;
    }
    stack.push_back(s);
  }
}

class TracedTrainingTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(TracedTrainingTest, TraceParsesAndSpansNestPerThread) {
  const auto dataset = ObsDataset();
  const std::string trace_path =
      TempPath(std::string("trace_") +
               std::string(core::SystemKindName(GetParam())) + ".json");

  std::map<int64_t, std::vector<SpanEvent>> spans_by_tid;
  std::vector<std::string> names;
  // The help-draining scheduling thread can legitimately win every
  // compute chunk when the machine is saturated (e.g. ctest -j running
  // this binary several times at once), leaving the pool workers
  // without a single span. Each attempt is a full valid trace; retry
  // until some worker participated.
  for (int attempt = 0; attempt < 4 && spans_by_tid.size() < 2;
       ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    spans_by_tid.clear();
    names.clear();
    std::remove(trace_path.c_str());

    obs::ObsConfig obs_config;
    obs_config.trace_out = trace_path;
    TrainWithObs(GetParam(), dataset, 2, obs_config);
    ASSERT_FALSE(obs::Tracer::Enabled()) << "session leaked past Train";

    const std::string text = ReadFile(trace_path);
    ASSERT_FALSE(text.empty()) << trace_path;
    auto parsed = obs::ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_TRUE(parsed->is_object());

    const obs::JsonValue* unit = parsed->Find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->string_value, "ms");
    const obs::JsonValue* events = parsed->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_FALSE(events->items.empty());

    for (const obs::JsonValue& e : events->items) {
      ASSERT_TRUE(e.is_object());
      const obs::JsonValue* ph = e.Find("ph");
      ASSERT_NE(ph, nullptr);
      ASSERT_NE(e.Find("name"), nullptr);
      if (ph->string_value != "X") continue;
      const obs::JsonValue* tid = e.Find("tid");
      const obs::JsonValue* ts = e.Find("ts");
      const obs::JsonValue* dur = e.Find("dur");
      ASSERT_NE(tid, nullptr);
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      // Wall-clock spans also carry the simulated clock for alignment
      // with the cost model.
      const obs::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->Find("sim_s"), nullptr);
      names.push_back(e.Find("name")->string_value);
      spans_by_tid[static_cast<int64_t>(tid->number)].push_back(
          SpanEvent{ts->number, dur->number, names.back()});
    }
  }

  // The scheduling thread traced the engine loop, and the ParallelFor
  // fan-out put compute spans on at least one other thread.
  EXPECT_GE(spans_by_tid.size(), 2u);
  auto has = [&names](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("ps.step"));
  EXPECT_TRUE(has("ps.epoch"));
  EXPECT_TRUE(has("cache.rebuild"));
  EXPECT_TRUE(has("compute.chunks"));

  for (auto& [tid, spans] : spans_by_tid) {
    ExpectProperNesting(tid, std::move(spans));
  }
}

TEST_P(TracedTrainingTest, MetricsSeriesExportsEpochSamples) {
  const auto dataset = ObsDataset();
  const std::string metrics_path =
      TempPath(std::string("metrics_") +
               std::string(core::SystemKindName(GetParam())) + ".json");
  std::remove(metrics_path.c_str());

  obs::ObsConfig obs_config;
  obs_config.metrics_json = metrics_path;
  obs_config.metrics_window = 8;
  const ObsRun run = TrainWithObs(GetParam(), dataset, 1, obs_config);
  EXPECT_FALSE(run.report.metrics_series.empty());

  auto parsed = obs::ParseJson(ReadFile(metrics_path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* samples = parsed->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());

  size_t epoch_samples = 0;
  size_t window_samples = 0;
  for (const obs::JsonValue& s : samples->items) {
    ASSERT_TRUE(s.is_object());
    const obs::JsonValue* kind = s.Find("kind");
    ASSERT_NE(kind, nullptr);
    if (kind->string_value == "epoch") ++epoch_samples;
    if (kind->string_value == "window") ++window_samples;
    ASSERT_NE(s.Find("sim_seconds"), nullptr);
    ASSERT_NE(s.Find("metrics"), nullptr);
  }
  EXPECT_EQ(epoch_samples, 2u);
  EXPECT_GT(window_samples, 0u);

  // The final epoch sample carries the Fig. 7 ingredients: hit ratio,
  // per-phase simulated time, and the cumulative simulated clock.
  const obs::JsonValue& last = samples->items.back();
  EXPECT_EQ(last.Find("kind")->string_value, "epoch");
  const obs::JsonValue* gauges = last.Find("metrics")->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("sim.machine_seconds"), nullptr);
  EXPECT_GT(gauges->Find("sim.machine_seconds")->number, 0.0);
  ASSERT_NE(gauges->Find("phase.compute_s"), nullptr);
  EXPECT_GT(gauges->Find("phase.compute_s")->number, 0.0);
  ASSERT_NE(gauges->Find("cache.hit_ratio"), nullptr);
  const obs::JsonValue* counters = last.Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("cache.hits"), nullptr);
}

TEST_P(TracedTrainingTest, ObsOnIsBitIdenticalToObsOff) {
  const auto dataset = ObsDataset();
  const ObsRun off = TrainWithObs(GetParam(), dataset, 2, obs::ObsConfig{});

  obs::ObsConfig obs_config;
  obs_config.trace_out = TempPath("identity_trace.json");
  obs_config.metrics_json = TempPath("identity_metrics.json");
  obs_config.metrics_window = 4;
  const ObsRun on = TrainWithObs(GetParam(), dataset, 2, obs_config);

  EXPECT_EQ(on.losses, off.losses);
  ASSERT_EQ(on.embeddings.size(), off.embeddings.size());
  for (size_t j = 0; j < off.embeddings.size(); ++j) {
    ASSERT_EQ(on.embeddings[j], off.embeddings[j])
        << "embedding float " << j << " diverged with obs enabled";
  }
  // The deterministic counter set is also unchanged.
  EXPECT_EQ(on.report.metrics.Snapshot(), off.report.metrics.Snapshot());
}

INSTANTIATE_TEST_SUITE_P(CacheEngines, TracedTrainingTest,
                         ::testing::Values(SystemKind::kHetKgCps,
                                           SystemKind::kHetKgDps),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(core::SystemKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TracerSessionTest, StartValidatesAndStopsCleanly) {
  EXPECT_FALSE(obs::Tracer::Enabled());
  EXPECT_FALSE(obs::Tracer::Start(obs::TraceOptions{}).ok())
      << "empty path must be rejected";
  EXPECT_FALSE(obs::Tracer::Stop().ok()) << "no session to stop";

  obs::TraceOptions options;
  options.path = TempPath("session.json");
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  EXPECT_TRUE(obs::Tracer::Enabled());
  // A second session cannot start while one is active.
  EXPECT_FALSE(obs::Tracer::Start(options).ok());
  obs::Tracer::Instant("test.instant", "test");
  ASSERT_TRUE(obs::Tracer::Stop().ok());
  EXPECT_FALSE(obs::Tracer::Enabled());

  auto parsed = obs::ParseJson(ReadFile(options.path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(TracerSessionTest, FullRingDropsAndCountsInsteadOfGrowing) {
  obs::TraceOptions options;
  options.path = TempPath("overflow.json");
  options.ring_capacity = 8;
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  for (int i = 0; i < 100; ++i) {
    obs::Tracer::Instant("spam", "test");
  }
  EXPECT_GT(obs::Tracer::DroppedEvents(), 0u);
  ASSERT_TRUE(obs::Tracer::Stop().ok());

  // The overflowing session still writes valid JSON, with the drop
  // count surfaced as a counter event.
  auto parsed = obs::ParseJson(ReadFile(options.path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_drop_counter = false;
  for (const obs::JsonValue& e : events->items) {
    const obs::JsonValue* name = e.Find("name");
    if (name != nullptr && name->string_value == "obs.dropped_events") {
      found_drop_counter = true;
    }
  }
  EXPECT_TRUE(found_drop_counter);
}

TEST(TracerSessionTest, LeaseRespectsForeignSessionAndStopsOwnedOne) {
  obs::TraceOptions options;
  options.path = TempPath("lease.json");
  {
    obs::TracerLease lease(options);
    EXPECT_TRUE(lease.owns());
    EXPECT_TRUE(obs::Tracer::Enabled());
    // A second lease over an active session must not steal or stop it.
    obs::TracerLease second(options);
    EXPECT_FALSE(second.owns());
  }
  EXPECT_FALSE(obs::Tracer::Enabled()) << "lease destructor must stop";
  // An empty path means "tracing off": no session, nothing owned.
  obs::TracerLease disabled{obs::TraceOptions{}};
  EXPECT_FALSE(disabled.owns());
  EXPECT_FALSE(obs::Tracer::Enabled());
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":1} trailing").ok());
  EXPECT_TRUE(obs::ParseJson("{\"a\":[1,2.5,-3e2,true,false,null]}").ok());
}

}  // namespace
}  // namespace hetkg
