// End-to-end observability: traced CPS and DPS training runs must emit
// a valid Chrome trace-event JSON file (parse round-trip) with properly
// nested spans per thread, the metrics exporter must produce a
// per-epoch time-series, and turning the whole obs layer on must not
// change a single trained bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "core/trainer.h"
#include "graph/synthetic.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace hetkg {
namespace {

using core::SystemKind;
using core::TrainerConfig;

std::string TempPath(const std::string& name) {
  // ctest runs this binary several times concurrently under different
  // gtest filters; a pid-qualified path keeps those processes from
  // racing on the same file.
  return ::testing::TempDir() + "hetkg_obs_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

graph::SyntheticDataset ObsDataset() {
  graph::SyntheticSpec spec;
  spec.name = "obs";
  spec.num_entities = 200;
  spec.num_relations = 8;
  spec.num_triples = 2000;
  spec.seed = 33;
  return graph::GenerateDataset(spec).value();
}

struct ObsRun {
  std::vector<float> embeddings;
  std::vector<double> losses;
  core::TrainReport report;
};

ObsRun TrainWithObs(SystemKind system, const graph::SyntheticDataset& dataset,
                    size_t num_threads, const obs::ObsConfig& obs_config) {
  TrainerConfig config;
  config.dim = 16;
  config.batch_size = 32;
  config.negatives_per_positive = 8;
  config.num_machines = 2;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 4;
  config.sync.dps_window = 8;
  config.pbg_partitions = 4;
  config.seed = 5;
  config.num_threads = num_threads;
  config.obs = obs_config;
  auto engine =
      core::MakeEngine(system, config, dataset.graph, dataset.split.train)
          .value();
  ObsRun run;
  run.report = engine->Train(2).value();
  const eval::EmbeddingLookup& lookup = engine->Embeddings();
  for (size_t e = 0; e < lookup.num_entities(); ++e) {
    const auto row = lookup.Entity(static_cast<EntityId>(e));
    run.embeddings.insert(run.embeddings.end(), row.begin(), row.end());
  }
  for (size_t r = 0; r < lookup.num_relations(); ++r) {
    const auto row = lookup.Relation(static_cast<RelationId>(r));
    run.embeddings.insert(run.embeddings.end(), row.begin(), row.end());
  }
  for (const auto& epoch : run.report.epochs) {
    run.losses.push_back(epoch.mean_loss);
  }
  return run;
}

struct SpanEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::string name;
};

/// Asserts the "X" events of one thread form a proper forest: sorted by
/// start (ties broken longest-first), every span either nests fully
/// inside the enclosing open span or starts after it ends.
void ExpectProperNesting(int64_t tid, std::vector<SpanEvent> spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<SpanEvent> stack;
  for (const SpanEvent& s : spans) {
    while (!stack.empty() && stack.back().ts + stack.back().dur <= s.ts) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur)
          << "span " << s.name << " on tid " << tid
          << " overlaps but does not nest inside " << stack.back().name;
    }
    stack.push_back(s);
  }
}

class TracedTrainingTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(TracedTrainingTest, TraceParsesAndSpansNestPerThread) {
  const auto dataset = ObsDataset();
  const std::string trace_path =
      TempPath(std::string("trace_") +
               std::string(core::SystemKindName(GetParam())) + ".json");

  std::map<int64_t, std::vector<SpanEvent>> spans_by_tid;
  std::vector<std::string> names;
  // The help-draining scheduling thread can legitimately win every
  // compute chunk when the machine is saturated (e.g. ctest -j running
  // this binary several times at once), leaving the pool workers
  // without a single span. Each attempt is a full valid trace; retry
  // until some worker participated.
  for (int attempt = 0; attempt < 4 && spans_by_tid.size() < 2;
       ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    spans_by_tid.clear();
    names.clear();
    std::remove(trace_path.c_str());

    obs::ObsConfig obs_config;
    obs_config.trace_out = trace_path;
    TrainWithObs(GetParam(), dataset, 2, obs_config);
    ASSERT_FALSE(obs::Tracer::Enabled()) << "session leaked past Train";

    const std::string text = ReadFile(trace_path);
    ASSERT_FALSE(text.empty()) << trace_path;
    auto parsed = obs::ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_TRUE(parsed->is_object());

    const obs::JsonValue* unit = parsed->Find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->string_value, "ms");
    const obs::JsonValue* events = parsed->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_FALSE(events->items.empty());

    for (const obs::JsonValue& e : events->items) {
      ASSERT_TRUE(e.is_object());
      const obs::JsonValue* ph = e.Find("ph");
      ASSERT_NE(ph, nullptr);
      ASSERT_NE(e.Find("name"), nullptr);
      if (ph->string_value != "X") continue;
      const obs::JsonValue* tid = e.Find("tid");
      const obs::JsonValue* ts = e.Find("ts");
      const obs::JsonValue* dur = e.Find("dur");
      ASSERT_NE(tid, nullptr);
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      // Wall-clock spans also carry the simulated clock for alignment
      // with the cost model.
      const obs::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->Find("sim_s"), nullptr);
      names.push_back(e.Find("name")->string_value);
      spans_by_tid[static_cast<int64_t>(tid->number)].push_back(
          SpanEvent{ts->number, dur->number, names.back()});
    }
  }

  // The scheduling thread traced the engine loop, and the ParallelFor
  // fan-out put compute spans on at least one other thread.
  EXPECT_GE(spans_by_tid.size(), 2u);
  auto has = [&names](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("ps.step"));
  EXPECT_TRUE(has("ps.epoch"));
  EXPECT_TRUE(has("cache.rebuild"));
  EXPECT_TRUE(has("compute.chunks"));

  for (auto& [tid, spans] : spans_by_tid) {
    ExpectProperNesting(tid, std::move(spans));
  }
}

TEST_P(TracedTrainingTest, MetricsSeriesExportsEpochSamples) {
  const auto dataset = ObsDataset();
  const std::string metrics_path =
      TempPath(std::string("metrics_") +
               std::string(core::SystemKindName(GetParam())) + ".json");
  std::remove(metrics_path.c_str());

  obs::ObsConfig obs_config;
  obs_config.metrics_json = metrics_path;
  obs_config.metrics_window = 8;
  const ObsRun run = TrainWithObs(GetParam(), dataset, 1, obs_config);
  EXPECT_FALSE(run.report.metrics_series.empty());

  auto parsed = obs::ParseJson(ReadFile(metrics_path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* samples = parsed->Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());

  size_t epoch_samples = 0;
  size_t window_samples = 0;
  for (const obs::JsonValue& s : samples->items) {
    ASSERT_TRUE(s.is_object());
    const obs::JsonValue* kind = s.Find("kind");
    ASSERT_NE(kind, nullptr);
    if (kind->string_value == "epoch") ++epoch_samples;
    if (kind->string_value == "window") ++window_samples;
    ASSERT_NE(s.Find("sim_seconds"), nullptr);
    ASSERT_NE(s.Find("metrics"), nullptr);
  }
  EXPECT_EQ(epoch_samples, 2u);
  EXPECT_GT(window_samples, 0u);

  // The final epoch sample carries the Fig. 7 ingredients: hit ratio,
  // per-phase simulated time, and the cumulative simulated clock.
  const obs::JsonValue& last = samples->items.back();
  EXPECT_EQ(last.Find("kind")->string_value, "epoch");
  const obs::JsonValue* gauges = last.Find("metrics")->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("sim.machine_seconds"), nullptr);
  EXPECT_GT(gauges->Find("sim.machine_seconds")->number, 0.0);
  ASSERT_NE(gauges->Find("phase.compute_s"), nullptr);
  EXPECT_GT(gauges->Find("phase.compute_s")->number, 0.0);
  ASSERT_NE(gauges->Find("cache.hit_ratio"), nullptr);
  const obs::JsonValue* counters = last.Find("metrics")->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("cache.hits"), nullptr);
}

TEST_P(TracedTrainingTest, ObsOnIsBitIdenticalToObsOff) {
  const auto dataset = ObsDataset();
  const ObsRun off = TrainWithObs(GetParam(), dataset, 2, obs::ObsConfig{});

  obs::ObsConfig obs_config;
  obs_config.trace_out = TempPath("identity_trace.json");
  obs_config.metrics_json = TempPath("identity_metrics.json");
  obs_config.metrics_window = 4;
  const ObsRun on = TrainWithObs(GetParam(), dataset, 2, obs_config);

  EXPECT_EQ(on.losses, off.losses);
  ASSERT_EQ(on.embeddings.size(), off.embeddings.size());
  for (size_t j = 0; j < off.embeddings.size(); ++j) {
    ASSERT_EQ(on.embeddings[j], off.embeddings[j])
        << "embedding float " << j << " diverged with obs enabled";
  }
  // The deterministic counter set is also unchanged.
  EXPECT_EQ(on.report.metrics.Snapshot(), off.report.metrics.Snapshot());
}

INSTANTIATE_TEST_SUITE_P(CacheEngines, TracedTrainingTest,
                         ::testing::Values(SystemKind::kHetKgCps,
                                           SystemKind::kHetKgDps),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name(core::SystemKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TracerSessionTest, StartValidatesAndStopsCleanly) {
  EXPECT_FALSE(obs::Tracer::Enabled());
  EXPECT_FALSE(obs::Tracer::Start(obs::TraceOptions{}).ok())
      << "empty path must be rejected";
  EXPECT_FALSE(obs::Tracer::Stop().ok()) << "no session to stop";

  obs::TraceOptions options;
  options.path = TempPath("session.json");
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  EXPECT_TRUE(obs::Tracer::Enabled());
  // A second session cannot start while one is active.
  EXPECT_FALSE(obs::Tracer::Start(options).ok());
  obs::Tracer::Instant("test.instant", "test");
  ASSERT_TRUE(obs::Tracer::Stop().ok());
  EXPECT_FALSE(obs::Tracer::Enabled());

  auto parsed = obs::ParseJson(ReadFile(options.path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(TracerSessionTest, FullRingDropsAndCountsInsteadOfGrowing) {
  obs::TraceOptions options;
  options.path = TempPath("overflow.json");
  options.ring_capacity = 8;
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  for (int i = 0; i < 100; ++i) {
    obs::Tracer::Instant("spam", "test");
  }
  EXPECT_GT(obs::Tracer::DroppedEvents(), 0u);
  ASSERT_TRUE(obs::Tracer::Stop().ok());

  // The overflowing session still writes valid JSON, with the drop
  // count surfaced as a counter event.
  auto parsed = obs::ParseJson(ReadFile(options.path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_drop_counter = false;
  for (const obs::JsonValue& e : events->items) {
    const obs::JsonValue* name = e.Find("name");
    if (name != nullptr && name->string_value == "trace.dropped_events") {
      found_drop_counter = true;
    }
  }
  EXPECT_TRUE(found_drop_counter);
}

TEST(TracerSessionTest, LeaseRespectsForeignSessionAndStopsOwnedOne) {
  obs::TraceOptions options;
  options.path = TempPath("lease.json");
  {
    obs::TracerLease lease(options);
    EXPECT_TRUE(lease.owns());
    EXPECT_TRUE(obs::Tracer::Enabled());
    // A second lease over an active session must not steal or stop it.
    obs::TracerLease second(options);
    EXPECT_FALSE(second.owns());
  }
  EXPECT_FALSE(obs::Tracer::Enabled()) << "lease destructor must stop";
  // An empty path means "tracing off": no session, nothing owned.
  obs::TracerLease disabled{obs::TraceOptions{}};
  EXPECT_FALSE(disabled.owns());
  EXPECT_FALSE(obs::Tracer::Enabled());
}

// One hop of the proc-runtime trace pipeline (DESIGN.md §14), all in
// one process: a ship-only session buffers events, DrainShipment
// serializes them, and a later file-backed session ingests the batch
// as remote process 2 ("worker 0") with its timestamps rebased by the
// clock offset.
TEST(TracerShipmentTest, ShipmentRoundTripMergesRemoteTrack) {
  ASSERT_TRUE(obs::Tracer::StartShipping(1 << 10).ok());
  obs::Tracer::Instant("remote.instant", "test");
  obs::Tracer::Complete("remote.span", "test", /*ts_us=*/100, /*dur_us=*/50,
                        "rows", 7.0, nullptr, 0.0);
  ByteWriter shipment;
  obs::Tracer::DrainShipment(&shipment);
  // The drain clears the rings but keeps the session live; a second
  // drain is empty (count == 0 is the only payload).
  ByteWriter empty_shipment;
  obs::Tracer::DrainShipment(&empty_shipment);
  EXPECT_EQ(empty_shipment.size(), sizeof(uint64_t));
  ASSERT_TRUE(obs::Tracer::Stop().ok()) << "ship-only stop discards";

  obs::TraceOptions options;
  options.path = TempPath("shipment_merge.json");
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  ByteReader r(shipment.buffer().data(), shipment.size());
  // Remote clock ran 40us ahead of ours: ts 100 lands at 60.
  ASSERT_TRUE(
      obs::Tracer::AddRemoteEvents(2, "worker 0", /*clock_offset_us=*/40, &r));
  ASSERT_TRUE(obs::Tracer::Stop().ok());

  auto parsed = obs::ParseJson(ReadFile(options.path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_process_name = false;
  bool found_span = false;
  bool found_instant = false;
  for (const obs::JsonValue& e : events->items) {
    const obs::JsonValue* name = e.Find("name");
    const obs::JsonValue* ph = e.Find("ph");
    const obs::JsonValue* pid = e.Find("pid");
    if (name == nullptr || ph == nullptr || pid == nullptr) continue;
    if (ph->string_value == "M" && name->string_value == "process_name" &&
        pid->number == 2.0) {
      const obs::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->Find("name"), nullptr);
      EXPECT_EQ(args->Find("name")->string_value, "worker 0");
      found_process_name = true;
    }
    if (name->string_value == "remote.span") {
      EXPECT_EQ(pid->number, 2.0);
      ASSERT_NE(e.Find("ts"), nullptr);
      EXPECT_EQ(e.Find("ts")->number, 60.0) << "ts must be offset-rebased";
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_EQ(e.Find("dur")->number, 50.0);
      const obs::JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->Find("rows"), nullptr);
      EXPECT_EQ(args->Find("rows")->number, 7.0);
      found_span = true;
    }
    if (name->string_value == "remote.instant") {
      EXPECT_EQ(pid->number, 2.0);
      found_instant = true;
    }
  }
  EXPECT_TRUE(found_process_name)
      << "remote track needs a process_name metadata row";
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_instant);
}

TEST(FlightRecorderTest, RingKeepsNewestEventsAndHarvestsOldestFirst) {
  auto recorder = obs::FlightRecorder::CreateAnonymous(/*slots=*/4);
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  EXPECT_EQ((*recorder)->slot_count(), 4u);
  for (int i = 0; i < 10; ++i) {
    (*recorder)->OnEvent("flight.event", "test", 'i', /*tid=*/1,
                         /*ts_us=*/static_cast<uint64_t>(i * 10),
                         /*dur_us=*/0, /*v1=*/static_cast<double>(i));
  }
  const auto events = (*recorder)->Harvest();
  ASSERT_EQ(events.size(), 4u) << "older events must be overwritten";
  for (size_t j = 0; j < events.size(); ++j) {
    EXPECT_EQ(events[j].name, "flight.event");
    EXPECT_EQ(events[j].v1, static_cast<double>(6 + j))
        << "harvest must return the newest records, oldest first";
  }
}

TEST(FlightRecorderTest, SpillFileSurvivesWriterAndInjectsAsTrack) {
  const std::string path = TempPath("flight.spill");
  {
    auto writer = obs::FlightRecorder::CreateFile(path, /*slots=*/8);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    (*writer)->OnEvent("crash.marker", "flight", 'i', /*tid=*/3,
                       /*ts_us=*/123, /*dur_us=*/0, /*v1=*/1.0);
    // Writer destroyed without any flush call — as if SIGKILLed.
  }
  auto reader = obs::FlightRecorder::OpenFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto events = (*reader)->Harvest();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "crash.marker");
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[0].ts_us, 123u);

  // The harvest injects into a live session as the dead worker's track.
  ByteWriter harvest;
  (*reader)->SerializeHarvest(&harvest);
  obs::TraceOptions options;
  options.path = TempPath("flight_merge.json");
  ASSERT_TRUE(obs::Tracer::Start(options).ok());
  ByteReader r(harvest.buffer().data(), harvest.size());
  ASSERT_TRUE(obs::Tracer::AddRemoteEvents(1003, "flight.w1", 0, &r));
  ASSERT_TRUE(obs::Tracer::Stop().ok());
  const std::string merged = ReadFile(options.path);
  EXPECT_NE(merged.find("flight.w1"), std::string::npos);
  EXPECT_NE(merged.find("crash.marker"), std::string::npos);
  ::remove(path.c_str());
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":1} trailing").ok());
  EXPECT_TRUE(obs::ParseJson("{\"a\":[1,2.5,-3e2,true,false,null]}").ok());
}

}  // namespace
}  // namespace hetkg
