// Real-fault robustness suite (DESIGN.md §15): drives the trainer
// binary (HETKG_TRAIN_BIN, injected by CMake) as subprocesses with
// wire faults injected on every coordinator<->worker link and asserts
// the headline invariant — drop, duplicate, delay, corruption, and
// mid-frame reset faults on real shm/TCP traffic are detected (CRC-32
// trailer) and healed (go-back-N retransmit) without moving a single
// trained bit relative to the fault-free --runtime=sim run, at 1/2/4
// workers over both transports. A SIGSTOP-hung worker is likewise
// recovered bit-identically through the heartbeat watchdog's SIGKILL
// escalation into the existing rewind-and-refork recovery path.
//
// The fault seed is overridable (HETKG_PROC_FAULT_SEED) so CI can run
// the battery under several fixed fault plans.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETKG_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define HETKG_TSAN 1
#endif

namespace hetkg {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string FaultSeed() {
  const char* env = std::getenv("HETKG_PROC_FAULT_SEED");
  return env != nullptr && *env != '\0' ? env : "1001";
}

// Every wire-fault kind at once, at rates that fire hundreds of times
// per run yet keep the retransmit stalls bounded.
std::string AllFaultFlags() {
  return " --proc_fault_seed " + FaultSeed() +
         " --proc_fault_drop 0.02 --proc_fault_duplicate 0.02"
         " --proc_fault_corrupt 0.02 --proc_fault_reset 0.01"
         " --proc_fault_delay 0.01";
}

int RunTrainer(const std::string& extra_args, const std::string& log_path) {
  const std::string cmd = std::string(HETKG_TRAIN_BIN) +
                          " --dataset fb15k --triple_fraction 0.01"
                          " --epochs 2 --seed 77 --threads 2 " +
                          extra_args + " > " + log_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  return WEXITSTATUS(rc);
}

class ProcFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef HETKG_TSAN
    GTEST_SKIP() << "proc runtime forks multi-threaded trainer processes; "
                    "covered by the non-sanitizer CI matrix";
#endif
  }
};

TEST_F(ProcFaultTest, FaultedRunsMatchFaultFreeSim) {
  const std::string dir = FreshDir("proc-fault");
  for (const int workers : {1, 2, 4}) {
    const std::string tag = std::to_string(workers);
    const std::string sim_state = dir + "/sim" + tag + ".state";
    ASSERT_EQ(RunTrainer("--machines " + tag + " --save_state " + sim_state,
                         dir + "/sim" + tag + ".log"),
              0)
        << ReadFileBytes(dir + "/sim" + tag + ".log");
    const std::string sim_bytes = ReadFileBytes(sim_state);
    ASSERT_FALSE(sim_bytes.empty());
    for (const std::string transport : {"shm", "tcp"}) {
      const std::string base = dir + "/" + transport + tag;
      ASSERT_EQ(RunTrainer("--runtime proc --workers " + tag +
                               " --proc_transport " + transport +
                               AllFaultFlags() + " --save_state " + base +
                               ".state",
                           base + ".log"),
                0)
          << ReadFileBytes(base + ".log");
      EXPECT_EQ(sim_bytes, ReadFileBytes(base + ".state"))
          << "faulted " << transport << " snapshot diverged from sim at "
          << workers << " workers (seed " << FaultSeed() << ")";
      // The invariant must not hold vacuously: the run's own summary
      // proves faults actually fired on the coordinator direction.
      const std::string log = ReadFileBytes(base + ".log");
      EXPECT_NE(log.find("proc faults (coordinator side):"),
                std::string::npos)
          << log;
      EXPECT_EQ(log.find("): 0 injected"), std::string::npos)
          << transport << " run at " << workers
          << " workers injected no faults — rates too low for this "
             "traffic volume?\n"
          << log;
    }
  }
}

TEST_F(ProcFaultTest, StoppedWorkerIsRecoveredByWatchdog) {
  const std::string dir = FreshDir("proc-stop");
  for (const std::string transport : {"shm", "tcp"}) {
    const std::string base = dir + "/" + transport;
    // Both runs checkpoint on the same cadence (periodic saves feed a
    // counter inside the snapshot, so the reference needs them too).
    const std::string common = "--runtime proc --workers 2"
                               " --proc_transport " +
                               transport + " --checkpoint_every 20 ";
    ASSERT_EQ(RunTrainer(common + "--checkpoint_dir " + base +
                             "_ck_ref --save_state " + base + "_ref.state",
                         base + "_ref.log"),
              0)
        << ReadFileBytes(base + "_ref.log");
    // Worker 1 SIGSTOPs itself at the step command for iteration 47:
    // frozen alive, its process still reaps as running, and only the
    // missing heartbeats can give it away. A tight watchdog keeps the
    // test fast; escalation SIGKILLs it into the normal rewind path.
    ASSERT_EQ(RunTrainer(common + "--proc_stop 1:47 --proc_heartbeat_ms 100"
                             " --proc_watchdog_ms 1500 --checkpoint_dir " +
                             base + "_ck_stop --save_state " + base +
                             "_stop.state",
                         base + "_stop.log"),
              0)
        << ReadFileBytes(base + "_stop.log");
    const std::string ref = ReadFileBytes(base + "_ref.state");
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(ref, ReadFileBytes(base + "_stop.state"))
        << "post-hang recovery diverged from the uninterrupted "
        << transport << " run";
    const std::string log = ReadFileBytes(base + "_stop.log");
    EXPECT_NE(log.find("1 watchdog escalations"), std::string::npos) << log;
    EXPECT_NE(log.find("signal 9 (watchdog escalation)"), std::string::npos)
        << log;
  }
}

TEST_F(ProcFaultTest, StopWithoutWatchdogIsRejected) {
  const std::string dir = FreshDir("proc-stop-reject");
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --proc_stop 1:47"
                       " --proc_watchdog_ms 0",
                       dir + "/run.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/run.log").find("watchdog"),
            std::string::npos);
  EXPECT_NE(RunTrainer("--runtime proc --workers 2 --proc_heartbeat_ms 0",
                       dir + "/hb.log"),
            0);
  EXPECT_NE(ReadFileBytes(dir + "/hb.log").find("proc_heartbeat_ms"),
            std::string::npos);
}

// net.fault.* / watchdog.* metric keys must exist exactly when the
// corresponding events fired: a fault-free run's metrics export carries
// none of them, a faulted run's carries the injection and healing
// counters from both directions of the links.
TEST_F(ProcFaultTest, FaultMetricsAppearOnlyWhenFaultsFire) {
  const std::string dir = FreshDir("proc-fault-metrics");
  ASSERT_EQ(RunTrainer("--runtime proc --workers 2 --metrics_json " + dir +
                           "/clean.json",
                       dir + "/clean.log"),
            0)
      << ReadFileBytes(dir + "/clean.log");
  const std::string clean = ReadFileBytes(dir + "/clean.json");
  ASSERT_FALSE(clean.empty());
  EXPECT_EQ(clean.find("net.fault."), std::string::npos)
      << "fault-free run exported net.fault.* keys";
  EXPECT_EQ(clean.find("watchdog.escalations"), std::string::npos)
      << "fault-free run exported a watchdog escalation";

  ASSERT_EQ(RunTrainer("--runtime proc --workers 2" + AllFaultFlags() +
                           " --metrics_json " + dir + "/faulty.json",
                       dir + "/faulty.log"),
            0)
      << ReadFileBytes(dir + "/faulty.log");
  const std::string faulty = ReadFileBytes(dir + "/faulty.json");
  for (const std::string key :
       {"net.fault.injected_drops", "net.fault.injected_duplicates",
        "net.fault.injected_corruptions", "net.fault.injected_resets",
        "net.fault.crc_errors", "net.fault.retransmits"}) {
    EXPECT_NE(faulty.find(key), std::string::npos)
        << "faulted run's metrics JSON is missing " << key;
  }
}

}  // namespace
}  // namespace hetkg
