// Reproduces Fig. 6: runtime speedup on Freebase-86m as the worker count
// grows (1, 2, 4, 8 machines). Paper shape: PBG scales poorly (dense
// relation transfer + lock-server stalls); DGL-KE and HET-KG scale
// near-linearly, with HET-KG's average speedup ~30% above DGL-KE's.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  flags.Define("proc", "false",
               "also run HET-KG DPS under --runtime=proc (real worker "
               "processes over shm rings) and report measured wall-clock "
               "per worker count — opt-in: it forks 1..8 real processes");
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig6_scalability",
                     "Fig. 6 - speedup vs number of workers (Freebase-86m)");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &base);
  if (!flags.IsSet("dim")) {
    // Scalability depends on the compute:communication balance. The
    // paper ran d=400, where single-machine compute dominates; d=64
    // keeps that regime while staying tractable on one core.
    base.dim = 64;
  }
  const size_t machine_counts[] = {1, 2, 4, 8};

  bench::Table table({"System", "Workers", "Epoch time(s)", "Speedup"});
  for (core::SystemKind system :
       {core::SystemKind::kPbg, core::SystemKind::kDglKe,
        core::SystemKind::kHetKgDps}) {
    double single_machine_time = 0.0;
    for (size_t machines : machine_counts) {
      core::TrainerConfig config = base;
      config.num_machines = machines;
      config.pbg_partitions = 2 * machines;
      const std::string tag = std::string(core::SystemKindName(system)) +
                              "_w" + std::to_string(machines);
      config.obs.trace_out = bench::SuffixedPath(base.obs.trace_out, tag);
      config.obs.metrics_json =
          bench::SuffixedPath(base.obs.metrics_json, tag);
      auto engine = core::MakeEngine(system, config, dataset.graph,
                                     dataset.split.train)
                        .value();
      const auto report = engine->Train(1).value();
      const double t = report.total_time.total_seconds();
      if (machines == 1) single_machine_time = t;
      table.AddRow({std::string(core::SystemKindName(system)),
                    std::to_string(machines), bench::Fmt(t, 2),
                    bench::Fmt(single_machine_time / t, 2) + "x"});
    }
  }
  table.Print("Fig. 6: speedup over 1 worker, Freebase-86m synthetic");
  std::printf("\nPaper reference: PBG plateaus early; HET-KG's average "
              "acceleration ratio is ~30%% above DGL-KE's.\n");

  // Opt-in companion measurement: the same HET-KG DPS scenario driven
  // through the process runtime (one real OS process per worker over
  // shm rings). Simulated time is identical by construction — the
  // bit-identity invariant — so the interesting column is measured
  // wall-clock: real fork/IPC/turn-taking overhead vs worker count,
  // and on the fault-on rows (DESIGN.md §15) the added cost of the
  // CRC/ack/retransmit machinery healing an injected-fault wire.
  if (flags.GetBool("proc")) {
    bench::Table proc_table(
        {"Runtime", "Workers", "Wall(s)", "Overhead", "Epoch time(s)"});
    for (size_t machines : machine_counts) {
      double clean_wall_s = 0.0;
      for (const bool faults : {false, true}) {
        core::TrainerConfig config = base;
        config.num_machines = machines;
        config.pbg_partitions = 2 * machines;
        config.obs = obs::ObsConfig{};  // The proc runtime rejects obs.
        auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                       dataset.graph, dataset.split.train)
                          .value();
        auto* ps_engine =
            dynamic_cast<core::PsTrainingEngine*>(engine.get());
        net::ProcOptions options;
        options.retry = net::RetryPolicy::FromFaultConfig(config.fault);
        if (faults) {
          // The robustness suite's fault plan (proc_fault_test.cpp):
          // every fault kind at once, healed by the reliable layer.
          options.fault.enabled = true;
          options.fault.seed = 1001;
          options.fault.drop_prob = 0.02;
          options.fault.duplicate_prob = 0.02;
          options.fault.corrupt_prob = 0.02;
          options.fault.reset_prob = 0.01;
          options.fault.delay_prob = 0.01;
        }
        auto coordinator =
            net::ProcCoordinator::ForkWorkers(ps_engine, options).value();
        Stopwatch wall;
        const auto report = engine->Train(1).value();
        const double wall_s = wall.ElapsedSeconds();
        const Status stopped = coordinator->Shutdown();
        if (!stopped.ok()) {
          std::fprintf(stderr, "proc shutdown: %s\n",
                       stopped.ToString().c_str());
        }
        if (!faults) clean_wall_s = wall_s;
        proc_table.AddRow(
            {faults ? "proc/shm+faults" : "proc/shm",
             std::to_string(machines), bench::Fmt(wall_s, 2),
             faults ? bench::Fmt((wall_s / clean_wall_s - 1.0) * 100.0, 1) +
                          "%"
                    : "-",
             bench::Fmt(report.total_time.total_seconds(), 2)});
      }
    }
    proc_table.Print("Fig. 6 companion: HET-KG DPS under the process "
                     "runtime (measured wall-clock, fault-off vs fault-on)");
  }
  return 0;
}
