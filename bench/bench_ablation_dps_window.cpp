// Ablation (Sec. IV-B): the DPS prefetch window D. Small D tracks the
// short-term access pattern closely (higher hit ratio) but rebuilds the
// hot table often (more filter work and admission pulls); large D
// converges to CPS behaviour. The paper fixes D per run and contrasts
// CPS (D = whole epoch) with DPS.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_ablation_dps_window",
                     "Ablation - DPS prefetch window D sweep");

  const auto dataset = bench::GetDataset("fb15k", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Window D", "Hit ratio", "Cache rebuilds",
                      "Remote bytes", "Time(s)"});
  for (size_t window : {8u, 32u, 128u, 512u, 2048u}) {
    core::TrainerConfig config = base;
    config.sync.dps_window = window;
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options);
    table.AddRow(
        {std::to_string(window),
         bench::Fmt(outcome.report.overall_hit_ratio, 3),
         std::to_string(outcome.report.metrics.Get(metric::kCacheRebuilds)),
         HumanBytes(static_cast<double>(outcome.report.total_remote_bytes)),
         bench::Fmt(outcome.report.total_time.total_seconds(), 2)});
  }
  // CPS reference (fixed whole-epoch hot set).
  const auto cps = bench::RunSystem(core::SystemKind::kHetKgCps, base,
                                    dataset, epochs, eval_options);
  table.AddRow({"CPS (epoch)", bench::Fmt(cps.report.overall_hit_ratio, 3),
                std::to_string(cps.report.metrics.Get(metric::kCacheRebuilds)),
                HumanBytes(static_cast<double>(cps.report.total_remote_bytes)),
                bench::Fmt(cps.report.total_time.total_seconds(), 2)});
  table.Print("Ablation: DPS window D (FB15k synthetic)");
  std::printf("\nExpected: smaller D gives the freshest hot set (highest "
              "hit ratio) at the cost of more rebuild work.\n");
  return 0;
}
