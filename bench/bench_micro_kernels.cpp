// google-benchmark micro-kernels for the inner loops every experiment
// leans on: score forward/backward per model, sparse AdaGrad, cache
// lookup/assignment, Zipf sampling, and the prefetch+filter pipeline.
#include <benchmark/benchmark.h>

#include "hetkg/hetkg.h"

namespace {

using namespace hetkg;

/// Registers one benchmark instance per ModelKind (all 9).
void AllModelKinds(benchmark::internal::Benchmark* b) {
  for (embedding::ModelKind kind :
       {embedding::ModelKind::kTransEL1, embedding::ModelKind::kTransEL2,
        embedding::ModelKind::kDistMult, embedding::ModelKind::kComplEx,
        embedding::ModelKind::kTransH, embedding::ModelKind::kTransR,
        embedding::ModelKind::kTransD, embedding::ModelKind::kHolE,
        embedding::ModelKind::kRescal}) {
    b->Arg(static_cast<int>(kind));
  }
}

void BM_ScoreForward(benchmark::State& state) {
  const auto kind = static_cast<embedding::ModelKind>(state.range(0));
  const size_t dim = 64;
  auto fn = embedding::MakeScoreFunction(kind, dim).value();
  Rng rng(1);
  std::vector<float> h(dim), t(dim), r(fn->RelationDim(dim));
  for (auto* v : {&h, &t, &r}) {
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn->Score(h, r, t));
  }
  state.SetLabel(std::string(fn->name()));
}
BENCHMARK(BM_ScoreForward)->Apply(AllModelKinds);

void BM_ScoreBackward(benchmark::State& state) {
  const auto kind = static_cast<embedding::ModelKind>(state.range(0));
  const size_t dim = 64;
  auto fn = embedding::MakeScoreFunction(kind, dim).value();
  Rng rng(2);
  std::vector<float> h(dim), t(dim), r(fn->RelationDim(dim));
  std::vector<float> gh(dim), gt(dim), gr(fn->RelationDim(dim));
  for (auto* v : {&h, &t, &r}) {
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    fn->ScoreBackward(h, r, t, 1.0, gh, gr, gt);
    benchmark::DoNotOptimize(gh.data());
  }
  state.SetLabel(std::string(fn->name()));
}
BENCHMARK(BM_ScoreBackward)->Apply(AllModelKinds);

// Batched forward+backward of one positive and N tail-corrupt
// negatives, the exact shape ParallelBatchScorer::ProcessChunk issues.
// range(3) selects the path: 0 = per-triple scalar loop under
// --kernel=scalar (the pre-batching baseline), 1 = the batch API under
// --kernel=vector. Items/sec ratio between the two at equal
// (model, dim, negs) is the batched-kernel speedup (EXPERIMENTS.md).
void BM_ScoreBatch(benchmark::State& state) {
  const auto kind = static_cast<embedding::ModelKind>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t negs = static_cast<size_t>(state.range(2));
  const bool batched = state.range(3) != 0;
  embedding::kernels::SetKernelMode(
      batched ? embedding::kernels::KernelMode::kVector
              : embedding::kernels::KernelMode::kScalar);

  auto fn = embedding::MakeScoreFunction(kind, dim).value();
  const size_t rdim = fn->RelationDim(dim);
  Rng rng(5);
  std::vector<float> h(dim), r(rdim), t(dim);
  for (auto* v : {&h, &r, &t}) {
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian());
  }
  std::vector<std::vector<float>> neg_tails(negs, std::vector<float>(dim));
  for (auto& tail : neg_tails) {
    for (auto& x : tail) x = static_cast<float>(rng.NextGaussian());
  }

  const embedding::TripleView ref{h, r, t};
  std::vector<embedding::TripleView> views(negs + 1);
  views[0] = ref;
  for (size_t g = 0; g < negs; ++g) {
    views[g + 1] = {h, r, neg_tails[g]};
  }
  std::vector<double> upstreams(negs + 1, 1.0 / static_cast<double>(negs));
  upstreams[0] = -1.0;
  std::vector<float> gh(dim, 0.0f), gr(rdim, 0.0f);
  std::vector<std::vector<float>> gts(negs + 1, std::vector<float>(dim));
  std::vector<embedding::GradView> grads(negs + 1);
  for (size_t k = 0; k <= negs; ++k) {
    grads[k] = {gh, gr, gts[k]};
  }
  std::vector<double> scores(negs);
  embedding::kernels::KernelScratch scratch;

  for (auto _ : state) {
    if (batched) {
      fn->ScoreBatch(ref,
                     std::span<const embedding::TripleView>(views).subspan(1),
                     scores, &scratch);
      fn->ScoreBackwardBatch(ref, views, upstreams, grads, &scratch);
    } else {
      for (size_t g = 0; g < negs; ++g) {
        scores[g] = fn->Score(views[g + 1].h, views[g + 1].r, views[g + 1].t);
      }
      for (size_t k = 0; k <= negs; ++k) {
        fn->ScoreBackward(views[k].h, views[k].r, views[k].t, upstreams[k],
                          grads[k].h, grads[k].r, grads[k].t);
      }
    }
    benchmark::DoNotOptimize(scores.data());
    benchmark::DoNotOptimize(gh.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(negs + 1));
  state.SetLabel(std::string(fn->name()) + " dim=" + std::to_string(dim) +
                 " negs=" + std::to_string(negs) +
                 (batched ? " batch" : " scalar"));
  embedding::kernels::SetKernelMode(embedding::kernels::KernelMode::kAuto);
}
BENCHMARK(BM_ScoreBatch)
    ->ArgsProduct({{static_cast<int>(embedding::ModelKind::kTransEL1),
                    static_cast<int>(embedding::ModelKind::kTransEL2),
                    static_cast<int>(embedding::ModelKind::kDistMult),
                    static_cast<int>(embedding::ModelKind::kComplEx)},
                   {64, 128, 400},
                   {1, 8, 64},
                   {0, 1}});

void BM_AdaGradApply(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  embedding::EmbeddingTable table(1024, dim);
  embedding::AdaGrad opt(1024, dim, 0.1);
  std::vector<float> grad(dim, 0.01f);
  size_t row = 0;
  for (auto _ : state) {
    opt.Apply(row, table.Row(row), grad);
    row = (row + 1) % 1024;
  }
  state.SetBytesProcessed(state.iterations() * dim * sizeof(float));
}
BENCHMARK(BM_AdaGradApply)->Arg(16)->Arg(64)->Arg(400);

// AdaGrad whole-row update: range(1) = 0 runs Apply under
// --kernel=scalar, 1 runs ApplyBatch under --kernel=vector.
void BM_AdaGradApplyBatch(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  embedding::kernels::SetKernelMode(
      batched ? embedding::kernels::KernelMode::kVector
              : embedding::kernels::KernelMode::kScalar);
  embedding::EmbeddingTable table(1024, dim);
  embedding::AdaGrad opt(1024, dim, 0.1);
  std::vector<float> grad(dim, 0.01f);
  size_t row = 0;
  for (auto _ : state) {
    if (batched) {
      opt.ApplyBatch(row, table.Row(row), grad);
    } else {
      opt.Apply(row, table.Row(row), grad);
    }
    row = (row + 1) % 1024;
  }
  state.SetBytesProcessed(state.iterations() * dim * sizeof(float));
  state.SetLabel("dim=" + std::to_string(dim) +
                 (batched ? " batch" : " scalar"));
  embedding::kernels::SetKernelMode(embedding::kernels::KernelMode::kAuto);
}
BENCHMARK(BM_AdaGradApplyBatch)->ArgsProduct({{64, 128, 400}, {0, 1}});

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<size_t>(state.range(0)), 0.8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 14)->Arg(1 << 20);

void BM_HotTableLookup(benchmark::State& state) {
  core::HotEmbeddingTable table(512, 1536, 64, 64, 0.1);
  std::vector<EmbKey> keys;
  for (EntityId e = 0; e < 512; ++e) keys.push_back(EntityKey(e));
  for (RelationId r = 0; r < 1536; ++r) keys.push_back(RelationKey(r));
  table.Assign(keys);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Contains(keys[i]));
    benchmark::DoNotOptimize(table.Row(keys[i]).data());
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_HotTableLookup);

void BM_PrefetchAndFilter(benchmark::State& state) {
  graph::SyntheticSpec spec;
  spec.num_entities = 5000;
  spec.num_relations = 100;
  spec.num_triples = 50000;
  spec.planted_structure = false;
  auto graph = graph::GenerateSynthetic(spec).value();
  embedding::BatchedNegativeSampler sampler(spec.num_entities, 8, 8, 5);
  const auto& triples = graph.triples();
  core::Prefetcher prefetcher(&triples, 32, &sampler, 7);
  const core::FilterOptions options{256, 0.25, true};
  const core::FilterQuota quota =
      core::ComputeQuota(options, spec.num_entities, spec.num_relations);
  for (auto _ : state) {
    core::FrequencyMap freq;
    prefetcher.PrefetchCountOnly(64, &freq);
    benchmark::DoNotOptimize(core::FilterHotKeys(freq, options, quota));
  }
}
BENCHMARK(BM_PrefetchAndFilter)->Unit(benchmark::kMillisecond);

// Full batch forward/backward through the deterministic parallel
// scorer at 1/2/4/8 threads. The decomposition is identical at every
// thread count, so this measures pure fan-out speedup (on a machine
// with that many cores; a single-core host shows ~flat numbers plus
// scheduling overhead).
void BM_BatchForwardBackward(benchmark::State& state) {
  const size_t num_threads = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  const size_t num_entities = 1024;
  const size_t num_relations = 32;
  const size_t num_positives = 128;
  const size_t negatives_per_positive = 8;

  auto score_fn =
      embedding::MakeScoreFunction(embedding::ModelKind::kTransEL1, dim)
          .value();
  auto loss_fn =
      embedding::MakeLossFunction("margin", 1.0, negatives_per_positive)
          .value();

  // One dense key table standing in for a resolved mini-batch: entity
  // rows first, relation rows after (same layout the engines build).
  const size_t num_keys = num_entities + num_relations;
  Rng rng(17);
  std::vector<float> table(num_keys * dim);
  for (float& v : table) {
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  }
  std::vector<std::span<float>> rows;
  std::vector<size_t> offsets = {0};
  for (size_t k = 0; k < num_keys; ++k) {
    rows.emplace_back(table.data() + k * dim, dim);
    offsets.push_back(offsets.back() + dim);
  }

  std::vector<core::ResolvedTriple> positives;
  std::vector<core::ResolvedPair> pairs;
  for (size_t p = 0; p < num_positives; ++p) {
    core::ResolvedTriple pos;
    pos.head = static_cast<uint32_t>(rng.NextBounded(num_entities));
    pos.relation = static_cast<uint32_t>(
        num_entities + rng.NextBounded(num_relations));
    pos.tail = static_cast<uint32_t>(rng.NextBounded(num_entities));
    positives.push_back(pos);
    for (size_t n = 0; n < negatives_per_positive; ++n) {
      core::ResolvedPair pair;
      pair.positive_index = static_cast<uint32_t>(p);
      pair.negative = pos;
      (rng.NextBernoulli(0.5) ? pair.negative.head : pair.negative.tail) =
          static_cast<uint32_t>(rng.NextBounded(num_entities));
      pairs.push_back(pair);
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  core::ParallelBatchScorer scorer;
  std::vector<float> grads(offsets.back(), 0.0f);
  std::vector<double> pos_scores;
  for (auto _ : state) {
    std::fill(grads.begin(), grads.end(), 0.0f);
    const core::BatchStats stats =
        scorer.Run(*score_fn, *loss_fn, positives, pairs, rows, offsets,
                   grads, &pos_scores, pool.get());
    benchmark::DoNotOptimize(stats.loss_sum);
    benchmark::DoNotOptimize(grads.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
  state.SetLabel("threads=" + std::to_string(num_threads));
}
BENCHMARK(BM_BatchForwardBackward)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_LinkPredictionRanking(benchmark::State& state) {
  graph::SyntheticSpec spec;
  spec.num_entities = 2000;
  spec.num_relations = 20;
  spec.num_triples = 20000;
  auto dataset = graph::GenerateDataset(spec).value();
  embedding::EmbeddingTable entities(spec.num_entities, 32);
  embedding::EmbeddingTable relations(spec.num_relations, 32);
  Rng rng(9);
  entities.InitXavierUniform(&rng);
  relations.InitXavierUniform(&rng);
  core::TableLookup lookup(&entities, &relations);
  auto fn =
      embedding::MakeScoreFunction(embedding::ModelKind::kTransEL1, 32)
          .value();
  eval::EvalOptions options;
  options.max_triples = 20;
  options.num_candidates = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateLinkPrediction(
        lookup, *fn, dataset.graph, dataset.split.test, options));
  }
}
BENCHMARK(BM_LinkPredictionRanking)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
