// google-benchmark micro-kernels for the inner loops every experiment
// leans on: score forward/backward per model, sparse AdaGrad, cache
// lookup/assignment, Zipf sampling, and the prefetch+filter pipeline.
#include <benchmark/benchmark.h>

#include "hetkg/hetkg.h"

namespace {

using namespace hetkg;

void BM_ScoreForward(benchmark::State& state) {
  const auto kind = static_cast<embedding::ModelKind>(state.range(0));
  const size_t dim = 64;
  auto fn = embedding::MakeScoreFunction(kind, dim).value();
  Rng rng(1);
  std::vector<float> h(dim), t(dim), r(fn->RelationDim(dim));
  for (auto* v : {&h, &t, &r}) {
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn->Score(h, r, t));
  }
  state.SetLabel(std::string(fn->name()));
}
BENCHMARK(BM_ScoreForward)
    ->Arg(static_cast<int>(embedding::ModelKind::kTransEL1))
    ->Arg(static_cast<int>(embedding::ModelKind::kDistMult))
    ->Arg(static_cast<int>(embedding::ModelKind::kComplEx))
    ->Arg(static_cast<int>(embedding::ModelKind::kTransH));

void BM_ScoreBackward(benchmark::State& state) {
  const auto kind = static_cast<embedding::ModelKind>(state.range(0));
  const size_t dim = 64;
  auto fn = embedding::MakeScoreFunction(kind, dim).value();
  Rng rng(2);
  std::vector<float> h(dim), t(dim), r(fn->RelationDim(dim));
  std::vector<float> gh(dim), gt(dim), gr(fn->RelationDim(dim));
  for (auto* v : {&h, &t, &r}) {
    for (auto& x : *v) x = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    fn->ScoreBackward(h, r, t, 1.0, gh, gr, gt);
    benchmark::DoNotOptimize(gh.data());
  }
  state.SetLabel(std::string(fn->name()));
}
BENCHMARK(BM_ScoreBackward)
    ->Arg(static_cast<int>(embedding::ModelKind::kTransEL1))
    ->Arg(static_cast<int>(embedding::ModelKind::kDistMult))
    ->Arg(static_cast<int>(embedding::ModelKind::kComplEx));

void BM_AdaGradApply(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  embedding::EmbeddingTable table(1024, dim);
  embedding::AdaGrad opt(1024, dim, 0.1);
  std::vector<float> grad(dim, 0.01f);
  size_t row = 0;
  for (auto _ : state) {
    opt.Apply(row, table.Row(row), grad);
    row = (row + 1) % 1024;
  }
  state.SetBytesProcessed(state.iterations() * dim * sizeof(float));
}
BENCHMARK(BM_AdaGradApply)->Arg(16)->Arg(64)->Arg(400);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<size_t>(state.range(0)), 0.8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 14)->Arg(1 << 20);

void BM_HotTableLookup(benchmark::State& state) {
  core::HotEmbeddingTable table(512, 1536, 64, 64, 0.1);
  std::vector<EmbKey> keys;
  for (EntityId e = 0; e < 512; ++e) keys.push_back(EntityKey(e));
  for (RelationId r = 0; r < 1536; ++r) keys.push_back(RelationKey(r));
  table.Assign(keys);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Contains(keys[i]));
    benchmark::DoNotOptimize(table.Row(keys[i]).data());
    i = (i + 1) % keys.size();
  }
}
BENCHMARK(BM_HotTableLookup);

void BM_PrefetchAndFilter(benchmark::State& state) {
  graph::SyntheticSpec spec;
  spec.num_entities = 5000;
  spec.num_relations = 100;
  spec.num_triples = 50000;
  spec.planted_structure = false;
  auto graph = graph::GenerateSynthetic(spec).value();
  embedding::BatchedNegativeSampler sampler(spec.num_entities, 8, 8, 5);
  const auto& triples = graph.triples();
  core::Prefetcher prefetcher(&triples, 32, &sampler, 7);
  const core::FilterOptions options{256, 0.25, true};
  const core::FilterQuota quota =
      core::ComputeQuota(options, spec.num_entities, spec.num_relations);
  for (auto _ : state) {
    core::FrequencyMap freq;
    prefetcher.PrefetchCountOnly(64, &freq);
    benchmark::DoNotOptimize(core::FilterHotKeys(freq, options, quota));
  }
}
BENCHMARK(BM_PrefetchAndFilter)->Unit(benchmark::kMillisecond);

// Full batch forward/backward through the deterministic parallel
// scorer at 1/2/4/8 threads. The decomposition is identical at every
// thread count, so this measures pure fan-out speedup (on a machine
// with that many cores; a single-core host shows ~flat numbers plus
// scheduling overhead).
void BM_BatchForwardBackward(benchmark::State& state) {
  const size_t num_threads = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  const size_t num_entities = 1024;
  const size_t num_relations = 32;
  const size_t num_positives = 128;
  const size_t negatives_per_positive = 8;

  auto score_fn =
      embedding::MakeScoreFunction(embedding::ModelKind::kTransEL1, dim)
          .value();
  auto loss_fn =
      embedding::MakeLossFunction("margin", 1.0, negatives_per_positive)
          .value();

  // One dense key table standing in for a resolved mini-batch: entity
  // rows first, relation rows after (same layout the engines build).
  const size_t num_keys = num_entities + num_relations;
  Rng rng(17);
  std::vector<float> table(num_keys * dim);
  for (float& v : table) {
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  }
  std::vector<std::span<float>> rows;
  std::vector<size_t> offsets = {0};
  for (size_t k = 0; k < num_keys; ++k) {
    rows.emplace_back(table.data() + k * dim, dim);
    offsets.push_back(offsets.back() + dim);
  }

  std::vector<core::ResolvedTriple> positives;
  std::vector<core::ResolvedPair> pairs;
  for (size_t p = 0; p < num_positives; ++p) {
    core::ResolvedTriple pos;
    pos.head = static_cast<uint32_t>(rng.NextBounded(num_entities));
    pos.relation = static_cast<uint32_t>(
        num_entities + rng.NextBounded(num_relations));
    pos.tail = static_cast<uint32_t>(rng.NextBounded(num_entities));
    positives.push_back(pos);
    for (size_t n = 0; n < negatives_per_positive; ++n) {
      core::ResolvedPair pair;
      pair.positive_index = static_cast<uint32_t>(p);
      pair.negative = pos;
      (rng.NextBernoulli(0.5) ? pair.negative.head : pair.negative.tail) =
          static_cast<uint32_t>(rng.NextBounded(num_entities));
      pairs.push_back(pair);
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  core::ParallelBatchScorer scorer;
  std::vector<float> grads(offsets.back(), 0.0f);
  std::vector<double> pos_scores;
  for (auto _ : state) {
    std::fill(grads.begin(), grads.end(), 0.0f);
    const core::BatchStats stats =
        scorer.Run(*score_fn, *loss_fn, positives, pairs, rows, offsets,
                   grads, &pos_scores, pool.get());
    benchmark::DoNotOptimize(stats.loss_sum);
    benchmark::DoNotOptimize(grads.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs.size()));
  state.SetLabel("threads=" + std::to_string(num_threads));
}
BENCHMARK(BM_BatchForwardBackward)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_LinkPredictionRanking(benchmark::State& state) {
  graph::SyntheticSpec spec;
  spec.num_entities = 2000;
  spec.num_relations = 20;
  spec.num_triples = 20000;
  auto dataset = graph::GenerateDataset(spec).value();
  embedding::EmbeddingTable entities(spec.num_entities, 32);
  embedding::EmbeddingTable relations(spec.num_relations, 32);
  Rng rng(9);
  entities.InitXavierUniform(&rng);
  relations.InitXavierUniform(&rng);
  core::TableLookup lookup(&entities, &relations);
  auto fn =
      embedding::MakeScoreFunction(embedding::ModelKind::kTransEL1, 32)
          .value();
  eval::EvalOptions options;
  options.max_triples = 20;
  options.num_candidates = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::EvaluateLinkPrediction(
        lookup, *fn, dataset.graph, dataset.split.test, options));
  }
}
BENCHMARK(BM_LinkPredictionRanking)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
