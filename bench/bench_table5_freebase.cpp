// Reproduces Table V: link prediction on Freebase-86m with TransE.
// Paper shape: HET-KG matches or slightly beats DGL-KE accuracy while
// training faster; PBG is ~3.6x slower than either. The dataset is
// generated at --freebase_scale of the real 86M-entity graph; at
// --freebase_scale=1.0 pass --storage=tiered --cold_dir=<dir> (and
// optionally --cold_dtype=int8) so the full tables fit one machine.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_table5_freebase",
                     "Table V - link prediction results on Freebase-86m");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig config = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &config);
  bench::RunLinkPredictionTable(
      "Table V: Freebase-86m (synthetic @" +
          flags.GetString("freebase_scale") + " scale, " +
          std::to_string(dataset.graph.num_triples()) +
          " triples, d=" + std::to_string(config.dim) + ", storage=" +
          flags.GetString("storage") +
          (config.storage.enabled
               ? "/" + std::string(embedding::ColdDtypeName(
                     config.storage.dtype))
               : "") +
          ")",
      dataset, config, {embedding::ModelKind::kTransEL1},
      static_cast<size_t>(flags.GetInt("epochs")),
      bench::EvalOptionsFromFlags(flags));

  std::printf(
      "\nPaper reference (Table V, TransE, 10 epochs): PBG 0.669/1126min, "
      "DGL-KE 0.671/313min,\nHET-KG-C 0.678/313min, HET-KG-D 0.677/305min "
      "- the headline 3.7x (vs PBG) and 1.1x (vs DGL-KE) speedups.\n");
  return 0;
}
