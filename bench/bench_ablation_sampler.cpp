// Ablation (Sec. V "Negative Sampling"): independent uniform corruption
// versus the batched strategy shared with PBG/DGL-KE. The paper adopts
// batching to cut sampling complexity from O(b_p d (b_n + 1)) to
// O(b_p d + b_p k d / b_c); downstream it also shrinks the distinct
// entity rows a batch touches, hence the traffic.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_ablation_sampler",
                     "Ablation - uniform vs batched negative sampling");

  const auto dataset = bench::GetDataset("fb15k", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Sampler", "Entity draws/batch", "Remote bytes",
                      "Time(s)", "Test MRR"});
  for (const std::string& sampler : {"uniform", "batched"}) {
    core::TrainerConfig config = base;
    config.negative_sampler = sampler;
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options);
    auto probe = embedding::MakeNegativeSampler(
                     sampler, dataset.graph.num_entities(),
                     config.negatives_per_positive,
                     config.negative_chunk_size, 1)
                     .value();
    table.AddRow(
        {sampler,
         std::to_string(probe->EntityDrawsPerBatch(config.batch_size)),
         HumanBytes(static_cast<double>(outcome.report.total_remote_bytes)),
         bench::Fmt(outcome.report.total_time.total_seconds(), 2),
         bench::Fmt(outcome.test_metrics.mrr, 3)});
  }
  table.Print("Ablation: negative sampling strategy (FB15k synthetic, "
              "HET-KG-D)");
  std::printf("\nExpected: batched sampling draws b_n entities per chunk "
              "instead of per positive,\nreducing both sampling work and "
              "distinct rows per iteration at similar MRR.\n");
  return 0;
}
