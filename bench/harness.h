#ifndef HETKG_BENCH_HARNESS_H_
#define HETKG_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "common/flags.h"
#include "core/trainer.h"
#include "eval/link_prediction.h"
#include "graph/synthetic.h"

namespace hetkg::bench {

/// Fixed-width console table matching the row/column layout of the
/// paper's tables, so bench output can be diffed against the paper
/// side by side.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns.
  std::string ToString() const;

  /// Renders as RFC 4180 CSV: one header line then one line per row;
  /// cells containing commas, quotes or newlines are quoted, with
  /// embedded quotes doubled.
  std::string ToCsv() const;

  /// Convenience: render to stdout with a title banner.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double value, int digits = 3);

/// Prints the standard bench banner: binary name + what it reproduces.
void PrintBanner(const std::string& name, const std::string& what);

/// Registers the flags shared by every table/figure bench:
///   --dim --epochs --machines --lr --batch --negatives --cache
///   --staleness --dps_window --triple_fraction --freebase_scale
///   --eval_triples --eval_candidates --threads --seed, plus the
/// tiered-storage knobs --storage --cold_dir --cold_dtype
/// (DESIGN.md §16), plus the
/// fault-injection knobs --fault_drop --fault_duplicate --fault_delay
/// --fault_delay_us --fault_retries --fault_backoff_us --fault_seed
/// (all-zero probabilities = perfect network; a fixed --fault_seed
/// replays a fault scenario bit-identically), plus the observability
/// outputs --trace_out --metrics_json --metrics_window (empty paths =
/// disabled; see DESIGN.md §8).
/// Defaults are single-core scale; pass paper-scale values to override.
void DefineCommonFlags(FlagParser* flags);

/// Builds a TrainerConfig from the parsed common flags.
core::TrainerConfig ConfigFromFlags(const FlagParser& flags);

/// Builds the fault-injection plan from the parsed fault flags;
/// `enabled` is set iff any fault probability is nonzero.
sim::FaultConfig FaultConfigFromFlags(const FlagParser& flags);

/// Parses one "machine:tick[,machine:tick...]" process-fault schedule
/// (--fault_worker_crash / --fault_ps_restart). Malformed items, ids
/// that do not fit a uint32, and ticks that overflow uint64 (ERANGE)
/// are InvalidArgument — never silently clamped or wrapped. Exposed so
/// the rejection paths are unit-testable; the flag plumbing exits(2)
/// on error like every other malformed-flag path.
Result<std::vector<sim::ProcessFault>> ParseProcessFaultSpec(
    const std::string& spec, sim::ProcessFaultKind kind);

/// Builds the observability outputs from --trace_out / --metrics_json /
/// --metrics_window (empty paths leave tracing and export disabled).
obs::ObsConfig ObsConfigFromFlags(const FlagParser& flags);

/// Inserts "_tag" before `path`'s extension ("run.json", "cps" ->
/// "run_cps.json"); appends when there is none. Empty paths stay empty,
/// so disabled obs outputs pass through unchanged. Benches that train
/// several systems use this to give each run its own trace/metrics file
/// instead of letting later runs clobber earlier ones.
std::string SuffixedPath(const std::string& path, const std::string& tag);

/// Evaluation options from the parsed common flags.
eval::EvalOptions EvalOptionsFromFlags(const FlagParser& flags);

/// One of the paper's datasets, generated synthetically at the scale
/// given by the flags. `name` is "fb15k", "wn18" or "freebase86m";
/// `triple_fraction` (from flags) scales the triple count so benches
/// finish on one core, and `freebase_scale` scales the Freebase entity
/// count.
graph::SyntheticDataset GetDataset(const std::string& name,
                                   const FlagParser& flags);

/// Parses flags (exits with usage on error) and silences info logs so
/// table output stays clean.
void InitBench(FlagParser* flags, int argc, char** argv);

/// Applies the paper's per-dataset hyperparameters (Table II) for
/// values the user did not override: Freebase-86m trains with batch 512
/// (vs 32 on FB15k/WN18) and a proportionally larger cache.
void ApplyDatasetDefaults(const std::string& dataset_name,
                          const FlagParser& flags,
                          core::TrainerConfig* config);

/// Trains `system` on a dataset and evaluates the test split.
struct RunOutcome {
  core::TrainReport report;
  eval::EvalMetrics test_metrics;
};
RunOutcome RunSystem(core::SystemKind system,
                     const core::TrainerConfig& config,
                     const graph::SyntheticDataset& dataset,
                     size_t num_epochs, const eval::EvalOptions& eval_options,
                     bool with_validation_curve = false);

/// Emits one of the paper's link-prediction tables (III/IV/V): every
/// system x model combination with MRR / Hits@1 / Hits@10 / Time.
void RunLinkPredictionTable(const std::string& title,
                            const graph::SyntheticDataset& dataset,
                            const core::TrainerConfig& base_config,
                            const std::vector<embedding::ModelKind>& models,
                            size_t num_epochs,
                            const eval::EvalOptions& eval_options);

}  // namespace hetkg::bench

#endif  // HETKG_BENCH_HARNESS_H_
