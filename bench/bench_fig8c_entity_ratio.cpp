// Reproduces Fig. 8(c): impact of the entity share of the cache on hit
// ratio (Freebase-86m). Paper shape: hit ratio rises then falls as the
// entity ratio grows, peaking near 25% entities / 75% relations —
// relation embeddings are the denser traffic.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig8c_entity_ratio",
                     "Fig. 8(c) - impact of the cache's entity ratio");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &base);
  const size_t epochs = 1;

  bench::Table table({"Entity ratio", "Hit ratio", "Remote bytes"});
  for (double ratio : {0.0, 0.125, 0.25, 0.375, 0.5, 0.75, 1.0}) {
    core::TrainerConfig config = base;
    config.cache_entity_ratio = ratio;
    const std::string tag = "ratio" + bench::Fmt(ratio * 100.0, 1);
    config.obs.trace_out = bench::SuffixedPath(base.obs.trace_out, tag);
    config.obs.metrics_json =
        bench::SuffixedPath(base.obs.metrics_json, tag);
    auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    const auto report = engine->Train(epochs).value();
    table.AddRow(
        {bench::Fmt(ratio * 100.0, 1) + "%",
         bench::Fmt(report.overall_hit_ratio, 3),
         HumanBytes(static_cast<double>(report.total_remote_bytes))});
  }
  table.Print("Fig. 8(c): entity-ratio sweep, HET-KG-D on Freebase-86m "
              "synthetic (cache=" + std::to_string(base.cache_capacity) +
              " rows)");
  std::printf("\nPaper reference: hit ratio peaks at a 25%% entity share "
              "- relation embeddings are denser in the access stream.\n");
  return 0;
}
