// Reproduces Fig. 5: validation-MRR-versus-time convergence curves for
// PBG / DGL-KE / HET-KG-C / HET-KG-D on all three datasets. Paper shape:
// all systems converge to similar accuracy; HET-KG reaches any given
// accuracy level earlier (its epochs are cheaper).
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig5_convergence",
                     "Fig. 5 - convergence (valid MRR vs simulated time)");

  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  for (const std::string& name : {"fb15k", "wn18", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    core::TrainerConfig config = bench::ConfigFromFlags(flags);
    bench::ApplyDatasetDefaults(name, flags, &config);
    bench::Table table({"System", "Epoch", "Sim time(s)", "Valid MRR"});
    for (core::SystemKind system :
         {core::SystemKind::kPbg, core::SystemKind::kDglKe,
          core::SystemKind::kHetKgCps, core::SystemKind::kHetKgDps}) {
      const auto outcome =
          bench::RunSystem(system, config, dataset, epochs, eval_options,
                           /*with_validation_curve=*/true);
      for (const auto& epoch : outcome.report.epochs) {
        table.AddRow({std::string(core::SystemKindName(system)),
                      std::to_string(epoch.epoch + 1),
                      bench::Fmt(epoch.cumulative_seconds, 2),
                      bench::Fmt(epoch.valid_metrics.mrr, 3)});
      }
    }
    table.Print("Fig. 5 (" + dataset.graph.name() +
                "): MRR over simulated training time");
  }
  std::printf("\nPaper reference: all systems converge to comparable MRR; "
              "HET-KG's curve is shifted left (less time per epoch), PBG's "
              "far right.\n");
  return 0;
}
