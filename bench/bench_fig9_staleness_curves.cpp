// Reproduces Fig. 9: epoch-by-epoch validation MRR for tight vs loose
// consistency (staleness 1 vs 128). Paper shape: staleness=1 converges
// to MRR ~0.67 while staleness=128 plateaus lower (~0.59) — the
// consistency guarantee matters for convergence.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig9_staleness_curves",
                     "Fig. 9 - epoch-MRR curves under staleness 1 vs 128");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &base);
  if (!flags.IsSet("cache")) {
    // The consistency experiment needs staleness to cover a large share
    // of reads: maximize the cached fraction.
    base.cache_capacity = 16384;
  }
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Staleness", "Epoch", "Valid MRR"});
  for (size_t staleness : {1u, 8u, 128u}) {
    core::TrainerConfig config = base;
    config.sync.staleness_bound = staleness;
    // Loose staleness only bites when the cache holds a meaningful
    // share of traffic; keep the configured cache.
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options,
                         /*with_validation_curve=*/true);
    for (const auto& epoch : outcome.report.epochs) {
      table.AddRow({std::to_string(staleness),
                    std::to_string(epoch.epoch + 1),
                    bench::Fmt(epoch.valid_metrics.mrr, 3)});
    }
  }
  table.Print("Fig. 9: staleness 1 / 8 / 128 epoch-MRR curves "
              "(Freebase-86m synthetic)");
  std::printf("\nPaper reference: staleness=1 reaches MRR 0.67; "
              "staleness=128 only 0.59.\n");
  return 0;
}
