// Reproduces Table VI: cache hit ratio of HET-KG's prefetch+filter
// construction versus FIFO / LRU / LFU / static degree-"importance"
// caching, at equal capacity, on all three datasets. Paper numbers:
// FB15k 7.4/11.7/15.2/25.2%, WN18 16.5/17.6/32.1/35.5%, Freebase-86m
// 6.6/8.6/34.3/43.1% (FIFO/LRU/Importance/HET-KG).
//
// Methodology: every policy replays the IDENTICAL per-iteration
// deduplicated key-request stream a training worker produces. HET-KG is
// replayed as its DPS construction behaves: every D iterations the next
// window is prefetched, the top-k (with the 25% entity quota) becomes
// the resident set, and the window's requests are scored against it.
#include "harness.h"

#include <unordered_set>

#include "hetkg/hetkg.h"

namespace {

using namespace hetkg;

struct StreamSpec {
  const std::vector<Triple>* triples;
  size_t num_entities;
  size_t num_relations;
  size_t batch_size;
  size_t negatives;
  size_t chunk;
  uint64_t seed;
  size_t iterations;
};

/// Replays the stream through an access-driven policy.
void ReplayPolicy(const StreamSpec& s, core::CachePolicy* policy) {
  embedding::BatchedNegativeSampler sampler(s.num_entities, s.negatives,
                                            s.chunk, s.seed);
  core::Prefetcher prefetcher(s.triples, s.batch_size, &sampler,
                              s.seed ^ 0xF00);
  for (size_t i = 0; i < s.iterations; ++i) {
    const auto window = prefetcher.Prefetch(1);
    for (EmbKey key : core::BatchKeys(window.batches[0])) {
      policy->Access(key);
    }
  }
}

/// Replays the stream through HET-KG's DPS construction: prefetch a
/// window, filter the top-k into the resident set, score the window.
double ReplayHetKg(const StreamSpec& s, size_t capacity, double entity_ratio,
                   size_t dps_window) {
  embedding::BatchedNegativeSampler sampler(s.num_entities, s.negatives,
                                            s.chunk, s.seed);
  core::Prefetcher prefetcher(s.triples, s.batch_size, &sampler,
                              s.seed ^ 0xF00);
  const core::FilterOptions options{capacity, entity_ratio, true};
  const core::FilterQuota quota =
      core::ComputeQuota(options, s.num_entities, s.num_relations);
  uint64_t hits = 0;
  uint64_t total = 0;
  size_t done = 0;
  while (done < s.iterations) {
    const size_t window_len = std::min(dps_window, s.iterations - done);
    const auto window = prefetcher.Prefetch(window_len);
    const auto hot_keys = core::FilterHotKeys(window.frequencies, options,
                                              quota);
    const std::unordered_set<EmbKey> hot(hot_keys.begin(), hot_keys.end());
    for (const auto& batch : window.batches) {
      for (EmbKey key : core::BatchKeys(batch)) {
        ++total;
        if (hot.contains(key)) ++hits;
      }
    }
    done += window_len;
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_table6_cache_policies",
                     "Table VI - hit ratio vs simple caching techniques");

  bench::Table table(
      {"Dataset", "Capacity", "FIFO", "LRU", "LFU", "Importance", "HET-KG"});
  for (const std::string& name : {"fb15k", "wn18", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    core::TrainerConfig config = bench::ConfigFromFlags(flags);
    bench::ApplyDatasetDefaults(name, flags, &config);
    // Policy comparison needs capacities above the per-iteration working
    // set or the access-driven baselines degenerate to zero.
    const size_t capacity = flags.IsSet("cache")
                                ? config.cache_capacity
                                : (name == "freebase86m" ? 4096 : 512);

    StreamSpec spec;
    spec.triples = &dataset.split.train;
    spec.num_entities = dataset.graph.num_entities();
    spec.num_relations = dataset.graph.num_relations();
    spec.batch_size = config.batch_size;
    spec.negatives = config.negatives_per_positive;
    spec.chunk = config.negative_chunk_size;
    spec.seed = config.seed;
    spec.iterations =
        (dataset.split.train.size() + config.batch_size - 1) /
        config.batch_size / config.num_machines;

    core::FifoCache fifo(capacity);
    core::LruCache lru(capacity);
    core::LfuCache lfu(capacity);
    core::ImportanceCache importance(core::TopDegreeKeys(
        dataset.graph.EntityDegrees(), dataset.graph.RelationFrequencies(),
        capacity));
    for (core::CachePolicy* policy :
         std::initializer_list<core::CachePolicy*>{&fifo, &lru, &lfu,
                                                   &importance}) {
      ReplayPolicy(spec, policy);
    }
    const double hetkg = ReplayHetKg(spec, capacity,
                                     config.cache_entity_ratio,
                                     config.sync.dps_window);

    auto pct = [](double v) { return bench::Fmt(v * 100.0, 1) + "%"; };
    table.AddRow({dataset.graph.name(), std::to_string(capacity),
                  pct(fifo.HitRatio()), pct(lru.HitRatio()),
                  pct(lfu.HitRatio()), pct(importance.HitRatio()),
                  pct(hetkg)});
  }
  table.Print("Table VI: cache hit ratio on the identical request stream");
  std::printf(
      "\nPaper reference: FB15k 7.4/11.7/-/15.2/25.2, WN18 16.5/17.6/-/"
      "32.1/35.5,\nFreebase-86m 6.6/8.6/-/34.3/43.1 (FIFO/LRU/Importance/"
      "HET-KG).\nExpected ordering: FIFO < LRU <= Importance < HET-KG.\n");
  return 0;
}
