// Ablation (Sec. IV-B "Discussion on related systems"): the paper's
// coarse full-table refresh (Algorithm 3) versus a fine-grained
// per-row, on-access refresh in the spirit of HET's embedding clocks.
// On-access refresh only re-pulls rows that are actually read after
// aging past P, so cached-but-cold rows stop costing refresh traffic;
// every row that is read is still at most P iterations stale.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_ablation_refresh_mode",
      "Ablation - full-table refresh (Alg. 3) vs on-access refresh");

  const auto dataset = bench::GetDataset("fb15k", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Cache", "Refresh mode", "Refresh rows",
                      "Remote bytes", "Time(s)", "Test MRR"});
  for (size_t cache : {64u, 512u, 4096u}) {
    for (core::RefreshMode mode :
         {core::RefreshMode::kFullTable, core::RefreshMode::kOnAccess}) {
      core::TrainerConfig config = base;
      config.cache_capacity = cache;
      config.sync.refresh_mode = mode;
      const auto outcome =
          bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                           epochs, eval_options);
      table.AddRow(
          {std::to_string(cache),
           mode == core::RefreshMode::kFullTable ? "full-table"
                                                 : "on-access",
           std::to_string(
               outcome.report.metrics.Get(metric::kCacheRefreshRows)),
           HumanBytes(static_cast<double>(outcome.report.total_remote_bytes)),
           bench::Fmt(outcome.report.total_time.total_seconds(), 2),
           bench::Fmt(outcome.test_metrics.mrr, 3)});
    }
  }
  table.Print("Ablation: refresh protocol (FB15k synthetic, HET-KG-D)");
  std::printf(
      "\nExpected: on-access refresh needs far fewer refresh rows —\n"
      "especially with oversized caches, where full-table refresh pays\n"
      "for rows nobody reads — at equal accuracy.\n");
  return 0;
}
