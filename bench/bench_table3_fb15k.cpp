// Reproduces Table III: link prediction on FB15k for PBG / DGL-KE /
// HET-KG-C / HET-KG-D with TransE and DistMult (MRR, Hits@1, Hits@10,
// training time). Paper shape: all systems reach comparable accuracy;
// HET-KG trains fastest, PBG slowest (~2x+ DGL-KE).
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_table3_fb15k",
                     "Table III - link prediction results on FB15k");

  const auto dataset = bench::GetDataset("fb15k", flags);
  const core::TrainerConfig config = bench::ConfigFromFlags(flags);
  bench::RunLinkPredictionTable(
      "Table III: FB15k (synthetic, " +
          std::to_string(dataset.graph.num_triples()) + " triples, d=" +
          std::to_string(config.dim) + ")",
      dataset, config,
      {embedding::ModelKind::kTransEL1, embedding::ModelKind::kDistMult},
      static_cast<size_t>(flags.GetInt("epochs")),
      bench::EvalOptionsFromFlags(flags));

  std::printf(
      "\nPaper reference (Table III, TransE): PBG 0.582/1047s, DGL-KE "
      "0.570/484s,\nHET-KG-C 0.569/466s, HET-KG-D 0.564/419s. Expected "
      "shape: comparable MRR\nacross systems; time(PBG) >> time(DGL-KE) "
      ">= time(HET-KG-C/D).\n");
  return 0;
}
