#include "harness.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/proc_stats.h"
#include "graph/serialize.h"

namespace hetkg::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  HETKG_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::ToCsv() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out.push_back(',');
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n\r") == std::string::npos) {
        out.append(cell);
        continue;
      }
      out.push_back('"');
      for (char ch : cell) {
        if (ch == '"') out.push_back('"');
        out.push_back(ch);
      }
      out.push_back('"');
    }
    out.push_back('\n');
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

void PrintBanner(const std::string& name, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\nReproduces: %s\n", name.c_str(), what.c_str());
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

void DefineCommonFlags(FlagParser* flags) {
  flags->Define("dim", "16", "embedding dimension (paper: 400)");
  flags->Define("epochs", "6", "training epochs");
  flags->Define("machines", "4", "simulated machines / workers");
  flags->Define("lr", "0.1", "AdaGrad learning rate");
  flags->Define("batch", "32", "mini-batch size per worker (paper Table II)");
  flags->Define("negatives", "8", "negatives per positive (paper Table II)");
  flags->Define("cache", "64", "hot-embedding cache rows per worker");
  flags->Define("staleness", "8", "staleness bound P (iterations)");
  flags->Define("dps_window", "64", "DPS prefetch window D (iterations)");
  flags->Define("entity_ratio", "0.25", "entity share of the cache");
  flags->Define("triple_fraction", "0.25",
                "fraction of the dataset's triples to generate");
  flags->Define("freebase_scale", "0.002",
                "Freebase-86m entity/triple scale (paper: 1.0; full scale "
                "needs --storage=tiered to fit in RAM)");
  flags->Define("eval_triples", "400", "test triples evaluated (0 = all)");
  flags->Define("eval_candidates", "1000",
                "ranking candidates (0 = all entities)");
  flags->Define("threads", "1",
                "compute threads for the intra-batch forward/backward "
                "fan-out (bit-identical results at any value)");
  flags->Define("kernel", "auto",
                "score/optimizer kernel path: auto | scalar | vector "
                "(bit-identical results at any value)");
  flags->Define("seed", "1234", "global seed");
  // Async pipeline engine (DESIGN.md §12). Off by default: the
  // deterministic mode ticks the stages in lockstep and stays
  // bit-identical to the pre-pipeline engine.
  flags->Define("async", "false",
                "run the PS engines' sample/pull/compute/push stages on "
                "their own threads with bounded-staleness overlap "
                "(results no longer bit-reproducible run to run)");
  flags->Define("max_pipeline_staleness", "2",
                "async mode: iterations the pull stage may run ahead of "
                "the last fully pushed iteration (0 = rendezvous)");
  // Fault-injection transport knobs (sim/transport.h). All-zero
  // probabilities (the default) keep the perfect-network behaviour
  // bit-identical; a fixed --fault_seed replays a scenario exactly.
  flags->Define("fault_drop", "0",
                "probability one wire attempt is lost in the network");
  flags->Define("fault_duplicate", "0",
                "probability a delivered message arrives twice");
  flags->Define("fault_delay", "0",
                "probability a delivered message is late");
  flags->Define("fault_delay_us", "500",
                "modeled lateness of one delayed delivery (microseconds)");
  flags->Define("fault_retries", "3",
                "retransmissions before the sender gives up");
  flags->Define("fault_backoff_us", "200",
                "first retry backoff (microseconds, doubles per retry)");
  flags->Define("fault_seed", "42", "seed of the deterministic fault plan");
  // Process-level fault events (DESIGN.md §9). Unlike the probability
  // knobs these are explicit schedules on the transport's logical
  // clock, so a crash scenario replays bit-identically; they fire even
  // when every probability above is zero.
  flags->Define("fault_worker_crash", "",
                "scheduled worker crashes as machine:tick[,machine:tick...] "
                "on the transport's logical clock (empty = none)");
  flags->Define("fault_ps_restart", "",
                "scheduled PS shard restarts as machine:tick[,...] "
                "(empty = none)");
  flags->Define("fault_halt_after", "0",
                "simulate a hard crash: stop training after N global "
                "iterations without flushing (0 = run to completion)");
  // Crash-recovery checkpointing (DESIGN.md §9).
  flags->Define("checkpoint_dir", "",
                "directory receiving periodic full-training-state "
                "snapshots + MANIFEST (empty = checkpointing off)");
  flags->Define("checkpoint_every", "0",
                "snapshot every N global iterations (PBG: every N "
                "epochs; 0 = no periodic saves)");
  flags->Define("keep_checkpoints", "3",
                "retained snapshots; older ones are pruned (0 = keep all)");
  flags->Define("resume_from", "",
                "resume training from a snapshot file or checkpoint "
                "directory (newest valid manifest entry wins)");
  flags->Define("checkpoint_fsync", "true",
                "fsync snapshot/manifest temp files before the rename "
                "and the directory after it (power-loss durability; "
                "false = faster saves, process-crash durability only)");
  // Observability outputs (src/obs/, DESIGN.md §8). Empty paths keep
  // tracing and metrics export disabled, which is bit-identical to a
  // build without the obs layer.
  flags->Define("trace_out", "",
                "Chrome/Perfetto trace-event JSON output path "
                "(empty = tracing off)");
  flags->Define("metrics_json", "",
                "per-epoch metrics time-series JSON output path "
                "(empty = export off)");
  flags->Define("metrics_window", "0",
                "also sample metrics every N iterations within an epoch "
                "(0 = per-epoch only; needs --metrics_json)");
  // Two-tier embedding storage (DESIGN.md §16).
  flags->Define("storage", "ram",
                "embedding table backing: ram (all rows resident) | "
                "tiered (mmap-backed cold tier; PS engines only)");
  flags->Define("cold_dir", "",
                "directory for the tiered cold-tier slab files (required "
                "with --storage=tiered)");
  flags->Define("cold_dtype", "fp32",
                "cold-tier row encoding: fp32 | fp16 | int8");
}

Result<std::vector<sim::ProcessFault>> ParseProcessFaultSpec(
    const std::string& spec, sim::ProcessFaultKind kind) {
  std::vector<sim::ProcessFault> events;
  size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    // Both fields must be non-empty pure-digit runs. strtoul alone is
    // too lenient here: it skips leading whitespace, accepts a sign
    // (strtoull silently WRAPS "-5" to ULLONG_MAX - 4 with no ERANGE),
    // and an empty field like ":5" parses zero digits yet lands end ==
    // start, which the pointer check below cannot distinguish.
    const auto all_digits = [&item](size_t from, size_t to) {
      if (from >= to) return false;
      for (size_t i = from; i < to; ++i) {
        if (item[i] < '0' || item[i] > '9') return false;
      }
      return true;
    };
    if (colon == std::string::npos || !all_digits(0, colon) ||
        !all_digits(colon + 1, item.size())) {
      return Status::InvalidArgument("bad event \"" + item +
                                     "\" (want machine:tick)");
    }
    char* end = nullptr;
    sim::ProcessFault fault;
    fault.kind = kind;
    errno = 0;
    const unsigned long machine = std::strtoul(item.c_str(), &end, 10);
    // strtoul both clamps at ULONG_MAX (ERANGE) and, on LP64, happily
    // returns values a uint32 machine id cannot hold — either way the
    // schedule would silently target the wrong machine.
    if (errno == ERANGE || machine > UINT32_MAX) {
      return Status::InvalidArgument("machine id out of range in \"" + item +
                                     "\"");
    }
    fault.machine = static_cast<uint32_t>(machine);
    errno = 0;
    fault.tick = std::strtoull(item.c_str() + colon + 1, &end, 10);
    if (end != item.c_str() + item.size()) {
      return Status::InvalidArgument("bad event \"" + item +
                                     "\" (want machine:tick)");
    }
    // An overflowing tick clamps to ULLONG_MAX: the fault would wait
    // forever instead of firing — reject it instead.
    if (errno == ERANGE) {
      return Status::InvalidArgument("tick out of range in \"" + item +
                                     "\"");
    }
    events.push_back(fault);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  return events;
}

namespace {

/// Flag plumbing around ParseProcessFaultSpec: malformed or
/// out-of-range schedules are rejected loudly (exit 2) rather than
/// silently skipped or clamped — a typo'd crash schedule must not turn
/// a recovery bench into a fault-free run.
std::vector<sim::ProcessFault> ParseProcessFaults(
    const std::string& spec, sim::ProcessFaultKind kind,
    const char* flag_name) {
  Result<std::vector<sim::ProcessFault>> events =
      ParseProcessFaultSpec(spec, kind);
  if (!events.ok()) {
    std::fprintf(stderr, "--%s: %s\n", flag_name,
                 events.status().message().c_str());
    std::exit(2);
  }
  return std::move(events).value();
}

}  // namespace

sim::FaultConfig FaultConfigFromFlags(const FlagParser& flags) {
  sim::FaultConfig fault;
  fault.drop_prob = flags.GetDouble("fault_drop");
  fault.duplicate_prob = flags.GetDouble("fault_duplicate");
  fault.delay_prob = flags.GetDouble("fault_delay");
  fault.delay_seconds = flags.GetDouble("fault_delay_us") * 1e-6;
  fault.max_retries = static_cast<size_t>(flags.GetInt("fault_retries"));
  fault.retry_backoff_seconds = flags.GetDouble("fault_backoff_us") * 1e-6;
  fault.seed = static_cast<uint64_t>(flags.GetInt("fault_seed"));
  fault.enabled = fault.drop_prob > 0.0 || fault.duplicate_prob > 0.0 ||
                  fault.delay_prob > 0.0;
  for (const sim::ProcessFault& f : ParseProcessFaults(
           flags.GetString("fault_worker_crash"),
           sim::ProcessFaultKind::kWorkerCrash, "fault_worker_crash")) {
    fault.process_faults.push_back(f);
  }
  for (const sim::ProcessFault& f : ParseProcessFaults(
           flags.GetString("fault_ps_restart"),
           sim::ProcessFaultKind::kPsShardRestart, "fault_ps_restart")) {
    fault.process_faults.push_back(f);
  }
  return fault;
}

obs::ObsConfig ObsConfigFromFlags(const FlagParser& flags) {
  obs::ObsConfig obs;
  obs.trace_out = flags.GetString("trace_out");
  obs.metrics_json = flags.GetString("metrics_json");
  obs.metrics_window = static_cast<size_t>(flags.GetInt("metrics_window"));
  return obs;
}

std::string SuffixedPath(const std::string& path, const std::string& tag) {
  if (path.empty() || tag.empty()) return path;
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "_" + tag;
  }
  return path.substr(0, dot) + "_" + tag + path.substr(dot);
}

core::TrainerConfig ConfigFromFlags(const FlagParser& flags) {
  core::TrainerConfig config;
  config.dim = static_cast<size_t>(flags.GetInt("dim"));
  config.learning_rate = flags.GetDouble("lr");
  config.batch_size = static_cast<size_t>(flags.GetInt("batch"));
  config.negatives_per_positive =
      static_cast<size_t>(flags.GetInt("negatives"));
  config.negative_chunk_size = std::max<size_t>(
      1, config.negatives_per_positive);
  config.num_machines = static_cast<size_t>(flags.GetInt("machines"));
  config.cache_capacity = static_cast<size_t>(flags.GetInt("cache"));
  config.cache_entity_ratio = flags.GetDouble("entity_ratio");
  config.sync.staleness_bound =
      static_cast<size_t>(flags.GetInt("staleness"));
  config.sync.dps_window = static_cast<size_t>(flags.GetInt("dps_window"));
  config.sync.async_pipeline = flags.GetBool("async");
  config.sync.pipeline_staleness =
      static_cast<size_t>(flags.GetInt("max_pipeline_staleness"));
  config.pbg_partitions = 2 * config.num_machines;
  config.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  config.kernel = flags.GetString("kernel");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.fault = FaultConfigFromFlags(flags);
  config.obs = ObsConfigFromFlags(flags);
  config.checkpoint_dir = flags.GetString("checkpoint_dir");
  config.checkpoint_every =
      static_cast<size_t>(flags.GetInt("checkpoint_every"));
  config.keep_checkpoints =
      static_cast<size_t>(flags.GetInt("keep_checkpoints"));
  config.resume_from = flags.GetString("resume_from");
  config.halt_after_iterations =
      static_cast<size_t>(flags.GetInt("fault_halt_after"));
  config.checkpoint_fsync = flags.GetBool("checkpoint_fsync");
  const std::string storage = flags.GetString("storage");
  HETKG_CHECK(storage == "ram" || storage == "tiered")
      << "--storage: want ram | tiered, got \"" << storage << "\"";
  if (storage == "tiered") {
    HETKG_CHECK(!flags.GetString("cold_dir").empty())
        << "--storage=tiered needs --cold_dir=<dir>";
    auto dtype = embedding::ParseColdDtype(flags.GetString("cold_dtype"));
    HETKG_CHECK(dtype.ok()) << dtype.status().ToString();
    config.storage.enabled = true;
    config.storage.cold_dir = flags.GetString("cold_dir");
    config.storage.dtype = *dtype;
  }
  return config;
}

eval::EvalOptions EvalOptionsFromFlags(const FlagParser& flags) {
  eval::EvalOptions options;
  options.max_triples = static_cast<size_t>(flags.GetInt("eval_triples"));
  options.num_candidates =
      static_cast<size_t>(flags.GetInt("eval_candidates"));
  options.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed")) ^ 0xEEAA;
  return options;
}

graph::SyntheticDataset GetDataset(const std::string& name,
                                   const FlagParser& flags) {
  const double fraction = flags.GetDouble("triple_fraction");
  graph::SyntheticSpec spec;
  if (name == "fb15k") {
    spec = graph::Fb15kSpec();
  } else if (name == "wn18") {
    spec = graph::Wn18Spec();
  } else if (name == "freebase86m") {
    spec = graph::Freebase86mSpec(flags.GetDouble("freebase_scale"));
  } else {
    HETKG_CHECK(false) << "unknown dataset: " << name;
  }
  spec.num_triples = std::max<size_t>(
      10000, static_cast<size_t>(spec.num_triples * fraction));

  // Generation is the slowest part of a bench run; cache the snapshot
  // keyed by every generation parameter.
  char cache_path[256];
  std::snprintf(cache_path, sizeof(cache_path),
                "/tmp/hetkg_dataset_%s_%zu_%zu_%zu_%.3f_%.3f_%zu_%zu_%llu.bin",
                spec.name.c_str(), spec.num_entities, spec.num_relations,
                spec.num_triples, spec.entity_exponent,
                spec.relation_exponent, spec.latent_dim,
                spec.tail_candidates,
                static_cast<unsigned long long>(spec.seed));
  if (auto cached = graph::LoadDataset(cache_path); cached.ok()) {
    return graph::SyntheticDataset{std::move(cached->graph),
                                   std::move(cached->split)};
  }
  auto dataset = graph::GenerateDataset(spec);
  HETKG_CHECK(dataset.ok()) << dataset.status().ToString();
  graph::SaveDataset(cache_path, dataset->graph, dataset->split)
      .ok();  // Best-effort; regeneration is always possible.
  return std::move(dataset).value();
}

void InitBench(FlagParser* flags, int argc, char** argv) {
  const Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags->Usage(argv[0]).c_str());
    std::exit(2);
  }
  SetLogLevel(LogLevel::kWarning);
}

void ApplyDatasetDefaults(const std::string& dataset_name,
                          const FlagParser& flags,
                          core::TrainerConfig* config) {
  if (dataset_name != "freebase86m") return;
  if (!flags.IsSet("batch")) {
    config->batch_size = 512;  // Paper Table II: b = 512 on Freebase-86m.
    config->negative_chunk_size = std::max(
        config->negative_chunk_size, config->negatives_per_positive);
  }
  if (!flags.IsSet("cache")) {
    // "setting the top-k value larger" (Sec. VI-B3): bigger batches make
    // more rows profitable to cache.
    config->cache_capacity = 1024;
  }
}

RunOutcome RunSystem(core::SystemKind system,
                     const core::TrainerConfig& config,
                     const graph::SyntheticDataset& dataset,
                     size_t num_epochs, const eval::EvalOptions& eval_options,
                     bool with_validation_curve) {
  // Benches train several systems against one set of flags; give each
  // run its own trace/metrics file instead of overwriting the last.
  core::TrainerConfig run_config = config;
  const std::string tag(core::SystemKindName(system));
  run_config.obs.trace_out = SuffixedPath(config.obs.trace_out, tag);
  run_config.obs.metrics_json = SuffixedPath(config.obs.metrics_json, tag);
  auto engine = core::MakeEngine(system, run_config, dataset.graph,
                                 dataset.split.train);
  HETKG_CHECK(engine.ok()) << engine.status().ToString();
  if (with_validation_curve) {
    eval::EvalOptions valid_options = eval_options;
    valid_options.max_triples =
        std::min<size_t>(eval_options.max_triples == 0
                             ? 200
                             : eval_options.max_triples,
                         200);
    (*engine)->EnableValidation(&dataset.graph, dataset.split.valid,
                                valid_options);
  }
  if (!run_config.resume_from.empty()) {
    const Status status =
        (*engine)->RestoreTrainState(run_config.resume_from);
    HETKG_CHECK(status.ok()) << status.ToString();
  }
  auto report = (*engine)->Train(num_epochs);
  HETKG_CHECK(report.ok()) << report.status().ToString();
  auto metrics = eval::EvaluateLinkPrediction(
      (*engine)->Embeddings(), (*engine)->ScoreFn(), dataset.graph,
      dataset.split.test, eval_options);
  HETKG_CHECK(metrics.ok()) << metrics.status().ToString();
  return RunOutcome{std::move(report).value(), std::move(metrics).value()};
}

void RunLinkPredictionTable(const std::string& title,
                            const graph::SyntheticDataset& dataset,
                            const core::TrainerConfig& base_config,
                            const std::vector<embedding::ModelKind>& models,
                            size_t num_epochs,
                            const eval::EvalOptions& eval_options) {
  static const core::SystemKind kSystems[] = {
      core::SystemKind::kPbg, core::SystemKind::kDglKe,
      core::SystemKind::kHetKgCps, core::SystemKind::kHetKgDps};
  Table table({"System", "Model", "MRR", "Hits@1", "Hits@10", "Time(s)",
               "Hit ratio", "Rows/s", "RSS(MB)"});
  for (embedding::ModelKind model : models) {
    for (core::SystemKind system : kSystems) {
      core::TrainerConfig config = base_config;
      config.model = model;
      // PBG rejects --storage=tiered (it swaps whole partitions from
      // disk by design — that IS its tiering); keep the baseline
      // comparable by running it in-RAM as always.
      if (system == core::SystemKind::kPbg) config.storage = {};
      // RunSystem adds the per-system suffix; the model tag here keeps
      // multi-model tables from reusing a file across models.
      const std::string tag(embedding::ModelKindName(model));
      config.obs.trace_out = SuffixedPath(base_config.obs.trace_out, tag);
      config.obs.metrics_json =
          SuffixedPath(base_config.obs.metrics_json, tag);
      const RunOutcome outcome = RunSystem(system, config, dataset,
                                           num_epochs, eval_options);
      // Trained-triples throughput against real wall time (the
      // simulated Time(s) column models the cluster critical path, not
      // this process), and the process RSS right after the run — the
      // number the tiered storage mode exists to shrink.
      const double wall = outcome.report.total_wall_seconds;
      const double rows_per_sec =
          wall > 0.0 ? static_cast<double>(dataset.split.train.size()) *
                           static_cast<double>(num_epochs) / wall
                     : 0.0;
      table.AddRow({std::string(core::SystemKindName(system)),
                    std::string(embedding::ModelKindName(model)),
                    Fmt(outcome.test_metrics.mrr, 3),
                    Fmt(outcome.test_metrics.hits1, 3),
                    Fmt(outcome.test_metrics.hits10, 3),
                    Fmt(outcome.report.total_time.total_seconds(), 2),
                    system == core::SystemKind::kPbg ||
                            system == core::SystemKind::kDglKe
                        ? "-"
                        : Fmt(outcome.report.overall_hit_ratio, 3),
                    Fmt(rows_per_sec, 0),
                    Fmt(static_cast<double>(CurrentRssBytes()) / 1048576.0,
                        1)});
    }
  }
  table.Print(title);
}

}  // namespace hetkg::bench
