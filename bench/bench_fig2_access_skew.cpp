// Reproduces Fig. 2: the access-frequency skew of entity and relation
// embeddings over one training epoch — the micro-benchmark motivating
// hot-embedding caching (Sec. III-C), including the Sec. IV-B
// observation that on FB15k the top 1% of entities/relations take ~6% /
// ~36% of accesses.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig2_access_skew",
                     "Fig. 2 - embedding access frequency skew per epoch");

  const size_t negatives =
      static_cast<size_t>(flags.GetInt("negatives"));

  for (const std::string& name : {"fb15k", "wn18", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    const auto freq = graph::CountEpochAccesses(dataset.graph, negatives,
                                                flags.GetInt("seed"));
    const auto entity_skew = graph::ComputeSkew(freq.entity);
    const auto relation_skew = graph::ComputeSkew(freq.relation);

    bench::Table table({"Top fraction", "Entity access share",
                        "Relation access share"});
    for (size_t i = 0; i < entity_skew.top_share.size(); ++i) {
      table.AddRow(
          {bench::Fmt(entity_skew.top_share[i].first * 100.0, 1) + "%",
           bench::Fmt(entity_skew.top_share[i].second * 100.0, 1) + "%",
           bench::Fmt(relation_skew.top_share[i].second * 100.0, 1) + "%"});
    }
    table.Print("Fig. 2 (" + dataset.graph.name() + "): access share of the "
                "hottest ids; entity gini=" +
                bench::Fmt(entity_skew.gini, 3) + ", relation gini=" +
                bench::Fmt(relation_skew.gini, 3));

    // Rank-frequency series (log-spaced ranks), the raw Fig. 2 curve.
    const auto entity_sorted = graph::SortedDescending(freq.entity);
    const auto relation_sorted = graph::SortedDescending(freq.relation);
    std::printf("rank:frequency series (entities):");
    for (size_t r = 1; r < entity_sorted.size(); r *= 4) {
      std::printf(" %zu:%u", r, entity_sorted[r - 1]);
    }
    std::printf("\nrank:frequency series (relations):");
    for (size_t r = 1; r < relation_sorted.size(); r *= 4) {
      std::printf(" %zu:%u", r, relation_sorted[r - 1]);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (Sec. IV-B): FB15k top 1%% entities ~6%%, "
              "top 1%% relations ~36%% of embedding usage.\n");
  return 0;
}
