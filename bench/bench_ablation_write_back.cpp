// Extension ablation (beyond the paper): write-back caching. The
// paper's protocol pushes every gradient each iteration, so the hot
// cache only saves PULL traffic. Accumulating cached rows' gradients
// locally and flushing every K iterations saves push traffic
// symmetrically, with the server lagging hot updates by at most K.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_ablation_write_back",
      "Extension - write-through (paper) vs write-back gradient pushes");

  const auto dataset = bench::GetDataset("fb15k", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  // DGL-KE reference.
  const auto baseline = bench::RunSystem(core::SystemKind::kDglKe, base,
                                         dataset, epochs, eval_options);

  bench::Table table({"Write-back K", "Remote bytes", "Time(s)",
                      "vs DGL-KE", "Test MRR"});
  table.AddRow({"DGL-KE (no cache)",
                HumanBytes(static_cast<double>(
                    baseline.report.total_remote_bytes)),
                bench::Fmt(baseline.report.total_time.total_seconds(), 2),
                "1.00x", bench::Fmt(baseline.test_metrics.mrr, 3)});
  for (size_t period : {1u, 4u, 16u, 64u}) {
    core::TrainerConfig config = base;
    config.sync.write_back_period = period;
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options);
    table.AddRow(
        {period == 1 ? "1 (paper, write-through)" : std::to_string(period),
         HumanBytes(static_cast<double>(outcome.report.total_remote_bytes)),
         bench::Fmt(outcome.report.total_time.total_seconds(), 2),
         bench::Fmt(baseline.report.total_time.total_seconds() /
                        outcome.report.total_time.total_seconds(),
                    2) +
             "x",
         bench::Fmt(outcome.test_metrics.mrr, 3)});
  }
  table.Print("Extension: write-back period sweep (FB15k synthetic, "
              "HET-KG-D)");
  std::printf(
      "\nExpected: larger K saves push traffic on top of the paper's "
      "pull savings at stable\naccuracy. Note the refresh protocol "
      "flushes pending gradients every P iterations, so\nthe effective "
      "write-back period is min(K, P).\n");
  return 0;
}
