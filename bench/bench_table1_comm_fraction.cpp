// Reproduces Table I: the fraction of DGL-KE's end-to-end training time
// spent in network communication, the observation that motivates the
// hot-embedding cache ("network communication dominates more than 70% of
// the end-to-end training time" on Freebase-86m with TransE).
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_table1_comm_fraction",
      "Table I - share of DGL-KE epoch time spent in network I/O");

  const size_t epochs = 1;

  bench::Table table({"Dataset", "Model", "Compute(s)", "Network(s)",
                      "Total(s)", "Network share"});
  for (const std::string& name : {"fb15k", "wn18", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    core::TrainerConfig config = bench::ConfigFromFlags(flags);
    bench::ApplyDatasetDefaults(name, flags, &config);
    config.obs.trace_out = bench::SuffixedPath(config.obs.trace_out, name);
    config.obs.metrics_json =
        bench::SuffixedPath(config.obs.metrics_json, name);
    auto engine = core::MakeEngine(core::SystemKind::kDglKe, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    const auto report = engine->Train(epochs).value();
    const sim::TimeBreakdown t = report.total_time;
    table.AddRow({dataset.graph.name(),
                  std::string(embedding::ModelKindName(config.model)),
                  bench::Fmt(t.compute_seconds, 2),
                  bench::Fmt(t.comm_seconds, 2),
                  bench::Fmt(t.total_seconds(), 2),
                  bench::Fmt(100.0 * t.comm_seconds / t.total_seconds(), 1) +
                      "%"});
  }
  table.Print("Table I: DGL-KE communication share per epoch (simulated "
              "4-machine cluster, 1 Gbps)");
  std::printf("\nPaper reference: >70%% of end-to-end time is network on "
              "Freebase-86m (d=400).\nAt reduced dimension the compute "
              "share shrinks relative to fixed per-row transfer cost, so "
              "the share here is expected to be at least as high.\n");
  return 0;
}
