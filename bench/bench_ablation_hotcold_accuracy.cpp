// Extension analysis: does cache staleness harm exactly the predictions
// it touches? HET-KG keeps HOT relations stale between refreshes while
// cold relations are always read fresh from the PS — so any accuracy
// cost of partial staleness should concentrate on test triples with hot
// relations. This bench splits test MRR by relation hotness for DGL-KE
// (no staleness) and HET-KG-D at increasing staleness bounds.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_ablation_hotcold_accuracy",
      "Extension - staleness impact split by relation hotness");

  const auto dataset = bench::GetDataset("fb15k", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  if (!flags.IsSet("cache")) {
    base.cache_capacity = 512;  // Enough for staleness to cover reads.
  }
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);
  const auto relation_freqs = dataset.graph.RelationFrequencies();

  bench::Table table({"System", "Staleness P", "Hot-rel MRR",
                      "Cold-rel MRR", "Hot rankings", "Cold rankings"});
  auto add_row = [&](core::SystemKind system, size_t staleness) {
    core::TrainerConfig config = base;
    config.sync.staleness_bound = staleness;
    const std::string tag = std::string(core::SystemKindName(system)) +
                            "_P" + std::to_string(staleness);
    config.obs.trace_out = bench::SuffixedPath(base.obs.trace_out, tag);
    config.obs.metrics_json =
        bench::SuffixedPath(base.obs.metrics_json, tag);
    auto engine = core::MakeEngine(system, config, dataset.graph,
                                   dataset.split.train)
                      .value();
    engine->Train(epochs).value();
    const auto split = eval::EvaluateByRelationHotness(
                           engine->Embeddings(), engine->ScoreFn(),
                           dataset.graph, dataset.split.test, relation_freqs,
                           eval_options)
                           .value();
    table.AddRow({std::string(core::SystemKindName(system)),
                  system == core::SystemKind::kDglKe
                      ? "-"
                      : std::to_string(staleness),
                  bench::Fmt(split.hot.mrr, 3),
                  bench::Fmt(split.cold.mrr, 3),
                  std::to_string(split.hot.rankings),
                  std::to_string(split.cold.rankings)});
  };
  add_row(core::SystemKind::kDglKe, 8);
  for (size_t staleness : {1u, 8u, 64u, 256u}) {
    add_row(core::SystemKind::kHetKgDps, staleness);
  }
  table.Print("Extension: MRR by relation hotness under staleness "
              "(FB15k synthetic)");
  std::printf("\nExpected: cold-relation MRR is insensitive to P; any "
              "staleness penalty shows up on hot-relation triples first.\n");
  return 0;
}
