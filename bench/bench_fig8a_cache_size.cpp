// Reproduces Fig. 8(a): impact of cache size on hit ratio and MRR
// (Freebase-86m). Paper shape: hit ratio climbs steeply with cache size
// then flattens; MRR is essentially unaffected because the stale share
// of the traffic stays small.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig8a_cache_size",
                     "Fig. 8(a) - impact of cache size (Freebase-86m)");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &base);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Cache rows", "Hit ratio", "Test MRR", "Time(s)",
                      "Remote bytes"});
  for (size_t cache : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    core::TrainerConfig config = base;
    config.cache_capacity = cache;
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options);
    table.AddRow(
        {std::to_string(cache),
         bench::Fmt(outcome.report.overall_hit_ratio, 3),
         bench::Fmt(outcome.test_metrics.mrr, 3),
         bench::Fmt(outcome.report.total_time.total_seconds(), 2),
         HumanBytes(static_cast<double>(outcome.report.total_remote_bytes))});
  }
  table.Print("Fig. 8(a): HET-KG-D cache size sweep on Freebase-86m "
              "synthetic");
  std::printf("\nPaper reference: hit ratio rises with cache size and "
              "flattens; MRR stays flat across the sweep.\n");
  return 0;
}
