// Reproduces Table VII: HET-KG with the 25%/75% entity/relation quota
// versus HET-KG-N, which ranks all embeddings in one pool and lets
// relations crowd out entities. Paper shape: HET-KG-N trains slightly
// faster (its relation-heavy cache hits more) but converges to lower
// accuracy (uneven update frequencies).
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_table7_heterogeneity",
      "Table VII - effect of the node-heterogeneity cache quota");

  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  if (!flags.IsSet("cache")) {
    // The quota only binds once the cache is large enough for relations
    // to crowd out entities in the global ranking.
    base.cache_capacity = 512;
  }
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  bench::Table table({"Dataset", "System", "MRR", "Hits@1", "Hits@10",
                      "Time(s)", "Hit ratio"});
  for (const std::string& name : {"fb15k", "wn18"}) {
    const auto dataset = bench::GetDataset(name, flags);
    for (bool heterogeneity_aware : {true, false}) {
      core::TrainerConfig config = base;
      config.heterogeneity_aware = heterogeneity_aware;
      const auto outcome =
          bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                           epochs, eval_options);
      table.AddRow({dataset.graph.name(),
                    heterogeneity_aware ? "HET-KG" : "HET-KG-N",
                    bench::Fmt(outcome.test_metrics.mrr, 3),
                    bench::Fmt(outcome.test_metrics.hits1, 3),
                    bench::Fmt(outcome.test_metrics.hits10, 3),
                    bench::Fmt(outcome.report.total_time.total_seconds(), 2),
                    bench::Fmt(outcome.report.overall_hit_ratio, 3)});
    }
  }
  table.Print("Table VII: heterogeneity-aware quota vs global top-k "
              "(HET-KG-N)");
  std::printf(
      "\nPaper reference (30 epochs): FB15k HET-KG 0.343/236.8s vs "
      "HET-KG-N 0.304/227.2s;\nWN18 HET-KG 0.629/86.0s vs HET-KG-N "
      "0.606/77.1s - N is faster but less accurate.\n");
  return 0;
}
