// Reproduces Table IV: link prediction on WN18. Paper shape: HET-KG
// saves relatively more on WN18 because the tiny relation vocabulary
// (18) caches densely; CPS is slightly faster than DPS here because the
// DPS prefetch overhead outweighs its hit-ratio gain on a small dataset.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_table4_wn18",
                     "Table IV - link prediction results on WN18");

  const auto dataset = bench::GetDataset("wn18", flags);
  const core::TrainerConfig config = bench::ConfigFromFlags(flags);
  bench::RunLinkPredictionTable(
      "Table IV: WN18 (synthetic, " +
          std::to_string(dataset.graph.num_triples()) + " triples, d=" +
          std::to_string(config.dim) + ")",
      dataset, config,
      {embedding::ModelKind::kTransEL1, embedding::ModelKind::kDistMult},
      static_cast<size_t>(flags.GetInt("epochs")),
      bench::EvalOptionsFromFlags(flags));

  std::printf(
      "\nPaper reference (Table IV, TransE): PBG 0.722/477s, DGL-KE "
      "0.715/184s,\nHET-KG-C 0.720/163s, HET-KG-D 0.719/168s.\n");
  return 0;
}
