// Ablation (Sec. V "Graph Partitioning"): METIS-style min-cut
// partitioning versus random partitioning. The paper adopts METIS
// because it "significantly reduces the network communication for
// pulling entity embeddings across machines"; this bench quantifies the
// cut quality and the resulting traffic difference on our substrate.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_ablation_partitioner",
                     "Ablation - METIS vs random entity partitioning");

  core::TrainerConfig base = bench::ConfigFromFlags(flags);

  bench::Table table({"Dataset", "Partitioner", "Cut fraction", "System",
                      "Remote bytes", "Epoch time(s)"});
  for (const std::string& name : {"fb15k", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    // Stand-alone cut statistics.
    graph::KnowledgeGraph train_graph =
        graph::KnowledgeGraph::Create(dataset.graph.num_entities(),
                                      dataset.graph.num_relations(),
                                      dataset.split.train, "train")
            .value();
    for (const std::string& partitioner : {"metis", "random"}) {
      double cut_fraction = 0.0;
      if (partitioner == "metis") {
        partition::MetisPartitioner metis;
        const auto parts =
            metis.Partition(train_graph, base.num_machines).value();
        cut_fraction =
            partition::ComputePartitionStats(train_graph, parts).cut_fraction;
      } else {
        partition::RandomPartitioner random(base.seed);
        const auto parts =
            random.Partition(train_graph, base.num_machines).value();
        cut_fraction =
            partition::ComputePartitionStats(train_graph, parts).cut_fraction;
      }
      for (core::SystemKind system :
           {core::SystemKind::kDglKe, core::SystemKind::kHetKgDps}) {
        core::TrainerConfig config = base;
        config.partitioner = partitioner;
        const std::string tag =
            name + "_" + partitioner + "_" +
            std::string(core::SystemKindName(system));
        config.obs.trace_out = bench::SuffixedPath(base.obs.trace_out, tag);
        config.obs.metrics_json =
            bench::SuffixedPath(base.obs.metrics_json, tag);
        auto engine = core::MakeEngine(system, config, dataset.graph,
                                       dataset.split.train)
                          .value();
        const auto report = engine->Train(1).value();
        table.AddRow(
            {dataset.graph.name(), partitioner,
             bench::Fmt(cut_fraction, 3),
             std::string(core::SystemKindName(system)),
             HumanBytes(static_cast<double>(report.total_remote_bytes)),
             bench::Fmt(report.total_time.total_seconds(), 2)});
      }
    }
  }
  table.Print("Ablation: partitioner quality -> communication volume");
  std::printf("\nExpected: METIS cuts fewer triples than random, lowering "
              "remote entity pulls for both systems.\n");
  return 0;
}
