// google-benchmark micro-benchmarks for the crash-recovery hot paths
// (DESIGN.md §9): HETKGCK2 eval-checkpoint save/load at several table
// sizes, and full training-state snapshot save/restore through a live
// engine. Throughput is reported as rows/sec (items) and bytes/sec.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "hetkg/hetkg.h"

namespace {

using namespace hetkg;

std::string BenchPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("hetkg-bench-") + name))
      .string();
}

embedding::EmbeddingTable FilledTable(size_t rows, size_t dim,
                                      uint64_t seed) {
  embedding::EmbeddingTable table(rows, dim);
  Rng rng(seed);
  table.InitGaussian(&rng, 1.0f);
  return table;
}

void BM_CheckpointSave(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  const auto entities = FilledTable(rows, dim, 3);
  const auto relations = FilledTable(64, dim, 4);
  const std::string path = BenchPath("save.ck");
  for (auto _ : state) {
    const Status status = embedding::SaveCheckpoint(path, entities, relations);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  const size_t total_rows = rows + 64;
  state.SetItemsProcessed(state.iterations() * total_rows);
  state.SetBytesProcessed(state.iterations() * total_rows * dim *
                          sizeof(float));
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointSave)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

void BM_CheckpointLoad(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  const auto entities = FilledTable(rows, dim, 5);
  const auto relations = FilledTable(64, dim, 6);
  const std::string path = BenchPath("load.ck");
  if (!embedding::SaveCheckpoint(path, entities, relations).ok()) {
    state.SkipWithError("setup save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = embedding::LoadCheckpoint(path);
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded);
  }
  const size_t total_rows = rows + 64;
  state.SetItemsProcessed(state.iterations() * total_rows);
  state.SetBytesProcessed(state.iterations() * total_rows * dim *
                          sizeof(float));
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointLoad)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond);

/// Builds a briefly trained engine so the snapshot carries realistic
/// optimizer, cache, and queue state — the full-training-state path a
/// periodic checkpoint pays, not just the two embedding tables.
std::unique_ptr<core::TrainingEngine> TrainedEngine(
    const graph::SyntheticDataset& dataset) {
  core::TrainerConfig config;
  config.dim = 32;
  config.batch_size = 32;
  config.negatives_per_positive = 4;
  config.num_machines = 4;
  config.cache_capacity = 512;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  engine->Train(1).value();
  return engine;
}

graph::SyntheticDataset BenchDataset() {
  graph::SyntheticSpec spec;
  spec.name = "ckpt-bench";
  spec.num_entities = 4096;
  spec.num_relations = 32;
  spec.num_triples = 20000;
  spec.seed = 9;
  return graph::GenerateDataset(spec).value();
}

void BM_TrainStateSave(benchmark::State& state) {
  const auto dataset = BenchDataset();
  const auto engine = TrainedEngine(dataset);
  const std::string path = BenchPath("train-state.ck");
  size_t bytes = 0;
  for (auto _ : state) {
    const Status status = engine->SaveTrainState(path);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  std::error_code ec;
  bytes = static_cast<size_t>(std::filesystem::file_size(path, ec));
  state.SetItemsProcessed(state.iterations() *
                          (dataset.graph.num_entities() +
                           dataset.graph.num_relations()));
  state.SetBytesProcessed(state.iterations() * bytes);
  std::remove(path.c_str());
}
BENCHMARK(BM_TrainStateSave)->Unit(benchmark::kMillisecond);

void BM_TrainStateRestore(benchmark::State& state) {
  const auto dataset = BenchDataset();
  const auto engine = TrainedEngine(dataset);
  const std::string path = BenchPath("train-state-restore.ck");
  if (!engine->SaveTrainState(path).ok()) {
    state.SkipWithError("setup snapshot failed");
    return;
  }
  auto target = TrainedEngine(dataset);
  for (auto _ : state) {
    const Status status = target->RestoreTrainState(path);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  std::error_code ec;
  const auto bytes =
      static_cast<size_t>(std::filesystem::file_size(path, ec));
  state.SetItemsProcessed(state.iterations() *
                          (dataset.graph.num_entities() +
                           dataset.graph.num_relations()));
  state.SetBytesProcessed(state.iterations() * bytes);
  std::remove(path.c_str());
}
BENCHMARK(BM_TrainStateRestore)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
