// Reproduces Fig. 7: per-epoch time broken into computation and
// communication for each system on each dataset. Paper shape: compute
// time is nearly identical for DGL-KE and HET-KG (the cache does not
// slow the math down); HET-KG's communication bar is shorter; PBG's
// communication bar dwarfs everyone's (dense relation weights).
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner(
      "bench_fig7_breakdown",
      "Fig. 7 - computation vs communication time per epoch");

  const core::TrainerConfig base_config = bench::ConfigFromFlags(flags);
  for (const std::string& name : {"fb15k", "wn18", "freebase86m"}) {
    const auto dataset = bench::GetDataset(name, flags);
    core::TrainerConfig config = base_config;
    bench::ApplyDatasetDefaults(name, flags, &config);
    bench::Table table({"System", "Compute(s)", "Comm(s)", "Total(s)",
                        "Remote bytes"});
    for (core::SystemKind system :
         {core::SystemKind::kPbg, core::SystemKind::kDglKe,
          core::SystemKind::kHetKgCps, core::SystemKind::kHetKgDps}) {
      // With --trace_out/--metrics_json set, each dataset x system run
      // gets its own file; the metrics' phase.* gauges are exactly the
      // per-phase split behind this figure's bars.
      const std::string tag =
          name + "_" + std::string(core::SystemKindName(system));
      config.obs.trace_out =
          bench::SuffixedPath(base_config.obs.trace_out, tag);
      config.obs.metrics_json =
          bench::SuffixedPath(base_config.obs.metrics_json, tag);
      auto engine = core::MakeEngine(system, config, dataset.graph,
                                     dataset.split.train)
                        .value();
      const auto report = engine->Train(1).value();
      table.AddRow({std::string(core::SystemKindName(system)),
                    bench::Fmt(report.total_time.compute_seconds, 3),
                    bench::Fmt(report.total_time.comm_seconds, 3),
                    bench::Fmt(report.total_time.total_seconds(), 3),
                    HumanBytes(static_cast<double>(report.total_remote_bytes))});
    }
    table.Print("Fig. 7 (" + dataset.graph.name() +
                "): one-epoch time breakdown");
  }

  // Pipeline overlap (DESIGN.md §12): retrain the HET-KG-D workload
  // with the staged engine in --async mode, where stages run ahead
  // under the bounded-staleness window and the smaller of compute/comm
  // hides behind the larger. The Overlap column is exactly the hidden
  // time; speedup = serial total / overlapped total.
  {
    const auto dataset = bench::GetDataset("fb15k", flags);
    core::TrainerConfig config = base_config;
    bench::ApplyDatasetDefaults("fb15k", flags, &config);
    config.obs = obs::ObsConfig{};
    bench::Table table({"Mode", "Compute(s)", "Comm(s)", "Overlap(s)",
                        "Total(s)", "Iters/s", "Speedup"});
    double serial_total = 0.0;
    double serial_iters_per_sec = 0.0;
    for (const bool async : {false, true}) {
      config.sync.async_pipeline = async;
      auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                     dataset.graph, dataset.split.train)
                        .value();
      auto* ps = static_cast<core::PsTrainingEngine*>(engine.get());
      const size_t iters = ps->IterationsPerEpoch();
      const auto report = engine->Train(1).value();
      const double total = report.total_time.total_seconds();
      const double ips = total > 0.0 ? iters / total : 0.0;
      if (!async) {
        serial_total = total;
        serial_iters_per_sec = ips;
      }
      table.AddRow(
          {async ? "async (staleness " +
                       std::to_string(config.sync.pipeline_staleness) + ")"
                 : "sync",
           bench::Fmt(report.total_time.compute_seconds, 3),
           bench::Fmt(report.total_time.comm_seconds, 3),
           bench::Fmt(report.total_time.overlap_seconds, 3),
           bench::Fmt(total, 3), bench::Fmt(ips, 1),
           async && serial_total > 0.0
               ? bench::Fmt(ips / serial_iters_per_sec, 2) + "x"
               : "1.00x"});
    }
    table.Print("Pipeline overlap (HET-KG-D on FB15k): sync vs --async");
  }

  std::printf("\nPaper reference: DGL-KE and HET-KG match on compute; "
              "HET-KG's communication is lower; PBG's communication "
              "dominates its runtime. The async pipeline hides the "
              "smaller of compute/comm behind the larger.\n");
  return 0;
}
