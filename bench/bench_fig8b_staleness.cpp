// Reproduces Fig. 8(b): impact of the staleness bound P on performance
// and MRR (Freebase-86m). Paper shape: communication falls (the
// refresh amortizes over more iterations) as P grows; MRR is stable for
// P <= 8 and degrades beyond.
#include "harness.h"

#include "hetkg/hetkg.h"

int main(int argc, char** argv) {
  using namespace hetkg;
  FlagParser flags;
  bench::DefineCommonFlags(&flags);
  bench::InitBench(&flags, argc, argv);

  bench::PrintBanner("bench_fig8b_staleness",
                     "Fig. 8(b) - impact of bounded staleness P");

  const auto dataset = bench::GetDataset("freebase86m", flags);
  core::TrainerConfig base = bench::ConfigFromFlags(flags);
  bench::ApplyDatasetDefaults("freebase86m", flags, &base);
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const eval::EvalOptions eval_options = bench::EvalOptionsFromFlags(flags);

  // DGL-KE reference for the communication-reduction column.
  const auto baseline = bench::RunSystem(core::SystemKind::kDglKe, base,
                                         dataset, epochs, eval_options);
  const double base_bytes =
      static_cast<double>(baseline.report.total_remote_bytes);

  bench::Table table({"Staleness P", "Test MRR", "Comm reduction",
                      "Time(s)", "Hit ratio"});
  table.AddRow({"DGL-KE (no cache)", bench::Fmt(baseline.test_metrics.mrr, 3),
                "-", bench::Fmt(baseline.report.total_time.total_seconds(), 2),
                "-"});
  for (size_t staleness : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    core::TrainerConfig config = base;
    config.sync.staleness_bound = staleness;
    const auto outcome =
        bench::RunSystem(core::SystemKind::kHetKgDps, config, dataset,
                         epochs, eval_options);
    const double reduction =
        1.0 - static_cast<double>(outcome.report.total_remote_bytes) /
                  base_bytes;
    table.AddRow(
        {std::to_string(staleness), bench::Fmt(outcome.test_metrics.mrr, 3),
         bench::Fmt(reduction * 100.0, 1) + "%",
         bench::Fmt(outcome.report.total_time.total_seconds(), 2),
         bench::Fmt(outcome.report.overall_hit_ratio, 3)});
  }
  table.Print("Fig. 8(b): staleness sweep, HET-KG-D on Freebase-86m "
              "synthetic");
  std::printf("\nPaper reference: communication shrinks as P grows; MRR is "
              "flat for P <= 8 and degrades for larger P.\n");
  return 0;
}
