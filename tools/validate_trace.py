#!/usr/bin/env python3
"""Schema checker for the Chrome trace-event JSON files hetkg emits.

Validates the structural contract that ui.perfetto.dev and
chrome://tracing rely on (DESIGN.md §8/§14): a top-level object with
`displayTimeUnit` and a `traceEvents` array whose entries are
well-formed "X" (complete span), "i" (instant), "C" (counter), or "M"
(metadata) events with integer pid/tid and non-negative timestamps.

Usage:
    validate_trace.py TRACE.json [TRACE2.json ...]
        Validate existing trace files.

    validate_trace.py --train-bin PATH --workdir DIR [--transport shm]
        Generation mode: run one small `--runtime proc` training under
        DIR with tracing enabled, then validate the merged trace it
        produced. This is what the `hetkg_trace_schema` ctest entry
        runs.

Exits 0 when every checked file is valid, 1 otherwise. Uses only the
standard library.
"""

import argparse
import json
import os
import subprocess
import sys

VALID_PHASES = {"X", "i", "C", "M"}
METADATA_NAMES = {"process_name", "thread_name", "process_sort_index",
                  "thread_sort_index"}


def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_events(doc, errors):
    """Appends one message per schema violation to `errors`."""
    if not isinstance(doc, dict):
        errors.append("top level must be a JSON object")
        return
    if not isinstance(doc.get("displayTimeUnit"), str):
        errors.append("missing string field 'displayTimeUnit'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("missing array field 'traceEvents'")
        return
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append(f"{where}: bad phase {phase!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing event name")
        if not _is_int(event.get("pid")):
            errors.append(f"{where} ({name}): pid must be an integer")
        # Metadata rows naming a process track legitimately omit tid.
        if "tid" in event and not _is_int(event.get("tid")):
            errors.append(f"{where} ({name}): tid must be an integer")
        elif phase != "M" and "tid" not in event:
            errors.append(f"{where} ({name}): missing tid")
        if phase != "M":
            ts = event.get("ts")
            if not _is_number(ts) or ts < 0:
                errors.append(f"{where} ({name}): ts must be a number >= 0")
        args = event.get("args")
        if phase == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                errors.append(f"{where} ({name}): X needs dur >= 0")
        elif phase == "C":
            if not isinstance(args, dict) or not _is_number(
                    args.get("value")):
                errors.append(f"{where} ({name}): C needs numeric args.value")
        elif phase == "M":
            if name not in METADATA_NAMES:
                errors.append(f"{where}: unknown metadata record {name!r}")
            elif name.endswith("_name") and (not isinstance(args, dict)
                                            or not isinstance(
                                                args.get("name"), str)):
                errors.append(f"{where} ({name}): M needs string args.name")


def validate_file(path):
    """Returns a list of violation messages (empty == valid)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"cannot parse: {e}"]
    errors = []
    validate_events(doc, errors)
    return errors


def generate_trace(train_bin, workdir, transport):
    """Runs one traced proc training; returns the trace file path."""
    os.makedirs(workdir, exist_ok=True)
    trace_path = os.path.join(workdir, "validate_trace.json")
    cmd = [
        train_bin, "--dataset", "fb15k", "--triple_fraction", "0.01",
        "--epochs", "2", "--seed", "77", "--threads", "2", "--runtime",
        "proc", "--workers", "2", "--proc_transport", transport,
        "--trace_out", trace_path,
    ]
    log = subprocess.run(cmd, cwd=workdir, capture_output=True, text=True)
    if log.returncode != 0:
        sys.stderr.write(log.stdout + log.stderr)
        raise SystemExit(f"trainer exited {log.returncode}")
    return trace_path


def main():
    parser = argparse.ArgumentParser(
        description="Validate hetkg Chrome trace-event JSON files.")
    parser.add_argument("traces", nargs="*", help="trace files to validate")
    parser.add_argument("--train-bin",
                        help="trainer binary; generates a proc trace first")
    parser.add_argument("--workdir", default=".",
                        help="scratch directory for generation mode")
    parser.add_argument("--transport", default="shm",
                        choices=["shm", "tcp"],
                        help="proc transport for generation mode")
    args = parser.parse_args()

    traces = list(args.traces)
    if args.train_bin:
        traces.append(
            generate_trace(args.train_bin, args.workdir, args.transport))
    if not traces:
        parser.error("nothing to validate: pass trace files or --train-bin")

    failed = False
    for path in traces:
        errors = validate_file(path)
        if errors:
            failed = True
            print(f"{path}: INVALID")
            for message in errors[:20]:
                print(f"  {message}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            with open(path, "r", encoding="utf-8") as f:
                count = len(json.load(f)["traceEvents"])
            print(f"{path}: ok ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
