// Full command-line trainer: pick a dataset (synthetic preset or TSV
// files), a system, a model, and the cache/sync knobs; train; evaluate;
// optionally checkpoint. This is the "binary you would actually deploy"
// walkthrough of the public API.
//
//   ./example_hetkg_train --dataset fb15k --system hetkg-d --model transe
//       --epochs 10 --dim 32 --checkpoint /tmp/model.ck
//   ./example_hetkg_train --train train.tsv --valid valid.tsv --test test.tsv
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hetkg/hetkg.h"

namespace {

// Parses a "machine:tick[,machine:tick...]" process-fault schedule;
// exits with usage on malformed input — including machine ids that do
// not fit a uint32 and ticks that overflow uint64 (ERANGE) — so a
// typo'd crash scenario never silently degrades or wraps around.
std::vector<hetkg::sim::ProcessFault> ParseProcessFaults(
    const std::string& spec, hetkg::sim::ProcessFaultKind kind,
    const char* flag_name) {
  std::vector<hetkg::sim::ProcessFault> events;
  size_t pos = 0;
  while (!spec.empty() && pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    // Both fields must be non-empty pure-digit runs: strtoul skips
    // whitespace, accepts signs (strtoull wraps "-5" without ERANGE),
    // and parses zero digits for an empty field like ":5".
    const auto all_digits = [&item](size_t from, size_t to) {
      if (from >= to) return false;
      for (size_t i = from; i < to; ++i) {
        if (item[i] < '0' || item[i] > '9') return false;
      }
      return true;
    };
    if (colon == std::string::npos || !all_digits(0, colon) ||
        !all_digits(colon + 1, item.size())) {
      std::fprintf(stderr, "--%s: bad event \"%s\" (want machine:tick)\n",
                   flag_name, item.c_str());
      std::exit(2);
    }
    char* end = nullptr;
    hetkg::sim::ProcessFault fault;
    fault.kind = kind;
    errno = 0;
    const unsigned long machine = std::strtoul(item.c_str(), &end, 10);
    if (errno == ERANGE || machine > UINT32_MAX) {
      std::fprintf(stderr, "--%s: machine id out of range in \"%s\"\n",
                   flag_name, item.c_str());
      std::exit(2);
    }
    fault.machine = static_cast<uint32_t>(machine);
    errno = 0;
    fault.tick = std::strtoull(item.c_str() + colon + 1, &end, 10);
    if (end != item.c_str() + item.size()) {
      std::fprintf(stderr, "--%s: bad event \"%s\" (want machine:tick)\n",
                   flag_name, item.c_str());
      std::exit(2);
    }
    if (errno == ERANGE) {
      std::fprintf(stderr, "--%s: tick out of range in \"%s\"\n",
                   flag_name, item.c_str());
      std::exit(2);
    }
    events.push_back(fault);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  return events;
}

// Parses a "machine:iter[,machine:iter...]" real-kill schedule for the
// process runtime (the worker SIGKILLs itself at that step command).
std::vector<hetkg::net::ProcKill> ParseProcKills(const std::string& spec) {
  std::vector<hetkg::net::ProcKill> kills;
  for (const hetkg::sim::ProcessFault& f : ParseProcessFaults(
           spec, hetkg::sim::ProcessFaultKind::kWorkerCrash, "proc_kill")) {
    kills.push_back(hetkg::net::ProcKill{f.machine, f.tick});
  }
  return kills;
}

// Splits "host:port"; exits with usage on malformed input.
std::pair<std::string, uint16_t> ParseHostPort(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  char* end = nullptr;
  errno = 0;
  const unsigned long port =
      colon == std::string::npos
          ? 0
          : std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (colon == std::string::npos || colon == 0 ||
      end != spec.c_str() + spec.size() || errno == ERANGE || port == 0 ||
      port > 65535) {
    std::fprintf(stderr, "--connect: want host:port, got \"%s\"\n",
                 spec.c_str());
    std::exit(2);
  }
  return {spec.substr(0, colon), static_cast<uint16_t>(port)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetkg;

  FlagParser flags;
  flags.Define("dataset", "fb15k",
               "synthetic preset: fb15k | wn18 | freebase86m (ignored when "
               "--train is given)");
  flags.Define("triple_fraction", "0.1", "scale of the synthetic dataset");
  flags.Define("freebase_scale", "0.002",
               "scale of the freebase86m synthetic preset: 1.0 = full "
               "86.1M entities (needs --storage=tiered to fit)");
  flags.Define("train", "", "TSV training triples (head\\trel\\ttail)");
  flags.Define("valid", "", "TSV validation triples");
  flags.Define("test", "", "TSV test triples");
  flags.Define("system", "hetkg-d", "pbg | dglke | hetkg-c | hetkg-d");
  flags.Define("model", "transe",
               "transe | transe_l2 | distmult | complex | transh | transr | "
               "transd | hole | rescal");
  flags.Define("loss", "margin", "margin | logistic");
  flags.Define("dim", "32", "embedding dimension");
  flags.Define("epochs", "10", "training epochs");
  flags.Define("lr", "0.1", "AdaGrad learning rate");
  flags.Define("batch", "64", "mini-batch size per worker");
  flags.Define("negatives", "8", "negatives per positive");
  flags.Define("machines", "4", "simulated machines");
  flags.Define("cache", "256", "hot-embedding rows per worker");
  flags.Define("staleness", "8", "staleness bound P");
  flags.Define("dps_window", "64", "DPS window D");
  flags.Define("threads", "1",
               "compute threads for the intra-batch forward/backward "
               "fan-out (results are bit-identical at any value)");
  flags.Define("kernel", "auto",
               "score/optimizer kernel path: auto | scalar | vector "
               "(results are bit-identical at any value)");
  flags.Define("checkpoint", "", "path to write the trained embeddings");
  flags.Define("seed", "1234", "seed");
  flags.Define("async", "false",
               "threaded sample/pull/compute/push pipeline with "
               "bounded-staleness overlap (PS engines only; results no "
               "longer bit-reproducible run to run)");
  flags.Define("max_pipeline_staleness", "2",
               "async mode: iterations the pull stage may run ahead "
               "(0 = rendezvous)");
  // Fault injection: simulate an unreliable worker <-> PS network.
  // All-zero probabilities (default) = perfect network; with a fixed
  // --fault_seed the same scenario replays bit-identically.
  flags.Define("fault_drop", "0",
               "probability one wire attempt is lost in the network");
  flags.Define("fault_duplicate", "0",
               "probability a delivered message arrives twice");
  flags.Define("fault_delay", "0",
               "probability a delivered message is late");
  flags.Define("fault_retries", "3",
               "retransmissions before the sender gives up");
  flags.Define("fault_seed", "42", "seed of the deterministic fault plan");
  // Process-level faults + crash recovery (DESIGN.md §9).
  flags.Define("fault_worker_crash", "",
               "scheduled worker crashes as machine:tick[,machine:tick...] "
               "on the transport's logical clock (empty = none)");
  flags.Define("fault_ps_restart", "",
               "scheduled PS shard restarts as machine:tick[,...] "
               "(empty = none)");
  flags.Define("fault_halt_after", "0",
               "simulate a hard crash: stop after N global iterations "
               "without flushing (0 = run to completion)");
  flags.Define("checkpoint_dir", "",
               "directory receiving periodic full-training-state "
               "snapshots + MANIFEST (empty = checkpointing off)");
  flags.Define("checkpoint_every", "0",
               "snapshot every N global iterations (PBG: every N epochs; "
               "0 = no periodic saves)");
  flags.Define("keep_checkpoints", "3",
               "retained snapshots; older ones are pruned (0 = keep all)");
  flags.Define("checkpoint_fsync", "true",
               "fsync snapshot/manifest writes for power-loss durability "
               "(false = faster saves)");
  flags.Define("resume_from", "",
               "resume training from a snapshot file or checkpoint "
               "directory (newest valid manifest entry wins)");
  // Observability (DESIGN.md §8): empty paths keep tracing and metrics
  // export disabled, bit-identical to a build without the obs layer.
  flags.Define("trace_out", "",
               "Chrome/Perfetto trace-event JSON output path; open at "
               "ui.perfetto.dev (empty = tracing off)");
  flags.Define("metrics_json", "",
               "per-epoch metrics time-series JSON output path "
               "(empty = export off)");
  flags.Define("metrics_window", "0",
               "also sample metrics every N iterations within an epoch "
               "(0 = per-epoch only; needs --metrics_json)");
  // Process runtime (DESIGN.md §13): real worker processes behind the
  // same engine; checkpoints stay bit-identical to --runtime=sim.
  flags.Define("runtime", "sim",
               "sim (in-process simulated workers) | proc (one real OS "
               "process per worker; PS engines, deterministic mode only)");
  flags.Define("workers", "0",
               "proc runtime: worker process count (overrides --machines "
               "when > 0)");
  flags.Define("proc_transport", "shm",
               "proc runtime coordinator<->worker transport: shm "
               "(shared-memory rings) | tcp (loopback sockets)");
  flags.Define("listen", "0",
               "proc runtime: accept externally started workers on this "
               "TCP port instead of forking (0 = fork locally)");
  flags.Define("connect", "",
               "run as a standalone proc worker: coordinator host:port "
               "(requires --worker_id; suppresses training output)");
  flags.Define("worker_id", "0", "machine id of this --connect worker");
  flags.Define("proc_kill", "",
               "real fault injection: machine:iter[,machine:iter...] — the "
               "worker process SIGKILLs itself at that step (proc runtime "
               "analogue of --fault_worker_crash)");
  flags.Define("proc_stop", "",
               "hung-worker injection: machine:iter[,machine:iter...] — the "
               "worker process SIGSTOPs itself at that step; only the "
               "heartbeat watchdog can detect and recover it");
  // Real-transport wire faults (DESIGN.md §15): injected on actual
  // shm/tcp frames of every link, healed by CRC + retransmit so the
  // run's final bytes stay identical to a fault-free one.
  flags.Define("proc_fault_drop", "0",
               "probability one sent proc frame is silently lost");
  flags.Define("proc_fault_duplicate", "0",
               "probability one sent proc frame crosses the wire twice");
  flags.Define("proc_fault_delay", "0",
               "probability one sent proc frame is delayed");
  flags.Define("proc_fault_corrupt", "0",
               "probability one byte of a sent proc frame is flipped "
               "(caught by the CRC-32 frame trailer)");
  flags.Define("proc_fault_reset", "0",
               "probability a mid-frame connection reset truncates a sent "
               "proc frame");
  flags.Define("proc_fault_seed", "42",
               "seed of the deterministic wire-fault plan (per-link "
               "counter-mode, replayable)");
  flags.Define("proc_heartbeat_ms", "1000",
               "worker liveness-beacon period in ms (0 = heartbeats off)");
  flags.Define("proc_watchdog_ms", "15000",
               "coordinator hung-worker deadline in ms: no frame or "
               "heartbeat for this long mid-turn SIGKILLs the worker into "
               "crash recovery (0 = watchdog off; requires heartbeats)");
  flags.Define("save_state", "",
               "write a full training-state snapshot here after Train() "
               "(the byte-comparable artifact of equivalence tests)");
  // Two-tier embedding storage (DESIGN.md §16): hot rows stay in the
  // worker caches; the full tables live behind a memory-mapped cold
  // file, optionally quantized.
  flags.Define("storage", "ram",
               "embedding table backing: ram (all rows resident) | tiered "
               "(mmap-backed cold tier; PS engines + sim runtime only)");
  flags.Define("cold_dir", "",
               "directory for the tiered cold-tier slab files (required "
               "with --storage=tiered)");
  flags.Define("cold_dtype", "fp32",
               "cold-tier row encoding: fp32 | fp16 | int8 (per-row "
               "affine scale; fp32 accumulation everywhere)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }

  // ---- Dataset --------------------------------------------------------
  graph::SyntheticDataset dataset{
      graph::KnowledgeGraph::Create(1, 1, {}, "empty").value(), {}};
  if (!flags.GetString("train").empty()) {
    auto loaded = graph::LoadTsvDataset(flags.GetString("train"),
                                        flags.GetString("valid"),
                                        flags.GetString("test"), "tsv");
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset.graph = std::move(loaded->graph);
    dataset.split = std::move(loaded->split);
  } else {
    graph::SyntheticSpec spec;
    const std::string name = flags.GetString("dataset");
    if (name == "fb15k") {
      spec = graph::Fb15kSpec();
    } else if (name == "wn18") {
      spec = graph::Wn18Spec();
    } else if (name == "freebase86m") {
      spec = graph::Freebase86mSpec(flags.GetDouble("freebase_scale"));
    } else {
      std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      return 2;
    }
    spec.num_triples = static_cast<size_t>(
        spec.num_triples * flags.GetDouble("triple_fraction"));
    auto generated = graph::GenerateDataset(spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(generated).value();
  }
  std::printf("dataset %s: %zu entities, %zu relations, %zu train triples\n",
              dataset.graph.name().c_str(), dataset.graph.num_entities(),
              dataset.graph.num_relations(), dataset.split.train.size());

  // ---- Engine ---------------------------------------------------------
  auto system = core::ParseSystemKind(flags.GetString("system"));
  auto model = embedding::ParseModelKind(flags.GetString("model"));
  if (!system.ok() || !model.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!system.ok() ? system.status() : model.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  core::TrainerConfig config;
  config.model = *model;
  config.loss = flags.GetString("loss");
  config.dim = static_cast<size_t>(flags.GetInt("dim"));
  config.learning_rate = flags.GetDouble("lr");
  config.batch_size = static_cast<size_t>(flags.GetInt("batch"));
  config.negatives_per_positive =
      static_cast<size_t>(flags.GetInt("negatives"));
  config.negative_chunk_size = config.negatives_per_positive;
  config.num_machines = static_cast<size_t>(flags.GetInt("machines"));
  const std::string runtime = flags.GetString("runtime");
  if (runtime != "sim" && runtime != "proc") {
    std::fprintf(stderr, "--runtime: want sim | proc, got \"%s\"\n",
                 runtime.c_str());
    return 2;
  }
  const bool proc_runtime = runtime == "proc";
  if (proc_runtime && flags.GetInt("workers") > 0) {
    config.num_machines = static_cast<size_t>(flags.GetInt("workers"));
  }
  config.cache_capacity = static_cast<size_t>(flags.GetInt("cache"));
  config.sync.staleness_bound =
      static_cast<size_t>(flags.GetInt("staleness"));
  config.sync.dps_window = static_cast<size_t>(flags.GetInt("dps_window"));
  config.sync.async_pipeline = flags.GetBool("async");
  config.sync.pipeline_staleness =
      static_cast<size_t>(flags.GetInt("max_pipeline_staleness"));
  config.pbg_partitions = 2 * config.num_machines;
  config.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  config.kernel = flags.GetString("kernel");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.fault.drop_prob = flags.GetDouble("fault_drop");
  config.fault.duplicate_prob = flags.GetDouble("fault_duplicate");
  config.fault.delay_prob = flags.GetDouble("fault_delay");
  config.fault.max_retries = static_cast<size_t>(flags.GetInt("fault_retries"));
  config.fault.seed = static_cast<uint64_t>(flags.GetInt("fault_seed"));
  config.fault.enabled = config.fault.drop_prob > 0.0 ||
                         config.fault.duplicate_prob > 0.0 ||
                         config.fault.delay_prob > 0.0;
  for (const sim::ProcessFault& f : ParseProcessFaults(
           flags.GetString("fault_worker_crash"),
           sim::ProcessFaultKind::kWorkerCrash, "fault_worker_crash")) {
    config.fault.process_faults.push_back(f);
  }
  for (const sim::ProcessFault& f : ParseProcessFaults(
           flags.GetString("fault_ps_restart"),
           sim::ProcessFaultKind::kPsShardRestart, "fault_ps_restart")) {
    config.fault.process_faults.push_back(f);
  }
  config.checkpoint_dir = flags.GetString("checkpoint_dir");
  config.checkpoint_every =
      static_cast<size_t>(flags.GetInt("checkpoint_every"));
  config.keep_checkpoints =
      static_cast<size_t>(flags.GetInt("keep_checkpoints"));
  config.resume_from = flags.GetString("resume_from");
  config.halt_after_iterations =
      static_cast<size_t>(flags.GetInt("fault_halt_after"));
  config.checkpoint_fsync = flags.GetBool("checkpoint_fsync");
  const std::string storage = flags.GetString("storage");
  if (storage != "ram" && storage != "tiered") {
    std::fprintf(stderr, "--storage: want ram | tiered, got \"%s\"\n",
                 storage.c_str());
    return 2;
  }
  if (storage == "tiered") {
    if (flags.GetString("cold_dir").empty()) {
      std::fprintf(stderr,
                   "--storage=tiered needs --cold_dir=<dir> for the "
                   "cold-tier slab files\n");
      return 2;
    }
    if (proc_runtime) {
      std::fprintf(stderr,
                   "--storage=tiered supports --runtime=sim only (the "
                   "proc coordinator owns the PS in its own process; its "
                   "workers never map the cold slabs)\n");
      return 2;
    }
    auto dtype = embedding::ParseColdDtype(flags.GetString("cold_dtype"));
    if (!dtype.ok()) {
      std::fprintf(stderr, "--cold_dtype: %s\n",
                   dtype.status().ToString().c_str());
      return 2;
    }
    config.storage.enabled = true;
    config.storage.cold_dir = flags.GetString("cold_dir");
    config.storage.dtype = *dtype;
  }
  config.obs.trace_out = flags.GetString("trace_out");
  config.obs.metrics_json = flags.GetString("metrics_json");
  config.obs.metrics_window =
      static_cast<size_t>(flags.GetInt("metrics_window"));

  auto engine =
      core::MakeEngine(*system, config, dataset.graph, dataset.split.train);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // ---- Process runtime setup ------------------------------------------
  net::ProcOptions proc_options;
  core::PsTrainingEngine* ps_engine = nullptr;
  if (proc_runtime) {
    ps_engine = dynamic_cast<core::PsTrainingEngine*>(engine->get());
    if (ps_engine == nullptr) {
      std::fprintf(stderr,
                   "--runtime=proc supports the parameter-server engines "
                   "only (pbg trains partition-at-a-time in one process; "
                   "keep --runtime=sim for it)\n");
      return 2;
    }
    auto transport =
        net::ParseTransportKind(flags.GetString("proc_transport"));
    if (!transport.ok()) {
      std::fprintf(stderr, "%s\n", transport.status().ToString().c_str());
      return 2;
    }
    proc_options.transport = *transport;
    proc_options.retry = net::RetryPolicy::FromFaultConfig(config.fault);
    proc_options.kills = ParseProcKills(flags.GetString("proc_kill"));
    for (const net::ProcKill& stop :
         ParseProcKills(flags.GetString("proc_stop"))) {
      proc_options.stops.push_back(stop);
    }
    proc_options.fault.drop_prob = flags.GetDouble("proc_fault_drop");
    proc_options.fault.duplicate_prob =
        flags.GetDouble("proc_fault_duplicate");
    proc_options.fault.delay_prob = flags.GetDouble("proc_fault_delay");
    proc_options.fault.corrupt_prob = flags.GetDouble("proc_fault_corrupt");
    proc_options.fault.reset_prob = flags.GetDouble("proc_fault_reset");
    proc_options.fault.seed =
        static_cast<uint64_t>(flags.GetInt("proc_fault_seed"));
    proc_options.fault.enabled = proc_options.fault.drop_prob > 0.0 ||
                                 proc_options.fault.duplicate_prob > 0.0 ||
                                 proc_options.fault.delay_prob > 0.0 ||
                                 proc_options.fault.corrupt_prob > 0.0 ||
                                 proc_options.fault.reset_prob > 0.0;
    proc_options.heartbeat_ms = flags.GetInt("proc_heartbeat_ms");
    proc_options.watchdog_ms = flags.GetInt("proc_watchdog_ms");
    if (proc_options.watchdog_ms > 0 && proc_options.heartbeat_ms <= 0) {
      std::fprintf(stderr,
                   "--proc_watchdog_ms needs --proc_heartbeat_ms > 0 (a "
                   "silent-but-healthy worker would be escalated); pass "
                   "--proc_watchdog_ms=0 to disable the watchdog\n");
      return 2;
    }
    if (!proc_options.stops.empty() &&
        (proc_options.watchdog_ms <= 0 || proc_options.heartbeat_ms <= 0)) {
      std::fprintf(stderr,
                   "--proc_stop freezes a worker forever; only the "
                   "watchdog can recover it (needs --proc_heartbeat_ms > 0 "
                   "and --proc_watchdog_ms > 0)\n");
      return 2;
    }
  }
  if (!flags.GetString("connect").empty()) {
    // Standalone worker: serve the remote coordinator until shutdown;
    // no local training, evaluation, or output.
    if (!proc_runtime) {
      std::fprintf(stderr, "--connect requires --runtime=proc\n");
      return 2;
    }
    const auto [host, port] = ParseHostPort(flags.GetString("connect"));
    const auto machine =
        static_cast<uint32_t>(flags.GetInt("worker_id"));
    if (machine >= config.num_machines) {
      std::fprintf(stderr, "--worker_id %u out of range (%zu machines)\n",
                   machine, config.num_machines);
      return 2;
    }
    const Status served = net::RunStandaloneWorker(
        ps_engine, machine, host, port, proc_options);
    if (!served.ok()) {
      std::fprintf(stderr, "worker: %s\n", served.ToString().c_str());
      return 1;
    }
    return 0;
  }

  eval::EvalOptions eval_options;
  eval_options.max_triples = 500;
  eval_options.num_candidates = 1000;
  eval_options.num_threads = config.num_threads;
  if (!dataset.split.valid.empty()) {
    eval::EvalOptions valid_options = eval_options;
    valid_options.max_triples = 200;
    (*engine)->EnableValidation(&dataset.graph, dataset.split.valid,
                                valid_options);
  }

  // ---- Train ----------------------------------------------------------
  if (!config.resume_from.empty()) {
    const Status restored = (*engine)->RestoreTrainState(config.resume_from);
    if (!restored.ok()) {
      std::fprintf(stderr, "resume: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("resumed training state from %s\n",
                config.resume_from.c_str());
  }
  // Launch worker processes AFTER any restore so they inherit (fork) or
  // are shipped (listen) the resumed state, then train through them.
  std::unique_ptr<net::ProcCoordinator> coordinator;
  if (proc_runtime) {
    const auto listen_port = static_cast<uint16_t>(flags.GetInt("listen"));
    auto launched =
        listen_port != 0
            ? net::ProcCoordinator::ListenForWorkers(ps_engine, listen_port,
                                                     proc_options)
            : net::ProcCoordinator::ForkWorkers(ps_engine, proc_options);
    if (!launched.ok()) {
      std::fprintf(stderr, "proc launch: %s\n",
                   launched.status().ToString().c_str());
      return 1;
    }
    coordinator = std::move(launched).value();
  }
  auto report = (*engine)->Train(static_cast<size_t>(flags.GetInt("epochs")));
  if (!report.ok()) {
    std::fprintf(stderr, "train: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const auto& epoch : report->epochs) {
    std::printf("epoch %2zu  loss=%.4f  sim=%s  hit=%.2f%s\n",
                epoch.epoch + 1, epoch.mean_loss,
                HumanSeconds(epoch.epoch_time.total_seconds()).c_str(),
                epoch.cache_hit_ratio,
                epoch.has_valid_metrics
                    ? ("  validMRR=" +
                       std::to_string(epoch.valid_metrics.mrr))
                          .c_str()
                    : "");
  }
  std::printf("total %s simulated, %s transferred, hit ratio %.3f\n",
              HumanSeconds(report->total_time.total_seconds()).c_str(),
              HumanBytes(static_cast<double>(report->total_remote_bytes))
                  .c_str(),
              report->overall_hit_ratio);
  if (config.fault.enabled) {
    std::printf(
        "faults: %llu dropped, %llu retries, %llu duplicates ignored, "
        "%llu stale serves, %llu lost push rows\n",
        static_cast<unsigned long long>(
            report->metrics.Get(metric::kTransportDroppedMessages)),
        static_cast<unsigned long long>(
            report->metrics.Get(metric::kTransportRetries)),
        static_cast<unsigned long long>(
            report->metrics.Get(metric::kTransportDuplicatesIgnored)),
        static_cast<unsigned long long>(
            report->metrics.Get(metric::kTransportStaleServes)),
        static_cast<unsigned long long>(
            report->metrics.Get(metric::kTransportLostPushRows)));
  }
  if (coordinator != nullptr) {
    // Real-transport totals (DESIGN.md §14): always counted, even with
    // observability off — they live outside the training state.
    const net::ProcCoordinator::TransportTotals totals =
        coordinator->Totals();
    std::printf(
        "proc net (%s): %llu rpc round trips, %llu frames / %s sent, "
        "%llu frames / %s received, %llu send stalls\n",
        coordinator->TransportName(),
        static_cast<unsigned long long>(totals.rpc_round_trips),
        static_cast<unsigned long long>(totals.frames_sent),
        HumanBytes(static_cast<double>(totals.bytes_sent)).c_str(),
        static_cast<unsigned long long>(totals.frames_received),
        HumanBytes(static_cast<double>(totals.bytes_received)).c_str(),
        static_cast<unsigned long long>(totals.send_stalls));
    if (proc_options.fault.enabled || totals.watchdog_escalations > 0) {
      // Coordinator-direction counters only; each worker's own
      // injections ship through the obs registry (net.fault.* keys).
      std::printf(
          "proc faults (coordinator side): %llu injected, %llu crc "
          "errors, %llu retransmits, %llu heartbeats seen, %llu watchdog "
          "escalations\n",
          static_cast<unsigned long long>(totals.faults_injected),
          static_cast<unsigned long long>(totals.crc_errors),
          static_cast<unsigned long long>(totals.retransmits),
          static_cast<unsigned long long>(totals.heartbeats_received),
          static_cast<unsigned long long>(totals.watchdog_escalations));
    }
    if (config.obs.Enabled()) {
      const Histogram* rpc = report->metrics.FindHistogram(
          std::string(metric::kNetRpcLatency) + "." +
          coordinator->TransportName());
      if (rpc != nullptr && rpc->count() > 0) {
        std::printf(
            "proc rpc latency (%s): p50=%.0fus p99=%.0fus over %llu "
            "timed rpcs\n",
            coordinator->TransportName(), rpc->Quantile(0.5),
            rpc->Quantile(0.99),
            static_cast<unsigned long long>(rpc->count()));
      }
    }
  }

  const std::string save_state = flags.GetString("save_state");
  if (!save_state.empty()) {
    const Status saved = (*engine)->SaveTrainState(save_state);
    if (!saved.ok()) {
      std::fprintf(stderr, "save_state: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("training state saved to %s\n", save_state.c_str());
  }
  if (coordinator != nullptr) {
    const Status stopped = coordinator->Shutdown();
    if (!stopped.ok()) {
      std::fprintf(stderr, "proc shutdown: %s\n",
                   stopped.ToString().c_str());
    }
    // Abnormal worker terminations the coordinator reaped (injected
    // kills, watchdog escalations, genuine crashes). Orderly exits are
    // silent.
    for (const net::ProcCoordinator::WorkerExit& we :
         coordinator->WorkerExits()) {
      std::printf("proc worker %u terminated abnormally: %s %d (%s)\n",
                  we.machine, we.signaled ? "signal" : "exit code", we.code,
                  we.context.c_str());
    }
  }

  if (config.obs.TraceRequested()) {
    std::printf("trace written to %s (open at https://ui.perfetto.dev)\n",
                config.obs.trace_out.c_str());
  }
  if (config.obs.MetricsRequested()) {
    std::printf("metrics time-series written to %s\n",
                config.obs.metrics_json.c_str());
  }

  // ---- Evaluate + checkpoint -------------------------------------------
  if (!dataset.split.test.empty()) {
    auto metrics = eval::EvaluateLinkPrediction(
        (*engine)->Embeddings(), (*engine)->ScoreFn(), dataset.graph,
        dataset.split.test, eval_options);
    if (metrics.ok()) {
      std::printf("test: MRR=%.3f MR=%.1f Hits@1=%.3f Hits@3=%.3f "
                  "Hits@10=%.3f\n",
                  metrics->mrr, metrics->mr, metrics->hits1, metrics->hits3,
                  metrics->hits10);
    }
  }
  const std::string checkpoint = flags.GetString("checkpoint");
  if (!checkpoint.empty()) {
    const Status saved = core::SaveEngineCheckpoint(**engine, checkpoint);
    if (!saved.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint saved to %s\n", checkpoint.c_str());
  }
  return 0;
}
