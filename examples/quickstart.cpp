// Quickstart: generate a small knowledge graph, train HET-KG with the
// dynamic partial-stale cache on a simulated 4-machine cluster, and
// evaluate link prediction.
//
//   ./example_quickstart
#include <cstdio>

#include "hetkg/hetkg.h"

int main() {
  using namespace hetkg;

  // 1. A synthetic knowledge graph with a power-law hotness profile and
  //    planted semantics (see graph::SyntheticSpec for the knobs).
  graph::SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_entities = 2000;
  spec.num_relations = 30;
  spec.num_triples = 30000;
  spec.seed = 7;
  auto dataset_result = graph::GenerateDataset(spec);
  if (!dataset_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_result.status().ToString().c_str());
    return 1;
  }
  const auto& dataset = *dataset_result;
  std::printf("Graph: %zu entities, %zu relations, %zu triples "
              "(train %zu / valid %zu / test %zu)\n",
              dataset.graph.num_entities(), dataset.graph.num_relations(),
              dataset.graph.num_triples(), dataset.split.train.size(),
              dataset.split.valid.size(), dataset.split.test.size());

  // 2. Configure the trainer: TransE, margin loss, 4 simulated machines,
  //    a 128-row hot-embedding cache refreshed every 8 iterations.
  core::TrainerConfig config;
  config.model = embedding::ModelKind::kTransEL1;
  config.dim = 32;
  config.batch_size = 64;
  config.negatives_per_positive = 8;
  config.num_machines = 4;
  config.cache_capacity = 128;
  config.sync.staleness_bound = 8;
  config.sync.dps_window = 64;

  auto engine_result = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                        dataset.graph, dataset.split.train);
  if (!engine_result.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine_result.status().ToString().c_str());
    return 1;
  }
  auto& engine = *engine_result;

  // 3. Train, watching per-epoch loss and the simulated cluster time.
  auto report_result = engine->Train(/*num_epochs=*/10);
  if (!report_result.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const auto& report = *report_result;
  for (const auto& epoch : report.epochs) {
    std::printf("epoch %zu: loss=%.4f  sim-time=%s  hit-ratio=%.2f\n",
                epoch.epoch + 1, epoch.mean_loss,
                HumanSeconds(epoch.epoch_time.total_seconds()).c_str(),
                epoch.cache_hit_ratio);
  }
  std::printf("total: %s simulated (%s compute + %s communication), "
              "%s transferred\n",
              HumanSeconds(report.total_time.total_seconds()).c_str(),
              HumanSeconds(report.total_time.compute_seconds).c_str(),
              HumanSeconds(report.total_time.comm_seconds).c_str(),
              HumanBytes(static_cast<double>(report.total_remote_bytes))
                  .c_str());

  // 4. Evaluate link prediction on the held-out test triples.
  eval::EvalOptions eval_options;
  eval_options.max_triples = 500;
  auto metrics_result = eval::EvaluateLinkPrediction(
      engine->Embeddings(), engine->ScoreFn(), dataset.graph,
      dataset.split.test, eval_options);
  if (!metrics_result.ok()) {
    std::fprintf(stderr, "eval: %s\n",
                 metrics_result.status().ToString().c_str());
    return 1;
  }
  const auto& m = *metrics_result;
  std::printf("link prediction: MRR=%.3f  MR=%.1f  Hits@1=%.3f  "
              "Hits@3=%.3f  Hits@10=%.3f\n",
              m.mrr, m.mr, m.hits1, m.hits3, m.hits10);
  return 0;
}
