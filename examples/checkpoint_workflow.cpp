// Production workflow: train, checkpoint to disk, reload in a fresh
// process (simulated here by discarding the engine), and serve
// evaluation from the checkpoint — including the hot/cold-relation
// accuracy breakdown.
//
//   ./example_checkpoint_workflow
#include <cstdio>

#include "hetkg/hetkg.h"

int main() {
  using namespace hetkg;

  graph::SyntheticSpec spec;
  spec.name = "checkpoint-demo";
  spec.num_entities = 1500;
  spec.num_relations = 24;
  spec.num_triples = 20000;
  spec.seed = 41;
  const auto dataset = graph::GenerateDataset(spec).value();

  const std::string checkpoint_path = "/tmp/hetkg_demo.ck";
  embedding::ModelKind model = embedding::ModelKind::kTransEL1;

  // --- Training phase -------------------------------------------------
  {
    core::TrainerConfig config;
    config.model = model;
    config.dim = 16;
    config.batch_size = 64;
    config.negatives_per_positive = 8;
    config.num_machines = 4;
    config.cache_capacity = 128;
    auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                   dataset.graph, dataset.split.train)
                      .value();
    auto report = engine->Train(8).value();
    std::printf("trained 8 epochs, final loss %.4f, %s simulated\n",
                report.epochs.back().mean_loss,
                HumanSeconds(report.total_time.total_seconds()).c_str());

    const Status saved = core::SaveEngineCheckpoint(*engine, checkpoint_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "checkpoint save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }  // Engine destroyed: only the checkpoint survives.

  // --- Serving phase --------------------------------------------------
  auto checkpoint = embedding::LoadCheckpoint(checkpoint_path);
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "checkpoint load failed: %s\n",
                 checkpoint.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded: %zu entity rows x %zu, %zu relation rows x %zu\n",
              checkpoint->entities.num_rows(), checkpoint->entities.dim(),
              checkpoint->relations.num_rows(),
              checkpoint->relations.dim());

  core::CheckpointLookup lookup(&*checkpoint);
  auto score_fn =
      embedding::MakeScoreFunction(model, checkpoint->entities.dim())
          .value();

  eval::EvalOptions options;
  options.max_triples = 400;
  const auto metrics =
      eval::EvaluateLinkPrediction(lookup, *score_fn, dataset.graph,
                                   dataset.split.test, options)
          .value();
  std::printf("restored model: MRR=%.3f Hits@10=%.3f over %llu rankings\n",
              metrics.mrr, metrics.hits10,
              static_cast<unsigned long long>(metrics.rankings));

  const auto split = eval::EvaluateByRelationHotness(
                         lookup, *score_fn, dataset.graph,
                         dataset.split.test,
                         dataset.graph.RelationFrequencies(), options)
                         .value();
  std::printf("  hot relations  (freq >= %u): MRR=%.3f (%llu rankings)\n",
              split.frequency_threshold, split.hot.mrr,
              static_cast<unsigned long long>(split.hot.rankings));
  std::printf("  cold relations (freq <  %u): MRR=%.3f (%llu rankings)\n",
              split.frequency_threshold, split.cold.mrr,
              static_cast<unsigned long long>(split.cold.rankings));
  return 0;
}
