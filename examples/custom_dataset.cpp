// Trains on a user-supplied dataset: writes a small TSV file (the format
// FB15k/WN18 ship in), loads it through the vocabulary-building loader,
// trains, and answers a link-prediction query ("which tails complete
// (head, relation, ?)") with entity names mapped back through the
// vocabulary.
//
//   ./example_custom_dataset
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "hetkg/hetkg.h"

namespace {

/// A toy family/geography knowledge base, repeated with variations so
/// the model has enough signal to learn from.
void WriteToyTsv(const std::string& path) {
  std::ofstream out(path);
  const char* people[] = {"alice", "bob", "carol", "dave", "erin",
                          "frank", "grace", "heidi"};
  const char* cities[] = {"tokyo", "paris", "berlin", "oslo"};
  // lives_in links person i to city i % 4; knows links people in the
  // same city; visited links everyone to the next city over.
  for (int i = 0; i < 8; ++i) {
    out << people[i] << "\tlives_in\t" << cities[i % 4] << "\n";
    out << people[i] << "\tknows\t" << people[(i + 4) % 8] << "\n";
    out << people[i] << "\tvisited\t" << cities[(i + 1) % 4] << "\n";
    out << cities[i % 4] << "\tneighbor_of\t" << cities[(i + 1) % 4] << "\n";
  }
}

}  // namespace

int main() {
  using namespace hetkg;

  const std::string path = "/tmp/hetkg_example_toy.tsv";
  WriteToyTsv(path);

  auto loaded_result = graph::LoadTsvDataset(path, "", "", "toy");
  if (!loaded_result.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 loaded_result.status().ToString().c_str());
    return 1;
  }
  auto& loaded = *loaded_result;
  std::printf("Loaded %zu triples over %zu entities and %zu relations.\n",
              loaded.graph.num_triples(), loaded.graph.num_entities(),
              loaded.graph.num_relations());

  core::TrainerConfig config;
  config.model = embedding::ModelKind::kTransEL2;
  config.dim = 16;
  config.batch_size = 8;
  config.negatives_per_positive = 4;
  config.num_machines = 2;
  config.cache_capacity = 16;
  auto engine = core::MakeEngine(core::SystemKind::kHetKgCps, config,
                                 loaded.graph, loaded.split.train)
                    .value();
  engine->Train(/*num_epochs=*/200).value();

  // Query: who does alice know?  Score every entity as a tail candidate
  // and print the top three.
  const EntityId alice = *loaded.entities.Get("alice");
  const RelationId knows = *loaded.relations.Get("knows");
  const auto& embeddings = engine->Embeddings();
  const auto h = embeddings.Entity(alice);
  const auto r = embeddings.Relation(knows);

  std::vector<std::pair<double, EntityId>> ranked;
  for (EntityId t = 0; t < loaded.graph.num_entities(); ++t) {
    if (t == alice) continue;
    ranked.emplace_back(engine->ScoreFn().Score(h, r, embeddings.Entity(t)),
                        t);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::printf("Top completions for (alice, knows, ?):\n");
  for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    const bool known = loaded.graph.ContainsTriple(
        {alice, knows, ranked[i].second});
    std::printf("  %zu. %-8s score=%.3f%s\n", i + 1,
                loaded.entities.Token(ranked[i].second).c_str(),
                ranked[i].first, known ? "  (true triple)" : "");
  }
  return 0;
}
