// Explores the cache's tuning surface on one workload: capacity,
// staleness bound P, DPS window D, and the entity/relation quota —
// the four knobs Sec. VI-D of the paper studies. Useful as a template
// for tuning HET-KG on a new knowledge graph.
//
//   ./example_cache_tuning
#include <cstdio>

#include "hetkg/hetkg.h"

namespace {

using namespace hetkg;

core::TrainReport RunOnce(const graph::SyntheticDataset& dataset,
                          core::TrainerConfig config) {
  auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
                                 dataset.graph, dataset.split.train)
                    .value();
  return engine->Train(/*num_epochs=*/2).value();
}

}  // namespace

int main() {
  using namespace hetkg;

  graph::SyntheticSpec spec;
  spec.name = "tuning";
  spec.num_entities = 5000;
  spec.num_relations = 200;
  spec.num_triples = 60000;
  spec.seed = 21;
  const auto dataset = graph::GenerateDataset(spec).value();

  core::TrainerConfig base;
  base.dim = 16;
  base.batch_size = 32;
  base.negatives_per_positive = 8;
  base.num_machines = 4;
  base.cache_capacity = 96;
  base.sync.staleness_bound = 8;
  base.sync.dps_window = 64;

  std::printf("-- cache capacity sweep --\n");
  for (size_t capacity : {16u, 64u, 256u, 1024u}) {
    core::TrainerConfig config = base;
    config.cache_capacity = capacity;
    const auto report = RunOnce(dataset, config);
    std::printf("capacity=%-5zu hit=%.3f remote=%s sim-time=%s\n", capacity,
                report.overall_hit_ratio,
                HumanBytes(static_cast<double>(report.total_remote_bytes))
                    .c_str(),
                HumanSeconds(report.total_time.total_seconds()).c_str());
  }

  std::printf("-- staleness bound P sweep --\n");
  for (size_t staleness : {1u, 4u, 16u, 64u}) {
    core::TrainerConfig config = base;
    config.sync.staleness_bound = staleness;
    const auto report = RunOnce(dataset, config);
    std::printf("P=%-3zu remote=%s sim-time=%s final-loss=%.4f\n", staleness,
                HumanBytes(static_cast<double>(report.total_remote_bytes))
                    .c_str(),
                HumanSeconds(report.total_time.total_seconds()).c_str(),
                report.epochs.back().mean_loss);
  }

  std::printf("-- entity/relation quota sweep --\n");
  for (double ratio : {0.0, 0.25, 0.5, 1.0}) {
    core::TrainerConfig config = base;
    config.cache_entity_ratio = ratio;
    const auto report = RunOnce(dataset, config);
    std::printf("entity-ratio=%.2f hit=%.3f remote=%s\n", ratio,
                report.overall_hit_ratio,
                HumanBytes(static_cast<double>(report.total_remote_bytes))
                    .c_str());
  }

  std::printf("-- DPS window D sweep --\n");
  for (size_t window : {16u, 64u, 256u}) {
    core::TrainerConfig config = base;
    config.sync.dps_window = window;
    const auto report = RunOnce(dataset, config);
    std::printf("D=%-4zu hit=%.3f rebuilds=%llu sim-time=%s\n", window,
                report.overall_hit_ratio,
                static_cast<unsigned long long>(
                    report.metrics.Get(metric::kCacheRebuilds)),
                HumanSeconds(report.total_time.total_seconds()).c_str());
  }
  return 0;
}
