// Compares the four systems of the paper — PBG, DGL-KE, HET-KG-C and
// HET-KG-D — on one workload through the public API: accuracy, simulated
// cluster time, communication volume, and cache behaviour.
//
//   ./example_system_comparison
#include <cstdio>

#include "hetkg/hetkg.h"

int main() {
  using namespace hetkg;

  graph::SyntheticSpec spec = graph::Fb15kSpec();
  spec.num_triples /= 10;  // Keep the example snappy.
  auto dataset = graph::GenerateDataset(spec).value();

  core::TrainerConfig config;
  config.model = embedding::ModelKind::kTransEL1;
  config.dim = 16;
  config.batch_size = 32;
  config.negatives_per_positive = 8;
  config.negative_chunk_size = 8;
  config.num_machines = 4;
  config.cache_capacity = 64;
  config.sync.staleness_bound = 8;
  config.sync.dps_window = 64;

  eval::EvalOptions eval_options;
  eval_options.max_triples = 300;
  eval_options.num_candidates = 1000;

  std::printf("%-10s %8s %8s %10s %12s %10s\n", "system", "MRR", "Hits@10",
              "sim time", "remote", "hit ratio");
  for (core::SystemKind system :
       {core::SystemKind::kPbg, core::SystemKind::kDglKe,
        core::SystemKind::kHetKgCps, core::SystemKind::kHetKgDps}) {
    auto engine = core::MakeEngine(system, config, dataset.graph,
                                   dataset.split.train)
                      .value();
    auto report = engine->Train(/*num_epochs=*/5).value();
    auto metrics = eval::EvaluateLinkPrediction(
                       engine->Embeddings(), engine->ScoreFn(),
                       dataset.graph, dataset.split.test, eval_options)
                       .value();
    std::printf(
        "%-10s %8.3f %8.3f %10s %12s %10.3f\n",
        std::string(core::SystemKindName(system)).c_str(), metrics.mrr,
        metrics.hits10,
        HumanSeconds(report.total_time.total_seconds()).c_str(),
        HumanBytes(static_cast<double>(report.total_remote_bytes)).c_str(),
        report.overall_hit_ratio);
  }
  std::printf(
      "\nExpected: comparable accuracy everywhere; PBG pays for dense\n"
      "relation synchronization and partition swaps; the HET-KG variants\n"
      "trim DGL-KE's communication through the hot-embedding cache.\n");
  return 0;
}
