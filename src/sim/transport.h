#ifndef HETKG_SIM_TRANSPORT_H_
#define HETKG_SIM_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "sim/cluster.h"

namespace hetkg::sim {

/// One scheduled unavailability window of a machine, expressed on the
/// transport's logical clock (one tick per wire attempt). Every message
/// attempt whose source or destination is `machine` while
/// start_tick <= tick < end_tick is lost.
struct FaultOutage {
  uint32_t machine = 0;
  uint64_t start_tick = 0;
  uint64_t end_tick = 0;
};

/// Which process a scheduled process-level fault takes down.
enum class ProcessFaultKind : uint32_t {
  /// A worker process dies, losing all volatile worker state (cache,
  /// batch queue, pending write-back gradients, staleness clocks). The
  /// engine recovers it from the latest checkpoint (replaying the
  /// iterations since, idempotently) or restarts it from scratch.
  kWorkerCrash = 0,
  /// The PS shard hosted on a machine restarts, losing its in-memory
  /// rows and optimizer accumulators. The server restores them from the
  /// latest checkpoint or re-initializes from the seed.
  kPsShardRestart = 1,
};

/// One scheduled process-level failure, on the same logical clock as
/// the outage windows: the event becomes due once the transport clock
/// reaches `tick`, and engines consume due events at iteration
/// boundaries (scheduling thread only). Like every fault decision, the
/// schedule is data, so a crash scenario replays bit-identically.
struct ProcessFault {
  ProcessFaultKind kind = ProcessFaultKind::kWorkerCrash;
  uint32_t machine = 0;
  uint64_t tick = 0;
};

/// Knobs of the deterministic fault model. With `enabled == false`
/// (the default) the transport is a transparent pass-through whose
/// accounting is bit-identical to calling ClusterSim directly, and no
/// fault metrics are ever touched.
struct FaultConfig {
  bool enabled = false;
  /// Seed of the fault plan. Two transports with the same seed and the
  /// same message sequence make identical decisions.
  uint64_t seed = 42;
  /// Probability one wire attempt is lost in the network (the sender
  /// still pays NIC bytes; the receiver sees nothing).
  double drop_prob = 0.0;
  /// Probability a delivered message arrives twice (both copies cross
  /// the wire; receivers must deduplicate).
  double duplicate_prob = 0.0;
  /// Probability a delivered message is late by `delay_seconds`.
  double delay_prob = 0.0;
  /// Modeled extra latency of one delayed delivery.
  double delay_seconds = 500e-6;
  /// Retransmissions attempted after the first try before the sender
  /// gives up and takes the degradation path.
  size_t max_retries = 3;
  /// Backoff before the first retransmission; doubles on every further
  /// retry (exponential backoff). Charged to the waiting machine.
  double retry_backoff_seconds = 200e-6;
  /// Scheduled per-machine outage windows.
  std::vector<FaultOutage> outages;
  /// Scheduled process-level failures (worker crash / PS shard
  /// restart). Unlike the message faults above, these fire regardless
  /// of `enabled`: the schedule is explicit, not probabilistic.
  std::vector<ProcessFault> process_faults;
};

/// Pure-function-of-seed fault decider: every decision is a hash of
/// (seed, tick, decision kind), so a plan is replayed bit-identically by
/// any transport fed the same message sequence, independent of thread
/// count or wall-clock time.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultConfig& config) : config_(config) {}

  /// True when the wire attempt at `tick` between `src` and `dst` is
  /// lost (random drop or either endpoint inside an outage window).
  bool AttemptLost(uint64_t tick, uint32_t src, uint32_t dst) const;

  /// True when the delivery decided at `tick` arrives twice.
  bool Duplicates(uint64_t tick) const;

  /// True when the delivery decided at `tick` is late.
  bool Delays(uint64_t tick) const;

  /// True when `machine` is inside a scheduled outage at `tick`.
  bool InOutage(uint32_t machine, uint64_t tick) const;

  const FaultConfig& config() const { return config_; }

  /// The plan's counter-mode hash as a pure function: a deterministic
  /// uniform double in [0, 1) for (seed, tick, salt). Exposed so other
  /// fault deciders — notably the real-transport FaultChannel
  /// (src/net/fault_channel.h) — share the exact PR-2 semantics
  /// instead of reinventing a hash.
  static double HashUnit(uint64_t seed, uint64_t tick, uint64_t salt);

 private:
  /// Deterministic uniform double in [0, 1) for (tick, salt).
  double UnitAt(uint64_t tick, uint64_t salt) const;

  FaultConfig config_;
};

/// Outcome of one logical message (or request/response exchange).
struct Delivery {
  bool delivered = false;   // At least one copy reached the receiver.
  bool duplicated = false;  // A second copy also arrived.
  bool delayed = false;     // The delivery was late by delay_seconds.
  uint32_t attempts = 0;    // Wire attempts, including the first try.
};

/// Per-message delivery layer between the workers and the parameter
/// server. Wraps the ClusterSim cost model: every wire attempt —
/// including retransmissions, duplicates, and drops — is charged to the
/// NICs it actually occupies, retry backoff and delivery delay are
/// charged as stall time, and fault events are mirrored into a
/// MetricRegistry. Single-threaded by design, like all simulation
/// accounting: engines call it only from the scheduling thread.
///
/// Under the process runtime (DESIGN.md §13, src/net/) this object
/// lives in the coordinator process only: worker processes route their
/// PS traffic there as RPCs, and the coordinator applies them in the
/// workers' program order — so the fault plan, the accounting, and the
/// serialized clocks stay bit-identical to the in-process run even
/// though the bytes really crossed a process boundary.
class Transport {
 public:
  /// `cluster` must outlive the transport.
  explicit Transport(ClusterSim* cluster, FaultConfig config = {});

  /// One-way logical message (a gradient push): retries dropped
  /// attempts with exponential backoff until delivered or
  /// `max_retries` retransmissions are exhausted.
  Delivery Send(uint32_t src, uint32_t dst, uint64_t payload_bytes);

  /// Request/response exchange (a pull): the request carries
  /// `request_bytes` src -> dst, the response `response_bytes`
  /// dst -> src. Losing either leg loses the exchange; a retry repeats
  /// both legs. Faults (duplicate/delay) are decided on the response
  /// leg — a duplicated response is ignored by the requester, so
  /// exchanges are naturally idempotent.
  Delivery Exchange(uint32_t src, uint32_t dst, uint64_t request_bytes,
                    uint64_t response_bytes);

  /// Logical clock: wire attempts made so far. Outage windows and
  /// process-fault schedules are expressed on this clock.
  uint64_t clock() const { return tick_; }

  /// Consumes and returns the scheduled process-level faults whose tick
  /// the clock has reached, in schedule order (tick, kind, machine).
  /// Engines poll this at iteration boundaries on the scheduling
  /// thread; each event is delivered exactly once.
  std::vector<ProcessFault> TakeDueProcessFaults();

  /// True while unconsumed process faults remain scheduled.
  bool HasPendingProcessFaults() const {
    return process_cursor_ < process_schedule_.size();
  }

  /// True when the next unconsumed process fault is already due at the
  /// current clock — i.e. TakeDueProcessFaults() would return events.
  /// The async pipeline's push stage polls this to stop feeding new
  /// iterations, without tripping on faults scheduled far in the future.
  bool HasDueProcessFaults() const {
    return process_cursor_ < process_schedule_.size() &&
           process_schedule_[process_cursor_].tick <= tick_;
  }

  const FaultConfig& config() const { return plan_.config(); }
  ClusterSim* cluster() { return cluster_; }

  /// Fault counters (transport.* names); empty while no fault fires.
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  /// Serializes the transport's mutable state — the logical clock, the
  /// process-fault delivery cursor, and the fault counters — for the
  /// HETKGCK2 snapshots. The plan itself is config and is rebuilt.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  /// True when the fault machinery can fire at all.
  bool FaultsActive() const;

  /// Charges the exponential backoff preceding retry `retry_index`
  /// (0-based) to `machine`.
  void ChargeBackoff(uint32_t machine, uint32_t retry_index);

  ClusterSim* cluster_;  // Not owned.
  FaultPlan plan_;
  MetricRegistry metrics_;
  uint64_t tick_ = 0;
  /// config().process_faults in deterministic delivery order, plus the
  /// index of the first not-yet-delivered event.
  std::vector<ProcessFault> process_schedule_;
  size_t process_cursor_ = 0;
};

}  // namespace hetkg::sim

#endif  // HETKG_SIM_TRANSPORT_H_
