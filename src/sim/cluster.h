#ifndef HETKG_SIM_CLUSTER_H_
#define HETKG_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace hetkg::sim {

/// Network cost model of the paper's testbed: machines joined by a
/// 1 Gbps Ethernet, where moving B payload bytes in one message costs
///   latency + (B + header) / bandwidth
/// at both the sender's and receiver's NIC. Local (same-machine,
/// shared-memory) transfers cost only memory bandwidth.
struct NetworkConfig {
  double bandwidth_bytes_per_sec = 125.0e6;  // 1 Gbps.
  /// Effective per-message cost. Raw LAN RTT is ~100us, but the PS
  /// stack pipelines requests, so the marginal cost per batched message
  /// is far below a full RTT.
  double latency_seconds = 20e-6;
  uint64_t header_bytes = 64;                // Framing per message.
  /// Effective throughput of the localPull/localPush shared-memory path.
  /// This is NOT raw memcpy speed: DGL-KE's local KVStore path still
  /// serializes ids, slices rows, and crosses the Python/C boundary, so
  /// its effective rate is framework-bound. 300 MB/s keeps the paper's
  /// two anchors consistent: ~70% network share at 4 machines (Table I)
  /// and positive multi-worker speedup over one worker (Fig. 6).
  double memory_bandwidth_bytes_per_sec = 3.0e8;
};

/// Compute cost model: each machine contributes `flops_per_second` of
/// effective throughput. The default is calibrated, not peak hardware:
/// real DGL-KE runs Python/DGL with sampling and memcpy overheads, and
/// the paper's Table I reports ~70% of end-to-end time in network on a
/// 4-machine 1 Gbps cluster. 1.5 GFLOPS effective reproduces that
/// compute:communication balance on the scaled workloads.
struct ComputeConfig {
  double flops_per_second = 1.5e9;
};

/// Seconds of computation and communication attributed to one machine
/// (or aggregated over the cluster's critical path).
///
/// `overlap_seconds` is nonzero only for the async pipeline engine
/// (DESIGN.md §12): the seconds during which the machine's compute and
/// communication proceeded concurrently, which the elapsed-time total
/// therefore does not pay twice. Serial engines leave it at 0, so
/// total = compute + comm exactly as before.
struct TimeBreakdown {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double overlap_seconds = 0.0;
  double total_seconds() const {
    return compute_seconds + comm_seconds - overlap_seconds;
  }
};

/// Deterministic accounting of a simulated cluster.
///
/// Every embedding transfer in the PS/cache layers reports here; the
/// epoch time reported by the benches is the *critical path* — the
/// slowest machine's compute + communication — matching how an
/// asynchronous cluster's epoch time is bounded. All arithmetic is a
/// pure function of the recorded byte/flop counts, so results are
/// bit-reproducible.
class ClusterSim {
 public:
  ClusterSim(size_t num_machines, NetworkConfig net = {},
             ComputeConfig compute = {});

  size_t num_machines() const { return per_machine_.size(); }
  const NetworkConfig& network_config() const { return net_; }
  const ComputeConfig& compute_config() const { return compute_; }

  /// One message from `src` to `dst` carrying `payload_bytes`. The
  /// bytes (plus header) occupy both NICs; the latency is charged to
  /// the initiator. src == dst is invalid — use RecordLocalCopy.
  void RecordRemoteMessage(uint32_t src, uint32_t dst, uint64_t payload_bytes);

  /// One message that left `src`'s NIC but was lost in the network
  /// (fault injection): the sender pays wire bytes and latency, the
  /// receiver sees nothing.
  void RecordDroppedMessage(uint32_t src, uint64_t payload_bytes);

  /// `seconds` of time `machine` spent waiting on the network without
  /// moving bytes (retry backoff, delayed deliveries). Counted as
  /// communication time.
  void RecordStall(uint32_t machine, double seconds);

  /// Shared-memory transfer on `machine` (localPull/localPush).
  void RecordLocalCopy(uint32_t machine, uint64_t bytes);

  /// Transfer between `machine` and an external shared filesystem (the
  /// PBG partition-swap path): charges the machine's NIC in the given
  /// direction plus one message.
  void RecordExternalIn(uint32_t machine, uint64_t payload_bytes);
  void RecordExternalOut(uint32_t machine, uint64_t payload_bytes);

  /// `flops` floating-point work on `machine`.
  void RecordCompute(uint32_t machine, uint64_t flops);

  /// Modeled times for one machine.
  TimeBreakdown MachineTime(uint32_t machine) const;

  /// Critical-path epoch time: max over machines of compute + comm.
  TimeBreakdown CriticalPath() const;

  /// Critical path when each machine's compute and communication
  /// overlap under a pipeline with run-ahead bound `staleness` (the
  /// async engine, DESIGN.md §12). With N in-flight iterations the
  /// shorter of the two phases hides behind the longer for N out of
  /// every N+1 iterations, so per machine
  ///   total = max(compute, comm) + min(compute, comm) / (N + 1)
  /// — N = 0 degenerates to the serial sum, N -> inf to perfect
  /// overlap. Pure arithmetic over the same counters as CriticalPath,
  /// so it is just as bit-reproducible.
  TimeBreakdown OverlappedCriticalPath(size_t staleness) const;

  /// Cluster-wide totals, for traffic reporting.
  uint64_t TotalRemoteBytes() const;
  uint64_t TotalRemoteMessages() const;
  uint64_t TotalFlops() const;

  /// Clears the counters (between epochs or measurement windows).
  /// Slowdown factors persist across Reset().
  void Reset();

  /// Failure-injection knob: multiplies `machine`'s compute time by
  /// `factor` (>= 1.0 slows it down — a straggler; < 1.0 models a
  /// faster node). Communication is unaffected.
  void SetMachineSlowdown(uint32_t machine, double factor);

  /// Serializes every machine's counters — including stall time and
  /// slowdown factors — for the HETKGCK2 snapshots. A mid-epoch resume
  /// needs the partially accumulated clocks so the epoch's critical
  /// path comes out bit-identical to an uninterrupted run.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  struct MachineCounters {
    uint64_t bytes_out = 0;
    uint64_t bytes_in = 0;
    uint64_t messages_initiated = 0;
    uint64_t local_bytes = 0;
    uint64_t flops = 0;
    double stall_seconds = 0.0;
    double slowdown = 1.0;
  };

  NetworkConfig net_;
  ComputeConfig compute_;
  std::vector<MachineCounters> per_machine_;
};

}  // namespace hetkg::sim

#endif  // HETKG_SIM_CLUSTER_H_
