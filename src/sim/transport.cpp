#include "sim/transport.h"

#include <algorithm>

#include "obs/trace.h"

namespace hetkg::sim {

namespace {

/// SplitMix64 finalizer: the counter-mode hash behind the fault plan.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Distinct salts keep the drop/duplicate/delay decisions of one tick
/// statistically independent.
constexpr uint64_t kDropSalt = 0xD20FULL;
constexpr uint64_t kDuplicateSalt = 0xD0B1ULL;
constexpr uint64_t kDelaySalt = 0xDE1AULL;

}  // namespace

double FaultPlan::HashUnit(uint64_t seed, uint64_t tick, uint64_t salt) {
  const uint64_t h = Mix64(seed ^ Mix64(tick ^ (salt << 32)));
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double FaultPlan::UnitAt(uint64_t tick, uint64_t salt) const {
  return HashUnit(config_.seed, tick, salt);
}

bool FaultPlan::InOutage(uint32_t machine, uint64_t tick) const {
  for (const FaultOutage& o : config_.outages) {
    if (o.machine == machine && tick >= o.start_tick && tick < o.end_tick) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::AttemptLost(uint64_t tick, uint32_t src, uint32_t dst) const {
  if (!config_.enabled) return false;
  if (InOutage(src, tick) || InOutage(dst, tick)) return true;
  return config_.drop_prob > 0.0 && UnitAt(tick, kDropSalt) < config_.drop_prob;
}

bool FaultPlan::Duplicates(uint64_t tick) const {
  if (!config_.enabled || config_.duplicate_prob <= 0.0) return false;
  return UnitAt(tick, kDuplicateSalt) < config_.duplicate_prob;
}

bool FaultPlan::Delays(uint64_t tick) const {
  if (!config_.enabled || config_.delay_prob <= 0.0) return false;
  return UnitAt(tick, kDelaySalt) < config_.delay_prob;
}

Transport::Transport(ClusterSim* cluster, FaultConfig config)
    : cluster_(cluster),
      plan_(config),
      process_schedule_(config.process_faults) {
  std::sort(process_schedule_.begin(), process_schedule_.end(),
            [](const ProcessFault& a, const ProcessFault& b) {
              if (a.tick != b.tick) return a.tick < b.tick;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.machine < b.machine;
            });
}

std::vector<ProcessFault> Transport::TakeDueProcessFaults() {
  std::vector<ProcessFault> due;
  while (process_cursor_ < process_schedule_.size() &&
         process_schedule_[process_cursor_].tick <= tick_) {
    due.push_back(process_schedule_[process_cursor_++]);
  }
  return due;
}

void Transport::SaveState(ByteWriter* w) const {
  w->U64(tick_);
  w->U64(process_cursor_);
  metrics_.SaveState(w);
}

bool Transport::LoadState(ByteReader* r) {
  const uint64_t tick = r->U64();
  const uint64_t cursor = r->U64();
  if (!r->ok() || cursor > process_schedule_.size()) return false;
  if (!metrics_.LoadState(r)) return false;
  tick_ = tick;
  process_cursor_ = static_cast<size_t>(cursor);
  return true;
}

bool Transport::FaultsActive() const {
  const FaultConfig& c = plan_.config();
  return c.enabled && (c.drop_prob > 0.0 || c.duplicate_prob > 0.0 ||
                       c.delay_prob > 0.0 || !c.outages.empty());
}

void Transport::ChargeBackoff(uint32_t machine, uint32_t retry_index) {
  cluster_->RecordStall(machine, plan_.config().retry_backoff_seconds *
                                     static_cast<double>(1ULL << retry_index));
  metrics_.Increment(metric::kTransportRetries);
  obs::Tracer::Instant("net.retry", "net", "machine",
                       static_cast<double>(machine), "backoff_index",
                       static_cast<double>(retry_index));
}

Delivery Transport::Send(uint32_t src, uint32_t dst, uint64_t payload_bytes) {
  Delivery d;
  const size_t max_attempts =
      1 + (FaultsActive() ? plan_.config().max_retries : 0);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(src, static_cast<uint32_t>(attempt - 1));
    }
    ++d.attempts;
    const uint64_t tick = tick_++;
    if (plan_.AttemptLost(tick, src, dst)) {
      // The sender transmitted; the network ate it.
      cluster_->RecordDroppedMessage(src, payload_bytes);
      metrics_.Increment(metric::kTransportDroppedMessages);
      obs::Tracer::Instant("net.drop", "net", "src",
                           static_cast<double>(src), "dst",
                           static_cast<double>(dst));
      continue;
    }
    cluster_->RecordRemoteMessage(src, dst, payload_bytes);
    d.delivered = true;
    if (plan_.Duplicates(tick)) {
      // The duplicate copy occupies the wire a second time.
      cluster_->RecordRemoteMessage(src, dst, payload_bytes);
      d.duplicated = true;
      metrics_.Increment(metric::kTransportDuplicates);
      obs::Tracer::Instant("net.duplicate", "net", "src",
                           static_cast<double>(src), "dst",
                           static_cast<double>(dst));
    }
    if (plan_.Delays(tick)) {
      // A late push stalls the receiver's apply pipeline.
      cluster_->RecordStall(dst, plan_.config().delay_seconds);
      d.delayed = true;
      metrics_.Increment(metric::kTransportDelayed);
      obs::Tracer::Instant("net.delay", "net", "machine",
                           static_cast<double>(dst));
    }
    break;
  }
  if (!d.delivered) {
    metrics_.Increment(metric::kTransportExhaustedRetries);
    obs::Tracer::Instant("net.exhausted_retries", "net", "src",
                         static_cast<double>(src), "dst",
                         static_cast<double>(dst));
  }
  return d;
}

Delivery Transport::Exchange(uint32_t src, uint32_t dst,
                             uint64_t request_bytes,
                             uint64_t response_bytes) {
  Delivery d;
  const size_t max_attempts =
      1 + (FaultsActive() ? plan_.config().max_retries : 0);
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ChargeBackoff(src, static_cast<uint32_t>(attempt - 1));
    }
    ++d.attempts;
    const uint64_t request_tick = tick_++;
    if (plan_.AttemptLost(request_tick, src, dst)) {
      cluster_->RecordDroppedMessage(src, request_bytes);
      metrics_.Increment(metric::kTransportDroppedMessages);
      obs::Tracer::Instant("net.drop", "net", "src",
                           static_cast<double>(src), "dst",
                           static_cast<double>(dst));
      continue;
    }
    cluster_->RecordRemoteMessage(src, dst, request_bytes);
    const uint64_t response_tick = tick_++;
    if (plan_.AttemptLost(response_tick, dst, src)) {
      // The server served the (idempotent) read but the response died;
      // the whole exchange is retried.
      cluster_->RecordDroppedMessage(dst, response_bytes);
      metrics_.Increment(metric::kTransportDroppedMessages);
      obs::Tracer::Instant("net.drop", "net", "src",
                           static_cast<double>(dst), "dst",
                           static_cast<double>(src));
      continue;
    }
    cluster_->RecordRemoteMessage(dst, src, response_bytes);
    d.delivered = true;
    if (plan_.Duplicates(response_tick)) {
      // A duplicated response crosses the wire again and is discarded
      // by the requester.
      cluster_->RecordRemoteMessage(dst, src, response_bytes);
      d.duplicated = true;
      metrics_.Increment(metric::kTransportDuplicates);
      obs::Tracer::Instant("net.duplicate", "net", "src",
                           static_cast<double>(dst), "dst",
                           static_cast<double>(src));
    }
    if (plan_.Delays(response_tick)) {
      // The requester blocks on the pull, so the lateness is its stall.
      cluster_->RecordStall(src, plan_.config().delay_seconds);
      d.delayed = true;
      metrics_.Increment(metric::kTransportDelayed);
      obs::Tracer::Instant("net.delay", "net", "machine",
                           static_cast<double>(src));
    }
    break;
  }
  if (!d.delivered) {
    metrics_.Increment(metric::kTransportExhaustedRetries);
    obs::Tracer::Instant("net.exhausted_retries", "net", "src",
                         static_cast<double>(src), "dst",
                         static_cast<double>(dst));
  }
  return d;
}

}  // namespace hetkg::sim
