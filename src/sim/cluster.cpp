#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

namespace hetkg::sim {

ClusterSim::ClusterSim(size_t num_machines, NetworkConfig net,
                       ComputeConfig compute)
    : net_(net), compute_(compute), per_machine_(num_machines) {
  assert(num_machines >= 1);
}

void ClusterSim::RecordRemoteMessage(uint32_t src, uint32_t dst,
                                     uint64_t payload_bytes) {
  assert(src < per_machine_.size() && dst < per_machine_.size());
  assert(src != dst && "same-machine traffic must use RecordLocalCopy");
  const uint64_t wire = payload_bytes + net_.header_bytes;
  per_machine_[src].bytes_out += wire;
  per_machine_[dst].bytes_in += wire;
  ++per_machine_[src].messages_initiated;
}

void ClusterSim::RecordDroppedMessage(uint32_t src, uint64_t payload_bytes) {
  assert(src < per_machine_.size());
  per_machine_[src].bytes_out += payload_bytes + net_.header_bytes;
  ++per_machine_[src].messages_initiated;
}

void ClusterSim::RecordStall(uint32_t machine, double seconds) {
  assert(machine < per_machine_.size());
  assert(seconds >= 0.0);
  per_machine_[machine].stall_seconds += seconds;
}

void ClusterSim::RecordExternalIn(uint32_t machine, uint64_t payload_bytes) {
  assert(machine < per_machine_.size());
  per_machine_[machine].bytes_in += payload_bytes + net_.header_bytes;
  ++per_machine_[machine].messages_initiated;
}

void ClusterSim::RecordExternalOut(uint32_t machine, uint64_t payload_bytes) {
  assert(machine < per_machine_.size());
  per_machine_[machine].bytes_out += payload_bytes + net_.header_bytes;
  ++per_machine_[machine].messages_initiated;
}

void ClusterSim::RecordLocalCopy(uint32_t machine, uint64_t bytes) {
  assert(machine < per_machine_.size());
  per_machine_[machine].local_bytes += bytes;
}

void ClusterSim::RecordCompute(uint32_t machine, uint64_t flops) {
  assert(machine < per_machine_.size());
  per_machine_[machine].flops += flops;
}

TimeBreakdown ClusterSim::MachineTime(uint32_t machine) const {
  assert(machine < per_machine_.size());
  const MachineCounters& c = per_machine_[machine];
  TimeBreakdown t;
  t.comm_seconds =
      static_cast<double>(c.bytes_out + c.bytes_in) /
          net_.bandwidth_bytes_per_sec +
      static_cast<double>(c.messages_initiated) * net_.latency_seconds +
      c.stall_seconds;
  t.compute_seconds =
      c.slowdown *
      (static_cast<double>(c.flops) / compute_.flops_per_second +
       static_cast<double>(c.local_bytes) /
           net_.memory_bandwidth_bytes_per_sec);
  return t;
}

TimeBreakdown ClusterSim::CriticalPath() const {
  TimeBreakdown worst;
  double worst_total = -1.0;
  for (uint32_t m = 0; m < per_machine_.size(); ++m) {
    const TimeBreakdown t = MachineTime(m);
    if (t.total_seconds() > worst_total) {
      worst_total = t.total_seconds();
      worst = t;
    }
  }
  return worst;
}

TimeBreakdown ClusterSim::OverlappedCriticalPath(size_t staleness) const {
  TimeBreakdown worst;
  double worst_total = -1.0;
  const double depth = static_cast<double>(staleness) + 1.0;
  for (uint32_t m = 0; m < per_machine_.size(); ++m) {
    TimeBreakdown t = MachineTime(m);
    const double hidden =
        std::min(t.compute_seconds, t.comm_seconds) * (1.0 - 1.0 / depth);
    t.overlap_seconds = hidden;
    if (t.total_seconds() > worst_total) {
      worst_total = t.total_seconds();
      worst = t;
    }
  }
  return worst;
}

uint64_t ClusterSim::TotalRemoteBytes() const {
  uint64_t total = 0;
  for (const auto& c : per_machine_) {
    total += c.bytes_out;
  }
  return total;
}

uint64_t ClusterSim::TotalRemoteMessages() const {
  uint64_t total = 0;
  for (const auto& c : per_machine_) {
    total += c.messages_initiated;
  }
  return total;
}

uint64_t ClusterSim::TotalFlops() const {
  uint64_t total = 0;
  for (const auto& c : per_machine_) {
    total += c.flops;
  }
  return total;
}

void ClusterSim::Reset() {
  for (auto& c : per_machine_) {
    const double slowdown = c.slowdown;
    c = MachineCounters{};
    c.slowdown = slowdown;
  }
}

void ClusterSim::SetMachineSlowdown(uint32_t machine, double factor) {
  assert(machine < per_machine_.size());
  assert(factor > 0.0);
  per_machine_[machine].slowdown = factor;
}

void ClusterSim::SaveState(ByteWriter* w) const {
  w->U64(per_machine_.size());
  for (const MachineCounters& c : per_machine_) {
    w->U64(c.bytes_out);
    w->U64(c.bytes_in);
    w->U64(c.messages_initiated);
    w->U64(c.local_bytes);
    w->U64(c.flops);
    w->F64(c.stall_seconds);
    w->F64(c.slowdown);
  }
}

bool ClusterSim::LoadState(ByteReader* r) {
  if (r->U64() != per_machine_.size()) return false;
  std::vector<MachineCounters> machines(per_machine_.size());
  for (MachineCounters& c : machines) {
    c.bytes_out = r->U64();
    c.bytes_in = r->U64();
    c.messages_initiated = r->U64();
    c.local_bytes = r->U64();
    c.flops = r->U64();
    c.stall_seconds = r->F64();
    c.slowdown = r->F64();
  }
  if (!r->ok()) return false;
  per_machine_ = std::move(machines);
  return true;
}

}  // namespace hetkg::sim
