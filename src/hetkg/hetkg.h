#ifndef HETKG_HETKG_H_
#define HETKG_HETKG_H_

/// Umbrella header for the HET-KG library: distributed knowledge-graph
/// embedding training with a hotness-aware worker cache, reproduced from
/// "HET-KG: Communication-Efficient Knowledge Graph Embedding Training
/// via Hotness-Aware Cache" (ICDE 2022).
///
/// Typical usage:
///
///   #include "hetkg/hetkg.h"
///   using namespace hetkg;
///
///   auto dataset = graph::GenerateDataset(graph::Fb15kSpec()).value();
///   core::TrainerConfig config;
///   config.model = embedding::ModelKind::kTransEL1;
///   auto engine = core::MakeEngine(core::SystemKind::kHetKgDps, config,
///                                  dataset.graph, dataset.split.train)
///                     .value();
///   auto report = engine->Train(/*num_epochs=*/10).value();
///   auto metrics = eval::EvaluateLinkPrediction(
///       engine->Embeddings(), engine->ScoreFn(), dataset.graph,
///       dataset.split.test, {}).value();

#include "common/flags.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/baseline_caches.h"
#include "core/hot_embedding_table.h"
#include "core/hot_filter.h"
#include "core/parallel_batch.h"
#include "core/pbg_engine.h"
#include "core/prefetcher.h"
#include "core/report_io.h"
#include "core/ps_engine.h"
#include "core/sync_controller.h"
#include "core/trainer.h"
#include "embedding/adagrad.h"
#include "embedding/checkpoint.h"
#include "embedding/embedding_table.h"
#include "embedding/kernels.h"
#include "embedding/loss.h"
#include "embedding/negative_sampler.h"
#include "embedding/score_function.h"
#include "embedding/tiered_store.h"
#include "eval/link_prediction.h"
#include "graph/knowledge_graph.h"
#include "graph/loader.h"
#include "graph/serialize.h"
#include "graph/stats.h"
#include "graph/synthetic.h"
#include "net/channel.h"
#include "net/local_channel.h"
#include "net/proc_runtime.h"
#include "net/rpc.h"
#include "net/shm_ring.h"
#include "net/tcp_channel.h"
#include "partition/bucketizer.h"
#include "partition/metis_partitioner.h"
#include "partition/partitioner.h"
#include "ps/parameter_server.h"
#include "sim/cluster.h"

#endif  // HETKG_HETKG_H_
