#ifndef HETKG_OBS_METRICS_EXPORT_H_
#define HETKG_OBS_METRICS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace hetkg::obs {

/// What the observability layer should record for one training run.
/// Default-constructed = fully disabled; engines then skip every
/// instrumentation branch and behave bit-identically to an
/// uninstrumented build.
struct ObsConfig {
  /// Chrome/Perfetto trace-event JSON output path; empty disables
  /// tracing.
  std::string trace_out;
  /// Per-epoch metrics time-series JSON output path; empty disables
  /// the export.
  std::string metrics_json;
  /// When > 0, additionally snapshot metrics every `metrics_window`
  /// iterations (e.g. set it to the staleness bound P to watch cache
  /// behaviour between refreshes). 0 = per-epoch samples only.
  uint64_t metrics_window = 0;

  bool TraceRequested() const { return !trace_out.empty(); }
  bool MetricsRequested() const { return !metrics_json.empty(); }
  /// True when any instrumentation should run.
  bool Enabled() const { return TraceRequested() || MetricsRequested(); }
};

/// One point of the metrics time-series: the cumulative registry state
/// observed at an epoch (or window) boundary, stamped with both clocks.
struct MetricsSample {
  /// "epoch" or "window".
  std::string kind;
  /// Epoch index of the sample (the epoch just finished for kind ==
  /// "epoch"; the containing epoch for kind == "window").
  uint64_t epoch = 0;
  /// Iterations completed within the epoch at sample time.
  uint64_t iteration = 0;
  /// Simulated-cluster critical-path seconds (deterministic).
  double sim_seconds = 0.0;
  /// Wall-clock seconds since training start (informational only).
  double wall_seconds = 0.0;
  /// Cumulative metric state at the sample point.
  MetricRegistry metrics;
};

/// An ordered series of samples, serialisable as one JSON document:
///   {"samples":[{"kind":...,"epoch":...,"iteration":...,
///                "sim_seconds":...,"wall_seconds":...,
///                "metrics":{...SnapshotJson()...}}, ...]}
class MetricsSeries {
 public:
  void Add(MetricsSample sample) {
    samples_.push_back(std::move(sample));
  }

  const std::vector<MetricsSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

 private:
  std::vector<MetricsSample> samples_;
};

}  // namespace hetkg::obs

#endif  // HETKG_OBS_METRICS_EXPORT_H_
