#ifndef HETKG_OBS_FLIGHT_H_
#define HETKG_OBS_FLIGHT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "obs/trace.h"

namespace hetkg::obs {

/// Crash flight recorder (DESIGN.md §14): a fixed-slot ring of the
/// last-N trace events of one worker process, living in memory the
/// coordinator can still read after the worker is SIGKILLed — an
/// anonymous MAP_SHARED region created before fork() for the shm
/// transport, or an mmap'd spill file the worker creates (and the
/// coordinator opens post-mortem) for tcp.
///
/// Installed as the Tracer's EventSink, so it mirrors every event the
/// worker emits — including ones the shipping ring then drops. The
/// write path is lock-free: one fetch_add claims a slot, the slot's
/// sequence stamp is invalidated while the fields are written and
/// published (release) last. A worker dying mid-write can at worst
/// leave torn newest records; Harvest() detects those through the
/// sequence stamp and skips them.
class FlightRecorder final : public Tracer::EventSink {
 public:
  static constexpr size_t kDefaultSlots = 256;

  /// Pre-fork shared-memory recorder (both processes map the pages).
  static Result<std::unique_ptr<FlightRecorder>> CreateAnonymous(
      size_t slots);
  /// Worker-side spill-file recorder: creates/truncates `path` and
  /// maps it shared, so every published slot is visible to a post-
  /// mortem OpenFile() without any flushing discipline from the
  /// (possibly SIGKILLed) writer.
  static Result<std::unique_ptr<FlightRecorder>> CreateFile(
      const std::string& path, size_t slots);
  /// Coordinator-side harvest of a spill file (read-only mapping).
  static Result<std::unique_ptr<FlightRecorder>> OpenFile(
      const std::string& path);

  ~FlightRecorder() override;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Tracer::EventSink — lock-free, safe from any tracing thread.
  void OnEvent(const char* name, const char* cat, char phase, uint32_t tid,
               uint64_t ts_us, uint64_t dur_us, double v1) override;

  struct Event {
    std::string name;
    std::string cat;
    char phase = 'X';
    uint32_t tid = 0;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    double v1 = 0.0;
  };

  /// The surviving records, oldest first (overwritten and torn slots
  /// skipped). Meaningful even while the writer lives, but designed to
  /// be read after it is dead.
  std::vector<Event> Harvest() const;

  /// Harvest() in the Tracer shipment wire format, ready to inject as
  /// the dead worker's `flight.w<id>` track via Tracer::AddRemoteEvents.
  void SerializeHarvest(ByteWriter* out) const;

  size_t slot_count() const;

  // Mapped-layout types: public so the .cpp's layout helpers and
  // static_asserts can name them, but not part of the API.
  struct Header;
  struct Slot;

 private:
  FlightRecorder(void* mem, size_t bytes) : mem_(mem), bytes_(bytes) {}
  Header* header() const;
  Slot* slots() const;

  void* mem_;
  size_t bytes_;
};

}  // namespace hetkg::obs

#endif  // HETKG_OBS_FLIGHT_H_
