#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hetkg::obs {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 64 bytes always fit the shortest form of a double.
  out->append(buf, ptr);
}

void AppendJsonNumber(std::string* out, uint64_t value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    HETKG_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue* out,
                      JsonValue::Kind kind, bool value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    out->kind = kind;
    out->bool_value = value;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return Error("malformed \\u escape");
          }
          pos_ += 4;
          // ASCII range decodes exactly; everything else becomes '?'
          // (the exporters only escape control characters).
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      HETKG_RETURN_IF_ERROR(ParseValue(&item));
      out->items.push_back(std::move(item));
      SkipSpace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      HETKG_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      HETKG_RETURN_IF_ERROR(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace hetkg::obs
