#include "obs/flight.h"

#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace hetkg::obs {

namespace {

constexpr uint64_t kFlightMagic = 0x314B4C46474B5448ull;  // "HTKGFLK1".

}  // namespace

/// Mapped layout: one Header followed by `slot_count` Slots. All
/// cross-process coordination is the two atomics; everything else is
/// plain data guarded by the per-slot sequence protocol.
struct FlightRecorder::Header {
  uint64_t magic;
  uint64_t slot_count;
  /// Total records ever claimed (monotonic). Slot for record i is
  /// i % slot_count; its published seq is i + 1.
  std::atomic<uint64_t> head;
};

struct FlightRecorder::Slot {
  /// 0 while a writer owns the slot; record_index + 1 once published.
  std::atomic<uint64_t> seq;
  uint64_t ts_us;
  uint64_t dur_us;
  double v1;
  uint32_t tid;
  char phase;
  char name[43];
  char cat[16];
};

static_assert(sizeof(FlightRecorder::Header) == 24);
static_assert(sizeof(FlightRecorder::Slot) == 96);

FlightRecorder::Header* FlightRecorder::header() const {
  return static_cast<Header*>(mem_);
}

FlightRecorder::Slot* FlightRecorder::slots() const {
  return reinterpret_cast<Slot*>(static_cast<char*>(mem_) +
                                 sizeof(Header));
}

size_t FlightRecorder::slot_count() const { return header()->slot_count; }

namespace {

size_t RegionBytes(size_t slots) {
  return sizeof(FlightRecorder::Header) +
         slots * sizeof(FlightRecorder::Slot);
}

void InitRegion(void* mem, size_t slots) {
  auto* header = static_cast<FlightRecorder::Header*>(mem);
  header->magic = kFlightMagic;
  header->slot_count = slots;
  header->head.store(0, std::memory_order_relaxed);
  auto* slot_base = reinterpret_cast<FlightRecorder::Slot*>(
      static_cast<char*>(mem) + sizeof(FlightRecorder::Header));
  for (size_t i = 0; i < slots; ++i) {
    slot_base[i].seq.store(0, std::memory_order_relaxed);
  }
}

}  // namespace

Result<std::unique_ptr<FlightRecorder>> FlightRecorder::CreateAnonymous(
    size_t slots) {
  if (slots == 0) {
    return Status::InvalidArgument("flight slot count must be positive");
  }
  const size_t bytes = RegionBytes(slots);
  void* mem = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return Status::Internal("mmap(flight) failed: " +
                            std::string(strerror(errno)));
  }
  InitRegion(mem, slots);
  return std::unique_ptr<FlightRecorder>(new FlightRecorder(mem, bytes));
}

Result<std::unique_ptr<FlightRecorder>> FlightRecorder::CreateFile(
    const std::string& path, size_t slots) {
  if (slots == 0) {
    return Status::InvalidArgument("flight slot count must be positive");
  }
  const size_t bytes = RegionBytes(slots);
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(flight file " + path +
                           ") failed: " + std::string(strerror(errno)));
  }
  if (ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::IoError("ftruncate(flight file) failed: " + err);
  }
  void* mem =
      mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  // The mapping keeps the file open; published slots reach the page
  // cache directly, so a SIGKILL loses nothing already published.
  close(fd);
  if (mem == MAP_FAILED) {
    return Status::Internal("mmap(flight file) failed: " +
                            std::string(strerror(errno)));
  }
  InitRegion(mem, slots);
  return std::unique_ptr<FlightRecorder>(new FlightRecorder(mem, bytes));
}

Result<std::unique_ptr<FlightRecorder>> FlightRecorder::OpenFile(
    const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(flight file " + path +
                           ") failed: " + std::string(strerror(errno)));
  }
  struct stat st;
  if (fstat(fd, &st) != 0 ||
      static_cast<size_t>(st.st_size) < sizeof(Header)) {
    close(fd);
    return Status::Corruption("flight file too small: " + path);
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  void* mem = mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  close(fd);
  if (mem == MAP_FAILED) {
    return Status::Internal("mmap(flight file) failed: " +
                            std::string(strerror(errno)));
  }
  std::unique_ptr<FlightRecorder> recorder(new FlightRecorder(mem, bytes));
  const Header* header = recorder->header();
  if (header->magic != kFlightMagic || header->slot_count == 0 ||
      RegionBytes(header->slot_count) > bytes) {
    return Status::Corruption("not a flight-recorder file: " + path);
  }
  return recorder;
}

FlightRecorder::~FlightRecorder() { munmap(mem_, bytes_); }

void FlightRecorder::OnEvent(const char* name, const char* cat, char phase,
                             uint32_t tid, uint64_t ts_us, uint64_t dur_us,
                             double v1) {
  Header* h = header();
  const uint64_t idx = h->head.fetch_add(1, std::memory_order_acq_rel);
  Slot* slot = &slots()[idx % h->slot_count];
  slot->seq.store(0, std::memory_order_release);  // Invalidate while writing.
  slot->ts_us = ts_us;
  slot->dur_us = dur_us;
  slot->v1 = v1;
  slot->tid = tid;
  slot->phase = phase;
  std::strncpy(slot->name, name, sizeof(slot->name) - 1);
  slot->name[sizeof(slot->name) - 1] = '\0';
  std::strncpy(slot->cat, cat, sizeof(slot->cat) - 1);
  slot->cat[sizeof(slot->cat) - 1] = '\0';
  slot->seq.store(idx + 1, std::memory_order_release);  // Publish.
}

std::vector<FlightRecorder::Event> FlightRecorder::Harvest() const {
  const Header* h = header();
  const uint64_t head = h->head.load(std::memory_order_acquire);
  const uint64_t n = h->slot_count;
  const uint64_t begin = head > n ? head - n : 0;
  std::vector<Event> events;
  for (uint64_t i = begin; i < head; ++i) {
    const Slot* slot = &slots()[i % n];
    if (slot->seq.load(std::memory_order_acquire) != i + 1) continue;
    Event e;
    // Copy through bounded buffers: a writer killed mid-strncpy may
    // have left the arrays unterminated.
    char name[sizeof(slot->name)];
    char cat[sizeof(slot->cat)];
    std::memcpy(name, slot->name, sizeof(name));
    std::memcpy(cat, slot->cat, sizeof(cat));
    name[sizeof(name) - 1] = '\0';
    cat[sizeof(cat) - 1] = '\0';
    e.ts_us = slot->ts_us;
    e.dur_us = slot->dur_us;
    e.v1 = slot->v1;
    e.tid = slot->tid;
    e.phase = slot->phase;
    // Re-check after reading: a live writer lapping the ring would
    // have invalidated the stamp before touching the fields.
    if (slot->seq.load(std::memory_order_acquire) != i + 1) continue;
    e.name = name;
    e.cat = cat;
    events.push_back(std::move(e));
  }
  return events;
}

void FlightRecorder::SerializeHarvest(ByteWriter* out) const {
  const std::vector<Event> events = Harvest();
  out->U64(events.size());
  for (const Event& e : events) {
    out->U8(static_cast<uint8_t>(e.phase));
    out->U32(e.tid);
    out->U64(e.ts_us);
    out->U64(e.dur_us);
    out->F64(0.0);  // sim_s: not mirrored through the sink.
    out->Str(e.name);
    out->Str(e.cat);
    out->U8(1);  // argmask: always carry v1 as a "value" arg.
    out->F64(e.v1);
    out->F64(0.0);
    out->Str("value");
  }
}

}  // namespace hetkg::obs
