#include "obs/metrics_export.h"

#include <cstdio>

#include "obs/json.h"

namespace hetkg::obs {

std::string MetricsSeries::ToJson() const {
  std::string out;
  out.append("{\"samples\":[\n");
  bool first = true;
  for (const MetricsSample& sample : samples_) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"kind\":");
    AppendJsonString(&out, sample.kind);
    out.append(",\"epoch\":");
    AppendJsonNumber(&out, sample.epoch);
    out.append(",\"iteration\":");
    AppendJsonNumber(&out, sample.iteration);
    out.append(",\"sim_seconds\":");
    AppendJsonNumber(&out, sample.sim_seconds);
    out.append(",\"wall_seconds\":");
    AppendJsonNumber(&out, sample.wall_seconds);
    out.append(",\"metrics\":");
    out.append(sample.metrics.SnapshotJson());
    out.push_back('}');
  }
  out.append("\n]}\n");
  return out;
}

Status MetricsSeries::WriteJson(const std::string& path) const {
  const std::string out = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::IoError("short write to metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace hetkg::obs
