#ifndef HETKG_OBS_JSON_H_
#define HETKG_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hetkg::obs {

/// Appends `text` to `out` as a JSON string literal (quotes included),
/// escaping quotes, backslashes, and control characters.
void AppendJsonString(std::string* out, std::string_view text);

/// Appends a JSON number. Uses the shortest round-trippable decimal
/// form (std::to_chars), so output is deterministic across runs and
/// platforms with IEEE-754 doubles. Non-finite values (which JSON
/// cannot represent) are emitted as null.
void AppendJsonNumber(std::string* out, double value);
void AppendJsonNumber(std::string* out, uint64_t value);

/// A parsed JSON document — just enough structure for the observability
/// tests to round-trip traces and metric exports. Numbers are stored as
/// double; integers beyond 2^53 lose precision, which the exporters
/// never emit.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray.
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject.

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Recursive-descent parser for the JSON subset the exporters emit
/// (full RFC 8259 minus \uXXXX surrogate pairs, which are decoded as
/// replacement bytes). Returns InvalidArgument with an offset on
/// malformed input, including trailing garbage.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace hetkg::obs

#endif  // HETKG_OBS_JSON_H_
