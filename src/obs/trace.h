#ifndef HETKG_OBS_TRACE_H_
#define HETKG_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/serialize.h"
#include "common/status.h"

namespace hetkg::obs {

/// Options of one tracing session.
struct TraceOptions {
  /// Output file; Chrome trace-event JSON, loadable by Perfetto
  /// (ui.perfetto.dev) and chrome://tracing.
  std::string path;
  /// Events buffered per thread between drains. When a thread's ring
  /// fills, further events from that thread are dropped (and counted),
  /// never blocking the training hot path.
  size_t ring_capacity = 1 << 16;
};

/// Process-wide scoped-span tracer.
///
/// Design contract (DESIGN.md §8):
///   * OFF by default. The only cost of an instrumentation point while
///     disabled is one relaxed atomic load — no allocation, no lock, no
///     clock read — so trace-off runs are bit-identical to an
///     uninstrumented build.
///   * Each thread appends events to its own fixed-capacity ring buffer
///     (allocated lazily on that thread's first event of a session);
///     buffers are drained only on the scheduling thread, inside
///     Stop(). Instrumentation therefore never synchronizes worker
///     threads against each other, and — matching the metrics.h
///     determinism contract — nothing is ever *read* from inside a
///     ParallelFor region.
///   * Every event carries the wall-clock timestamp (`ts`, microseconds
///     since Start) and the most recently published simulated-cluster
///     timestamp (`args.sim_s`, seconds). Wall time explains where the
///     process spent real time; sim time lines events up with the
///     deterministic cost model the paper's figures are built on.
///
/// All methods are static: the session is process-global, like the
/// profilers of HET and DGL-KE. Start/Stop are NOT thread-safe against
/// each other — call them from the scheduling thread only.
class Tracer {
 public:
  /// Mirror invoked synchronously for every appended event — the crash
  /// flight recorder (obs/flight.h) hangs off this so a worker's final
  /// events survive a SIGKILL even though its rings die with it.
  /// Implementations must be safe to call from any tracing thread.
  class EventSink {
   public:
    virtual ~EventSink() = default;
    virtual void OnEvent(const char* name, const char* cat, char phase,
                         uint32_t tid, uint64_t ts_us, uint64_t dur_us,
                         double v1) = 0;
  };

  /// Begins a session. Fails with FailedPrecondition when one is
  /// already active and InvalidArgument on an empty path.
  static Status Start(const TraceOptions& options);

  /// Begins a ship-only session (proc-runtime workers, DESIGN.md §14):
  /// events buffer for DrainShipment() and Stop() discards instead of
  /// writing a file. Unlike Start(), an already-active session — which
  /// a forked worker inherits from its parent — is silently reset; the
  /// parent keeps the original, this process starts clean.
  static Status StartShipping(size_t ring_capacity);

  /// Serializes and clears every thread ring's buffered events (the
  /// session stays active, so tracing continues into the next
  /// shipment). Safe while disabled: writes an empty batch. The wire
  /// format is private to DrainShipment/AddRemoteEvents.
  static void DrainShipment(ByteWriter* out);

  /// Ingests one DrainShipment batch as events of remote process
  /// `pid`, whose Perfetto track group is labeled `process_name`.
  /// Each timestamp is rebased by `clock_offset_us` (remote clock
  /// minus local clock, from the coordinator's clock handshake);
  /// negative results clamp to 0. Repeated calls for one pid append;
  /// the events are written out with the local session's trace file.
  /// False on a malformed batch or when no session is active.
  static bool AddRemoteEvents(uint32_t pid, const std::string& process_name,
                              int64_t clock_offset_us, ByteReader* r);

  /// Installs (or, with nullptr, removes) the event mirror. The sink
  /// must outlive its installation; install/remove from the command
  /// thread while no other thread is emitting.
  static void SetEventSink(EventSink* sink);

  /// Ends the session: drains every thread's ring buffer, writes the
  /// JSON file, and disables tracing. Returns the write status.
  /// FailedPrecondition when no session is active.
  static Status Stop();

  /// True while a session is active. The disabled fast path of every
  /// instrumentation point.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Events dropped so far in this session because a ring was full.
  static uint64_t DroppedEvents();

  /// Publishes the current simulated-cluster time; subsequent events
  /// (from any thread) carry it as `args.sim_s`. Scheduling thread only.
  static void PublishSimSeconds(double seconds);

  /// Microseconds since Start (0 when disabled).
  static uint64_t NowMicros();

  // Low-level emitters; all no-ops when disabled. `name`, `cat`, and
  // arg keys must be string literals (or otherwise outlive the
  // session): only the pointer is buffered.
  static void Complete(const char* name, const char* cat, uint64_t ts_us,
                       uint64_t dur_us, const char* k1, double v1,
                       const char* k2, double v2);
  static void Instant(const char* name, const char* cat,
                      const char* k1 = nullptr, double v1 = 0.0,
                      const char* k2 = nullptr, double v2 = 0.0);
  static void Counter(const char* name, double value);

 private:
  friend class TraceSpan;
  static std::atomic<bool> enabled_;
};

/// RAII scoped span: records one Chrome "X" (complete) event covering
/// the scope's lifetime on the calling thread. Constructing while
/// tracing is disabled costs one relaxed atomic load and nothing else.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) : name_(name), cat_(cat) {
    if (!Tracer::Enabled()) return;
    active_ = true;
    start_us_ = Tracer::NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches up to two numeric args (rendered into `args` alongside
  /// sim_s). `key` must be a string literal.
  void Arg(const char* key, double value) {
    if (!active_) return;
    if (k1_ == nullptr) {
      k1_ = key;
      v1_ = value;
    } else {
      k2_ = key;
      v2_ = value;
    }
  }

  ~TraceSpan() {
    if (!active_) return;
    const uint64_t end_us = Tracer::NowMicros();
    Tracer::Complete(name_, cat_, start_us_,
                     end_us >= start_us_ ? end_us - start_us_ : 0, k1_, v1_,
                     k2_, v2_);
  }

 private:
  const char* name_;
  const char* cat_;
  uint64_t start_us_ = 0;
  bool active_ = false;
  const char* k1_ = nullptr;
  double v1_ = 0.0;
  const char* k2_ = nullptr;
  double v2_ = 0.0;
};

/// Engine-side ownership of a tracing session: starts one from the
/// given path when no session is active yet (so a binary that already
/// called Tracer::Start keeps control of its own session), and
/// guarantees the owned session is stopped — and its file written — on
/// every exit path, including early error returns. Call Finish() to
/// observe the write status on the happy path.
class TracerLease {
 public:
  TracerLease() = default;
  explicit TracerLease(const TraceOptions& options) {
    if (options.path.empty() || Tracer::Enabled()) return;
    owns_ = Tracer::Start(options).ok();
  }

  TracerLease(const TracerLease&) = delete;
  TracerLease& operator=(const TracerLease&) = delete;

  ~TracerLease() { (void)Finish(); }

  bool owns() const { return owns_; }

  /// Stops the owned session (writing the trace file) and returns the
  /// write status. OK and idempotent when this lease owns nothing.
  Status Finish() {
    if (!owns_) return Status::OK();
    owns_ = false;
    return Tracer::Stop();
  }

 private:
  bool owns_ = false;
};

#define HETKG_OBS_CONCAT2(a, b) a##b
#define HETKG_OBS_CONCAT(a, b) HETKG_OBS_CONCAT2(a, b)

/// Anonymous scoped span covering the rest of the enclosing block.
#define HETKG_TRACE_SPAN(name, cat) \
  ::hetkg::obs::TraceSpan HETKG_OBS_CONCAT(_hetkg_trace_span_, \
                                           __COUNTER__)(name, cat)

}  // namespace hetkg::obs

#endif  // HETKG_OBS_TRACE_H_
