#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <iterator>
#include <memory>
#include <mutex>
#include <set>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace hetkg::obs {

namespace {

/// One buffered trace event. Strings are unowned pointers to literals.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'X';  // 'X' complete, 'i' instant, 'C' counter.
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;  // 'X' only.
  double sim_s = 0.0;
  const char* k1 = nullptr;
  double v1 = 0.0;
  const char* k2 = nullptr;
  double v2 = 0.0;
};

/// A remote-process event (shipped over the proc runtime's kObsData /
/// flight-recorder harvest): same shape as Event but owning its
/// strings, since the literals of another process mean nothing here.
struct OwnedEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  double sim_s = 0.0;
  bool has_k1 = false;
  std::string k1;
  double v1 = 0.0;
  bool has_k2 = false;
  std::string k2;
  double v2 = 0.0;
};

/// One remote process's track group in the merged trace.
struct RemoteTrack {
  uint32_t pid = 0;
  std::string process_name;
  std::vector<OwnedEvent> events;
};

/// Fixed-capacity event ring of one thread. Appends take the buffer's
/// own mutex (uncontended except against the final drain), so the
/// tracer is safe under TSan without any cross-thread ordering games.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t id, size_t capacity) : tid(id) {
    events.reserve(capacity);
    this->capacity = capacity;
  }

  std::mutex mu;
  uint32_t tid;
  size_t capacity;
  std::vector<Event> events;
  uint64_t dropped = 0;
};

using Clock = std::chrono::steady_clock;

/// Session state. One global instance, reused (never freed) across
/// Start/Stop cycles so a worker thread holding a stale buffer pointer
/// can never dangle.
struct TracerState {
  std::mutex mu;  // Guards buffers/options/generation/session fields.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<RemoteTrack> remote;  // Merged-in remote process tracks.
  TraceOptions options;
  bool ship_only = false;  // StartShipping session: Stop() writes no file.
  Clock::time_point start_time{};
  std::atomic<uint64_t> generation{0};
  std::atomic<double> sim_seconds{0.0};
  std::atomic<Tracer::EventSink*> sink{nullptr};
  std::atomic<bool> drop_warned{false};  // One stderr warning a session.
};

TracerState& State() {
  static TracerState* state = new TracerState();  // Immortal.
  return *state;
}

/// Per-thread cache of this thread's buffer for the current session.
struct ThreadSlot {
  uint64_t generation = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local ThreadSlot t_slot;

ThreadBuffer* LocalBuffer() {
  TracerState& state = State();
  const uint64_t gen = state.generation.load(std::memory_order_acquire);
  if (t_slot.generation == gen && t_slot.buffer != nullptr) {
    return t_slot.buffer;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  // Re-check under the lock: Stop() may have ended the session while we
  // were acquiring it.
  if (!Tracer::Enabled()) return nullptr;
  auto buffer = std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(state.buffers.size()),
      state.options.ring_capacity);
  t_slot.generation = gen;
  t_slot.buffer = buffer.get();
  state.buffers.push_back(std::move(buffer));
  return t_slot.buffer;
}

void Append(const Event& event) {
  ThreadBuffer* buffer = LocalBuffer();
  if (buffer == nullptr) return;
  Event e = event;
  e.tid = buffer->tid;
  // The flight recorder mirrors every event, including ones the ring
  // then drops: it keeps the newest events, the ring the oldest.
  if (Tracer::EventSink* sink =
          State().sink.load(std::memory_order_acquire)) {
    sink->OnEvent(e.name, e.cat, e.phase, e.tid, e.ts_us, e.dur_us, e.v1);
  }
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= buffer->capacity) {
    ++buffer->dropped;
    if (!State().drop_warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "hetkg: trace ring full; dropping further events "
                   "(counted as trace.dropped_events)\n");
    }
    return;
  }
  buffer->events.push_back(e);
}

/// Borrowed view over either event representation, plus the process id
/// it renders under (local events are pid 1; remote tracks keep the
/// pid AddRemoteEvents assigned).
struct EventView {
  std::string_view name;
  std::string_view cat;
  char phase = 'X';
  uint32_t pid = 1;
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  double sim_s = 0.0;
  bool has_k1 = false;
  std::string_view k1;
  double v1 = 0.0;
  bool has_k2 = false;
  std::string_view k2;
  double v2 = 0.0;
};

EventView ViewOf(const Event& e) {
  EventView v;
  v.name = e.name;
  v.cat = e.cat;
  v.phase = e.phase;
  v.pid = 1;
  v.tid = e.tid;
  v.ts_us = e.ts_us;
  v.dur_us = e.dur_us;
  v.sim_s = e.sim_s;
  v.has_k1 = e.k1 != nullptr;
  if (v.has_k1) v.k1 = e.k1;
  v.v1 = e.v1;
  v.has_k2 = e.k2 != nullptr;
  if (v.has_k2) v.k2 = e.k2;
  v.v2 = e.v2;
  return v;
}

EventView ViewOf(const OwnedEvent& e, uint32_t pid) {
  EventView v;
  v.name = e.name;
  v.cat = e.cat;
  v.phase = e.phase;
  v.pid = pid;
  v.tid = e.tid;
  v.ts_us = e.ts_us;
  v.dur_us = e.dur_us;
  v.sim_s = e.sim_s;
  v.has_k1 = e.has_k1;
  v.k1 = e.k1;
  v.v1 = e.v1;
  v.has_k2 = e.has_k2;
  v.k2 = e.k2;
  v.v2 = e.v2;
  return v;
}

void AppendEventJson(std::string* out, const EventView& e) {
  out->append("{\"name\":");
  AppendJsonString(out, e.name);
  out->append(",\"cat\":");
  AppendJsonString(out, e.cat);
  out->append(",\"ph\":\"");
  out->push_back(e.phase);
  out->append("\",\"pid\":");
  AppendJsonNumber(out, static_cast<uint64_t>(e.pid));
  out->append(",\"tid\":");
  AppendJsonNumber(out, static_cast<uint64_t>(e.tid));
  out->append(",\"ts\":");
  AppendJsonNumber(out, e.ts_us);
  if (e.phase == 'X') {
    out->append(",\"dur\":");
    AppendJsonNumber(out, e.dur_us);
  }
  if (e.phase == 'i') {
    out->append(",\"s\":\"t\"");  // Thread-scoped instant.
  }
  out->append(",\"args\":{");
  if (e.phase == 'C') {
    // Counter tracks plot args.value over time.
    out->append("\"value\":");
    AppendJsonNumber(out, e.v1);
    out->append(",");
  } else {
    if (e.has_k1) {
      AppendJsonString(out, e.k1);
      out->append(":");
      AppendJsonNumber(out, e.v1);
      out->append(",");
    }
    if (e.has_k2) {
      AppendJsonString(out, e.k2);
      out->append(":");
      AppendJsonNumber(out, e.v2);
      out->append(",");
    }
  }
  out->append("\"sim_s\":");
  AppendJsonNumber(out, e.sim_s);
  out->append("}}");
}

/// Emits a Perfetto metadata row ({"ph":"M"}) naming a process or
/// thread track.
void AppendMetadataJson(std::string* out, const char* what, uint32_t pid,
                        uint32_t tid, bool with_tid,
                        std::string_view label) {
  out->append("{\"name\":\"");
  out->append(what);
  out->append("\",\"ph\":\"M\",\"pid\":");
  AppendJsonNumber(out, static_cast<uint64_t>(pid));
  if (with_tid) {
    out->append(",\"tid\":");
    AppendJsonNumber(out, static_cast<uint64_t>(tid));
  }
  out->append(",\"args\":{\"name\":");
  AppendJsonString(out, label);
  out->append("}}");
}

Status WriteTraceFile(TracerState& state) {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  auto emit = [&](const EventView& e) {
    if (!first) out.append(",\n");
    first = false;
    AppendEventJson(&out, e);
  };
  auto emit_meta = [&](const char* what, uint32_t pid, uint32_t tid,
                       bool with_tid, std::string_view label) {
    if (!first) out.append(",\n");
    first = false;
    AppendMetadataJson(&out, what, pid, tid, with_tid, label);
  };
  // Process/thread-name metadata rows so Perfetto labels the track
  // groups. The local process only gets an explicit name when remote
  // tracks exist to distinguish it from (i.e. a merged proc-runtime
  // trace); a single-process trace keeps the PR-3 layout untouched.
  if (!state.remote.empty()) {
    emit_meta("process_name", 1, 0, false, "coordinator");
  }
  uint64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::string label = buffer->tid == 0
                            ? std::string("scheduler")
                            : "worker-" + std::to_string(buffer->tid);
    emit_meta("thread_name", 1, buffer->tid, true, label);
    dropped += buffer->dropped;
  }
  for (const RemoteTrack& track : state.remote) {
    emit_meta("process_name", track.pid, 0, false, track.process_name);
    std::set<uint32_t> tids;
    for (const OwnedEvent& e : track.events) tids.insert(e.tid);
    for (const uint32_t tid : tids) {
      std::string label = tid == 0 ? std::string("scheduler")
                                   : "worker-" + std::to_string(tid);
      emit_meta("thread_name", track.pid, tid, true, label);
    }
  }
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const Event& e : buffer->events) {
      emit(ViewOf(e));
    }
  }
  for (const RemoteTrack& track : state.remote) {
    for (const OwnedEvent& e : track.events) {
      emit(ViewOf(e, track.pid));
    }
  }
  if (dropped > 0) {
    Event note;
    note.name = "trace.dropped_events";
    note.cat = "obs";
    note.phase = 'C';
    note.tid = 0;
    note.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - state.start_time)
                     .count();
    note.v1 = static_cast<double>(dropped);
    emit(ViewOf(note));
  }
  out.append("\n]}\n");

  std::FILE* f = std::fopen(state.options.path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + state.options.path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::IoError("short write to trace file: " +
                           state.options.path);
  }
  return Status::OK();
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Status Tracer::Start(const TraceOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("trace path must not be empty");
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("trace ring capacity must be positive");
  }
  if (Enabled()) {
    return Status::FailedPrecondition("a tracing session is already active");
  }
  TracerState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.clear();
    state.remote.clear();
    state.options = options;
    state.ship_only = false;
    state.start_time = Clock::now();
    state.sim_seconds.store(0.0, std::memory_order_relaxed);
    state.drop_warned.store(false, std::memory_order_relaxed);
    state.generation.fetch_add(1, std::memory_order_release);
  }
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Tracer::StartShipping(size_t ring_capacity) {
  if (ring_capacity == 0) {
    return Status::InvalidArgument("trace ring capacity must be positive");
  }
  // A forked worker inherits the parent's live session in its address
  // space; discard that copy (the parent's own is untouched) so this
  // process buffers raw events for shipment instead of writing files.
  enabled_.store(false, std::memory_order_release);
  TracerState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.clear();
    state.remote.clear();
    state.options = TraceOptions{};
    state.options.ring_capacity = ring_capacity;
    state.ship_only = true;
    state.start_time = Clock::now();
    state.sim_seconds.store(0.0, std::memory_order_relaxed);
    state.drop_warned.store(false, std::memory_order_relaxed);
    state.generation.fetch_add(1, std::memory_order_release);
  }
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Tracer::Stop() {
  if (!Enabled()) {
    return Status::FailedPrecondition("no tracing session is active");
  }
  enabled_.store(false, std::memory_order_release);
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const Status status =
      state.ship_only ? Status::OK() : WriteTraceFile(state);
  state.ship_only = false;
  state.buffers.clear();
  state.remote.clear();
  return status;
}

void Tracer::SetEventSink(EventSink* sink) {
  State().sink.store(sink, std::memory_order_release);
}

// Shipment wire format (one batch): U64 event count, then per event
// U8 phase, U32 tid, U64 ts_us, U64 dur_us, F64 sim_s, Str name,
// Str cat, U8 argmask (bit0: k1 present, bit1: k2), F64 v1, F64 v2,
// then the present arg-key strings. Versioned implicitly by the RPC
// protocol that carries it (net/rpc.h).

void Tracer::DrainShipment(ByteWriter* out) {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t count = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    count += buffer->events.size();
  }
  out->U64(count);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const Event& e : buffer->events) {
      out->U8(static_cast<uint8_t>(e.phase));
      out->U32(e.tid);
      out->U64(e.ts_us);
      out->U64(e.dur_us);
      out->F64(e.sim_s);
      out->Str(e.name);
      out->Str(e.cat);
      const uint8_t argmask = static_cast<uint8_t>(
          (e.k1 != nullptr ? 1 : 0) | (e.k2 != nullptr ? 2 : 0));
      out->U8(argmask);
      out->F64(e.v1);
      out->F64(e.v2);
      if (e.k1 != nullptr) out->Str(e.k1);
      if (e.k2 != nullptr) out->Str(e.k2);
    }
    buffer->events.clear();
  }
}

bool Tracer::AddRemoteEvents(uint32_t pid, const std::string& process_name,
                             int64_t clock_offset_us, ByteReader* r) {
  if (!Enabled()) return false;
  const uint64_t count = r->U64();
  if (!r->ok()) return false;
  std::vector<OwnedEvent> events;
  for (uint64_t i = 0; i < count; ++i) {
    OwnedEvent e;
    e.phase = static_cast<char>(r->U8());
    e.tid = r->U32();
    const uint64_t raw_ts = r->U64();
    e.dur_us = r->U64();
    e.sim_s = r->F64();
    e.name = r->Str();
    e.cat = r->Str();
    const uint8_t argmask = r->U8();
    e.v1 = r->F64();
    e.v2 = r->F64();
    if ((argmask & 1) != 0) {
      e.has_k1 = true;
      e.k1 = r->Str();
    }
    if ((argmask & 2) != 0) {
      e.has_k2 = true;
      e.k2 = r->Str();
    }
    if (!r->ok()) return false;
    // Rebase the remote clock onto this session's; clamp below zero
    // (sub-RTT handshake error can place an early event before Start).
    const int64_t rebased =
        static_cast<int64_t>(raw_ts) - clock_offset_us;
    e.ts_us = rebased < 0 ? 0 : static_cast<uint64_t>(rebased);
    events.push_back(std::move(e));
  }
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (RemoteTrack& track : state.remote) {
    if (track.pid == pid) {
      track.process_name = process_name;
      track.events.insert(track.events.end(),
                          std::make_move_iterator(events.begin()),
                          std::make_move_iterator(events.end()));
      return true;
    }
  }
  RemoteTrack track;
  track.pid = pid;
  track.process_name = process_name;
  track.events = std::move(events);
  state.remote.push_back(std::move(track));
  return true;
}

uint64_t Tracer::DroppedEvents() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

void Tracer::PublishSimSeconds(double seconds) {
  if (!Enabled()) return;
  State().sim_seconds.store(seconds, std::memory_order_relaxed);
}

uint64_t Tracer::NowMicros() {
  if (!Enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - State().start_time)
      .count();
}

void Tracer::Complete(const char* name, const char* cat, uint64_t ts_us,
                      uint64_t dur_us, const char* k1, double v1,
                      const char* k2, double v2) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  Append(e);
}

void Tracer::Instant(const char* name, const char* cat, const char* k1,
                     double v1, const char* k2, double v2) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = NowMicros();
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  Append(e);
}

void Tracer::Counter(const char* name, double value) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = "obs";
  e.phase = 'C';
  e.ts_us = NowMicros();
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.v1 = value;
  Append(e);
}

}  // namespace hetkg::obs
