#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace hetkg::obs {

namespace {

/// One buffered trace event. Strings are unowned pointers to literals.
struct Event {
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'X';  // 'X' complete, 'i' instant, 'C' counter.
  uint32_t tid = 0;
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;  // 'X' only.
  double sim_s = 0.0;
  const char* k1 = nullptr;
  double v1 = 0.0;
  const char* k2 = nullptr;
  double v2 = 0.0;
};

/// Fixed-capacity event ring of one thread. Appends take the buffer's
/// own mutex (uncontended except against the final drain), so the
/// tracer is safe under TSan without any cross-thread ordering games.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t id, size_t capacity) : tid(id) {
    events.reserve(capacity);
    this->capacity = capacity;
  }

  std::mutex mu;
  uint32_t tid;
  size_t capacity;
  std::vector<Event> events;
  uint64_t dropped = 0;
};

using Clock = std::chrono::steady_clock;

/// Session state. One global instance, reused (never freed) across
/// Start/Stop cycles so a worker thread holding a stale buffer pointer
/// can never dangle.
struct TracerState {
  std::mutex mu;  // Guards buffers/options/generation/session fields.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  TraceOptions options;
  Clock::time_point start_time{};
  std::atomic<uint64_t> generation{0};
  std::atomic<double> sim_seconds{0.0};
};

TracerState& State() {
  static TracerState* state = new TracerState();  // Immortal.
  return *state;
}

/// Per-thread cache of this thread's buffer for the current session.
struct ThreadSlot {
  uint64_t generation = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local ThreadSlot t_slot;

ThreadBuffer* LocalBuffer() {
  TracerState& state = State();
  const uint64_t gen = state.generation.load(std::memory_order_acquire);
  if (t_slot.generation == gen && t_slot.buffer != nullptr) {
    return t_slot.buffer;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  // Re-check under the lock: Stop() may have ended the session while we
  // were acquiring it.
  if (!Tracer::Enabled()) return nullptr;
  auto buffer = std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(state.buffers.size()),
      state.options.ring_capacity);
  t_slot.generation = gen;
  t_slot.buffer = buffer.get();
  state.buffers.push_back(std::move(buffer));
  return t_slot.buffer;
}

void Append(const Event& event) {
  ThreadBuffer* buffer = LocalBuffer();
  if (buffer == nullptr) return;
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= buffer->capacity) {
    ++buffer->dropped;
    return;
  }
  Event e = event;
  e.tid = buffer->tid;
  buffer->events.push_back(e);
}

void AppendEventJson(std::string* out, const Event& e) {
  out->append("{\"name\":");
  AppendJsonString(out, e.name);
  out->append(",\"cat\":");
  AppendJsonString(out, e.cat);
  out->append(",\"ph\":\"");
  out->push_back(e.phase);
  out->append("\",\"pid\":1,\"tid\":");
  AppendJsonNumber(out, static_cast<uint64_t>(e.tid));
  out->append(",\"ts\":");
  AppendJsonNumber(out, e.ts_us);
  if (e.phase == 'X') {
    out->append(",\"dur\":");
    AppendJsonNumber(out, e.dur_us);
  }
  if (e.phase == 'i') {
    out->append(",\"s\":\"t\"");  // Thread-scoped instant.
  }
  out->append(",\"args\":{");
  if (e.phase == 'C') {
    // Counter tracks plot args.value over time.
    out->append("\"value\":");
    AppendJsonNumber(out, e.v1);
    out->append(",");
  } else {
    if (e.k1 != nullptr) {
      AppendJsonString(out, e.k1);
      out->append(":");
      AppendJsonNumber(out, e.v1);
      out->append(",");
    }
    if (e.k2 != nullptr) {
      AppendJsonString(out, e.k2);
      out->append(":");
      AppendJsonNumber(out, e.v2);
      out->append(",");
    }
  }
  out->append("\"sim_s\":");
  AppendJsonNumber(out, e.sim_s);
  out->append("}}");
}

Status WriteTraceFile(TracerState& state) {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  auto emit = [&](const Event& e) {
    if (!first) out.append(",\n");
    first = false;
    AppendEventJson(&out, e);
  };
  // Thread-name metadata rows so Perfetto labels the tracks.
  uint64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::string label = buffer->tid == 0
                            ? std::string("scheduler")
                            : "worker-" + std::to_string(buffer->tid);
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    AppendJsonNumber(&out, static_cast<uint64_t>(buffer->tid));
    out.append(",\"args\":{\"name\":");
    AppendJsonString(&out, label);
    out.append("}}");
    dropped += buffer->dropped;
  }
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const Event& e : buffer->events) {
      emit(e);
    }
  }
  if (dropped > 0) {
    Event note;
    note.name = "obs.dropped_events";
    note.cat = "obs";
    note.phase = 'C';
    note.tid = 0;
    note.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - state.start_time)
                     .count();
    note.v1 = static_cast<double>(dropped);
    emit(note);
  }
  out.append("\n]}\n");

  std::FILE* f = std::fopen(state.options.path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + state.options.path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed) {
    return Status::IoError("short write to trace file: " +
                           state.options.path);
  }
  return Status::OK();
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Status Tracer::Start(const TraceOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("trace path must not be empty");
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("trace ring capacity must be positive");
  }
  if (Enabled()) {
    return Status::FailedPrecondition("a tracing session is already active");
  }
  TracerState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.clear();
    state.options = options;
    state.start_time = Clock::now();
    state.sim_seconds.store(0.0, std::memory_order_relaxed);
    state.generation.fetch_add(1, std::memory_order_release);
  }
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Tracer::Stop() {
  if (!Enabled()) {
    return Status::FailedPrecondition("no tracing session is active");
  }
  enabled_.store(false, std::memory_order_release);
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const Status status = WriteTraceFile(state);
  state.buffers.clear();
  return status;
}

uint64_t Tracer::DroppedEvents() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

void Tracer::PublishSimSeconds(double seconds) {
  if (!Enabled()) return;
  State().sim_seconds.store(seconds, std::memory_order_relaxed);
}

uint64_t Tracer::NowMicros() {
  if (!Enabled()) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - State().start_time)
      .count();
}

void Tracer::Complete(const char* name, const char* cat, uint64_t ts_us,
                      uint64_t dur_us, const char* k1, double v1,
                      const char* k2, double v2) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  Append(e);
}

void Tracer::Instant(const char* name, const char* cat, const char* k1,
                     double v1, const char* k2, double v2) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = NowMicros();
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.k1 = k1;
  e.v1 = v1;
  e.k2 = k2;
  e.v2 = v2;
  Append(e);
}

void Tracer::Counter(const char* name, double value) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.cat = "obs";
  e.phase = 'C';
  e.ts_us = NowMicros();
  e.sim_s = State().sim_seconds.load(std::memory_order_relaxed);
  e.v1 = value;
  Append(e);
}

}  // namespace hetkg::obs
