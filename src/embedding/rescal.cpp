#include "embedding/rescal.h"

#include <cassert>

namespace hetkg::embedding {

double Rescal::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  const size_t d = h.size();
  assert(r.size() == d * d && t.size() == d);
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double row = 0.0;
    const float* m = r.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      row += static_cast<double>(m[j]) * t[j];
    }
    acc += static_cast<double>(h[i]) * row;
  }
  return acc;
}

void Rescal::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  const size_t d = h.size();
  assert(r.size() == d * d && gr.size() == d * d);
  const float u = static_cast<float>(upstream);
  for (size_t i = 0; i < d; ++i) {
    const float* m = r.data() + i * d;
    float* gm = gr.data() + i * d;
    double mt = 0.0;  // (M t)_i
    for (size_t j = 0; j < d; ++j) {
      mt += static_cast<double>(m[j]) * t[j];
      gm[j] += u * h[i] * t[j];
      gt[j] += u * h[i] * m[j];
    }
    gh[i] += u * static_cast<float>(mt);
  }
}

}  // namespace hetkg::embedding
