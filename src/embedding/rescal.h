#ifndef HETKG_EMBEDDING_RESCAL_H_
#define HETKG_EMBEDDING_RESCAL_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// RESCAL (Nickel et al., 2011): each relation is a full d x d matrix M
/// stored row-major in a relation row of width d^2.
///   score(h, r, t) = h^T M t = sum_ij h_i M_ij t_j
/// The most expressive (and most expensive) of the semantic-matching
/// family; included as the related-work extension the paper discusses.
class Rescal : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kRescal; }

  size_t RelationDim(size_t entity_dim) const override {
    return entity_dim * entity_dim;
  }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    const uint64_t d = entity_dim;
    return 8 * d * d;
  }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_RESCAL_H_
