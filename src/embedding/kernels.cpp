#include "embedding/kernels.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"

// The AVX2 kernels are compiled with per-function target attributes so
// the library still builds for (and runs on) baseline x86-64; dispatch
// picks them only when the CPU reports AVX2. Bit-identity with the
// portable lanes relies on every vector op being IEEE-exact (add, sub,
// mul, div, sqrt, cvt, and bitwise abs/sign games) and on FMA
// contraction being disabled project-wide (-ffp-contract=off): a fused
// multiply-add rounds once where the portable path rounds twice.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HETKG_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace hetkg::embedding::kernels {

// ======================================================================
// Dispatch
// ======================================================================

namespace {

std::atomic<int> g_path{-1};  // -1 = not yet resolved.
std::atomic<int> g_mode{static_cast<int>(KernelMode::kAuto)};
std::once_flag g_log_once;

// HETKG_KERNEL is read exactly ONCE per dispatch resolution and the
// observed value cached here, so the startup log always reports the
// env string that actually steered the decision — never a second read
// that could disagree if the environment changed in between.
std::mutex g_env_mu;
std::string g_env_snapshot;
bool g_env_snapshot_set = false;

/// The single environment read feeding one dispatch resolution.
KernelMode SnapshotEnvOverride(KernelMode mode) {
  const char* env = std::getenv("HETKG_KERNEL");
  {
    std::lock_guard<std::mutex> lock(g_env_mu);
    g_env_snapshot_set = env != nullptr && *env != '\0';
    g_env_snapshot = g_env_snapshot_set ? env : "";
  }
  if (mode == KernelMode::kAuto && env != nullptr && *env != '\0') {
    if (const Result<KernelMode> parsed = ParseKernelMode(env); parsed.ok()) {
      mode = *parsed;
    }
  }
  return mode;
}

/// Pure mode -> path policy (no environment involved).
KernelPath PathForMode(KernelMode mode) {
  if (mode == KernelMode::kScalar) return KernelPath::kScalar;
#if HETKG_KERNELS_X86
  if (DetectCpuFeatures().avx2) return KernelPath::kAvx2;
#endif
  return KernelPath::kPortableVector;
}

}  // namespace

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if HETKG_KERNELS_X86
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.f16c = __builtin_cpu_supports("f16c") != 0;
#endif
  return f;
}

std::string CpuFeatures::ToString() const {
  std::string s;
  if (avx2) s += "avx2";
  if (fma) s += s.empty() ? "fma" : "+fma";
  if (f16c) s += s.empty() ? "f16c" : "+f16c";
  return s.empty() ? "none" : s;
}

Result<KernelMode> ParseKernelMode(std::string_view name) {
  if (name == "auto") return KernelMode::kAuto;
  if (name == "scalar") return KernelMode::kScalar;
  if (name == "vector") return KernelMode::kVector;
  return Status::InvalidArgument("unknown kernel mode: " + std::string(name) +
                                 " (want auto | scalar | vector)");
}

std::string_view KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kVector:
      return "vector";
  }
  return "unknown";
}

std::string_view KernelPathName(KernelPath path) {
  switch (path) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kPortableVector:
      return "portable-vector";
    case KernelPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

KernelPath ResolveKernelPath(KernelMode mode) {
  if (mode == KernelMode::kAuto) {
    if (const char* env = std::getenv("HETKG_KERNEL");
        env != nullptr && *env != '\0') {
      if (const Result<KernelMode> parsed = ParseKernelMode(env);
          parsed.ok()) {
        mode = *parsed;
      }
    }
  }
  return PathForMode(mode);
}

void SetKernelMode(KernelMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  g_path.store(static_cast<int>(PathForMode(SnapshotEnvOverride(mode))),
               std::memory_order_relaxed);
}

KernelMode ActiveMode() {
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

KernelPath ActivePath() {
  int p = g_path.load(std::memory_order_relaxed);
  if (p < 0) {
    p = static_cast<int>(PathForMode(SnapshotEnvOverride(KernelMode::kAuto)));
    g_path.store(p, std::memory_order_relaxed);
  }
  return static_cast<KernelPath>(p);
}

bool UseVectorPath() { return ActivePath() != KernelPath::kScalar; }

double DispatchGauge() { return static_cast<double>(ActivePath()); }

std::string DispatchEnvSnapshot() {
  std::lock_guard<std::mutex> lock(g_env_mu);
  return g_env_snapshot_set ? g_env_snapshot : "<unset>";
}

void LogDispatchOnce() {
  // Report the SAME env snapshot that steered the dispatch decision —
  // a second getenv here could disagree with the resolution if the
  // environment changed between the two reads.
  std::call_once(g_log_once, [] {
    HETKG_LOG(Info) << "kernel dispatch: path=" << KernelPathName(ActivePath())
                    << " (mode=" << KernelModeName(ActiveMode())
                    << ", cpu features: " << DetectCpuFeatures().ToString()
                    << ", HETKG_KERNEL=" << DispatchEnvSnapshot() << ")";
  });
}

// ======================================================================
// Primitives
// ======================================================================
//
// Naming: *Full takes raw (h, r, t) rows; *Hoisted takes the
// precomputed double-precision query intermediate instead of (h, r).
// Every reduction accumulates element j into lane j % kLaneWidth and
// merges through TreeReduce8, so the Full/Hoisted/portable/AVX2 forms
// of one expression are interchangeable at the bit level.

namespace {

// ---- TransE ----------------------------------------------------------
// Canonical element term: e_j = (double(h_j) + r_j) - t_j.
// Score: -sum |e| (L1) or -sqrt(sum e^2) (L2).

void TransEHoist(std::span<const float> h, std::span<const float> r,
                 std::vector<double>* hr) {
  const size_t n = h.size();
  if (hr->size() < n) hr->resize(n);
  const float* __restrict__ hp = h.data();
  const float* __restrict__ rp = r.data();
  double* __restrict__ out = hr->data();
  for (size_t j = 0; j < n; ++j) {
    out[j] = static_cast<double>(hp[j]) + rp[j];
  }
}

double TransEReduceFull(int p, const float* __restrict__ h,
                        const float* __restrict__ r,
                        const float* __restrict__ t, size_t n) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < n; ++j) {
    const double e = (static_cast<double>(h[j]) + r[j]) - t[j];
    lane[j % kLaneWidth] += p == 1 ? std::fabs(e) : e * e;
  }
  return TreeReduce8(lane);
}

double TransEReduceHoisted(int p, const double* __restrict__ hr,
                           const float* __restrict__ t, size_t n) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < n; ++j) {
    const double e = hr[j] - t[j];
    lane[j % kLaneWidth] += p == 1 ? std::fabs(e) : e * e;
  }
  return TreeReduce8(lane);
}

// Gradient application; coeff = -upstream (L1, multiplied by sign(e))
// or -upstream/||e|| (L2, multiplied by e). The three updates run in
// the same per-element order as the scalar API so aliased rows
// (self-loop triples where gh and gt are the same row) stay identical.
void TransEApplyFull(int p, double coeff, const float* h, const float* r,
                     const float* t, float* gh, float* gr, float* gt,
                     size_t n) {
  for (size_t j = 0; j < n; ++j) {
    const double e = (static_cast<double>(h[j]) + r[j]) - t[j];
    const double v = p == 1 ? (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) : e;
    const float g = static_cast<float>(coeff * v);
    gh[j] += g;
    gr[j] += g;
    gt[j] -= g;
  }
}

void TransEApplyHoisted(int p, double coeff, const double* hr, const float* t,
                        float* gh, float* gr, float* gt, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    const double e = hr[j] - t[j];
    const double v = p == 1 ? (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) : e;
    const float g = static_cast<float>(coeff * v);
    gh[j] += g;
    gr[j] += g;
    gt[j] -= g;
  }
}

#if HETKG_KERNELS_X86

__attribute__((target("avx2"))) inline __m256d CvtLo(__m256 f) {
  return _mm256_cvtps_pd(_mm256_castps256_ps128(f));
}
__attribute__((target("avx2"))) inline __m256d CvtHi(__m256 f) {
  return _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1));
}

__attribute__((target("avx2"))) double TransEReduceFullAvx2(
    int p, const float* h, const float* r, const float* t, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 hf = _mm256_loadu_ps(h + j);
    const __m256 rf = _mm256_loadu_ps(r + j);
    const __m256 tf = _mm256_loadu_ps(t + j);
    const __m256d e0 =
        _mm256_sub_pd(_mm256_add_pd(CvtLo(hf), CvtLo(rf)), CvtLo(tf));
    const __m256d e1 =
        _mm256_sub_pd(_mm256_add_pd(CvtHi(hf), CvtHi(rf)), CvtHi(tf));
    if (p == 1) {
      acc0 = _mm256_add_pd(acc0, _mm256_and_pd(e0, abs_mask));
      acc1 = _mm256_add_pd(acc1, _mm256_and_pd(e1, abs_mask));
    } else {
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(e0, e0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(e1, e1));
    }
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < n; ++j, ++k) {
    const double e = (static_cast<double>(h[j]) + r[j]) - t[j];
    lane[k] += p == 1 ? std::fabs(e) : e * e;
  }
  return TreeReduce8(lane);
}

__attribute__((target("avx2"))) double TransEReduceHoistedAvx2(
    int p, const double* hr, const float* t, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 tf = _mm256_loadu_ps(t + j);
    const __m256d e0 = _mm256_sub_pd(_mm256_loadu_pd(hr + j), CvtLo(tf));
    const __m256d e1 = _mm256_sub_pd(_mm256_loadu_pd(hr + j + 4), CvtHi(tf));
    if (p == 1) {
      acc0 = _mm256_add_pd(acc0, _mm256_and_pd(e0, abs_mask));
      acc1 = _mm256_add_pd(acc1, _mm256_and_pd(e1, abs_mask));
    } else {
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(e0, e0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(e1, e1));
    }
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < n; ++j, ++k) {
    const double e = hr[j] - t[j];
    lane[k] += p == 1 ? std::fabs(e) : e * e;
  }
  return TreeReduce8(lane);
}

// sign(e) as (e > 0) - (e < 0) built from compare masks; multiplying by
// the exact constants {1.0, -1.0, 0.0} matches the scalar branches.
__attribute__((target("avx2"))) inline __m256d SignPd(__m256d e) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d pos =
      _mm256_and_pd(_mm256_cmp_pd(e, zero, _CMP_GT_OQ), one);
  const __m256d neg =
      _mm256_and_pd(_mm256_cmp_pd(zero, e, _CMP_GT_OQ), one);
  return _mm256_sub_pd(pos, neg);
}

__attribute__((target("avx2"))) void TransEApplyAvx2(
    int p, double coeff, const double* hr_or_null, const float* h,
    const float* r, const float* t, float* gh, float* gr, float* gt,
    size_t n) {
  const __m256d coeffv = _mm256_set1_pd(coeff);
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 tf = _mm256_loadu_ps(t + j);
    __m256d e0, e1;
    if (hr_or_null != nullptr) {
      e0 = _mm256_sub_pd(_mm256_loadu_pd(hr_or_null + j), CvtLo(tf));
      e1 = _mm256_sub_pd(_mm256_loadu_pd(hr_or_null + j + 4), CvtHi(tf));
    } else {
      const __m256 hf = _mm256_loadu_ps(h + j);
      const __m256 rf = _mm256_loadu_ps(r + j);
      e0 = _mm256_sub_pd(_mm256_add_pd(CvtLo(hf), CvtLo(rf)), CvtLo(tf));
      e1 = _mm256_sub_pd(_mm256_add_pd(CvtHi(hf), CvtHi(rf)), CvtHi(tf));
    }
    const __m256d v0 = p == 1 ? SignPd(e0) : e0;
    const __m256d v1 = p == 1 ? SignPd(e1) : e1;
    const __m128 g0 = _mm256_cvtpd_ps(_mm256_mul_pd(coeffv, v0));
    const __m128 g1 = _mm256_cvtpd_ps(_mm256_mul_pd(coeffv, v1));
    const __m256 g8 = _mm256_set_m128(g1, g0);
    _mm256_storeu_ps(gh + j, _mm256_add_ps(_mm256_loadu_ps(gh + j), g8));
    _mm256_storeu_ps(gr + j, _mm256_add_ps(_mm256_loadu_ps(gr + j), g8));
    _mm256_storeu_ps(gt + j, _mm256_sub_ps(_mm256_loadu_ps(gt + j), g8));
  }
  for (; j < n; ++j) {
    const double e = hr_or_null != nullptr
                         ? hr_or_null[j] - t[j]
                         : (static_cast<double>(h[j]) + r[j]) - t[j];
    const double v = p == 1 ? (e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0)) : e;
    const float g = static_cast<float>(coeff * v);
    gh[j] += g;
    gr[j] += g;
    gt[j] -= g;
  }
}

#endif  // HETKG_KERNELS_X86

double TransEReduceFullDispatch(int p, const float* h, const float* r,
                                const float* t, size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return TransEReduceFullAvx2(p, h, r, t, n);
  }
#endif
  return TransEReduceFull(p, h, r, t, n);
}

double TransEReduceHoistedDispatch(int p, const double* hr, const float* t,
                                   size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return TransEReduceHoistedAvx2(p, hr, t, n);
  }
#endif
  return TransEReduceHoisted(p, hr, t, n);
}

void TransEApplyDispatch(int p, double coeff, const double* hr_or_null,
                         const float* h, const float* r, const float* t,
                         float* gh, float* gr, float* gt, size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    TransEApplyAvx2(p, coeff, hr_or_null, h, r, t, gh, gr, gt, n);
    return;
  }
#endif
  if (hr_or_null != nullptr) {
    TransEApplyHoisted(p, coeff, hr_or_null, t, gh, gr, gt, n);
  } else {
    TransEApplyFull(p, coeff, h, r, t, gh, gr, gt, n);
  }
}

// ---- DistMult --------------------------------------------------------
// Canonical element term: (double(h_j) * r_j) * t_j.

void DistMultHoist(std::span<const float> h, std::span<const float> r,
                   std::vector<double>* hr) {
  const size_t n = h.size();
  if (hr->size() < n) hr->resize(n);
  const float* __restrict__ hp = h.data();
  const float* __restrict__ rp = r.data();
  double* __restrict__ out = hr->data();
  for (size_t j = 0; j < n; ++j) {
    out[j] = static_cast<double>(hp[j]) * rp[j];
  }
}

double DistMultReduceFull(const float* __restrict__ h,
                          const float* __restrict__ r,
                          const float* __restrict__ t, size_t n) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < n; ++j) {
    lane[j % kLaneWidth] += (static_cast<double>(h[j]) * r[j]) * t[j];
  }
  return TreeReduce8(lane);
}

double DistMultReduceHoisted(const double* __restrict__ hr,
                             const float* __restrict__ t, size_t n) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < n; ++j) {
    lane[j % kLaneWidth] += hr[j] * t[j];
  }
  return TreeReduce8(lane);
}

void DistMultApply(double upstream, const float* h, const float* r,
                   const float* t, float* gh, float* gr, float* gt,
                   size_t n) {
  for (size_t j = 0; j < n; ++j) {
    gh[j] += static_cast<float>((upstream * r[j]) * t[j]);
    gr[j] += static_cast<float>((upstream * h[j]) * t[j]);
    gt[j] += static_cast<float>((upstream * h[j]) * r[j]);
  }
}

#if HETKG_KERNELS_X86

__attribute__((target("avx2"))) double DistMultReduceFullAvx2(
    const float* h, const float* r, const float* t, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 hf = _mm256_loadu_ps(h + j);
    const __m256 rf = _mm256_loadu_ps(r + j);
    const __m256 tf = _mm256_loadu_ps(t + j);
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_mul_pd(CvtLo(hf), CvtLo(rf)), CvtLo(tf)));
    acc1 = _mm256_add_pd(
        acc1, _mm256_mul_pd(_mm256_mul_pd(CvtHi(hf), CvtHi(rf)), CvtHi(tf)));
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < n; ++j, ++k) {
    lane[k] += (static_cast<double>(h[j]) * r[j]) * t[j];
  }
  return TreeReduce8(lane);
}

__attribute__((target("avx2"))) double DistMultReduceHoistedAvx2(
    const double* hr, const float* t, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 tf = _mm256_loadu_ps(t + j);
    acc0 = _mm256_add_pd(acc0,
                         _mm256_mul_pd(_mm256_loadu_pd(hr + j), CvtLo(tf)));
    acc1 = _mm256_add_pd(
        acc1, _mm256_mul_pd(_mm256_loadu_pd(hr + j + 4), CvtHi(tf)));
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < n; ++j, ++k) {
    lane[k] += hr[j] * t[j];
  }
  return TreeReduce8(lane);
}

__attribute__((target("avx2"))) void DistMultApplyAvx2(
    double upstream, const float* h, const float* r, const float* t,
    float* gh, float* gr, float* gt, size_t n) {
  const __m256d uv = _mm256_set1_pd(upstream);
  size_t j = 0;
  for (; j + kLaneWidth <= n; j += kLaneWidth) {
    const __m256 hf = _mm256_loadu_ps(h + j);
    const __m256 rf = _mm256_loadu_ps(r + j);
    const __m256 tf = _mm256_loadu_ps(t + j);
    const __m256d h0 = CvtLo(hf), h1 = CvtHi(hf);
    const __m256d r0 = CvtLo(rf), r1 = CvtHi(rf);
    const __m256d t0 = CvtLo(tf), t1 = CvtHi(tf);
    const __m256 ghd = _mm256_set_m128(
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, r1), t1)),
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, r0), t0)));
    const __m256 grd = _mm256_set_m128(
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, h1), t1)),
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, h0), t0)));
    const __m256 gtd = _mm256_set_m128(
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, h1), r1)),
        _mm256_cvtpd_ps(_mm256_mul_pd(_mm256_mul_pd(uv, h0), r0)));
    _mm256_storeu_ps(gh + j, _mm256_add_ps(_mm256_loadu_ps(gh + j), ghd));
    _mm256_storeu_ps(gr + j, _mm256_add_ps(_mm256_loadu_ps(gr + j), grd));
    _mm256_storeu_ps(gt + j, _mm256_add_ps(_mm256_loadu_ps(gt + j), gtd));
  }
  for (; j < n; ++j) {
    gh[j] += static_cast<float>((upstream * r[j]) * t[j]);
    gr[j] += static_cast<float>((upstream * h[j]) * t[j]);
    gt[j] += static_cast<float>((upstream * h[j]) * r[j]);
  }
}

#endif  // HETKG_KERNELS_X86

double DistMultReduceFullDispatch(const float* h, const float* r,
                                  const float* t, size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return DistMultReduceFullAvx2(h, r, t, n);
  }
#endif
  return DistMultReduceFull(h, r, t, n);
}

double DistMultReduceHoistedDispatch(const double* hr, const float* t,
                                     size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return DistMultReduceHoistedAvx2(hr, t, n);
  }
#endif
  return DistMultReduceHoisted(hr, t, n);
}

void DistMultApplyDispatch(double upstream, const float* h, const float* r,
                           const float* t, float* gh, float* gr, float* gt,
                           size_t n) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    DistMultApplyAvx2(upstream, h, r, t, gh, gr, gt, n);
    return;
  }
#endif
  DistMultApply(upstream, h, r, t, gh, gr, gt, n);
}

// ---- ComplEx ---------------------------------------------------------
// Rows store [real; imag] halves of length m = dim/2. Canonical score
// term groups by the tail (the h∘r complex product):
//   A_j = (double(hRe_j) * rRe_j) - (double(hIm_j) * rIm_j)
//   B_j = (double(hIm_j) * rRe_j) + (double(hRe_j) * rIm_j)
//   term_j = (A_j * tRe_j) + (B_j * tIm_j)

void ComplExHoist(std::span<const float> h, std::span<const float> r,
                  std::vector<double>* a, std::vector<double>* b) {
  const size_t m = h.size() / 2;
  if (a->size() < m) a->resize(m);
  if (b->size() < m) b->resize(m);
  const float* __restrict__ hre = h.data();
  const float* __restrict__ him = h.data() + m;
  const float* __restrict__ rre = r.data();
  const float* __restrict__ rim = r.data() + m;
  double* __restrict__ A = a->data();
  double* __restrict__ B = b->data();
  for (size_t j = 0; j < m; ++j) {
    A[j] = (static_cast<double>(hre[j]) * rre[j]) -
           (static_cast<double>(him[j]) * rim[j]);
    B[j] = (static_cast<double>(him[j]) * rre[j]) +
           (static_cast<double>(hre[j]) * rim[j]);
  }
}

double ComplExReduceFull(const float* __restrict__ hre,
                         const float* __restrict__ him,
                         const float* __restrict__ rre,
                         const float* __restrict__ rim,
                         const float* __restrict__ tre,
                         const float* __restrict__ tim, size_t m) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < m; ++j) {
    const double a = (static_cast<double>(hre[j]) * rre[j]) -
                     (static_cast<double>(him[j]) * rim[j]);
    const double b = (static_cast<double>(him[j]) * rre[j]) +
                     (static_cast<double>(hre[j]) * rim[j]);
    lane[j % kLaneWidth] += (a * tre[j]) + (b * tim[j]);
  }
  return TreeReduce8(lane);
}

double ComplExReduceHoisted(const double* __restrict__ A,
                            const double* __restrict__ B,
                            const float* __restrict__ tre,
                            const float* __restrict__ tim, size_t m) {
  double lane[kLaneWidth] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t j = 0; j < m; ++j) {
    lane[j % kLaneWidth] += (A[j] * tre[j]) + (B[j] * tim[j]);
  }
  return TreeReduce8(lane);
}

// Backward keeps the scalar API's single-precision expression trees.
void ComplExApply(float u, const float* hre, const float* him,
                  const float* rre, const float* rim, const float* tre,
                  const float* tim, float* ghre, float* ghim, float* grre,
                  float* grim, float* gtre, float* gtim, size_t m) {
  for (size_t j = 0; j < m; ++j) {
    ghre[j] += u * (rre[j] * tre[j] + rim[j] * tim[j]);
    ghim[j] += u * (rre[j] * tim[j] - rim[j] * tre[j]);
    grre[j] += u * (hre[j] * tre[j] + him[j] * tim[j]);
    grim[j] += u * (hre[j] * tim[j] - him[j] * tre[j]);
    gtre[j] += u * (hre[j] * rre[j] - him[j] * rim[j]);
    gtim[j] += u * (him[j] * rre[j] + hre[j] * rim[j]);
  }
}

#if HETKG_KERNELS_X86

__attribute__((target("avx2"))) double ComplExReduceFullAvx2(
    const float* hre, const float* him, const float* rre, const float* rim,
    const float* tre, const float* tim, size_t m) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + kLaneWidth <= m; j += kLaneWidth) {
    const __m256 href = _mm256_loadu_ps(hre + j);
    const __m256 himf = _mm256_loadu_ps(him + j);
    const __m256 rref = _mm256_loadu_ps(rre + j);
    const __m256 rimf = _mm256_loadu_ps(rim + j);
    const __m256 tref = _mm256_loadu_ps(tre + j);
    const __m256 timf = _mm256_loadu_ps(tim + j);
    const __m256d a0 =
        _mm256_sub_pd(_mm256_mul_pd(CvtLo(href), CvtLo(rref)),
                      _mm256_mul_pd(CvtLo(himf), CvtLo(rimf)));
    const __m256d a1 =
        _mm256_sub_pd(_mm256_mul_pd(CvtHi(href), CvtHi(rref)),
                      _mm256_mul_pd(CvtHi(himf), CvtHi(rimf)));
    const __m256d b0 =
        _mm256_add_pd(_mm256_mul_pd(CvtLo(himf), CvtLo(rref)),
                      _mm256_mul_pd(CvtLo(href), CvtLo(rimf)));
    const __m256d b1 =
        _mm256_add_pd(_mm256_mul_pd(CvtHi(himf), CvtHi(rref)),
                      _mm256_mul_pd(CvtHi(href), CvtHi(rimf)));
    acc0 = _mm256_add_pd(
        acc0, _mm256_add_pd(_mm256_mul_pd(a0, CvtLo(tref)),
                            _mm256_mul_pd(b0, CvtLo(timf))));
    acc1 = _mm256_add_pd(
        acc1, _mm256_add_pd(_mm256_mul_pd(a1, CvtHi(tref)),
                            _mm256_mul_pd(b1, CvtHi(timf))));
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < m; ++j, ++k) {
    const double a = (static_cast<double>(hre[j]) * rre[j]) -
                     (static_cast<double>(him[j]) * rim[j]);
    const double b = (static_cast<double>(him[j]) * rre[j]) +
                     (static_cast<double>(hre[j]) * rim[j]);
    lane[k] += (a * tre[j]) + (b * tim[j]);
  }
  return TreeReduce8(lane);
}

__attribute__((target("avx2"))) double ComplExReduceHoistedAvx2(
    const double* A, const double* B, const float* tre, const float* tim,
    size_t m) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + kLaneWidth <= m; j += kLaneWidth) {
    const __m256 tref = _mm256_loadu_ps(tre + j);
    const __m256 timf = _mm256_loadu_ps(tim + j);
    acc0 = _mm256_add_pd(
        acc0,
        _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(A + j), CvtLo(tref)),
                      _mm256_mul_pd(_mm256_loadu_pd(B + j), CvtLo(timf))));
    acc1 = _mm256_add_pd(
        acc1,
        _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(A + j + 4), CvtHi(tref)),
                      _mm256_mul_pd(_mm256_loadu_pd(B + j + 4), CvtHi(timf))));
  }
  double lane[kLaneWidth];
  _mm256_storeu_pd(lane, acc0);
  _mm256_storeu_pd(lane + 4, acc1);
  for (size_t k = 0; j < m; ++j, ++k) {
    lane[k] += (A[j] * tre[j]) + (B[j] * tim[j]);
  }
  return TreeReduce8(lane);
}

__attribute__((target("avx2"))) void ComplExApplyAvx2(
    float u, const float* hre, const float* him, const float* rre,
    const float* rim, const float* tre, const float* tim, float* ghre,
    float* ghim, float* grre, float* grim, float* gtre, float* gtim,
    size_t m) {
  const __m256 uv = _mm256_set1_ps(u);
  size_t j = 0;
  for (; j + kLaneWidth <= m; j += kLaneWidth) {
    const __m256 href = _mm256_loadu_ps(hre + j);
    const __m256 himf = _mm256_loadu_ps(him + j);
    const __m256 rref = _mm256_loadu_ps(rre + j);
    const __m256 rimf = _mm256_loadu_ps(rim + j);
    const __m256 tref = _mm256_loadu_ps(tre + j);
    const __m256 timf = _mm256_loadu_ps(tim + j);
    _mm256_storeu_ps(
        ghre + j,
        _mm256_add_ps(_mm256_loadu_ps(ghre + j),
                      _mm256_mul_ps(uv, _mm256_add_ps(
                                            _mm256_mul_ps(rref, tref),
                                            _mm256_mul_ps(rimf, timf)))));
    _mm256_storeu_ps(
        ghim + j,
        _mm256_add_ps(_mm256_loadu_ps(ghim + j),
                      _mm256_mul_ps(uv, _mm256_sub_ps(
                                            _mm256_mul_ps(rref, timf),
                                            _mm256_mul_ps(rimf, tref)))));
    _mm256_storeu_ps(
        grre + j,
        _mm256_add_ps(_mm256_loadu_ps(grre + j),
                      _mm256_mul_ps(uv, _mm256_add_ps(
                                            _mm256_mul_ps(href, tref),
                                            _mm256_mul_ps(himf, timf)))));
    _mm256_storeu_ps(
        grim + j,
        _mm256_add_ps(_mm256_loadu_ps(grim + j),
                      _mm256_mul_ps(uv, _mm256_sub_ps(
                                            _mm256_mul_ps(href, timf),
                                            _mm256_mul_ps(himf, tref)))));
    _mm256_storeu_ps(
        gtre + j,
        _mm256_add_ps(_mm256_loadu_ps(gtre + j),
                      _mm256_mul_ps(uv, _mm256_sub_ps(
                                            _mm256_mul_ps(href, rref),
                                            _mm256_mul_ps(himf, rimf)))));
    _mm256_storeu_ps(
        gtim + j,
        _mm256_add_ps(_mm256_loadu_ps(gtim + j),
                      _mm256_mul_ps(uv, _mm256_add_ps(
                                            _mm256_mul_ps(himf, rref),
                                            _mm256_mul_ps(href, rimf)))));
  }
  for (; j < m; ++j) {
    ghre[j] += u * (rre[j] * tre[j] + rim[j] * tim[j]);
    ghim[j] += u * (rre[j] * tim[j] - rim[j] * tre[j]);
    grre[j] += u * (hre[j] * tre[j] + him[j] * tim[j]);
    grim[j] += u * (hre[j] * tim[j] - him[j] * tre[j]);
    gtre[j] += u * (hre[j] * rre[j] - him[j] * rim[j]);
    gtim[j] += u * (him[j] * rre[j] + hre[j] * rim[j]);
  }
}

#endif  // HETKG_KERNELS_X86

double ComplExReduceFullDispatch(const float* hre, const float* him,
                                 const float* rre, const float* rim,
                                 const float* tre, const float* tim,
                                 size_t m) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return ComplExReduceFullAvx2(hre, him, rre, rim, tre, tim, m);
  }
#endif
  return ComplExReduceFull(hre, him, rre, rim, tre, tim, m);
}

double ComplExReduceHoistedDispatch(const double* A, const double* B,
                                    const float* tre, const float* tim,
                                    size_t m) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    return ComplExReduceHoistedAvx2(A, B, tre, tim, m);
  }
#endif
  return ComplExReduceHoisted(A, B, tre, tim, m);
}

void ComplExApplyDispatch(float u, const float* hre, const float* him,
                          const float* rre, const float* rim,
                          const float* tre, const float* tim, float* ghre,
                          float* ghim, float* grre, float* grim, float* gtre,
                          float* gtim, size_t m) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    ComplExApplyAvx2(u, hre, him, rre, rim, tre, tim, ghre, ghim, grre, grim,
                     gtre, gtim, m);
    return;
  }
#endif
  ComplExApply(u, hre, him, rre, rim, tre, tim, ghre, ghim, grre, grim, gtre,
               gtim, m);
}

/// True when `v` can reuse a query intermediate hoisted from `ref`
/// (same head and relation ROWS — detected by storage identity, which
/// is exact because both alias the same batch scratch).
bool SharesQuery(const TripleView& v, const TripleView& ref) {
  return v.h.data() == ref.h.data() && v.r.data() == ref.r.data();
}

}  // namespace

// ======================================================================
// Canonical per-triple kernels (the scalar ScoreFunction API)
// ======================================================================

double TransEScore(int p, std::span<const float> h, std::span<const float> r,
                   std::span<const float> t) {
  assert(h.size() == r.size() && h.size() == t.size());
  const double acc = TransEReduceFullDispatch(p, h.data(), r.data(), t.data(),
                                              h.size());
  return p == 1 ? -acc : -std::sqrt(acc);
}

void TransEScoreBackward(int p, std::span<const float> h,
                         std::span<const float> r, std::span<const float> t,
                         double upstream, std::span<float> gh,
                         std::span<float> gr, std::span<float> gt) {
  assert(h.size() == r.size() && h.size() == t.size());
  assert(gh.size() == h.size() && gr.size() == r.size() &&
         gt.size() == t.size());
  const size_t n = h.size();
  if (p == 1) {
    // d(-|e|_1)/de_i = -sign(e_i).
    TransEApplyDispatch(1, -upstream, nullptr, h.data(), r.data(), t.data(),
                        gh.data(), gr.data(), gt.data(), n);
    return;
  }
  // d(-||e||_2)/de_i = -e_i / ||e||_2.
  const double norm =
      std::sqrt(TransEReduceFullDispatch(2, h.data(), r.data(), t.data(), n));
  if (norm <= 1e-12) return;  // Gradient is zero at the exact minimum.
  TransEApplyDispatch(2, -upstream / norm, nullptr, h.data(), r.data(),
                      t.data(), gh.data(), gr.data(), gt.data(), n);
}

double DistMultScore(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) {
  assert(h.size() == r.size() && h.size() == t.size());
  return DistMultReduceFullDispatch(h.data(), r.data(), t.data(), h.size());
}

void DistMultScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) {
  assert(h.size() == r.size() && h.size() == t.size());
  DistMultApplyDispatch(upstream, h.data(), r.data(), t.data(), gh.data(),
                        gr.data(), gt.data(), h.size());
}

double ComplExScore(std::span<const float> h, std::span<const float> r,
                    std::span<const float> t) {
  assert(h.size() % 2 == 0);
  assert(h.size() == r.size() && h.size() == t.size());
  const size_t m = h.size() / 2;
  return ComplExReduceFullDispatch(h.data(), h.data() + m, r.data(),
                                   r.data() + m, t.data(), t.data() + m, m);
}

void ComplExScoreBackward(std::span<const float> h, std::span<const float> r,
                          std::span<const float> t, double upstream,
                          std::span<float> gh, std::span<float> gr,
                          std::span<float> gt) {
  assert(h.size() % 2 == 0);
  const size_t m = h.size() / 2;
  ComplExApplyDispatch(static_cast<float>(upstream), h.data(), h.data() + m,
                       r.data(), r.data() + m, t.data(), t.data() + m,
                       gh.data(), gh.data() + m, gr.data(), gr.data() + m,
                       gt.data(), gt.data() + m, m);
}

// ======================================================================
// Batched kernels
// ======================================================================

void TransEScoreBatch(int p, const TripleView& ref,
                      std::span<const TripleView> triples,
                      std::span<double> scores, KernelScratch* scratch) {
  assert(scores.size() == triples.size());
  if (!UseVectorPath() || scratch == nullptr) {
    for (size_t k = 0; k < triples.size(); ++k) {
      scores[k] = TransEScore(p, triples[k].h, triples[k].r, triples[k].t);
    }
    return;
  }
  bool hoisted = false;
  for (size_t k = 0; k < triples.size(); ++k) {
    const TripleView& v = triples[k];
    const size_t n = v.h.size();
    double acc;
    if (SharesQuery(v, ref)) {
      if (!hoisted) {
        TransEHoist(ref.h, ref.r, &scratch->a);
        hoisted = true;
      }
      acc = TransEReduceHoistedDispatch(p, scratch->a.data(), v.t.data(), n);
    } else {
      acc = TransEReduceFullDispatch(p, v.h.data(), v.r.data(), v.t.data(), n);
    }
    scores[k] = p == 1 ? -acc : -std::sqrt(acc);
  }
}

void TransEScoreBackwardBatch(int p, const TripleView& ref,
                              std::span<const TripleView> triples,
                              std::span<const double> upstreams,
                              std::span<const GradView> grads,
                              KernelScratch* scratch) {
  assert(upstreams.size() == triples.size() &&
         grads.size() == triples.size());
  if (!UseVectorPath() || scratch == nullptr) {
    for (size_t k = 0; k < triples.size(); ++k) {
      if (upstreams[k] == 0.0) continue;
      TransEScoreBackward(p, triples[k].h, triples[k].r, triples[k].t,
                          upstreams[k], grads[k].h, grads[k].r, grads[k].t);
    }
    return;
  }
  bool hoisted = false;
  for (size_t k = 0; k < triples.size(); ++k) {
    if (upstreams[k] == 0.0) continue;
    const TripleView& v = triples[k];
    const GradView& g = grads[k];
    const size_t n = v.h.size();
    const double* hr = nullptr;
    if (SharesQuery(v, ref)) {
      if (!hoisted) {
        TransEHoist(ref.h, ref.r, &scratch->a);
        hoisted = true;
      }
      hr = scratch->a.data();
    }
    if (p == 1) {
      TransEApplyDispatch(1, -upstreams[k], hr, v.h.data(), v.r.data(),
                          v.t.data(), g.h.data(), g.r.data(), g.t.data(), n);
      continue;
    }
    const double norm = std::sqrt(
        hr != nullptr
            ? TransEReduceHoistedDispatch(2, hr, v.t.data(), n)
            : TransEReduceFullDispatch(2, v.h.data(), v.r.data(), v.t.data(),
                                       n));
    if (norm <= 1e-12) continue;  // Zero gradient at the exact minimum.
    TransEApplyDispatch(2, -upstreams[k] / norm, hr, v.h.data(), v.r.data(),
                        v.t.data(), g.h.data(), g.r.data(), g.t.data(), n);
  }
}

void DistMultScoreBatch(const TripleView& ref,
                        std::span<const TripleView> triples,
                        std::span<double> scores, KernelScratch* scratch) {
  assert(scores.size() == triples.size());
  if (!UseVectorPath() || scratch == nullptr) {
    for (size_t k = 0; k < triples.size(); ++k) {
      scores[k] = DistMultScore(triples[k].h, triples[k].r, triples[k].t);
    }
    return;
  }
  bool hoisted = false;
  for (size_t k = 0; k < triples.size(); ++k) {
    const TripleView& v = triples[k];
    const size_t n = v.h.size();
    if (SharesQuery(v, ref)) {
      if (!hoisted) {
        DistMultHoist(ref.h, ref.r, &scratch->a);
        hoisted = true;
      }
      scores[k] =
          DistMultReduceHoistedDispatch(scratch->a.data(), v.t.data(), n);
    } else {
      scores[k] =
          DistMultReduceFullDispatch(v.h.data(), v.r.data(), v.t.data(), n);
    }
  }
}

void DistMultScoreBackwardBatch(const TripleView& ref,
                                std::span<const TripleView> triples,
                                std::span<const double> upstreams,
                                std::span<const GradView> grads,
                                KernelScratch* scratch) {
  (void)ref;
  (void)scratch;
  assert(upstreams.size() == triples.size() &&
         grads.size() == triples.size());
  // The DistMult gradient has no reusable (h, r) intermediate under the
  // canonical association; each entry takes the vectorized full form.
  for (size_t k = 0; k < triples.size(); ++k) {
    if (upstreams[k] == 0.0) continue;
    const TripleView& v = triples[k];
    const GradView& g = grads[k];
    DistMultApplyDispatch(upstreams[k], v.h.data(), v.r.data(), v.t.data(),
                          g.h.data(), g.r.data(), g.t.data(), v.h.size());
  }
}

void ComplExScoreBatch(const TripleView& ref,
                       std::span<const TripleView> triples,
                       std::span<double> scores, KernelScratch* scratch) {
  assert(scores.size() == triples.size());
  if (!UseVectorPath() || scratch == nullptr) {
    for (size_t k = 0; k < triples.size(); ++k) {
      scores[k] = ComplExScore(triples[k].h, triples[k].r, triples[k].t);
    }
    return;
  }
  bool hoisted = false;
  for (size_t k = 0; k < triples.size(); ++k) {
    const TripleView& v = triples[k];
    const size_t m = v.h.size() / 2;
    if (SharesQuery(v, ref)) {
      if (!hoisted) {
        ComplExHoist(ref.h, ref.r, &scratch->a, &scratch->b);
        hoisted = true;
      }
      scores[k] =
          ComplExReduceHoistedDispatch(scratch->a.data(), scratch->b.data(),
                                       v.t.data(), v.t.data() + m, m);
    } else {
      scores[k] = ComplExReduceFullDispatch(v.h.data(), v.h.data() + m,
                                            v.r.data(), v.r.data() + m,
                                            v.t.data(), v.t.data() + m, m);
    }
  }
}

void ComplExScoreBackwardBatch(const TripleView& ref,
                               std::span<const TripleView> triples,
                               std::span<const double> upstreams,
                               std::span<const GradView> grads,
                               KernelScratch* scratch) {
  (void)ref;
  (void)scratch;
  assert(upstreams.size() == triples.size() &&
         grads.size() == triples.size());
  // Backward keeps the scalar API's float expression trees; there is no
  // double-precision intermediate to reuse.
  for (size_t k = 0; k < triples.size(); ++k) {
    if (upstreams[k] == 0.0) continue;
    const TripleView& v = triples[k];
    const GradView& g = grads[k];
    const size_t m = v.h.size() / 2;
    ComplExApplyDispatch(static_cast<float>(upstreams[k]), v.h.data(),
                         v.h.data() + m, v.r.data(), v.r.data() + m,
                         v.t.data(), v.t.data() + m, g.h.data(),
                         g.h.data() + m, g.r.data(), g.r.data() + m,
                         g.t.data(), g.t.data() + m, m);
  }
}

// ======================================================================
// AdaGrad
// ======================================================================

namespace {

void AdaGradApplyRowPortable(float* __restrict__ row,
                             const float* __restrict__ grad,
                             float* __restrict__ acc, size_t n, double lr,
                             double eps) {
  for (size_t j = 0; j < n; ++j) {
    const double g = grad[j];
    acc[j] += static_cast<float>(g * g);
    row[j] -= static_cast<float>(
        lr * g / std::sqrt(static_cast<double>(acc[j]) + eps));
  }
}

#if HETKG_KERNELS_X86

// IEEE sqrt and divide are correctly rounded, so this is bit-identical
// to the scalar loop; no rsqrt approximation is allowed here.
__attribute__((target("avx2"))) void AdaGradApplyRowAvx2(
    float* row, const float* grad, float* acc, size_t n, double lr,
    double eps) {
  const __m256d lrv = _mm256_set1_pd(lr);
  const __m256d epsv = _mm256_set1_pd(eps);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d g = _mm256_cvtps_pd(_mm_loadu_ps(grad + j));
    const __m128 gg = _mm256_cvtpd_ps(_mm256_mul_pd(g, g));
    const __m128 acc_new = _mm_add_ps(_mm_loadu_ps(acc + j), gg);
    _mm_storeu_ps(acc + j, acc_new);
    const __m256d denom =
        _mm256_sqrt_pd(_mm256_add_pd(_mm256_cvtps_pd(acc_new), epsv));
    const __m256d step = _mm256_div_pd(_mm256_mul_pd(lrv, g), denom);
    _mm_storeu_ps(row + j,
                  _mm_sub_ps(_mm_loadu_ps(row + j), _mm256_cvtpd_ps(step)));
  }
  for (; j < n; ++j) {
    const double g = grad[j];
    acc[j] += static_cast<float>(g * g);
    row[j] -= static_cast<float>(
        lr * g / std::sqrt(static_cast<double>(acc[j]) + eps));
  }
}

#endif  // HETKG_KERNELS_X86

}  // namespace

void AdaGradApplyRow(std::span<float> row, std::span<const float> grad,
                     float* acc, double learning_rate, double epsilon) {
  assert(row.size() == grad.size());
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    AdaGradApplyRowAvx2(row.data(), grad.data(), acc, row.size(),
                        learning_rate, epsilon);
    return;
  }
#endif
  AdaGradApplyRowPortable(row.data(), grad.data(), acc, row.size(),
                          learning_rate, epsilon);
}

// ======================================================================
// Cold-tier row codecs (DESIGN.md §16)
// ======================================================================

namespace {

// Scalar fp32 -> binary16 with round-to-nearest-even, bit-exact with
// the F16C VCVTPS2PH(_MM_FROUND_TO_NEAREST_INT) hardware conversion:
// NaN/Inf map to their half encodings, overflow saturates to Inf, and
// values below the half-normal range round into (or out of) the
// denormal encodings via the same shifted-RNE arithmetic.
uint16_t Fp16FromFloatScalar(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint32_t sign = (bits >> 16) & 0x8000u;
  const uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // Inf / NaN.
    const uint32_t mantissa = abs > 0x7F800000u ? 0x0200u : 0;
    return static_cast<uint16_t>(sign | 0x7C00u | mantissa |
                                 ((abs >> 13) & 0x03FFu));
  }
  if (abs >= 0x47800000u) {  // >= 65536: overflows half, saturate to Inf.
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // Below half-normal: denormal or zero.
    // Add the implicit bit, then shift right so the result's ULP is the
    // half-denormal ULP (2^-24); RNE on the shifted-out bits.
    const uint32_t mantissa = (abs & 0x007FFFFFu) | 0x00800000u;
    const int shift = 126 - static_cast<int>(abs >> 23);
    if (shift > 24) return static_cast<uint16_t>(sign);  // Rounds to 0.
    const uint32_t shifted = mantissa >> shift;
    const uint32_t rest = mantissa & ((1u << shift) - 1);
    const uint32_t half = 1u << (shift - 1);
    uint32_t q = shifted;
    if (rest > half || (rest == half && (shifted & 1))) ++q;
    return static_cast<uint16_t>(sign | q);
  }
  // Normal range: rebias exponent (127 -> 15), RNE on the low 13 bits.
  uint32_t half_bits = sign | ((abs - 0x38000000u) >> 13);
  const uint32_t rest = abs & 0x1FFFu;
  if (rest > 0x1000u || (rest == 0x1000u && (half_bits & 1))) ++half_bits;
  return static_cast<uint16_t>(half_bits);
}

float Fp16ToFloatScalar(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mantissa = h & 0x03FFu;
  uint32_t bits;
  if (exp == 0x1Fu) {  // Inf / NaN.
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exp != 0) {  // Normal.
    bits = sign | ((exp + 112u) << 23) | (mantissa << 13);
  } else if (mantissa != 0) {  // Denormal: renormalize.
    uint32_t m = mantissa;
    uint32_t e = 113;
    while ((m & 0x0400u) == 0) {
      m <<= 1;
      --e;
    }
    bits = sign | (e << 23) | ((m & 0x03FFu) << 13);
  } else {  // Zero.
    bits = sign;
  }
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

#if HETKG_KERNELS_X86

__attribute__((target("f16c"))) void EncodeRowFp16F16c(const float* src,
                                                       uint16_t* dst,
                                                       size_t n) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(src + j);
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + j), h);
  }
  for (; j < n; ++j) dst[j] = Fp16FromFloatScalar(src[j]);
}

__attribute__((target("f16c"))) void DecodeRowFp16F16c(const uint16_t* src,
                                                       float* dst,
                                                       size_t n) {
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + j));
    _mm256_storeu_ps(dst + j, _mm256_cvtph_ps(h));
  }
  for (; j < n; ++j) dst[j] = Fp16ToFloatScalar(src[j]);
}

// int8 quantize: t = (v - min) * inv; q = clamp(rne(t), 0, 255).
// CVTPS2DQ rounds RNE under the default MXCSR mode, matching the scalar
// lrintf; sub and mul are IEEE-exact, so both paths emit the same q.
__attribute__((target("avx2"))) void EncodeRowInt8Avx2(const float* src,
                                                       uint8_t* q, float min,
                                                       float inv, size_t n) {
  const __m256 vmin = _mm256_set1_ps(min);
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i lo = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(255);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 t = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(src + j), vmin), vinv);
    __m256i qi = _mm256_cvtps_epi32(t);
    qi = _mm256_min_epi32(_mm256_max_epi32(qi, lo), hi);
    alignas(32) int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), qi);
    for (int k = 0; k < 8; ++k) q[j + k] = static_cast<uint8_t>(lanes[k]);
  }
  for (; j < n; ++j) {
    const float t = (src[j] - min) * inv;
    long v = std::lrintf(t);
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    q[j] = static_cast<uint8_t>(v);
  }
}

// int8 dequantize: v = min + q * scale, explicit mul then add (never an
// FMA) so the bits match the scalar loop under -ffp-contract=off.
__attribute__((target("avx2"))) void DecodeRowInt8Avx2(const uint8_t* q,
                                                       float scale, float min,
                                                       float* dst, size_t n) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vmin = _mm256_set1_ps(min);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + j));
    const __m256 t = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    _mm256_storeu_ps(dst + j,
                     _mm256_add_ps(_mm256_mul_ps(t, vscale), vmin));
  }
  for (; j < n; ++j) {
    dst[j] = static_cast<float>(q[j]) * scale + min;
  }
}

/// F16C rides the vector dispatch: available on every AVX2 part this
/// project targets, but gated independently for odd configurations.
bool UseF16c() {
  return ActivePath() == KernelPath::kAvx2 && DetectCpuFeatures().f16c;
}

#endif  // HETKG_KERNELS_X86

}  // namespace

uint16_t Fp16FromFloat(float v) { return Fp16FromFloatScalar(v); }

float Fp16ToFloat(uint16_t h) { return Fp16ToFloatScalar(h); }

void EncodeRowFp16(std::span<const float> src, uint16_t* dst) {
#if HETKG_KERNELS_X86
  if (UseF16c()) {
    EncodeRowFp16F16c(src.data(), dst, src.size());
    return;
  }
#endif
  for (size_t j = 0; j < src.size(); ++j) dst[j] = Fp16FromFloatScalar(src[j]);
}

void DecodeRowFp16(const uint16_t* src, std::span<float> dst) {
#if HETKG_KERNELS_X86
  if (UseF16c()) {
    DecodeRowFp16F16c(src, dst.data(), dst.size());
    return;
  }
#endif
  for (size_t j = 0; j < dst.size(); ++j) dst[j] = Fp16ToFloatScalar(src[j]);
}

void EncodeRowInt8(std::span<const float> src, uint8_t* q, float* scale,
                   float* min) {
  assert(!src.empty());
  // Range scan stays scalar on every path: it costs one pass, and a
  // vectorized min/max would have to reproduce scalar NaN semantics to
  // keep the (scale, min) bits identical.
  float lo = src[0];
  float hi = src[0];
  for (const float v : src) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const float range = hi - lo;
  *min = lo;
  if (!(range > 0.0f)) {  // Constant row (or NaN range): all-zero codes.
    *scale = 0.0f;
    std::memset(q, 0, src.size());
    return;
  }
  *scale = range / 255.0f;
  const float inv = 255.0f / range;
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    EncodeRowInt8Avx2(src.data(), q, lo, inv, src.size());
    return;
  }
#endif
  for (size_t j = 0; j < src.size(); ++j) {
    const float t = (src[j] - lo) * inv;
    long v = std::lrintf(t);
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    q[j] = static_cast<uint8_t>(v);
  }
}

void DecodeRowInt8(const uint8_t* q, float scale, float min,
                   std::span<float> dst) {
#if HETKG_KERNELS_X86
  if (ActivePath() == KernelPath::kAvx2) {
    DecodeRowInt8Avx2(q, scale, min, dst.data(), dst.size());
    return;
  }
#endif
  for (size_t j = 0; j < dst.size(); ++j) {
    dst[j] = static_cast<float>(q[j]) * scale + min;
  }
}

}  // namespace hetkg::embedding::kernels
