#ifndef HETKG_EMBEDDING_KERNELS_H_
#define HETKG_EMBEDDING_KERNELS_H_

// Batched, vectorized score/optimizer kernels with deterministic SIMD
// dispatch (DESIGN.md §10).
//
// Every kernel in this layer obeys one rule: the floating-point
// operation sequence — element expressions, lane mapping, and reduction
// tree — is FIXED, independent of which implementation executes it.
// Reductions accumulate into `kLaneWidth` partial lanes (element j goes
// to lane j % kLaneWidth) merged by `TreeReduce8`, and elementwise
// expressions keep one canonical association. The scalar per-triple
// API, the portable 8-wide batch kernels, and the AVX2 batch kernels
// therefore produce the same bits, so `--kernel` is a pure performance
// knob: training output is bit-identical across every dispatch path
// (enforced by tests/kernel_equivalence_test.cpp).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hetkg::embedding {

/// Embedding rows of one (h, r, t) triple. Spans alias the caller's row
/// storage; batched kernels detect rows shared with a reference triple
/// BY DATA POINTER to hoist shared query intermediates.
struct TripleView {
  std::span<const float> h;
  std::span<const float> r;
  std::span<const float> t;
};

/// Gradient rows matching a TripleView. Entries may be empty when the
/// corresponding upstream is zero (the kernel skips them).
struct GradView {
  std::span<float> h;
  std::span<float> r;
  std::span<float> t;
};

namespace kernels {

// -- Runtime dispatch --------------------------------------------------

/// User-facing kernel selection (`--kernel` flag / HETKG_KERNEL env).
enum class KernelMode {
  kAuto,    // Pick the fastest path; HETKG_KERNEL overrides.
  kScalar,  // Loop the scalar per-triple API (reference path).
  kVector,  // Batched 8-wide lane kernels (AVX2 when the CPU has it).
};

/// Resolved executable path. Gauge encoding (`kernel.dispatch`):
/// 0 = scalar, 1 = portable vector, 2 = AVX2.
enum class KernelPath {
  kScalar = 0,
  kPortableVector = 1,
  kAvx2 = 2,
};

/// Runtime-detected CPU SIMD features (x86 only; all-false elsewhere).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool f16c = false;  // Hardware fp32<->fp16 conversion (VCVTPH2PS).
  std::string ToString() const;
};
CpuFeatures DetectCpuFeatures();

/// Parses "auto" / "scalar" / "vector"; InvalidArgument otherwise.
Result<KernelMode> ParseKernelMode(std::string_view name);
std::string_view KernelModeName(KernelMode mode);
std::string_view KernelPathName(KernelPath path);

/// Resolves `mode` to an executable path. The HETKG_KERNEL environment
/// variable (same values as the flag) overrides kAuto only — explicit
/// `--kernel=scalar|vector` wins over the environment, which lets the
/// CI matrix steer default-configured binaries without re-plumbing.
KernelPath ResolveKernelPath(KernelMode mode);

/// Sets the process-wide dispatch. Because every path is bit-identical,
/// switching modes mid-process cannot change results — only speed.
void SetKernelMode(KernelMode mode);
KernelMode ActiveMode();
KernelPath ActivePath();

/// True when the batched kernels should take their vectorized paths.
bool UseVectorPath();

/// ActivePath() as a double, for the `kernel.dispatch` metric gauge.
double DispatchGauge();

/// The HETKG_KERNEL value observed by the most recent dispatch
/// resolution ("<unset>" when absent). The environment is read exactly
/// once per resolution; this snapshot is what the startup log reports,
/// so log and dispatch can never disagree.
std::string DispatchEnvSnapshot();

/// Logs detected CPU features + the chosen kernel path once per
/// process (engines call this at startup).
void LogDispatchOnce();

// -- Deterministic lane reduction --------------------------------------

/// Fixed accumulation width: element j of a reduction is accumulated
/// into lane j % kLaneWidth on every path (one AVX2 float vector).
inline constexpr size_t kLaneWidth = 8;

/// Canonical merge of the 8 partial lanes. The tree shape is part of
/// the determinism contract — every kernel path funnels through it.
inline double TreeReduce8(const double lane[kLaneWidth]) {
  const double s01 = lane[0] + lane[1];
  const double s23 = lane[2] + lane[3];
  const double s45 = lane[4] + lane[5];
  const double s67 = lane[6] + lane[7];
  return (s01 + s23) + (s45 + s67);
}

/// Reusable per-thread/per-chunk scratch for the hoisted query
/// intermediates (h+r, h∘r, the ComplEx (A, B) pair). Contents never
/// affect results; holding one per chunk amortizes allocations.
struct KernelScratch {
  std::vector<double> a;
  std::vector<double> b;
};

// -- Canonical per-triple kernels --------------------------------------
// The scalar ScoreFunction API of TransE/DistMult/ComplEx delegates
// here; these dispatch on ActivePath() like the batch entry points and
// define the canonical bits every other path must reproduce.

double TransEScore(int p, std::span<const float> h, std::span<const float> r,
                   std::span<const float> t);
void TransEScoreBackward(int p, std::span<const float> h,
                         std::span<const float> r, std::span<const float> t,
                         double upstream, std::span<float> gh,
                         std::span<float> gr, std::span<float> gt);

double DistMultScore(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t);
void DistMultScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt);

double ComplExScore(std::span<const float> h, std::span<const float> r,
                    std::span<const float> t);
void ComplExScoreBackward(std::span<const float> h, std::span<const float> r,
                          std::span<const float> t, double upstream,
                          std::span<float> gh, std::span<float> gr,
                          std::span<float> gt);

// -- Batched kernels ---------------------------------------------------
// Score `triples` (resp. accumulate their gradients) in one call.
// Triples sharing (h, r) with `ref` reuse a hoisted per-query
// intermediate; all others take the full vectorized form. Output is
// bit-identical to looping the per-triple kernels above, on every
// dispatch path. Backward applies entries in ascending index order and
// skips any k with upstreams[k] == 0 (its GradView may be empty).

void TransEScoreBatch(int p, const TripleView& ref,
                      std::span<const TripleView> triples,
                      std::span<double> scores, KernelScratch* scratch);
void TransEScoreBackwardBatch(int p, const TripleView& ref,
                              std::span<const TripleView> triples,
                              std::span<const double> upstreams,
                              std::span<const GradView> grads,
                              KernelScratch* scratch);

void DistMultScoreBatch(const TripleView& ref,
                        std::span<const TripleView> triples,
                        std::span<double> scores, KernelScratch* scratch);
void DistMultScoreBackwardBatch(const TripleView& ref,
                                std::span<const TripleView> triples,
                                std::span<const double> upstreams,
                                std::span<const GradView> grads,
                                KernelScratch* scratch);

void ComplExScoreBatch(const TripleView& ref,
                       std::span<const TripleView> triples,
                       std::span<double> scores, KernelScratch* scratch);
void ComplExScoreBackwardBatch(const TripleView& ref,
                               std::span<const TripleView> triples,
                               std::span<const double> upstreams,
                               std::span<const GradView> grads,
                               KernelScratch* scratch);

/// Vectorized sparse-AdaGrad row update:
///   acc[j] += float(g*g);  row[j] -= float(lr * g / sqrt(acc[j] + eps))
/// with g = double(grad[j]). sqrt and divide are IEEE-exact, so the
/// SIMD path is bit-identical to AdaGrad::Apply's scalar loop.
void AdaGradApplyRow(std::span<float> row, std::span<const float> grad,
                     float* acc, double learning_rate, double epsilon);

// -- Cold-tier row codecs (DESIGN.md §16) ------------------------------
// The quantize-on-write-back / dequantize-on-pull primitives of the
// tiered embedding store (embedding/tiered_store.h). They follow the
// same contract as every other kernel here: the scalar loop and the
// AVX2/F16C path produce identical bits, so `--kernel` stays a pure
// performance knob even when cold rows round-trip through int8/fp16.
//
// fp16 is IEEE binary16 with round-to-nearest-even (the F16C hardware
// rounding); the scalar encoder reproduces the hardware bits exactly,
// including denormal and infinity handling. int8 is per-row affine:
//   scale = (max - min) / 255,  q[j] = rne((v[j] - min) / scale)
// stored alongside the row; decode is v = min + q * scale (explicit
// mul+add, never an FMA, so vector and scalar bits agree).

/// fp32 -> binary16 (RNE), one value. Exposed for tests.
uint16_t Fp16FromFloat(float v);
/// binary16 -> fp32, exact.
float Fp16ToFloat(uint16_t h);

/// Row encode/decode; `dst`/`src` hold src.size() halves.
void EncodeRowFp16(std::span<const float> src, uint16_t* dst);
void DecodeRowFp16(const uint16_t* src, std::span<float> dst);

/// Row encode: writes q[j] for all j and the row's (scale, min) affine
/// parameters. A constant row encodes as scale 0 (all q = 0).
void EncodeRowInt8(std::span<const float> src, uint8_t* q, float* scale,
                   float* min);
void DecodeRowInt8(const uint8_t* q, float scale, float min,
                   std::span<float> dst);

}  // namespace kernels
}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_KERNELS_H_
