#include "embedding/transr.h"

#include <cassert>
#include <vector>

namespace hetkg::embedding {

namespace {

/// e = M (h - t) + r, shared by forward and backward.
void Residual(std::span<const float> h, std::span<const float> rel,
              std::span<const float> t, std::vector<double>* e) {
  const size_t d = h.size();
  const float* m = rel.data();
  const float* r = rel.data() + d * d;
  e->resize(d);
  for (size_t i = 0; i < d; ++i) {
    double acc = r[i];
    const float* row = m + i * d;
    for (size_t j = 0; j < d; ++j) {
      acc += static_cast<double>(row[j]) * (h[j] - t[j]);
    }
    (*e)[i] = acc;
  }
}

}  // namespace

double TransR::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  assert(r.size() == h.size() * h.size() + h.size());
  std::vector<double> e;
  Residual(h, r, t, &e);
  double acc = 0.0;
  for (double v : e) {
    acc += v * v;
  }
  return -acc;
}

void TransR::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  const size_t d = h.size();
  assert(r.size() == d * d + d && gr.size() == d * d + d);
  std::vector<double> e;
  Residual(h, r, t, &e);

  // score = -e.e with e = M(h-t) + r:
  //   d/dh_j   = -2 sum_i e_i M_ij          d/dt_j = +2 sum_i e_i M_ij
  //   d/dM_ij  = -2 e_i (h_j - t_j)         d/dr_i = -2 e_i
  const float* m = r.data();
  float* gm = gr.data();
  float* gtrans = gr.data() + d * d;
  const double u = upstream;
  for (size_t i = 0; i < d; ++i) {
    const double coeff = -2.0 * e[i] * u;
    gtrans[i] += static_cast<float>(coeff);
    const float* row = m + i * d;
    float* grow = gm + i * d;
    for (size_t j = 0; j < d; ++j) {
      grow[j] += static_cast<float>(coeff * (h[j] - t[j]));
      gh[j] += static_cast<float>(coeff * row[j]);
      gt[j] -= static_cast<float>(coeff * row[j]);
    }
  }
}

}  // namespace hetkg::embedding
