#ifndef HETKG_EMBEDDING_LOSS_H_
#define HETKG_EMBEDDING_LOSS_H_

#include <memory>
#include <string_view>

#include "common/status.h"

namespace hetkg::embedding {

/// Loss value and its partials w.r.t. the positive and negative scores.
struct LossGrad {
  double loss = 0.0;
  double dpos = 0.0;
  double dneg = 0.0;
};

/// A pairwise training objective over (positive score, negative score).
/// KGE training generates `n` negatives per positive; the loss sees each
/// (positive, negative) pair once, so implementations that also penalize
/// the positive on its own weight that term by 1/n to avoid counting it
/// n times.
class LossFunction {
 public:
  virtual ~LossFunction() = default;
  virtual std::string_view name() const = 0;

  /// Loss and gradients for one (positive, negative) score pair.
  virtual LossGrad PairLoss(double pos_score, double neg_score) const = 0;
};

/// Margin ranking loss (the paper's Eq. 2):
///   L = max(0, gamma - pos + neg)
/// dL/dpos = -1 and dL/dneg = +1 when the margin is violated, else 0.
class MarginRankingLoss : public LossFunction {
 public:
  explicit MarginRankingLoss(double margin) : margin_(margin) {}
  std::string_view name() const override { return "margin"; }
  LossGrad PairLoss(double pos_score, double neg_score) const override;
  double margin() const { return margin_; }

 private:
  double margin_;
};

/// Logistic loss (the paper's Eq. 1):
///   L = softplus(-pos) / n + softplus(neg)
/// where n = negatives per positive so the positive term is counted
/// exactly once per positive triple across its n pairs.
class LogisticLoss : public LossFunction {
 public:
  explicit LogisticLoss(size_t negatives_per_positive)
      : pos_weight_(1.0 / static_cast<double>(
                              negatives_per_positive == 0
                                  ? 1
                                  : negatives_per_positive)) {}
  std::string_view name() const override { return "logistic"; }
  LossGrad PairLoss(double pos_score, double neg_score) const override;

 private:
  double pos_weight_;
};

/// Parses "margin" / "logistic".
Result<std::unique_ptr<LossFunction>> MakeLossFunction(
    std::string_view name, double margin, size_t negatives_per_positive);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_LOSS_H_
