#ifndef HETKG_EMBEDDING_SCORE_FUNCTION_H_
#define HETKG_EMBEDDING_SCORE_FUNCTION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"
#include "embedding/kernels.h"

namespace hetkg::embedding {

/// Supported KGE scoring models. TransE and DistMult are the models the
/// paper evaluates (Sec. VI-A); the others are the related-work models
/// (Sec. II) implemented as library extensions.
enum class ModelKind {
  kTransEL1,
  kTransEL2,
  kDistMult,
  kComplEx,
  kTransH,
  kTransR,
  kTransD,
  kHolE,
  kRescal,
};

/// Parses "transe_l1" / "transe_l2" / "distmult" / "complex" / "transh" /
/// "transr" / "transd" / "hole" / "rescal"; InvalidArgument otherwise.
Result<ModelKind> ParseModelKind(std::string_view name);
std::string_view ModelKindName(ModelKind kind);

/// A triple scoring function f_r(h, t) with hand-derived exact
/// gradients. Convention: HIGHER score means MORE plausible (distance
/// models return negated distances), so all loss code is model-agnostic.
///
/// Entity rows have length `entity_dim`; relation rows have length
/// `RelationDim(entity_dim)` (TransH stores [normal w; translation d],
/// RESCAL stores a d x d matrix).
class ScoreFunction {
 public:
  virtual ~ScoreFunction() = default;

  virtual ModelKind kind() const = 0;
  std::string_view name() const { return ModelKindName(kind()); }

  /// Relation-row width for a given entity dimension.
  virtual size_t RelationDim(size_t entity_dim) const { return entity_dim; }

  /// Plausibility score of (h, r, t).
  virtual double Score(std::span<const float> h, std::span<const float> r,
                       std::span<const float> t) const = 0;

  /// Accumulates d(upstream * score)/d{h,r,t} into the gradient spans
  /// (callers zero or reuse them for accumulation across samples).
  virtual void ScoreBackward(std::span<const float> h,
                             std::span<const float> r,
                             std::span<const float> t, double upstream,
                             std::span<float> gh, std::span<float> gr,
                             std::span<float> gt) const = 0;

  /// Scores `triples` in one call (scores[k] = Score(triples[k])). A
  /// triple sharing its (h, r) rows with `ref` — detected by data
  /// pointer — may reuse a hoisted per-query intermediate. Output is
  /// bit-identical to calling Score() per triple on every kernel path;
  /// the base implementation simply loops the scalar API. `scratch`
  /// (optional) amortizes intermediate storage across calls.
  virtual void ScoreBatch(const TripleView& ref,
                          std::span<const TripleView> triples,
                          std::span<double> scores,
                          kernels::KernelScratch* scratch = nullptr) const;

  /// Batched ScoreBackward: accumulates d(upstreams[k] * score_k) into
  /// grads[k] for every k, in ascending index order. Entries with
  /// upstreams[k] == 0 are skipped and their GradView may be empty.
  /// Bit-identical to the equivalent scalar loop on every kernel path.
  virtual void ScoreBackwardBatch(
      const TripleView& ref, std::span<const TripleView> triples,
      std::span<const double> upstreams, std::span<const GradView> grads,
      kernels::KernelScratch* scratch = nullptr) const;

  /// Approximate forward+backward floating-point operations per triple,
  /// used by the simulator's compute cost model.
  virtual uint64_t FlopsPerTriple(size_t entity_dim) const {
    return 8 * static_cast<uint64_t>(entity_dim);
  }

  /// Whether entity rows should be L2-normalized after updates (the
  /// TransE-family convention).
  virtual bool NormalizesEntities() const { return false; }
};

/// Builds the scoring function for `kind`. `entity_dim` is validated
/// (e.g., ComplEx requires an even dimension).
Result<std::unique_ptr<ScoreFunction>> MakeScoreFunction(ModelKind kind,
                                                         size_t entity_dim);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_SCORE_FUNCTION_H_
