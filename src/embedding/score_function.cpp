#include "embedding/score_function.h"

#include "embedding/complex.h"
#include "embedding/distmult.h"
#include "embedding/hole.h"
#include "embedding/rescal.h"
#include "embedding/transd.h"
#include "embedding/transe.h"
#include "embedding/transh.h"
#include "embedding/transr.h"

namespace hetkg::embedding {

void ScoreFunction::ScoreBatch(const TripleView& ref,
                               std::span<const TripleView> triples,
                               std::span<double> scores,
                               kernels::KernelScratch* scratch) const {
  (void)ref;
  (void)scratch;
  for (size_t k = 0; k < triples.size(); ++k) {
    scores[k] = Score(triples[k].h, triples[k].r, triples[k].t);
  }
}

void ScoreFunction::ScoreBackwardBatch(const TripleView& ref,
                                       std::span<const TripleView> triples,
                                       std::span<const double> upstreams,
                                       std::span<const GradView> grads,
                                       kernels::KernelScratch* scratch) const {
  (void)ref;
  (void)scratch;
  for (size_t k = 0; k < triples.size(); ++k) {
    if (upstreams[k] == 0.0) continue;
    ScoreBackward(triples[k].h, triples[k].r, triples[k].t, upstreams[k],
                  grads[k].h, grads[k].r, grads[k].t);
  }
}

Result<ModelKind> ParseModelKind(std::string_view name) {
  if (name == "transe" || name == "transe_l1") return ModelKind::kTransEL1;
  if (name == "transe_l2") return ModelKind::kTransEL2;
  if (name == "distmult") return ModelKind::kDistMult;
  if (name == "complex") return ModelKind::kComplEx;
  if (name == "transh") return ModelKind::kTransH;
  if (name == "transr") return ModelKind::kTransR;
  if (name == "transd") return ModelKind::kTransD;
  if (name == "hole") return ModelKind::kHolE;
  if (name == "rescal") return ModelKind::kRescal;
  return Status::InvalidArgument("unknown model: " + std::string(name));
}

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransEL1:
      return "TransE-L1";
    case ModelKind::kTransEL2:
      return "TransE-L2";
    case ModelKind::kDistMult:
      return "DistMult";
    case ModelKind::kComplEx:
      return "ComplEx";
    case ModelKind::kTransH:
      return "TransH";
    case ModelKind::kTransR:
      return "TransR";
    case ModelKind::kTransD:
      return "TransD";
    case ModelKind::kHolE:
      return "HolE";
    case ModelKind::kRescal:
      return "RESCAL";
  }
  return "Unknown";
}

Result<std::unique_ptr<ScoreFunction>> MakeScoreFunction(ModelKind kind,
                                                         size_t entity_dim) {
  if (entity_dim == 0) {
    return Status::InvalidArgument("entity_dim must be positive");
  }
  switch (kind) {
    case ModelKind::kTransEL1:
      return std::unique_ptr<ScoreFunction>(new TransE(1));
    case ModelKind::kTransEL2:
      return std::unique_ptr<ScoreFunction>(new TransE(2));
    case ModelKind::kDistMult:
      return std::unique_ptr<ScoreFunction>(new DistMult());
    case ModelKind::kComplEx:
      if (entity_dim % 2 != 0) {
        return Status::InvalidArgument("ComplEx requires an even dimension");
      }
      return std::unique_ptr<ScoreFunction>(new ComplEx());
    case ModelKind::kTransH:
      return std::unique_ptr<ScoreFunction>(new TransH());
    case ModelKind::kTransR:
      return std::unique_ptr<ScoreFunction>(new TransR());
    case ModelKind::kTransD:
      if (entity_dim % 2 != 0) {
        return Status::InvalidArgument("TransD requires an even dimension");
      }
      return std::unique_ptr<ScoreFunction>(new TransD());
    case ModelKind::kHolE:
      return std::unique_ptr<ScoreFunction>(new HolE());
    case ModelKind::kRescal:
      return std::unique_ptr<ScoreFunction>(new Rescal());
  }
  return Status::InvalidArgument("unknown model kind");
}

}  // namespace hetkg::embedding
