#ifndef HETKG_EMBEDDING_DISTMULT_H_
#define HETKG_EMBEDDING_DISTMULT_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// DistMult (Yang et al., 2015): score(h, r, t) = sum_i h_i * r_i * t_i,
/// i.e., RESCAL restricted to a diagonal relation matrix. The semantic-
/// matching model used in the paper's FB15k and WN18 experiments.
class DistMult : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kDistMult; }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  void ScoreBatch(const TripleView& ref, std::span<const TripleView> triples,
                  std::span<double> scores,
                  kernels::KernelScratch* scratch) const override;

  void ScoreBackwardBatch(const TripleView& ref,
                          std::span<const TripleView> triples,
                          std::span<const double> upstreams,
                          std::span<const GradView> grads,
                          kernels::KernelScratch* scratch) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    return 9 * static_cast<uint64_t>(entity_dim);
  }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_DISTMULT_H_
