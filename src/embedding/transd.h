#ifndef HETKG_EMBEDDING_TRANSD_H_
#define HETKG_EMBEDDING_TRANSD_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// TransD (Ji et al., 2015): replaces TransR's projection matrix with
/// two projection vectors, cutting the cost from O(d^2) back to O(d)
/// "while achieving the same effect as TransR" (paper Sec. II).
///
/// Rows are split in halves: an entity row of width d stores
/// [e | e_p] (k = d/2 each); a relation row stores [r | r_p].
/// With the dynamic mapping M_re = r_p e_p^T + I:
///   h_proj = h + (h_p . h) r_p,  t_proj = t + (t_p . t) r_p
///   score  = -|| h_proj + r - t_proj ||_2^2
/// Requires an even dimension.
class TransD : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kTransD; }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    return 24 * static_cast<uint64_t>(entity_dim);
  }

  bool NormalizesEntities() const override { return true; }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_TRANSD_H_
