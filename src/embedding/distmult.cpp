#include "embedding/distmult.h"

#include <cassert>

#include "embedding/kernels.h"

namespace hetkg::embedding {

// The math lives in embedding/kernels.cpp; the scalar API delegates to
// the canonical per-triple kernels so Score/ScoreBackward and the batch
// overrides share one floating-point operation order (DESIGN.md §10).

double DistMult::Score(std::span<const float> h, std::span<const float> r,
                       std::span<const float> t) const {
  assert(h.size() == r.size() && h.size() == t.size());
  return kernels::DistMultScore(h, r, t);
}

void DistMult::ScoreBackward(std::span<const float> h,
                             std::span<const float> r,
                             std::span<const float> t, double upstream,
                             std::span<float> gh, std::span<float> gr,
                             std::span<float> gt) const {
  assert(h.size() == r.size() && h.size() == t.size());
  kernels::DistMultScoreBackward(h, r, t, upstream, gh, gr, gt);
}

void DistMult::ScoreBatch(const TripleView& ref,
                          std::span<const TripleView> triples,
                          std::span<double> scores,
                          kernels::KernelScratch* scratch) const {
  kernels::DistMultScoreBatch(ref, triples, scores, scratch);
}

void DistMult::ScoreBackwardBatch(const TripleView& ref,
                                  std::span<const TripleView> triples,
                                  std::span<const double> upstreams,
                                  std::span<const GradView> grads,
                                  kernels::KernelScratch* scratch) const {
  kernels::DistMultScoreBackwardBatch(ref, triples, upstreams, grads, scratch);
}

}  // namespace hetkg::embedding
