#include "embedding/distmult.h"

#include <cassert>

namespace hetkg::embedding {

double DistMult::Score(std::span<const float> h, std::span<const float> r,
                       std::span<const float> t) const {
  assert(h.size() == r.size() && h.size() == t.size());
  double acc = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    acc += static_cast<double>(h[i]) * r[i] * t[i];
  }
  return acc;
}

void DistMult::ScoreBackward(std::span<const float> h,
                             std::span<const float> r,
                             std::span<const float> t, double upstream,
                             std::span<float> gh, std::span<float> gr,
                             std::span<float> gt) const {
  assert(h.size() == r.size() && h.size() == t.size());
  for (size_t i = 0; i < h.size(); ++i) {
    gh[i] += static_cast<float>(upstream * r[i] * t[i]);
    gr[i] += static_cast<float>(upstream * h[i] * t[i]);
    gt[i] += static_cast<float>(upstream * h[i] * r[i]);
  }
}

}  // namespace hetkg::embedding
