#include "embedding/adagrad.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "embedding/kernels.h"

namespace hetkg::embedding {

AdaGrad::AdaGrad(size_t num_rows, size_t dim, double learning_rate,
                 double epsilon)
    : dim_(dim),
      learning_rate_(learning_rate),
      epsilon_(epsilon),
      accum_(num_rows * dim, 0.0f) {
  assert(dim > 0);
  assert(learning_rate > 0.0);
  accum_data_ = accum_.data();
  accum_size_ = accum_.size();
}

Result<AdaGrad> AdaGrad::CreateTiered(size_t num_rows, size_t dim,
                                      double learning_rate,
                                      const TieredOptions& opts,
                                      const std::string& name,
                                      double epsilon) {
  if (!opts.enabled) {
    return AdaGrad(num_rows, dim, learning_rate, epsilon);
  }
  if (dim == 0 || learning_rate <= 0.0) {
    return Status::InvalidArgument("tiered optimizer " + name +
                                   ": bad dim/learning_rate");
  }
  HETKG_ASSIGN_OR_RETURN(
      MmapFile slab,
      MmapFile::Create(ColdSlabPath(opts.cold_dir, name),
                       num_rows * dim * sizeof(float)));
  AdaGrad opt;
  opt.dim_ = dim;
  opt.learning_rate_ = learning_rate;
  opt.epsilon_ = epsilon;
  opt.cold_ = std::move(slab);
  opt.accum_data_ = reinterpret_cast<float*>(opt.cold_.data());
  opt.accum_size_ = num_rows * dim;
  return opt;
}

void AdaGrad::ResetRow(size_t i) {
  float* acc = accum_data_ + i * dim_;
  std::fill(acc, acc + dim_, 0.0f);
}

void AdaGrad::Apply(size_t row_index, std::span<float> row,
                    std::span<const float> grad) {
  assert(row.size() == dim_);
  assert(grad.size() == dim_);
  float* acc = accum_data_ + row_index * dim_;
  for (size_t j = 0; j < dim_; ++j) {
    const double g = grad[j];
    acc[j] += static_cast<float>(g * g);
    row[j] -= static_cast<float>(learning_rate_ * g /
                                 std::sqrt(static_cast<double>(acc[j]) + epsilon_));
  }
}

void AdaGrad::ApplyBatch(size_t row_index, std::span<float> row,
                         std::span<const float> grad) {
  assert(row.size() == dim_);
  assert(grad.size() == dim_);
  if (!kernels::UseVectorPath()) {
    Apply(row_index, row, grad);
    return;
  }
  kernels::AdaGradApplyRow(row, grad, accum_data_ + row_index * dim_,
                           learning_rate_, epsilon_);
}

}  // namespace hetkg::embedding
