#ifndef HETKG_EMBEDDING_ADAGRAD_H_
#define HETKG_EMBEDDING_ADAGRAD_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "embedding/tiered_store.h"

namespace hetkg::embedding {

/// Sparse AdaGrad (Duchi et al.), the optimizer used by the paper's
/// Algorithm 4 on the parameter server:
///   G_i  += g_i * g_i            (per-coordinate accumulator)
///   w_i  -= lr * g_i / sqrt(G_i + eps)
///
/// State is one accumulator per parameter, allocated per row lazily is
/// unnecessary here since tables are dense; we keep a parallel table.
///
/// The accumulator is ALWAYS fp32 — under --storage=tiered it moves
/// behind an mmap slab alongside the cold embedding rows (the paper
/// notes AdaGrad's extra memory cost in Sec. VI-A; at Freebase-86m
/// scale that cost must also live behind the file, not the heap), but
/// it is never quantized: second-moment accumulation in reduced
/// precision stalls the step size.
class AdaGrad {
 public:
  /// `num_rows` x `dim` accumulator initialized to zero (in-RAM).
  AdaGrad(size_t num_rows, size_t dim, double learning_rate,
          double epsilon = 1e-10);

  AdaGrad(AdaGrad&&) noexcept = default;
  AdaGrad& operator=(AdaGrad&&) noexcept = default;
  AdaGrad(const AdaGrad&) = delete;
  AdaGrad& operator=(const AdaGrad&) = delete;

  /// In-RAM when !opts.enabled; otherwise the accumulator is an fp32
  /// mmap slab "<opts.cold_dir>/<name>.cold.tmp" regardless of
  /// opts.dtype (see class comment).
  static Result<AdaGrad> CreateTiered(size_t num_rows, size_t dim,
                                      double learning_rate,
                                      const TieredOptions& opts,
                                      const std::string& name,
                                      double epsilon = 1e-10);

  /// Applies gradient `grad` to parameter row `row` (both length dim).
  void Apply(size_t row_index, std::span<float> row,
             std::span<const float> grad);

  /// Vectorized Apply (embedding/kernels.cpp): whole-row accumulator
  /// update + step, bit-identical to Apply on every kernel path. Use on
  /// hot paths; falls back to Apply under --kernel=scalar.
  void ApplyBatch(size_t row_index, std::span<float> row,
                  std::span<const float> grad);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double epsilon() const { return epsilon_; }
  size_t dim() const { return dim_; }
  size_t num_rows() const { return dim_ == 0 ? 0 : accum_size_ / dim_; }

  /// Accumulator row, exposed for tests and for checkpointing.
  std::span<const float> AccumulatorRow(size_t i) const {
    return {accum_data_ + i * dim_, dim_};
  }

  /// Overwrites one row's accumulator (row-granular shard restore).
  void SetAccumulatorRow(size_t i, std::span<const float> value) {
    std::copy(value.begin(), value.end(), accum_data_ + i * dim_);
  }

  /// Overwrites the whole accumulator (validate-then-commit restores;
  /// `data` must hold exactly num_rows * dim floats).
  void SetAccumulatorData(std::span<const float> data) {
    assert(data.size() == accum_size_);
    std::copy(data.begin(), data.end(), accum_data_);
  }

  /// Clears one row's accumulator (used when a cache slot is reassigned
  /// to a different embedding).
  void ResetRow(size_t i);

  /// Memory held by the optimizer state.
  size_t SizeBytes() const { return accum_size_ * sizeof(float); }

  /// Mapped accumulator bytes (0 when in-RAM) — `tier.bytes_mapped`.
  size_t ColdBytes() const { return cold_.valid() ? cold_.size() : 0; }

  /// Full accumulator as one fp32 span (checkpoint streaming).
  std::span<const float> AccumulatorData() const {
    return {accum_data_, accum_size_};
  }

  /// msync the mmap-backed accumulator (no-op in-RAM).
  Status SyncCold() const {
    return cold_.valid() ? cold_.Sync() : Status::OK();
  }

  /// Drops resident accumulator pages (no-op in-RAM).
  void DropColdResidency() const {
    if (cold_.valid()) cold_.DropResidency();
  }

  /// Accumulator round-trip for the HETKGCK2 training snapshots (shape
  /// parameters come from config; only the accumulators are state).
  void SaveState(ByteWriter* w) const {
    w->FloatVec(std::span<const float>(accum_data_, accum_size_));
  }
  bool LoadState(ByteReader* r) {
    std::vector<float> accum = r->FloatVec();
    if (!r->ok() || accum.size() != accum_size_) return false;
    std::copy(accum.begin(), accum.end(), accum_data_);
    return true;
  }

 private:
  AdaGrad() = default;

  size_t dim_ = 0;
  double learning_rate_ = 0.0;
  double epsilon_ = 1e-10;
  std::vector<float> accum_;       // In-RAM backend only.
  MmapFile cold_;                  // Tiered backend only.
  float* accum_data_ = nullptr;    // accum_.data() or the slab base.
  size_t accum_size_ = 0;          // Total floats (num_rows * dim).
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_ADAGRAD_H_
