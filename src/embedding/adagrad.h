#ifndef HETKG_EMBEDDING_ADAGRAD_H_
#define HETKG_EMBEDDING_ADAGRAD_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/serialize.h"

namespace hetkg::embedding {

/// Sparse AdaGrad (Duchi et al.), the optimizer used by the paper's
/// Algorithm 4 on the parameter server:
///   G_i  += g_i * g_i            (per-coordinate accumulator)
///   w_i  -= lr * g_i / sqrt(G_i + eps)
///
/// State is one accumulator per parameter, allocated per row lazily is
/// unnecessary here since tables are dense; we keep a parallel table.
class AdaGrad {
 public:
  /// `num_rows` x `dim` accumulator initialized to zero.
  AdaGrad(size_t num_rows, size_t dim, double learning_rate,
          double epsilon = 1e-10);

  /// Applies gradient `grad` to parameter row `row` (both length dim).
  void Apply(size_t row_index, std::span<float> row,
             std::span<const float> grad);

  /// Vectorized Apply (embedding/kernels.cpp): whole-row accumulator
  /// update + step, bit-identical to Apply on every kernel path. Use on
  /// hot paths; falls back to Apply under --kernel=scalar.
  void ApplyBatch(size_t row_index, std::span<float> row,
                  std::span<const float> grad);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }
  size_t dim() const { return dim_; }

  /// Accumulator row, exposed for tests and for checkpointing.
  std::span<const float> AccumulatorRow(size_t i) const {
    return {accum_.data() + i * dim_, dim_};
  }

  /// Overwrites one row's accumulator (row-granular shard restore).
  void SetAccumulatorRow(size_t i, std::span<const float> value) {
    std::copy(value.begin(), value.end(), accum_.begin() + i * dim_);
  }

  /// Clears one row's accumulator (used when a cache slot is reassigned
  /// to a different embedding).
  void ResetRow(size_t i);

  /// Memory held by the optimizer state (the paper notes AdaGrad's
  /// extra memory cost in Sec. VI-A).
  size_t SizeBytes() const { return accum_.size() * sizeof(float); }

  /// Accumulator round-trip for the HETKGCK2 training snapshots (shape
  /// parameters come from config; only the accumulators are state).
  void SaveState(ByteWriter* w) const { w->FloatVec(accum_); }
  bool LoadState(ByteReader* r) {
    std::vector<float> accum = r->FloatVec();
    if (!r->ok() || accum.size() != accum_.size()) return false;
    accum_ = std::move(accum);
    return true;
  }

 private:
  size_t dim_;
  double learning_rate_;
  double epsilon_;
  std::vector<float> accum_;
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_ADAGRAD_H_
