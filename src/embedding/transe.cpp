#include "embedding/transe.h"

#include <cassert>

#include "embedding/kernels.h"

namespace hetkg::embedding {

// The math lives in embedding/kernels.cpp; the scalar API delegates to
// the canonical per-triple kernels so Score/ScoreBackward and the batch
// overrides share one floating-point operation order (DESIGN.md §10).

TransE::TransE(int p) : p_(p) { assert(p == 1 || p == 2); }

double TransE::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  return kernels::TransEScore(p_, h, r, t);
}

void TransE::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  kernels::TransEScoreBackward(p_, h, r, t, upstream, gh, gr, gt);
}

void TransE::ScoreBatch(const TripleView& ref,
                        std::span<const TripleView> triples,
                        std::span<double> scores,
                        kernels::KernelScratch* scratch) const {
  kernels::TransEScoreBatch(p_, ref, triples, scores, scratch);
}

void TransE::ScoreBackwardBatch(const TripleView& ref,
                                std::span<const TripleView> triples,
                                std::span<const double> upstreams,
                                std::span<const GradView> grads,
                                kernels::KernelScratch* scratch) const {
  kernels::TransEScoreBackwardBatch(p_, ref, triples, upstreams, grads,
                                    scratch);
}

}  // namespace hetkg::embedding
