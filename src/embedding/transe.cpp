#include "embedding/transe.h"

#include <cassert>
#include <cmath>

namespace hetkg::embedding {

TransE::TransE(int p) : p_(p) { assert(p == 1 || p == 2); }

double TransE::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  assert(h.size() == r.size() && h.size() == t.size());
  double acc = 0.0;
  if (p_ == 1) {
    for (size_t i = 0; i < h.size(); ++i) {
      acc += std::fabs(static_cast<double>(h[i]) + r[i] - t[i]);
    }
    return -acc;
  }
  for (size_t i = 0; i < h.size(); ++i) {
    const double e = static_cast<double>(h[i]) + r[i] - t[i];
    acc += e * e;
  }
  return -std::sqrt(acc);
}

void TransE::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  assert(h.size() == r.size() && h.size() == t.size());
  assert(gh.size() == h.size() && gr.size() == r.size() &&
         gt.size() == t.size());
  if (p_ == 1) {
    // d(-|e|_1)/de_i = -sign(e_i).
    for (size_t i = 0; i < h.size(); ++i) {
      const double e = static_cast<double>(h[i]) + r[i] - t[i];
      const double s = e > 0.0 ? 1.0 : (e < 0.0 ? -1.0 : 0.0);
      const float g = static_cast<float>(-upstream * s);
      gh[i] += g;
      gr[i] += g;
      gt[i] -= g;
    }
    return;
  }
  // d(-||e||_2)/de_i = -e_i / ||e||_2.
  double norm_sq = 0.0;
  for (size_t i = 0; i < h.size(); ++i) {
    const double e = static_cast<double>(h[i]) + r[i] - t[i];
    norm_sq += e * e;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm <= 1e-12) return;  // Gradient is zero at the exact minimum.
  const double scale = -upstream / norm;
  for (size_t i = 0; i < h.size(); ++i) {
    const double e = static_cast<double>(h[i]) + r[i] - t[i];
    const float g = static_cast<float>(scale * e);
    gh[i] += g;
    gr[i] += g;
    gt[i] -= g;
  }
}

}  // namespace hetkg::embedding
