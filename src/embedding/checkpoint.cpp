#include "embedding/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/fs_sync.h"

namespace hetkg::embedding {

namespace {

constexpr char kMagicV1[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '1'};
constexpr char kMagicV2[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '2'};
constexpr char kMagicV3[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '3'};

// Refuse absurd shapes before allocating.
constexpr uint64_t kMaxElements = 1ULL << 36;  // 256 GiB of floats.
// Structural cap on one section (same bound, in bytes).
constexpr uint64_t kMaxSectionBytes = kMaxElements * sizeof(float);

// Sidecar streaming chunk (bounded memory for multi-GB slabs).
constexpr size_t kColdChunkBytes = size_t{4} << 20;

std::string ColdSuffix(uint32_t base_tag) {
  return ".cold" + std::to_string(base_tag);
}

/// Order-sensitive 64-bit mix over the payload — the legacy HETKGCK1
/// checksum, kept for read-compat only.
uint64_t ChecksumRowsV1(const EmbeddingTable& table, uint64_t state) {
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (float v : table.Row(i)) {
      uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      state = (state ^ bits) * 0x100000001B3ULL;
    }
  }
  return state;
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadRowsV1(std::ifstream& in, EmbeddingTable* table) {
  std::vector<float> row(table->dim());
  for (size_t i = 0; i < table->num_rows(); ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    if (!in) return false;
    table->SetRow(i, row);
  }
  return true;
}

/// Legacy fixed-layout reader (magic already consumed).
Result<Checkpoint> LoadCheckpointV1(std::ifstream& in,
                                    const std::string& path) {
  uint64_t num_entities = 0;
  uint64_t entity_dim = 0;
  uint64_t num_relations = 0;
  uint64_t relation_dim = 0;
  if (!ReadU64(in, &num_entities) || !ReadU64(in, &entity_dim) ||
      !ReadU64(in, &num_relations) || !ReadU64(in, &relation_dim)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  if (num_entities == 0 || entity_dim == 0 || num_relations == 0 ||
      relation_dim == 0) {
    return Status::Corruption("zero-sized table in checkpoint header");
  }
  if (num_entities * entity_dim > kMaxElements ||
      num_relations * relation_dim > kMaxElements) {
    return Status::Corruption("implausible checkpoint shape");
  }

  Checkpoint ck;
  ck.entities = EmbeddingTable(num_entities, entity_dim);
  ck.relations = EmbeddingTable(num_relations, relation_dim);
  if (!ReadRowsV1(in, &ck.entities) || !ReadRowsV1(in, &ck.relations)) {
    return Status::Corruption("truncated checkpoint payload in " + path);
  }
  uint64_t stored_checksum = 0;
  if (!ReadU64(in, &stored_checksum)) {
    return Status::Corruption("missing checkpoint checksum in " + path);
  }
  uint64_t checksum = 0xCBF29CE484222325ULL;
  checksum = ChecksumRowsV1(ck.entities, checksum);
  checksum = ChecksumRowsV1(ck.relations, checksum);
  if (checksum != stored_checksum) {
    return Status::Corruption("checkpoint checksum mismatch in " + path);
  }
  return ck;
}

Result<EmbeddingTable> DecodeTableSection(const std::string& payload) {
  ByteReader r(payload);
  const uint64_t num_rows = r.U64();
  const uint64_t dim = r.U64();
  if (!r.ok() || num_rows == 0 || dim == 0 ||
      num_rows * dim > kMaxElements) {
    return Status::Corruption("implausible checkpoint table shape");
  }
  EmbeddingTable table(num_rows, dim);
  std::vector<float> row(dim);
  for (uint64_t i = 0; i < num_rows; ++i) {
    if (!r.ReadRaw(row.data(), dim * sizeof(float))) {
      return Status::Corruption("truncated checkpoint table section");
    }
    table.SetRow(i, row);
  }
  return table;
}

}  // namespace

void CheckpointWriter::AddSection(SectionTag tag, ByteWriter payload) {
  Section section;
  section.tag = static_cast<uint32_t>(tag);
  section.payload = payload.buffer();
  payload_bytes_ += section.payload.size();
  sections_.push_back(std::move(section));
}

void CheckpointWriter::AddColdSidecar(SectionTag base_tag, ColdDtype dtype,
                                      uint64_t rows, uint64_t dim,
                                      const uint8_t* data, uint64_t bytes) {
  ColdRecord record;
  record.base_tag = static_cast<uint32_t>(base_tag);
  record.dtype = dtype;
  record.rows = rows;
  record.dim = dim;
  record.data = data;
  record.bytes = bytes;
  payload_bytes_ += bytes;
  cold_.push_back(record);
}

void CheckpointWriter::AddColdTable(SectionTag base_tag,
                                    const EmbeddingTable& table) {
  AddColdSidecar(base_tag, table.dtype(), table.num_rows(), table.dim(),
                 table.EncodedData(), table.ColdBytes());
}

void CheckpointWriter::AddColdFloats(SectionTag base_tag,
                                     std::span<const float> data,
                                     uint64_t rows, uint64_t dim) {
  AddColdSidecar(base_tag, ColdDtype::kFp32, rows, dim,
                 reinterpret_cast<const uint8_t*>(data.data()),
                 data.size() * sizeof(float));
}

namespace {

/// Streams `record.bytes` from `record.data` to "<target>.tmp" in
/// chunks, CRC-ing on the fly, then fsync+renames to `target` — the
/// same atomicity discipline as the container itself.
Status WriteColdSidecarFile(const std::string& target, const uint8_t* data,
                            uint64_t bytes, bool durable, uint32_t* crc_out) {
  const std::string tmp_path = target + ".tmp";
  uint32_t crc = Crc32Init();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    for (uint64_t off = 0; off < bytes; off += kColdChunkBytes) {
      const size_t len = static_cast<size_t>(
          std::min<uint64_t>(kColdChunkBytes, bytes - off));
      out.write(reinterpret_cast<const char*>(data + off),
                static_cast<std::streamsize>(len));
      if (!out) {
        return Status::IoError("short write to " + tmp_path);
      }
      crc = Crc32Update(crc, data + off, len);
    }
  }
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncFile(tmp_path));
  }
  if (std::rename(tmp_path.c_str(), target.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + target);
  }
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncParentDir(target));
  }
  *crc_out = Crc32Finish(crc);
  return Status::OK();
}

}  // namespace

Status CheckpointWriter::WriteAtomic(const std::string& path,
                                     bool durable) const {
  // Sidecars commit first: once the container (the commit point) is
  // visible, every sidecar it references already exists with final
  // bytes. A crash in between leaves sidecars with no container, which
  // the checkpoint manager's orphan sweep reclaims.
  std::vector<std::pair<const ColdRecord*, uint32_t>> cold_written;
  cold_written.reserve(cold_.size());
  for (const ColdRecord& record : cold_) {
    uint32_t crc = 0;
    HETKG_RETURN_IF_ERROR(
        WriteColdSidecarFile(path + ColdSuffix(record.base_tag), record.data,
                             record.bytes, durable, &crc));
    cold_written.emplace_back(&record, crc);
  }

  // Assemble the container in memory: its sections are bounded by the
  // (non-sidecar) training state, and a single buffered write keeps the
  // temp-file window (the only non-atomic step) minimal.
  std::string blob;
  blob.append(cold_.empty() ? kMagicV2 : kMagicV3, sizeof(kMagicV2));
  const uint64_t count = sections_.size() + cold_.size();
  blob.append(reinterpret_cast<const char*>(&count), sizeof(count));
  auto append_section = [&blob](uint32_t tag, const std::string& payload) {
    const uint32_t reserved = 0;
    const uint64_t len = payload.size();
    blob.append(reinterpret_cast<const char*>(&tag), sizeof(tag));
    blob.append(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    blob.append(reinterpret_cast<const char*>(&len), sizeof(len));
    blob.append(payload);
  };
  for (const Section& section : sections_) {
    append_section(section.tag, section.payload);
  }
  for (const auto& [record, crc] : cold_written) {
    ByteWriter meta;
    meta.U32(record->base_tag);
    meta.U32(static_cast<uint32_t>(record->dtype));
    meta.U64(record->rows);
    meta.U64(record->dim);
    meta.U64(record->bytes);
    meta.U32(crc);
    meta.Str(ColdSuffix(record->base_tag));
    append_section(static_cast<uint32_t>(SectionTag::kColdTableMeta),
                   meta.buffer());
  }
  const uint32_t crc = Crc32(blob.data(), blob.size());
  blob.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      return Status::IoError("short write to " + tmp_path);
    }
  }
  // Durability order: the temp file's bytes must be on stable storage
  // BEFORE the rename makes them reachable, and the directory entry
  // itself after — otherwise a power loss can leave the final name (or
  // a MANIFEST referencing it) pointing at a torn file that CRC-32
  // rejects exactly when the snapshot is needed.
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncFile(tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncParentDir(path));
  }
  return Status::OK();
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  if (blob.size() < sizeof(kMagicV2) + sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::Corruption("checkpoint too small: " + path);
  }
  const bool v3 = std::memcmp(blob.data(), kMagicV3, sizeof(kMagicV3)) == 0;
  if (!v3 && std::memcmp(blob.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t crc =
      Crc32(blob.data(), blob.size() - sizeof(stored_crc));
  if (crc != stored_crc) {
    return Status::Corruption("checkpoint CRC mismatch in " + path);
  }

  ByteReader r(blob.data() + sizeof(kMagicV2),
               blob.size() - sizeof(kMagicV2) - sizeof(stored_crc));
  const uint64_t count = r.U64();
  CheckpointReader reader;
  reader.path_ = path;
  for (uint64_t i = 0; i < count; ++i) {
    Section section;
    section.tag = r.U32();
    const uint32_t reserved = r.U32();
    const uint64_t len = r.U64();
    if (!r.ok() || reserved != 0 || len > kMaxSectionBytes ||
        len > r.remaining()) {
      return Status::Corruption("malformed checkpoint section in " + path);
    }
    section.payload.resize(len);
    r.ReadRaw(section.payload.data(), len);
    reader.sections_.push_back(std::move(section));
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("trailing bytes in checkpoint " + path);
  }

  // V3: parse sidecar metadata and verify each sidecar's size + CRC by
  // a streaming pass (payloads stay on disk).
  for (const Section& section : reader.sections_) {
    if (section.tag != static_cast<uint32_t>(SectionTag::kColdTableMeta)) {
      continue;
    }
    if (!v3) {
      return Status::Corruption("cold sidecar metadata in a V2 container: " +
                                path);
    }
    ByteReader mr(section.payload);
    ColdSidecar meta;
    meta.base_tag = mr.U32();
    meta.dtype = static_cast<ColdDtype>(mr.U32());
    meta.rows = mr.U64();
    meta.dim = mr.U64();
    meta.bytes = mr.U64();
    meta.crc = mr.U32();
    meta.suffix = mr.Str();
    if (!mr.ok() || mr.remaining() != 0 || meta.rows == 0 || meta.dim == 0 ||
        meta.rows * meta.dim > kMaxElements ||
        meta.bytes != meta.rows * ColdRowBytes(meta.dtype, meta.dim) ||
        meta.suffix.empty() || meta.suffix.find('/') != std::string::npos) {
      return Status::Corruption("malformed cold sidecar metadata in " + path);
    }
    uint32_t crc = Crc32Init();
    uint64_t seen = 0;
    HETKG_RETURN_IF_ERROR(reader.StreamCold(
        meta, [&crc, &seen](const uint8_t* chunk, size_t len) {
          crc = Crc32Update(crc, chunk, len);
          seen += len;
          return Status::OK();
        }));
    if (seen != meta.bytes || Crc32Finish(crc) != meta.crc) {
      return Status::Corruption("cold sidecar CRC mismatch for " + path +
                                meta.suffix);
    }
    reader.cold_.push_back(std::move(meta));
  }
  return reader;
}

const ColdSidecar* CheckpointReader::FindCold(SectionTag tag) const {
  for (const ColdSidecar& meta : cold_) {
    if (meta.base_tag == static_cast<uint32_t>(tag)) return &meta;
  }
  return nullptr;
}

Status CheckpointReader::StreamCold(
    const ColdSidecar& meta,
    const std::function<Status(const uint8_t* chunk, size_t len)>& sink)
    const {
  const std::string sidecar_path = path_ + meta.suffix;
  std::ifstream in(sidecar_path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open cold sidecar " + sidecar_path);
  }
  std::vector<uint8_t> chunk(
      static_cast<size_t>(std::min<uint64_t>(kColdChunkBytes, meta.bytes)));
  uint64_t remaining = meta.bytes;
  while (remaining > 0) {
    const size_t len =
        static_cast<size_t>(std::min<uint64_t>(chunk.size(), remaining));
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::Corruption("truncated cold sidecar " + sidecar_path);
    }
    HETKG_RETURN_IF_ERROR(sink(chunk.data(), len));
    remaining -= len;
  }
  in.peek();
  if (!in.eof()) {
    return Status::Corruption("trailing bytes in cold sidecar " +
                              sidecar_path);
  }
  return Status::OK();
}

Status CheckpointReader::ReadColdInto(const ColdSidecar& meta,
                                      uint8_t* dst) const {
  uint64_t off = 0;
  return StreamCold(meta, [dst, &off](const uint8_t* chunk, size_t len) {
    std::memcpy(dst + off, chunk, len);
    off += len;
    return Status::OK();
  });
}

const std::string* CheckpointReader::Find(SectionTag tag) const {
  for (const Section& section : sections_) {
    if (section.tag == static_cast<uint32_t>(tag)) return &section.payload;
  }
  return nullptr;
}

std::vector<const std::string*> CheckpointReader::FindAll(
    SectionTag tag) const {
  std::vector<const std::string*> out;
  for (const Section& section : sections_) {
    if (section.tag == static_cast<uint32_t>(tag)) {
      out.push_back(&section.payload);
    }
  }
  return out;
}

void AppendTableSection(CheckpointWriter* writer, SectionTag tag,
                        const EmbeddingTable& table) {
  ByteWriter w;
  w.U64(table.num_rows());
  w.U64(table.dim());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    w.Raw(row.data(), row.size() * sizeof(float));
  }
  writer->AddSection(tag, std::move(w));
}

namespace {

/// Streams a cold sidecar row by row through `row_fn(index, encoded)`.
Status ForEachColdRow(
    const CheckpointReader& reader, const ColdSidecar& meta,
    const std::function<Status(uint64_t row, const uint8_t* encoded)>&
        row_fn) {
  const size_t row_bytes = ColdRowBytes(meta.dtype, meta.dim);
  uint64_t row = 0;
  size_t partial = 0;
  std::vector<uint8_t> carry(row_bytes);
  return reader.StreamCold(
      meta, [&](const uint8_t* chunk, size_t len) -> Status {
        size_t off = 0;
        // Finish a row split across the previous chunk boundary.
        if (partial > 0) {
          const size_t take = std::min(row_bytes - partial, len);
          std::memcpy(carry.data() + partial, chunk, take);
          partial += take;
          off = take;
          if (partial == row_bytes) {
            HETKG_RETURN_IF_ERROR(row_fn(row++, carry.data()));
            partial = 0;
          }
        }
        while (off + row_bytes <= len) {
          HETKG_RETURN_IF_ERROR(row_fn(row++, chunk + off));
          off += row_bytes;
        }
        if (off < len) {
          partial = len - off;
          std::memcpy(carry.data(), chunk + off, partial);
        }
        return Status::OK();
      });
}

/// Materializes a cold sidecar as an in-RAM fp32 table.
Result<EmbeddingTable> DecodeColdTable(const CheckpointReader& reader,
                                       const ColdSidecar& meta) {
  EmbeddingTable table(meta.rows, meta.dim);
  std::vector<float> row(meta.dim);
  HETKG_RETURN_IF_ERROR(ForEachColdRow(
      reader, meta, [&](uint64_t i, const uint8_t* encoded) {
        DecodeColdRow(meta.dtype, encoded, row);
        table.SetRow(i, row);
        return Status::OK();
      }));
  return table;
}

}  // namespace

Result<EmbeddingTable> ReadTableSection(const CheckpointReader& reader,
                                        SectionTag tag) {
  const std::string* payload = reader.Find(tag);
  if (payload != nullptr) {
    return DecodeTableSection(*payload);
  }
  const ColdSidecar* meta = reader.FindCold(tag);
  if (meta != nullptr) {
    return DecodeColdTable(reader, *meta);
  }
  return Status::Corruption("checkpoint is missing table section " +
                            std::to_string(static_cast<uint32_t>(tag)));
}

Status LoadTableSectionInto(const CheckpointReader& reader, SectionTag tag,
                            EmbeddingTable* table) {
  const ColdSidecar* meta = reader.FindCold(tag);
  if (meta != nullptr) {
    if (meta->rows != table->num_rows() || meta->dim != table->dim()) {
      return Status::Corruption("snapshot table shape mismatch");
    }
    if (table->tiered() && meta->dtype == table->dtype()) {
      // Identical encoding: raw slab stream, bit-exact resume.
      return reader.ReadColdInto(*meta, table->EncodedData());
    }
    std::vector<float> row(meta->dim);
    return ForEachColdRow(reader, *meta,
                          [&](uint64_t i, const uint8_t* encoded) {
                            DecodeColdRow(meta->dtype, encoded, row);
                            table->SetRow(i, row);
                            return Status::OK();
                          });
  }
  const std::string* payload = reader.Find(tag);
  if (payload == nullptr) {
    return Status::Corruption("checkpoint is missing table section " +
                              std::to_string(static_cast<uint32_t>(tag)));
  }
  ByteReader r(*payload);
  const uint64_t num_rows = r.U64();
  const uint64_t dim = r.U64();
  if (!r.ok() || num_rows != table->num_rows() || dim != table->dim()) {
    return Status::Corruption("snapshot table shape mismatch");
  }
  std::vector<float> row(dim);
  for (uint64_t i = 0; i < num_rows; ++i) {
    if (!r.ReadRaw(row.data(), dim * sizeof(float))) {
      return Status::Corruption("truncated checkpoint table section");
    }
    table->SetRow(i, row);
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes in checkpoint table section");
  }
  return Status::OK();
}

Result<std::vector<float>> ReadColdFloats(const CheckpointReader& reader,
                                          SectionTag tag) {
  const ColdSidecar* meta = reader.FindCold(tag);
  if (meta == nullptr) {
    return Status::Corruption("checkpoint is missing cold section " +
                              std::to_string(static_cast<uint32_t>(tag)));
  }
  if (meta->dtype != ColdDtype::kFp32) {
    return Status::Corruption("cold section " +
                              std::to_string(static_cast<uint32_t>(tag)) +
                              " is not fp32");
  }
  std::vector<float> data(meta->rows * meta->dim);
  HETKG_RETURN_IF_ERROR(
      reader.ReadColdInto(*meta, reinterpret_cast<uint8_t*>(data.data())));
  return data;
}

Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations) {
  CheckpointWriter writer;
  AppendTableSection(&writer, SectionTag::kEntityTable, entities);
  AppendTableSection(&writer, SectionTag::kRelationTable, relations);
  return writer.WriteAtomic(path);
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot open " + path);
    }
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in) {
      return Status::Corruption("bad checkpoint magic in " + path);
    }
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
      return LoadCheckpointV1(in, path);
    }
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
      return Status::Corruption("bad checkpoint magic in " + path);
    }
  }
  HETKG_ASSIGN_OR_RETURN(CheckpointReader reader,
                         CheckpointReader::Open(path));
  Checkpoint ck;
  HETKG_ASSIGN_OR_RETURN(
      ck.entities, ReadTableSection(reader, SectionTag::kEntityTable));
  HETKG_ASSIGN_OR_RETURN(
      ck.relations, ReadTableSection(reader, SectionTag::kRelationTable));
  return ck;
}

}  // namespace hetkg::embedding
