#include "embedding/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.h"
#include "common/fs_sync.h"

namespace hetkg::embedding {

namespace {

constexpr char kMagicV1[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '1'};
constexpr char kMagicV2[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '2'};

// Refuse absurd shapes before allocating.
constexpr uint64_t kMaxElements = 1ULL << 36;  // 256 GiB of floats.
// Structural cap on one section (same bound, in bytes).
constexpr uint64_t kMaxSectionBytes = kMaxElements * sizeof(float);

/// Order-sensitive 64-bit mix over the payload — the legacy HETKGCK1
/// checksum, kept for read-compat only.
uint64_t ChecksumRowsV1(const EmbeddingTable& table, uint64_t state) {
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (float v : table.Row(i)) {
      uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      state = (state ^ bits) * 0x100000001B3ULL;
    }
  }
  return state;
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadRowsV1(std::ifstream& in, EmbeddingTable* table) {
  std::vector<float> row(table->dim());
  for (size_t i = 0; i < table->num_rows(); ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    if (!in) return false;
    table->SetRow(i, row);
  }
  return true;
}

/// Legacy fixed-layout reader (magic already consumed).
Result<Checkpoint> LoadCheckpointV1(std::ifstream& in,
                                    const std::string& path) {
  uint64_t num_entities = 0;
  uint64_t entity_dim = 0;
  uint64_t num_relations = 0;
  uint64_t relation_dim = 0;
  if (!ReadU64(in, &num_entities) || !ReadU64(in, &entity_dim) ||
      !ReadU64(in, &num_relations) || !ReadU64(in, &relation_dim)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  if (num_entities == 0 || entity_dim == 0 || num_relations == 0 ||
      relation_dim == 0) {
    return Status::Corruption("zero-sized table in checkpoint header");
  }
  if (num_entities * entity_dim > kMaxElements ||
      num_relations * relation_dim > kMaxElements) {
    return Status::Corruption("implausible checkpoint shape");
  }

  Checkpoint ck;
  ck.entities = EmbeddingTable(num_entities, entity_dim);
  ck.relations = EmbeddingTable(num_relations, relation_dim);
  if (!ReadRowsV1(in, &ck.entities) || !ReadRowsV1(in, &ck.relations)) {
    return Status::Corruption("truncated checkpoint payload in " + path);
  }
  uint64_t stored_checksum = 0;
  if (!ReadU64(in, &stored_checksum)) {
    return Status::Corruption("missing checkpoint checksum in " + path);
  }
  uint64_t checksum = 0xCBF29CE484222325ULL;
  checksum = ChecksumRowsV1(ck.entities, checksum);
  checksum = ChecksumRowsV1(ck.relations, checksum);
  if (checksum != stored_checksum) {
    return Status::Corruption("checkpoint checksum mismatch in " + path);
  }
  return ck;
}

Result<EmbeddingTable> DecodeTableSection(const std::string& payload) {
  ByteReader r(payload);
  const uint64_t num_rows = r.U64();
  const uint64_t dim = r.U64();
  if (!r.ok() || num_rows == 0 || dim == 0 ||
      num_rows * dim > kMaxElements) {
    return Status::Corruption("implausible checkpoint table shape");
  }
  EmbeddingTable table(num_rows, dim);
  std::vector<float> row(dim);
  for (uint64_t i = 0; i < num_rows; ++i) {
    if (!r.ReadRaw(row.data(), dim * sizeof(float))) {
      return Status::Corruption("truncated checkpoint table section");
    }
    table.SetRow(i, row);
  }
  return table;
}

}  // namespace

void CheckpointWriter::AddSection(SectionTag tag, ByteWriter payload) {
  Section section;
  section.tag = static_cast<uint32_t>(tag);
  section.payload = payload.buffer();
  payload_bytes_ += section.payload.size();
  sections_.push_back(std::move(section));
}

Status CheckpointWriter::WriteAtomic(const std::string& path,
                                     bool durable) const {
  // Assemble the whole file in memory: checkpoints are bounded by the
  // training state itself, and a single buffered write keeps the
  // temp-file window (the only non-atomic step) minimal.
  std::string blob;
  blob.append(kMagicV2, sizeof(kMagicV2));
  const uint64_t count = sections_.size();
  blob.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Section& section : sections_) {
    const uint32_t reserved = 0;
    const uint64_t len = section.payload.size();
    blob.append(reinterpret_cast<const char*>(&section.tag),
                sizeof(section.tag));
    blob.append(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    blob.append(reinterpret_cast<const char*>(&len), sizeof(len));
    blob.append(section.payload);
  }
  const uint32_t crc = Crc32(blob.data(), blob.size());
  blob.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      return Status::IoError("short write to " + tmp_path);
    }
  }
  // Durability order: the temp file's bytes must be on stable storage
  // BEFORE the rename makes them reachable, and the directory entry
  // itself after — otherwise a power loss can leave the final name (or
  // a MANIFEST referencing it) pointing at a torn file that CRC-32
  // rejects exactly when the snapshot is needed.
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncFile(tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  if (durable) {
    HETKG_RETURN_IF_ERROR(SyncParentDir(path));
  }
  return Status::OK();
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read failed for " + path);
  }
  if (blob.size() < sizeof(kMagicV2) + sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::Corruption("checkpoint too small: " + path);
  }
  if (std::memcmp(blob.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, blob.data() + blob.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const uint32_t crc =
      Crc32(blob.data(), blob.size() - sizeof(stored_crc));
  if (crc != stored_crc) {
    return Status::Corruption("checkpoint CRC mismatch in " + path);
  }

  ByteReader r(blob.data() + sizeof(kMagicV2),
               blob.size() - sizeof(kMagicV2) - sizeof(stored_crc));
  const uint64_t count = r.U64();
  CheckpointReader reader;
  for (uint64_t i = 0; i < count; ++i) {
    Section section;
    section.tag = r.U32();
    const uint32_t reserved = r.U32();
    const uint64_t len = r.U64();
    if (!r.ok() || reserved != 0 || len > kMaxSectionBytes ||
        len > r.remaining()) {
      return Status::Corruption("malformed checkpoint section in " + path);
    }
    section.payload.resize(len);
    r.ReadRaw(section.payload.data(), len);
    reader.sections_.push_back(std::move(section));
  }
  if (!r.ok() || r.remaining() != 0) {
    return Status::Corruption("trailing bytes in checkpoint " + path);
  }
  return reader;
}

const std::string* CheckpointReader::Find(SectionTag tag) const {
  for (const Section& section : sections_) {
    if (section.tag == static_cast<uint32_t>(tag)) return &section.payload;
  }
  return nullptr;
}

std::vector<const std::string*> CheckpointReader::FindAll(
    SectionTag tag) const {
  std::vector<const std::string*> out;
  for (const Section& section : sections_) {
    if (section.tag == static_cast<uint32_t>(tag)) {
      out.push_back(&section.payload);
    }
  }
  return out;
}

void AppendTableSection(CheckpointWriter* writer, SectionTag tag,
                        const EmbeddingTable& table) {
  ByteWriter w;
  w.U64(table.num_rows());
  w.U64(table.dim());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    w.Raw(row.data(), row.size() * sizeof(float));
  }
  writer->AddSection(tag, std::move(w));
}

Result<EmbeddingTable> ReadTableSection(const CheckpointReader& reader,
                                        SectionTag tag) {
  const std::string* payload = reader.Find(tag);
  if (payload == nullptr) {
    return Status::Corruption("checkpoint is missing table section " +
                              std::to_string(static_cast<uint32_t>(tag)));
  }
  return DecodeTableSection(*payload);
}

Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations) {
  CheckpointWriter writer;
  AppendTableSection(&writer, SectionTag::kEntityTable, entities);
  AppendTableSection(&writer, SectionTag::kRelationTable, relations);
  return writer.WriteAtomic(path);
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot open " + path);
    }
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in) {
      return Status::Corruption("bad checkpoint magic in " + path);
    }
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
      return LoadCheckpointV1(in, path);
    }
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
      return Status::Corruption("bad checkpoint magic in " + path);
    }
  }
  HETKG_ASSIGN_OR_RETURN(CheckpointReader reader,
                         CheckpointReader::Open(path));
  Checkpoint ck;
  HETKG_ASSIGN_OR_RETURN(
      ck.entities, ReadTableSection(reader, SectionTag::kEntityTable));
  HETKG_ASSIGN_OR_RETURN(
      ck.relations, ReadTableSection(reader, SectionTag::kRelationTable));
  return ck;
}

}  // namespace hetkg::embedding
