#include "embedding/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace hetkg::embedding {

namespace {

constexpr char kMagic[8] = {'H', 'E', 'T', 'K', 'G', 'C', 'K', '1'};

/// Order-sensitive 64-bit mix over the payload, cheap but sensitive to
/// any flipped byte.
uint64_t ChecksumRows(const EmbeddingTable& table, uint64_t state) {
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (float v : table.Row(i)) {
      uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      state = (state ^ bits) * 0x100000001B3ULL;
    }
  }
  return state;
}

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

void WriteRows(std::ofstream& out, const EmbeddingTable& table) {
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const auto row = table.Row(i);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
}

bool ReadRows(std::ifstream& in, EmbeddingTable* table) {
  std::vector<float> row(table->dim());
  for (size_t i = 0; i < table->num_rows(); ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    if (!in) return false;
    table->SetRow(i, row);
  }
  return true;
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    WriteU64(out, entities.num_rows());
    WriteU64(out, entities.dim());
    WriteU64(out, relations.num_rows());
    WriteU64(out, relations.dim());
    WriteRows(out, entities);
    WriteRows(out, relations);
    uint64_t checksum = 0xCBF29CE484222325ULL;
    checksum = ChecksumRows(entities, checksum);
    checksum = ChecksumRows(relations, checksum);
    WriteU64(out, checksum);
    if (!out) {
      return Status::IoError("short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in " + path);
  }
  uint64_t num_entities = 0;
  uint64_t entity_dim = 0;
  uint64_t num_relations = 0;
  uint64_t relation_dim = 0;
  if (!ReadU64(in, &num_entities) || !ReadU64(in, &entity_dim) ||
      !ReadU64(in, &num_relations) || !ReadU64(in, &relation_dim)) {
    return Status::Corruption("truncated checkpoint header in " + path);
  }
  if (num_entities == 0 || entity_dim == 0 || num_relations == 0 ||
      relation_dim == 0) {
    return Status::Corruption("zero-sized table in checkpoint header");
  }
  // Refuse absurd shapes before allocating.
  constexpr uint64_t kMaxElements = 1ULL << 36;  // 256 GiB of floats.
  if (num_entities * entity_dim > kMaxElements ||
      num_relations * relation_dim > kMaxElements) {
    return Status::Corruption("implausible checkpoint shape");
  }

  Checkpoint ck;
  ck.entities = EmbeddingTable(num_entities, entity_dim);
  ck.relations = EmbeddingTable(num_relations, relation_dim);
  if (!ReadRows(in, &ck.entities) || !ReadRows(in, &ck.relations)) {
    return Status::Corruption("truncated checkpoint payload in " + path);
  }
  uint64_t stored_checksum = 0;
  if (!ReadU64(in, &stored_checksum)) {
    return Status::Corruption("missing checkpoint checksum in " + path);
  }
  uint64_t checksum = 0xCBF29CE484222325ULL;
  checksum = ChecksumRows(ck.entities, checksum);
  checksum = ChecksumRows(ck.relations, checksum);
  if (checksum != stored_checksum) {
    return Status::Corruption("checkpoint checksum mismatch in " + path);
  }
  return ck;
}

}  // namespace hetkg::embedding
