#include "embedding/transh.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace hetkg::embedding {

namespace {

/// Shared forward computation. `e` receives h_perp + d_r - t_perp and
/// `w_hat` the normalized hyperplane normal; returns ||w||.
double ComputeResidual(std::span<const float> h, std::span<const float> r,
                       std::span<const float> t, std::vector<double>* w_hat,
                       std::vector<double>* e) {
  const size_t d = h.size();
  const float* w = r.data();
  const float* dr = r.data() + d;

  double w_norm_sq = 0.0;
  for (size_t i = 0; i < d; ++i) {
    w_norm_sq += static_cast<double>(w[i]) * w[i];
  }
  const double w_norm = std::sqrt(w_norm_sq);
  w_hat->resize(d);
  const double inv = w_norm > 1e-12 ? 1.0 / w_norm : 0.0;
  for (size_t i = 0; i < d; ++i) {
    (*w_hat)[i] = w[i] * inv;
  }

  double wh = 0.0;
  double wt = 0.0;
  for (size_t i = 0; i < d; ++i) {
    wh += (*w_hat)[i] * h[i];
    wt += (*w_hat)[i] * t[i];
  }
  e->resize(d);
  for (size_t i = 0; i < d; ++i) {
    const double h_perp = h[i] - wh * (*w_hat)[i];
    const double t_perp = t[i] - wt * (*w_hat)[i];
    (*e)[i] = h_perp + dr[i] - t_perp;
  }
  return w_norm;
}

}  // namespace

double TransH::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  assert(r.size() == 2 * h.size());
  std::vector<double> w_hat;
  std::vector<double> e;
  ComputeResidual(h, r, t, &w_hat, &e);
  double acc = 0.0;
  for (double v : e) {
    acc += v * v;
  }
  return -acc;
}

void TransH::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  const size_t d = h.size();
  assert(r.size() == 2 * d && gr.size() == 2 * d);
  std::vector<double> w_hat;
  std::vector<double> e;
  const double w_norm = ComputeResidual(h, r, t, &w_hat, &e);

  // score = -e.e; write a = t - h so e = -a + d_r + (w_hat.a) w_hat.
  // d score/dh   = -2 (I - w_hat w_hat^T) e        (h enters as -(-a))
  // d score/dt   = +2 (I - w_hat w_hat^T) e
  // d score/dd_r = -2 e
  // d score/dw_hat = -2 [ (e.w_hat) a + (w_hat.a) e ]
  // d score/dw   = (I - w_hat w_hat^T) / ||w||  applied to d score/dw_hat
  double ew = 0.0;  // e . w_hat
  double wa = 0.0;  // w_hat . (t - h)
  for (size_t i = 0; i < d; ++i) {
    ew += e[i] * w_hat[i];
    const double a = static_cast<double>(t[i]) - h[i];
    wa += w_hat[i] * a;
  }

  const double u = upstream;
  for (size_t i = 0; i < d; ++i) {
    const double proj_e = e[i] - ew * w_hat[i];  // (I - w w^T) e
    gh[i] += static_cast<float>(u * -2.0 * proj_e);
    gt[i] += static_cast<float>(u * 2.0 * proj_e);
    gr[d + i] += static_cast<float>(u * -2.0 * e[i]);  // d_r half.
  }

  if (w_norm > 1e-12) {
    // Gradient w.r.t. w_hat, then pull back through normalization.
    std::vector<double> g_what(d);
    double gw_dot_what = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double a = static_cast<double>(t[i]) - h[i];
      g_what[i] = -2.0 * (ew * a + wa * e[i]);
      gw_dot_what += g_what[i] * w_hat[i];
    }
    for (size_t i = 0; i < d; ++i) {
      const double g = (g_what[i] - gw_dot_what * w_hat[i]) / w_norm;
      gr[i] += static_cast<float>(u * g);
    }
  }
}

}  // namespace hetkg::embedding
