#include "embedding/tiered_store.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define HETKG_TIERED_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "embedding/kernels.h"

namespace hetkg::embedding {

namespace fs = std::filesystem;

Result<ColdDtype> ParseColdDtype(std::string_view name) {
  if (name == "fp32") return ColdDtype::kFp32;
  if (name == "fp16") return ColdDtype::kFp16;
  if (name == "int8") return ColdDtype::kInt8;
  return Status::InvalidArgument("unknown cold dtype: " + std::string(name) +
                                 " (want fp32 | fp16 | int8)");
}

std::string_view ColdDtypeName(ColdDtype dtype) {
  switch (dtype) {
    case ColdDtype::kFp32:
      return "fp32";
    case ColdDtype::kFp16:
      return "fp16";
    case ColdDtype::kInt8:
      return "int8";
  }
  return "unknown";
}

size_t ColdRowBytes(ColdDtype dtype, size_t dim) {
  switch (dtype) {
    case ColdDtype::kFp32:
      return dim * sizeof(float);
    case ColdDtype::kFp16:
      return dim * sizeof(uint16_t);
    case ColdDtype::kInt8:
      return 2 * sizeof(float) + dim;  // [scale][min][q...]
  }
  return 0;
}

MmapFile::~MmapFile() {
#if HETKG_TIERED_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
#endif
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      fd_(other.fd_),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.fd_ = -1;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
#if HETKG_TIERED_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
#endif
  data_ = other.data_;
  size_ = other.size_;
  fd_ = other.fd_;
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  other.fd_ = -1;
  return *this;
}

Result<MmapFile> MmapFile::Create(const std::string& path, size_t bytes) {
#if HETKG_TIERED_MMAP
  if (bytes == 0) {
    return Status::InvalidArgument("empty cold-tier mapping: " + path);
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create cold-tier file " + path + ": " +
                           std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot size cold-tier file " + path + " to " +
                           std::to_string(bytes) + " bytes: " + err);
  }
  void* mapped =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapped == MAP_FAILED) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot map cold-tier file " + path + ": " + err);
  }
#if defined(MADV_RANDOM)
  // Row pulls follow the training access distribution, not file order;
  // default readahead would fault in pages the run never touches.
  ::madvise(mapped, bytes, MADV_RANDOM);
#endif
  MmapFile f;
  f.data_ = static_cast<uint8_t*>(mapped);
  f.size_ = bytes;
  f.fd_ = fd;
  f.path_ = path;
  return f;
#else
  (void)bytes;
  return Status::Unimplemented("tiered storage needs mmap support (" + path +
                               ")");
#endif
}

Status MmapFile::Sync() const {
#if HETKG_TIERED_MMAP
  if (data_ == nullptr) return Status::OK();
  if (::msync(data_, size_, MS_SYNC) != 0) {
    return Status::IoError("msync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
#endif
  return Status::OK();
}

void MmapFile::AdviseWillNeed(size_t offset, size_t len) const {
#if HETKG_TIERED_MMAP && defined(MADV_WILLNEED)
  if (data_ == nullptr || offset >= size_) return;
  len = std::min(len, size_ - offset);
  // madvise wants page-aligned addresses; widen to the covering pages.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = (offset / page) * page;
  const size_t end = offset + len;
  ::madvise(data_ + begin, end - begin, MADV_WILLNEED);
#else
  (void)offset;
  (void)len;
#endif
}

void MmapFile::DropResidency() const {
#if HETKG_TIERED_MMAP && defined(MADV_DONTNEED)
  if (data_ == nullptr) return;
  // Shared file-backed pages survive DONTNEED (dirty ones are flushed
  // to the file first); only this process's residency drops.
  ::msync(data_, size_, MS_ASYNC);
  ::madvise(data_, size_, MADV_DONTNEED);
#endif
}

size_t SweepOrphanedColdFiles(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 9 && name.ends_with(".cold.tmp")) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
      if (!remove_ec) ++removed;
    }
  }
  return removed;
}

std::string ColdSlabPath(const std::string& cold_dir,
                         const std::string& name) {
  return (fs::path(cold_dir) / (name + ".cold.tmp")).string();
}

void EncodeColdRow(ColdDtype dtype, std::span<const float> src,
                   uint8_t* dst) {
  switch (dtype) {
    case ColdDtype::kFp32:
      std::memcpy(dst, src.data(), src.size() * sizeof(float));
      return;
    case ColdDtype::kFp16:
      kernels::EncodeRowFp16(src, reinterpret_cast<uint16_t*>(dst));
      return;
    case ColdDtype::kInt8: {
      float scale = 0.0f;
      float min = 0.0f;
      kernels::EncodeRowInt8(src, dst + 2 * sizeof(float), &scale, &min);
      std::memcpy(dst, &scale, sizeof(scale));
      std::memcpy(dst + sizeof(float), &min, sizeof(min));
      return;
    }
  }
}

void DecodeColdRow(ColdDtype dtype, const uint8_t* src,
                   std::span<float> dst) {
  switch (dtype) {
    case ColdDtype::kFp32:
      std::memcpy(dst.data(), src, dst.size() * sizeof(float));
      return;
    case ColdDtype::kFp16:
      kernels::DecodeRowFp16(reinterpret_cast<const uint16_t*>(src), dst);
      return;
    case ColdDtype::kInt8: {
      float scale = 0.0f;
      float min = 0.0f;
      std::memcpy(&scale, src, sizeof(scale));
      std::memcpy(&min, src + sizeof(float), sizeof(min));
      kernels::DecodeRowInt8(src + 2 * sizeof(float), scale, min, dst);
      return;
    }
  }
}

}  // namespace hetkg::embedding
