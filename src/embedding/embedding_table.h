#ifndef HETKG_EMBEDDING_EMBEDDING_TABLE_H_
#define HETKG_EMBEDDING_EMBEDDING_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "embedding/tiered_store.h"

namespace hetkg::embedding {

/// Dense row-major embedding storage: `num_rows` vectors of `dim`
/// floats. This is the storage unit shared by the parameter-server
/// shards (global embeddings) and the worker caches (hot embeddings).
///
/// Two backends (DESIGN.md §16):
///   in-RAM  — the default; rows live in an fp32 heap vector.
///   tiered  — rows live in an mmap-backed cold slab (--storage=tiered)
///             as fp32, fp16, or per-row-affine int8. fp32 cold rows
///             stay directly addressable (Row() works, training is
///             bit-identical to in-RAM); quantized rows are reached via
///             ReadRowInto()/DecodedRow() (dequantize-on-pull) and
///             SetRow() (quantize-on-write-back).
class EmbeddingTable {
 public:
  EmbeddingTable(size_t num_rows, size_t dim);
  ~EmbeddingTable() = default;
  EmbeddingTable(EmbeddingTable&& other) noexcept;
  EmbeddingTable& operator=(EmbeddingTable&& other) noexcept;
  EmbeddingTable(const EmbeddingTable&) = delete;
  EmbeddingTable& operator=(const EmbeddingTable&) = delete;

  /// Builds a table per `opts`: in-RAM when !opts.enabled, otherwise
  /// backed by the cold slab "<opts.cold_dir>/<name>.cold.tmp".
  static Result<EmbeddingTable> CreateTiered(size_t num_rows, size_t dim,
                                             const TieredOptions& opts,
                                             const std::string& name);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }
  bool tiered() const { return tiered_; }
  ColdDtype dtype() const { return dtype_; }

  /// True when rows are raw fp32 in memory (in-RAM or fp32 cold tier),
  /// i.e. Row() is usable. Quantized tables must go through
  /// ReadRowInto()/DecodedRow()/SetRow().
  bool row_addressable() const { return f32_data_ != nullptr; }

  std::span<float> Row(size_t i) {
    assert(f32_data_ != nullptr);
    return {f32_data_ + i * dim_, dim_};
  }
  std::span<const float> Row(size_t i) const {
    assert(f32_data_ != nullptr);
    return {f32_data_ + i * dim_, dim_};
  }

  /// Decodes row `i` into `out` (length dim()). Works on every backend;
  /// on quantized tables this is the dequantize-on-pull path and counts
  /// toward cold_reads().
  void ReadRowInto(size_t i, std::span<float> out) const;

  /// Read-only fp32 view of row `i` on any backend. For quantized
  /// tables the view points into a thread-local decode ring that
  /// recycles after ~kDecodeRingFloats floats of subsequent
  /// DecodedRow() calls on the same thread — callers may hold a batch
  /// of views (triple + candidate rows) but must not stash them.
  std::span<const float> DecodedRow(size_t i) const;

  /// Overwrites row `i` with `values` (must have length dim()). On
  /// quantized tables this is the quantize-on-write-back path.
  void SetRow(size_t i, std::span<const float> values);

  /// Adds `delta` into row `i` (decode + add + re-encode when
  /// quantized; gradient accumulation itself is always fp32).
  void AccumulateRow(size_t i, std::span<const float> delta);

  /// Fills every entry with `value` (typically 0 for gradient buffers).
  void Fill(float value);

  /// Uniform init in [-bound, bound]; the conventional KGE choice is
  /// bound = 6 / sqrt(dim) (Xavier-style), which InitXavierUniform uses.
  /// All inits draw RNG values in row-major element order on every
  /// backend, so in-RAM and tiered-fp32 tables initialize identically.
  void InitUniform(Rng* rng, float bound);
  void InitXavierUniform(Rng* rng);
  void InitGaussian(Rng* rng, float stddev);

  /// L2-normalizes row `i` in place (no-op on the zero vector). TransE
  /// applies this to entity rows after updates, per Bordes et al.
  void L2NormalizeRow(size_t i);

  /// Total parameter bytes (for memory/communication accounting):
  /// heap bytes for in-RAM tables, mapped slab bytes for tiered ones.
  size_t SizeBytes() const {
    return tiered_ ? cold_.size() : data_.size() * sizeof(float);
  }

  /// Mapped cold-slab bytes (0 for in-RAM tables) — `tier.bytes_mapped`.
  size_t ColdBytes() const { return tiered_ ? cold_.size() : 0; }

  /// Rows dequantized from the cold tier so far (`tier.cold_reads`).
  /// Always 0 for in-RAM and fp32-tiered tables (their reads are plain
  /// loads, not decodes).
  uint64_t cold_reads() const {
    return cold_reads_.load(std::memory_order_relaxed);
  }

  /// msync the cold slab (no-op in-RAM). Checkpointing quantized tables
  /// streams the slab file, so it must be coherent first.
  Status SyncCold() const;

  /// Drops the cold slab's resident pages (no-op in-RAM). Used after
  /// bulk passes (initialization) to bound steady-state RSS.
  void DropColdResidency() const;

  /// madvise(MADV_WILLNEED) the pages of row `i` (no-op in-RAM).
  /// Driven by the hot filter's hotness ranking and the prefetch
  /// window: rows about to be pulled fault in ahead of use.
  void AdviseRowWillNeed(size_t i) const;

  /// Raw encoded slab bytes — checkpoint streaming (null for in-RAM).
  const uint8_t* EncodedData() const {
    return tiered_ ? cold_.data() : nullptr;
  }
  uint8_t* EncodedData() { return tiered_ ? cold_.data() : nullptr; }
  size_t EncodedRowBytes() const { return row_bytes_; }

 private:
  EmbeddingTable() = default;

  size_t num_rows_ = 0;
  size_t dim_ = 0;
  bool tiered_ = false;
  ColdDtype dtype_ = ColdDtype::kFp32;
  size_t row_bytes_ = 0;  // Encoded bytes per row (cold layout).
  MmapFile cold_;
  std::vector<float> data_;        // In-RAM backend only.
  float* f32_data_ = nullptr;      // data_ or fp32 slab; null if quantized.
  uint8_t* encoded_ = nullptr;     // Cold slab base (tiered only).
  mutable std::atomic<uint64_t> cold_reads_{0};
};

/// Capacity of the per-thread decode ring backing DecodedRow() views of
/// quantized tables (floats, not rows): ~2048 live rows at dim 128.
inline constexpr size_t kDecodeRingFloats = size_t{1} << 18;

/// Per-row L2 norms, mainly for tests/diagnostics.
double RowNorm(std::span<const float> row);

/// Dot product of two rows of equal length.
double RowDot(std::span<const float> a, std::span<const float> b);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_EMBEDDING_TABLE_H_
