#ifndef HETKG_EMBEDDING_EMBEDDING_TABLE_H_
#define HETKG_EMBEDDING_EMBEDDING_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace hetkg::embedding {

/// Dense row-major embedding storage: `num_rows` vectors of `dim`
/// floats. This is the storage unit shared by the parameter-server
/// shards (global embeddings) and the worker caches (hot embeddings).
class EmbeddingTable {
 public:
  EmbeddingTable(size_t num_rows, size_t dim);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }

  std::span<float> Row(size_t i) {
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> Row(size_t i) const {
    return {data_.data() + i * dim_, dim_};
  }

  /// Overwrites row `i` with `values` (must have length dim()).
  void SetRow(size_t i, std::span<const float> values);

  /// Adds `delta` into row `i`.
  void AccumulateRow(size_t i, std::span<const float> delta);

  /// Fills every entry with `value` (typically 0 for gradient buffers).
  void Fill(float value);

  /// Uniform init in [-bound, bound]; the conventional KGE choice is
  /// bound = 6 / sqrt(dim) (Xavier-style), which InitXavierUniform uses.
  void InitUniform(Rng* rng, float bound);
  void InitXavierUniform(Rng* rng);
  void InitGaussian(Rng* rng, float stddev);

  /// L2-normalizes row `i` in place (no-op on the zero vector). TransE
  /// applies this to entity rows after updates, per Bordes et al.
  void L2NormalizeRow(size_t i);

  /// Total parameter bytes (for memory/communication accounting).
  size_t SizeBytes() const { return data_.size() * sizeof(float); }

 private:
  size_t num_rows_;
  size_t dim_;
  std::vector<float> data_;
};

/// Per-row L2 norms, mainly for tests/diagnostics.
double RowNorm(std::span<const float> row);

/// Dot product of two rows of equal length.
double RowDot(std::span<const float> a, std::span<const float> b);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_EMBEDDING_TABLE_H_
