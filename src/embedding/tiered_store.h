#ifndef HETKG_EMBEDDING_TIERED_STORE_H_
#define HETKG_EMBEDDING_TIERED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hetkg::embedding {

/// Storage dtype of cold-tier embedding rows (DESIGN.md §16). The hot
/// tier (worker caches) and all arithmetic stay fp32; the cold tier
/// trades precision for footprint:
///   fp32 : 4 B/elem, a pure placement change (bit-identical training).
///   fp16 : 2 B/elem, IEEE binary16 with RNE rounding.
///   int8 : 1 B/elem + one (scale, min) affine pair per row.
enum class ColdDtype : uint32_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

Result<ColdDtype> ParseColdDtype(std::string_view name);
std::string_view ColdDtypeName(ColdDtype dtype);

/// Bytes of one encoded cold row of `dim` elements (int8 rows lead with
/// their f32 scale + f32 min).
size_t ColdRowBytes(ColdDtype dtype, size_t dim);

/// Tiered-storage configuration, threaded from the launcher flags
/// (--storage=tiered --cold_dir=... --cold_dtype=...) down to the
/// embedding tables.
struct TieredOptions {
  bool enabled = false;
  std::string cold_dir;
  ColdDtype dtype = ColdDtype::kFp32;
};

/// Move-only RAII wrapper of one file-backed shared mapping — the cold
/// tier's slab. Created files carry the ".cold.tmp" suffix by
/// convention: the live working tier is disposable (durable state is
/// the checkpoints), and SweepOrphanedColdFiles() reclaims slabs a
/// crashed run left behind. The mapping is advised MADV_RANDOM up
/// front (row access follows the training distribution, not file
/// order); AdviseWillNeed() overlays hotness-driven readahead.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Creates (or truncates) `path` at `bytes` and maps it MAP_SHARED
  /// read-write, zero-filled.
  static Result<MmapFile> Create(const std::string& path, size_t bytes);

  bool valid() const { return data_ != nullptr; }
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// msync(MS_SYNC): every dirty page reaches the backing file.
  Status Sync() const;

  /// madvise(MADV_WILLNEED) on [offset, offset+len): fault the range in
  /// ahead of use (hot-set promotion).
  void AdviseWillNeed(size_t offset, size_t len) const;

  /// madvise(MADV_DONTNEED): drop this process's resident pages (dirty
  /// ones are written back first — the mapping is file-backed shared).
  /// Bounds RSS after bulk passes like table initialization.
  void DropResidency() const;

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
  std::string path_;
};

/// Removes "*.cold.tmp" files from `dir` (non-recursive), mirroring the
/// checkpoint manager's "*.tmp" orphan sweep: a crashed run's cold
/// slabs are referenced by nothing and would otherwise live forever.
/// Returns the number of files removed; a missing directory counts 0.
size_t SweepOrphanedColdFiles(const std::string& dir);

/// Path of a table's live cold slab: "<cold_dir>/<name>.cold.tmp".
std::string ColdSlabPath(const std::string& cold_dir,
                         const std::string& name);

/// Encode `src` (dim floats) into `dst` (ColdRowBytes) / decode back.
/// Dispatches to the kernel-layer codecs; fp32 is a raw copy.
void EncodeColdRow(ColdDtype dtype, std::span<const float> src,
                   uint8_t* dst);
void DecodeColdRow(ColdDtype dtype, const uint8_t* src,
                   std::span<float> dst);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_TIERED_STORE_H_
