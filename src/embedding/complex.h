#ifndef HETKG_EMBEDDING_COMPLEX_H_
#define HETKG_EMBEDDING_COMPLEX_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// ComplEx (Trouillon et al., 2016): embeddings in C^{d/2}, stored as
/// [real parts | imaginary parts] in one row of length d (d must be
/// even). score(h, r, t) = Re(<h, r, conj(t)>), which for component j:
///   re_h re_r re_t + im_h re_r im_t + re_h im_r im_t - im_h im_r re_t
/// Handles asymmetric relations that DistMult cannot model.
class ComplEx : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kComplEx; }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  void ScoreBatch(const TripleView& ref, std::span<const TripleView> triples,
                  std::span<double> scores,
                  kernels::KernelScratch* scratch) const override;

  void ScoreBackwardBatch(const TripleView& ref,
                          std::span<const TripleView> triples,
                          std::span<const double> upstreams,
                          std::span<const GradView> grads,
                          kernels::KernelScratch* scratch) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    return 22 * static_cast<uint64_t>(entity_dim);
  }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_COMPLEX_H_
