#ifndef HETKG_EMBEDDING_NEGATIVE_SAMPLER_H_
#define HETKG_EMBEDDING_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "graph/types.h"

namespace hetkg::embedding {

/// Which element of the positive triple was replaced.
enum class Corruption {
  kHead,
  kTail,
  kRelation,  // The (h, r', t) variant the paper mentions in Sec. III-A.
};

/// One corrupted triple tied back to the positive it was derived from.
struct NegativeSample {
  uint32_t positive_index = 0;  // Index into the mini-batch positives.
  Triple triple;
  Corruption corruption = Corruption::kHead;

  bool corrupted_head() const { return corruption == Corruption::kHead; }
};

/// Produces corrupted triples for a mini-batch of positives (Sec. V,
/// "Negative Sampling").
class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;
  virtual std::string_view name() const = 0;

  /// Appends negatives for `positives` into `out` (cleared first).
  virtual void Sample(std::span<const Triple> positives,
                      std::vector<NegativeSample>* out) = 0;

  size_t negatives_per_positive() const { return negatives_per_positive_; }

  /// Number of random entity draws needed for a batch of `batch_size`
  /// positives — the cost the batched strategy reduces from
  /// O(b_p * b_n) to O(b_p * b_n / b_c).
  virtual uint64_t EntityDrawsPerBatch(size_t batch_size) const = 0;

  /// Serializes the sampler's random-stream position for the HETKGCK2
  /// training snapshots; a restored sampler continues the exact draw
  /// sequence. Save/load are symmetric because sampler structure (kind,
  /// degree weighting, ...) is rebuilt from config before restoring.
  virtual void SaveState(ByteWriter* w) const { rng_.SaveState(w); }
  virtual bool LoadState(ByteReader* r) { return rng_.LoadState(r); }

 protected:
  NegativeSampler(size_t num_entities, size_t negatives_per_positive,
                  uint64_t seed)
      : num_entities_(num_entities),
        negatives_per_positive_(negatives_per_positive),
        rng_(seed) {}

  size_t num_entities_;
  size_t negatives_per_positive_;
  Rng rng_;
};

/// Independent corruption: every positive gets `n` fresh replacement
/// draws, alternating head/tail corruption (Bordes et al.). With
/// `relation_corruption_prob` > 0, that fraction of negatives corrupts
/// the relation with a uniform replacement instead; with
/// `entity_degrees`, replacement entities are drawn proportionally to
/// degree^0.75 (the GraphVite/word2vec-style proposal) instead of
/// uniformly.
class UniformNegativeSampler : public NegativeSampler {
 public:
  UniformNegativeSampler(size_t num_entities, size_t negatives_per_positive,
                         uint64_t seed);

  /// Enables relation corruption; `num_relations` must be >= 2.
  Status EnableRelationCorruption(double probability, size_t num_relations);

  /// Switches entity replacement draws to degree^0.75 weighting.
  Status EnableDegreeWeighting(const std::vector<uint32_t>& entity_degrees);

  std::string_view name() const override { return "uniform"; }
  void Sample(std::span<const Triple> positives,
              std::vector<NegativeSample>* out) override;
  uint64_t EntityDrawsPerBatch(size_t batch_size) const override;

  void SaveState(ByteWriter* w) const override {
    NegativeSampler::SaveState(w);
    if (degree_sampler_ != nullptr) degree_sampler_->SaveState(w);
  }
  bool LoadState(ByteReader* r) override {
    if (!NegativeSampler::LoadState(r)) return false;
    return degree_sampler_ == nullptr || degree_sampler_->LoadState(r);
  }

 private:
  EntityId DrawEntity();

  double relation_corruption_prob_ = 0.0;
  size_t num_relations_ = 0;
  std::unique_ptr<AliasSampler> degree_sampler_;
};

/// Batched ("shared") corruption as in PBG and DGL-KE: the batch is cut
/// into chunks of `chunk_size` positives, each chunk draws one shared
/// pool of `n` entities, and every positive in the chunk is corrupted
/// against the whole pool. Reduces entity draws (and, downstream,
/// embedding pulls) by a factor of chunk_size.
class BatchedNegativeSampler : public NegativeSampler {
 public:
  BatchedNegativeSampler(size_t num_entities, size_t negatives_per_positive,
                         size_t chunk_size, uint64_t seed);
  std::string_view name() const override { return "batched"; }
  void Sample(std::span<const Triple> positives,
              std::vector<NegativeSample>* out) override;
  uint64_t EntityDrawsPerBatch(size_t batch_size) const override;
  size_t chunk_size() const { return chunk_size_; }

 private:
  size_t chunk_size_;
};

/// Declarative sampler construction, used by the training engines.
struct NegativeSamplerSpec {
  std::string name = "batched";  // "uniform" | "batched".
  size_t num_entities = 0;
  size_t negatives_per_positive = 1;
  size_t chunk_size = 1;  // batched only.
  uint64_t seed = 0;
  /// uniform only: fraction of negatives that corrupt the relation.
  double relation_corruption_prob = 0.0;
  size_t num_relations = 0;  // Required when the above is > 0.
  /// uniform only: degree^0.75 replacement distribution when non-null.
  const std::vector<uint32_t>* entity_degrees = nullptr;
};
Result<std::unique_ptr<NegativeSampler>> MakeNegativeSampler(
    const NegativeSamplerSpec& spec);

/// Legacy convenience overload (uniform/batched, no extras).
Result<std::unique_ptr<NegativeSampler>> MakeNegativeSampler(
    std::string_view name, size_t num_entities, size_t negatives_per_positive,
    size_t chunk_size, uint64_t seed);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_NEGATIVE_SAMPLER_H_
