#ifndef HETKG_EMBEDDING_TRANSE_H_
#define HETKG_EMBEDDING_TRANSE_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// TransE (Bordes et al., 2013): score(h, r, t) = -||h + r - t||_p for
/// p in {1, 2}. The translational-distance baseline used throughout the
/// paper's evaluation.
class TransE : public ScoreFunction {
 public:
  /// `p` must be 1 or 2.
  explicit TransE(int p);

  ModelKind kind() const override {
    return p_ == 1 ? ModelKind::kTransEL1 : ModelKind::kTransEL2;
  }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  void ScoreBatch(const TripleView& ref, std::span<const TripleView> triples,
                  std::span<double> scores,
                  kernels::KernelScratch* scratch) const override;

  void ScoreBackwardBatch(const TripleView& ref,
                          std::span<const TripleView> triples,
                          std::span<const double> upstreams,
                          std::span<const GradView> grads,
                          kernels::KernelScratch* scratch) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    // Forward: d adds + d subs + d abs/sq + reduce; backward: ~3d.
    return 10 * static_cast<uint64_t>(entity_dim);
  }

  bool NormalizesEntities() const override { return true; }

 private:
  int p_;
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_TRANSE_H_
