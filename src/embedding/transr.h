#ifndef HETKG_EMBEDDING_TRANSR_H_
#define HETKG_EMBEDDING_TRANSR_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// TransR (Lin et al., 2015): each relation owns a projection matrix M
/// into its own space plus a translation r. A relation row stores
/// [M row-major | r] (width d^2 + d).
///   score(h, r, t) = -|| M h + r - M t ||_2^2
/// "Particularly successful in modeling complex relations but
/// sacrifices simplicity and efficiency" (paper Sec. II) — the d^2
/// relation rows make it the most communication-heavy model here.
class TransR : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kTransR; }

  size_t RelationDim(size_t entity_dim) const override {
    return entity_dim * entity_dim + entity_dim;
  }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    const uint64_t d = entity_dim;
    return 10 * d * d;
  }

  bool NormalizesEntities() const override { return true; }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_TRANSR_H_
