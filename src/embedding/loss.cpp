#include "embedding/loss.h"

#include <cmath>
#include <string>

namespace hetkg::embedding {

namespace {

/// Numerically stable log(1 + exp(x)).
double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// Numerically stable 1 / (1 + exp(-x)).
double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace

LossGrad MarginRankingLoss::PairLoss(double pos_score,
                                     double neg_score) const {
  LossGrad out;
  const double violation = margin_ - pos_score + neg_score;
  if (violation > 0.0) {
    out.loss = violation;
    out.dpos = -1.0;
    out.dneg = 1.0;
  }
  return out;
}

LossGrad LogisticLoss::PairLoss(double pos_score, double neg_score) const {
  LossGrad out;
  out.loss = pos_weight_ * Softplus(-pos_score) + Softplus(neg_score);
  out.dpos = -pos_weight_ * Sigmoid(-pos_score);
  out.dneg = Sigmoid(neg_score);
  return out;
}

Result<std::unique_ptr<LossFunction>> MakeLossFunction(
    std::string_view name, double margin, size_t negatives_per_positive) {
  if (name == "margin") {
    return std::unique_ptr<LossFunction>(new MarginRankingLoss(margin));
  }
  if (name == "logistic") {
    return std::unique_ptr<LossFunction>(
        new LogisticLoss(negatives_per_positive));
  }
  return Status::InvalidArgument("unknown loss: " + std::string(name));
}

}  // namespace hetkg::embedding
