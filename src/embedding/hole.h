#ifndef HETKG_EMBEDDING_HOLE_H_
#define HETKG_EMBEDDING_HOLE_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// HolE (Nickel et al., 2016): scores by circular correlation,
/// "compressing the pairwise interactions of RESCAL" (paper Sec. II):
///   score(h, r, t) = r . (h (star) t)
///   (h (star) t)_k = sum_i h_i * t_{(k + i) mod d}
/// Implemented as the direct O(d^2) correlation (an FFT would pay off
/// only at dimensions far above this library's range).
class HolE : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kHolE; }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    const uint64_t d = entity_dim;
    return 6 * d * d;
  }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_HOLE_H_
