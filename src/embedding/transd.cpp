#include "embedding/transd.h"

#include <cassert>
#include <vector>

namespace hetkg::embedding {

namespace {

struct Forward {
  double hp_h = 0.0;  // h_p . h
  double tp_t = 0.0;  // t_p . t
  std::vector<double> e;
};

/// e = (h + (h_p.h) r_p) + r - (t + (t_p.t) r_p).
Forward Residual(std::span<const float> h, std::span<const float> rel,
                 std::span<const float> t) {
  const size_t k = h.size() / 2;
  const float* hv = h.data();
  const float* hp = h.data() + k;
  const float* tv = t.data();
  const float* tp = t.data() + k;
  const float* rv = rel.data();
  const float* rp = rel.data() + k;

  Forward f;
  for (size_t i = 0; i < k; ++i) {
    f.hp_h += static_cast<double>(hp[i]) * hv[i];
    f.tp_t += static_cast<double>(tp[i]) * tv[i];
  }
  f.e.resize(k);
  for (size_t i = 0; i < k; ++i) {
    f.e[i] = (hv[i] + f.hp_h * rp[i]) + rv[i] - (tv[i] + f.tp_t * rp[i]);
  }
  return f;
}

}  // namespace

double TransD::Score(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t) const {
  assert(h.size() % 2 == 0 && h.size() == r.size() && h.size() == t.size());
  const Forward f = Residual(h, r, t);
  double acc = 0.0;
  for (double v : f.e) {
    acc += v * v;
  }
  return -acc;
}

void TransD::ScoreBackward(std::span<const float> h, std::span<const float> r,
                           std::span<const float> t, double upstream,
                           std::span<float> gh, std::span<float> gr,
                           std::span<float> gt) const {
  const size_t k = h.size() / 2;
  const Forward f = Residual(h, r, t);
  const float* hv = h.data();
  const float* hp = h.data() + k;
  const float* tv = t.data();
  const float* tp = t.data() + k;
  const float* rp = r.data() + k;

  // score = -e.e; write g_i = -2 u e_i.
  //   e_i = h_i + a r_p_i + r_i - t_i - b r_p_i, a = h_p.h, b = t_p.t
  //   d/dh_i   = g_i + (sum_j g_j r_p_j) h_p_i
  //   d/dh_p_i = (sum_j g_j r_p_j) h_i
  //   d/dt_i   = -g_i - (sum_j g_j r_p_j) t_p_i
  //   d/dt_p_i = -(sum_j g_j r_p_j) t_i
  //   d/dr_i   = g_i
  //   d/dr_p_i = g_i (a - b)
  std::vector<double> g(k);
  double g_dot_rp = 0.0;
  for (size_t i = 0; i < k; ++i) {
    g[i] = -2.0 * upstream * f.e[i];
    g_dot_rp += g[i] * rp[i];
  }
  const double ab = f.hp_h - f.tp_t;
  for (size_t i = 0; i < k; ++i) {
    gh[i] += static_cast<float>(g[i] + g_dot_rp * hp[i]);
    gh[k + i] += static_cast<float>(g_dot_rp * hv[i]);
    gt[i] += static_cast<float>(-g[i] - g_dot_rp * tp[i]);
    gt[k + i] += static_cast<float>(-g_dot_rp * tv[i]);
    gr[i] += static_cast<float>(g[i]);
    gr[k + i] += static_cast<float>(g[i] * ab);
  }
}

}  // namespace hetkg::embedding
