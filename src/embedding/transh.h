#ifndef HETKG_EMBEDDING_TRANSH_H_
#define HETKG_EMBEDDING_TRANSH_H_

#include "embedding/score_function.h"

namespace hetkg::embedding {

/// TransH (Wang et al., 2014): each relation owns a hyperplane with
/// normal w and an in-plane translation d_r. A relation row stores
/// [w | d_r] (width 2 * entity_dim). With w_hat = w / ||w||:
///   h_perp = h - (w_hat . h) w_hat,   t_perp = t - (w_hat . t) w_hat
///   score  = -|| h_perp + d_r - t_perp ||_2^2
/// Gradients are exact, including the chain through the normalization
/// of w, so the unit-norm constraint needs no extra projection step.
class TransH : public ScoreFunction {
 public:
  ModelKind kind() const override { return ModelKind::kTransH; }

  size_t RelationDim(size_t entity_dim) const override {
    return 2 * entity_dim;
  }

  double Score(std::span<const float> h, std::span<const float> r,
               std::span<const float> t) const override;

  void ScoreBackward(std::span<const float> h, std::span<const float> r,
                     std::span<const float> t, double upstream,
                     std::span<float> gh, std::span<float> gr,
                     std::span<float> gt) const override;

  uint64_t FlopsPerTriple(size_t entity_dim) const override {
    return 40 * static_cast<uint64_t>(entity_dim);
  }

  bool NormalizesEntities() const override { return true; }
};

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_TRANSH_H_
