#ifndef HETKG_EMBEDDING_CHECKPOINT_H_
#define HETKG_EMBEDDING_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace hetkg::embedding {

/// On-disk snapshot of a trained model: both embedding tables plus the
/// shape metadata needed to reload them without external context.
///
/// Format (little-endian):
///   magic "HETKGCK1" | u64 num_entities | u64 entity_dim
///   | u64 num_relations | u64 relation_dim
///   | entity rows (f32) | relation rows (f32) | u64 xor-checksum
struct Checkpoint {
  EmbeddingTable entities{1, 1};
  EmbeddingTable relations{1, 1};
};

/// Writes `entities` and `relations` to `path` atomically (temp file +
/// rename), so a crash never leaves a truncated checkpoint behind.
Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations);

/// Reads a checkpoint; fails with Corruption on bad magic, size
/// mismatch, or checksum failure.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_CHECKPOINT_H_
