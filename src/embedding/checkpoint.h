#ifndef HETKG_EMBEDDING_CHECKPOINT_H_
#define HETKG_EMBEDDING_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "embedding/embedding_table.h"

namespace hetkg::embedding {

/// Section tags of the HETKGCK2 container. Embedding tables use fixed
/// tags so an eval-only checkpoint and a full training-state snapshot
/// share one format: LoadCheckpoint reads tags 1-2 from either file.
enum class SectionTag : uint32_t {
  kEntityTable = 1,
  kRelationTable = 2,
  kTrainerMeta = 3,
  kPsOptimizer = 4,
  kPsRuntime = 5,
  kWorker = 6,        // Repeated, one per worker; payload leads with id.
  kClusterState = 7,  // ClusterSim counters + transport clock/metrics.
  kEngineCounters = 8,
  kPbgState = 9,
};

/// Versioned checkpoint container (DESIGN.md §9):
///
///   magic "HETKGCK2"
///   u64 section_count
///   repeat: u32 tag | u32 reserved(0) | u64 payload_len | payload
///   u32 CRC-32 (IEEE) over everything from the magic onward
///
/// Little-endian throughout. The legacy HETKGCK1 layout (fixed header,
/// two raw tables, XOR-FNV checksum) stays readable; new files are
/// always written as HETKGCK2.
///
/// Assembles sections in memory and writes the file atomically
/// (temp file + rename), so a crash mid-write never leaves a truncated
/// checkpoint under the final name. A stale "<path>.tmp" left by a
/// crash between write and rename is truncated/overwritten on the next
/// save; core/checkpoint_manager.h additionally sweeps orphaned temps
/// at startup.
class CheckpointWriter {
 public:
  /// Appends one section; `payload` is consumed.
  void AddSection(SectionTag tag, ByteWriter payload);

  /// Serializes magic + sections + CRC and atomically replaces `path`.
  /// With `durable` (the default), the temp file is fsync()ed before
  /// the rename and the parent directory after it, so a power loss
  /// after this returns can never surface a torn file under the final
  /// name (common/fs_sync.h). `durable = false` skips both syncs —
  /// atomic against process crashes only (--checkpoint_fsync=false).
  Status WriteAtomic(const std::string& path, bool durable = true) const;

  /// Total payload bytes appended so far (checkpoint.bytes metric).
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  struct Section {
    uint32_t tag = 0;
    std::string payload;
  };
  std::vector<Section> sections_;
  uint64_t payload_bytes_ = 0;
};

/// Parsed HETKGCK2 container: validates magic, structure, and CRC up
/// front, then hands out read-only section payloads.
class CheckpointReader {
 public:
  /// Reads and validates `path`; Corruption on bad magic/structure/CRC,
  /// IoError when the file cannot be read. Rejects HETKGCK1 files (use
  /// LoadCheckpoint for legacy eval checkpoints).
  static Result<CheckpointReader> Open(const std::string& path);

  /// First section with `tag`, or nullptr.
  const std::string* Find(SectionTag tag) const;

  /// All sections with `tag`, in file order.
  std::vector<const std::string*> FindAll(SectionTag tag) const;

 private:
  struct Section {
    uint32_t tag = 0;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Appends an embedding table as one section (u64 rows | u64 dim | f32
/// row data).
void AppendTableSection(CheckpointWriter* writer, SectionTag tag,
                        const EmbeddingTable& table);

/// Decodes a table section written by AppendTableSection.
Result<EmbeddingTable> ReadTableSection(const CheckpointReader& reader,
                                        SectionTag tag);

/// In-memory snapshot of a trained model: both embedding tables plus
/// the shape metadata needed to reload them without external context.
struct Checkpoint {
  EmbeddingTable entities{1, 1};
  EmbeddingTable relations{1, 1};
};

/// Writes `entities` and `relations` to `path` atomically as an
/// eval-only HETKGCK2 file (table sections only).
Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations);

/// Reads the embedding tables of a checkpoint — HETKGCK2 (eval-only or
/// full training snapshot) or legacy HETKGCK1. Fails with Corruption on
/// bad magic, size mismatch, or checksum failure.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_CHECKPOINT_H_
