#ifndef HETKG_EMBEDDING_CHECKPOINT_H_
#define HETKG_EMBEDDING_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "embedding/embedding_table.h"
#include "embedding/tiered_store.h"

namespace hetkg::embedding {

/// Section tags of the HETKGCK2 container. Embedding tables use fixed
/// tags so an eval-only checkpoint and a full training-state snapshot
/// share one format: LoadCheckpoint reads tags 1-2 from either file.
enum class SectionTag : uint32_t {
  kEntityTable = 1,
  kRelationTable = 2,
  kTrainerMeta = 3,
  kPsOptimizer = 4,
  kPsRuntime = 5,
  kWorker = 6,        // Repeated, one per worker; payload leads with id.
  kClusterState = 7,  // ClusterSim counters + transport clock/metrics.
  kEngineCounters = 8,
  kPbgState = 9,
  /// Describes one cold sidecar file (DESIGN.md §16): shape, dtype, and
  /// CRC of "<snapshot>.cold<base_tag>". The payload itself lives in
  /// the sidecar, never in the container, so a quantized multi-GB table
  /// round-trips without materializing in RAM.
  kColdTableMeta = 10,
  /// Sidecar base tags for the fp32 AdaGrad accumulators of a tiered
  /// quantized run (the in-container kPsOptimizer section is replaced).
  kEntityOptState = 11,
  kRelationOptState = 12,
};

/// Parsed kColdTableMeta record: one sidecar file of a HETKGCK3
/// snapshot. `suffix` appends to the snapshot path (".cold<base_tag>").
struct ColdSidecar {
  uint32_t base_tag = 0;
  ColdDtype dtype = ColdDtype::kFp32;
  uint64_t rows = 0;
  uint64_t dim = 0;
  uint64_t bytes = 0;
  uint32_t crc = 0;
  std::string suffix;
};

/// Versioned checkpoint container (DESIGN.md §9):
///
///   magic "HETKGCK2"
///   u64 section_count
///   repeat: u32 tag | u32 reserved(0) | u64 payload_len | payload
///   u32 CRC-32 (IEEE) over everything from the magic onward
///
/// Little-endian throughout. The legacy HETKGCK1 layout (fixed header,
/// two raw tables, XOR-FNV checksum) stays readable; new files are
/// always written as HETKGCK2.
///
/// Assembles sections in memory and writes the file atomically
/// (temp file + rename), so a crash mid-write never leaves a truncated
/// checkpoint under the final name. A stale "<path>.tmp" left by a
/// crash between write and rename is truncated/overwritten on the next
/// save; core/checkpoint_manager.h additionally sweeps orphaned temps
/// at startup.
class CheckpointWriter {
 public:
  /// Appends one section; `payload` is consumed.
  void AddSection(SectionTag tag, ByteWriter payload);

  /// Registers an encoded slab to be streamed into the sidecar file
  /// "<path>.cold<base_tag>" by WriteAtomic (a kColdTableMeta section
  /// is synthesized in the container). `data` must stay valid until
  /// WriteAtomic returns. Registering any sidecar switches the file's
  /// magic to HETKGCK3; files without sidecars stay byte-identical V2.
  void AddColdSidecar(SectionTag base_tag, ColdDtype dtype, uint64_t rows,
                      uint64_t dim, const uint8_t* data, uint64_t bytes);

  /// Registers a tiered table's cold slab (quantized snapshotting).
  void AddColdTable(SectionTag base_tag, const EmbeddingTable& table);

  /// Registers a raw fp32 blob (AdaGrad accumulators) as a sidecar.
  void AddColdFloats(SectionTag base_tag, std::span<const float> data,
                     uint64_t rows, uint64_t dim);

  /// Serializes magic + sections + CRC and atomically replaces `path`.
  /// With `durable` (the default), the temp file is fsync()ed before
  /// the rename and the parent directory after it, so a power loss
  /// after this returns can never surface a torn file under the final
  /// name (common/fs_sync.h). `durable = false` skips both syncs —
  /// atomic against process crashes only (--checkpoint_fsync=false).
  ///
  /// Sidecars registered via AddCold* are streamed (chunked, bounded
  /// memory) to "<path>.cold<k>" under the same temp+fsync+rename
  /// discipline BEFORE the container commits, so a visible container
  /// never references a missing or torn sidecar.
  Status WriteAtomic(const std::string& path, bool durable = true) const;

  /// Total payload bytes appended so far (checkpoint.bytes metric),
  /// including sidecar bytes.
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  struct Section {
    uint32_t tag = 0;
    std::string payload;
  };
  struct ColdRecord {
    uint32_t base_tag = 0;
    ColdDtype dtype = ColdDtype::kFp32;
    uint64_t rows = 0;
    uint64_t dim = 0;
    const uint8_t* data = nullptr;
    uint64_t bytes = 0;
  };
  std::vector<Section> sections_;
  std::vector<ColdRecord> cold_;
  uint64_t payload_bytes_ = 0;
};

/// Parsed HETKGCK2 container: validates magic, structure, and CRC up
/// front, then hands out read-only section payloads.
class CheckpointReader {
 public:
  /// Reads and validates `path`; Corruption on bad magic/structure/CRC,
  /// IoError when the file cannot be read. Rejects HETKGCK1 files (use
  /// LoadCheckpoint for legacy eval checkpoints). HETKGCK3 files
  /// additionally have every cold sidecar's size and CRC verified by a
  /// streaming pass (the sidecar payloads are NOT loaded into memory).
  static Result<CheckpointReader> Open(const std::string& path);

  /// First section with `tag`, or nullptr.
  const std::string* Find(SectionTag tag) const;

  /// All sections with `tag`, in file order.
  std::vector<const std::string*> FindAll(SectionTag tag) const;

  /// Cold sidecar whose base tag is `tag`, or nullptr (V2 files have
  /// none).
  const ColdSidecar* FindCold(SectionTag tag) const;

  /// Streams the sidecar's payload through `sink` in bounded chunks.
  Status StreamCold(const ColdSidecar& meta,
                    const std::function<Status(const uint8_t* chunk,
                                               size_t len)>& sink) const;

  /// Streams the sidecar's payload into `dst` (exactly meta.bytes).
  Status ReadColdInto(const ColdSidecar& meta, uint8_t* dst) const;

  const std::string& path() const { return path_; }

 private:
  struct Section {
    uint32_t tag = 0;
    std::string payload;
  };
  std::vector<Section> sections_;
  std::vector<ColdSidecar> cold_;
  std::string path_;
};

/// Appends an embedding table as one section (u64 rows | u64 dim | f32
/// row data).
void AppendTableSection(CheckpointWriter* writer, SectionTag tag,
                        const EmbeddingTable& table);

/// Decodes a table section written by AppendTableSection. When the
/// container carries no in-band section for `tag` but a cold sidecar
/// uses it as base tag (quantized snapshot), the sidecar is decoded
/// into an in-RAM fp32 table instead — eval and shard-restart paths
/// work unchanged against HETKGCK3 files.
Result<EmbeddingTable> ReadTableSection(const CheckpointReader& reader,
                                        SectionTag tag);

/// Restores table state for `tag` into the caller's existing `table`
/// (any backend) without materializing a second full copy:
///   - cold sidecar, identical dtype/shape  -> raw slab stream
///     (bit-exact quantized resume),
///   - cold sidecar, different dtype        -> per-row decode + SetRow,
///   - in-band fp32 section                 -> per-row SetRow
///     (quantizing tables re-encode on write).
/// Corruption when neither form is present or shapes disagree.
Status LoadTableSectionInto(const CheckpointReader& reader, SectionTag tag,
                            EmbeddingTable* table);

/// Reads a fp32 cold sidecar (AdaGrad accumulators) into one vector.
Result<std::vector<float>> ReadColdFloats(const CheckpointReader& reader,
                                          SectionTag tag);

/// In-memory snapshot of a trained model: both embedding tables plus
/// the shape metadata needed to reload them without external context.
struct Checkpoint {
  EmbeddingTable entities{1, 1};
  EmbeddingTable relations{1, 1};
};

/// Writes `entities` and `relations` to `path` atomically as an
/// eval-only HETKGCK2 file (table sections only).
Status SaveCheckpoint(const std::string& path, const EmbeddingTable& entities,
                      const EmbeddingTable& relations);

/// Reads the embedding tables of a checkpoint — HETKGCK2 (eval-only or
/// full training snapshot) or legacy HETKGCK1. Fails with Corruption on
/// bad magic, size mismatch, or checksum failure.
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace hetkg::embedding

#endif  // HETKG_EMBEDDING_CHECKPOINT_H_
