#include "embedding/embedding_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

namespace hetkg::embedding {

namespace {

/// Thread-local scratch backing DecodedRow() views of quantized tables.
/// A bump cursor over a fixed float arena: each decode claims `dim`
/// floats and the cursor wraps when the arena is exhausted, so a batch
/// of recent views (the triple rows plus a candidate set) stays live
/// while long-gone ones are recycled.
struct DecodeRing {
  std::vector<float> arena;
  size_t cursor = 0;

  std::span<float> Claim(size_t dim) {
    if (arena.size() < kDecodeRingFloats) arena.resize(kDecodeRingFloats);
    assert(dim <= arena.size());
    if (cursor + dim > arena.size()) cursor = 0;
    std::span<float> slot(arena.data() + cursor, dim);
    cursor += dim;
    return slot;
  }
};

thread_local DecodeRing t_decode_ring;

}  // namespace

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim)
    : num_rows_(num_rows),
      dim_(dim),
      row_bytes_(dim * sizeof(float)),
      data_(num_rows * dim, 0.0f) {
  assert(dim > 0);
  f32_data_ = data_.data();
}

EmbeddingTable::EmbeddingTable(EmbeddingTable&& other) noexcept
    : num_rows_(other.num_rows_),
      dim_(other.dim_),
      tiered_(other.tiered_),
      dtype_(other.dtype_),
      row_bytes_(other.row_bytes_),
      cold_(std::move(other.cold_)),
      data_(std::move(other.data_)),
      cold_reads_(other.cold_reads_.load(std::memory_order_relaxed)) {
  // Pointers into data_ survive the vector move; pointers into the
  // mapped slab survive the MmapFile move. Recompute from the new
  // owners rather than copying the stale members.
  if (tiered_) {
    encoded_ = cold_.data();
    f32_data_ = (dtype_ == ColdDtype::kFp32)
                    ? reinterpret_cast<float*>(cold_.data())
                    : nullptr;
  } else {
    encoded_ = nullptr;
    f32_data_ = data_.data();
  }
  other.f32_data_ = nullptr;
  other.encoded_ = nullptr;
  other.num_rows_ = 0;
}

EmbeddingTable& EmbeddingTable::operator=(EmbeddingTable&& other) noexcept {
  if (this == &other) return *this;
  num_rows_ = other.num_rows_;
  dim_ = other.dim_;
  tiered_ = other.tiered_;
  dtype_ = other.dtype_;
  row_bytes_ = other.row_bytes_;
  cold_ = std::move(other.cold_);
  data_ = std::move(other.data_);
  cold_reads_.store(other.cold_reads_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  if (tiered_) {
    encoded_ = cold_.data();
    f32_data_ = (dtype_ == ColdDtype::kFp32)
                    ? reinterpret_cast<float*>(cold_.data())
                    : nullptr;
  } else {
    encoded_ = nullptr;
    f32_data_ = data_.data();
  }
  other.f32_data_ = nullptr;
  other.encoded_ = nullptr;
  other.num_rows_ = 0;
  return *this;
}

Result<EmbeddingTable> EmbeddingTable::CreateTiered(
    size_t num_rows, size_t dim, const TieredOptions& opts,
    const std::string& name) {
  if (!opts.enabled) {
    return EmbeddingTable(num_rows, dim);
  }
  if (dim == 0) {
    return Status::InvalidArgument("tiered table " + name + ": dim must be > 0");
  }
  if (opts.cold_dir.empty()) {
    return Status::InvalidArgument(
        "tiered storage requires a cold_dir (--cold_dir)");
  }
  const size_t row_bytes = ColdRowBytes(opts.dtype, dim);
  HETKG_ASSIGN_OR_RETURN(
      MmapFile slab,
      MmapFile::Create(ColdSlabPath(opts.cold_dir, name),
                       num_rows * row_bytes));
  EmbeddingTable table;
  table.num_rows_ = num_rows;
  table.dim_ = dim;
  table.tiered_ = true;
  table.dtype_ = opts.dtype;
  table.row_bytes_ = row_bytes;
  table.cold_ = std::move(slab);
  table.encoded_ = table.cold_.data();
  table.f32_data_ = (opts.dtype == ColdDtype::kFp32)
                        ? reinterpret_cast<float*>(table.cold_.data())
                        : nullptr;
  return table;
}

void EmbeddingTable::ReadRowInto(size_t i, std::span<float> out) const {
  assert(i < num_rows_);
  assert(out.size() == dim_);
  if (f32_data_ != nullptr) {
    std::memcpy(out.data(), f32_data_ + i * dim_, dim_ * sizeof(float));
    return;
  }
  DecodeColdRow(dtype_, encoded_ + i * row_bytes_, out);
  cold_reads_.fetch_add(1, std::memory_order_relaxed);
}

std::span<const float> EmbeddingTable::DecodedRow(size_t i) const {
  assert(i < num_rows_);
  if (f32_data_ != nullptr) {
    return {f32_data_ + i * dim_, dim_};
  }
  std::span<float> slot = t_decode_ring.Claim(dim_);
  DecodeColdRow(dtype_, encoded_ + i * row_bytes_, slot);
  cold_reads_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void EmbeddingTable::SetRow(size_t i, std::span<const float> values) {
  assert(i < num_rows_);
  assert(values.size() == dim_);
  if (f32_data_ != nullptr) {
    std::memcpy(f32_data_ + i * dim_, values.data(), dim_ * sizeof(float));
    return;
  }
  EncodeColdRow(dtype_, values, encoded_ + i * row_bytes_);
}

void EmbeddingTable::AccumulateRow(size_t i, std::span<const float> delta) {
  assert(i < num_rows_);
  assert(delta.size() == dim_);
  if (f32_data_ != nullptr) {
    float* row = f32_data_ + i * dim_;
    for (size_t j = 0; j < dim_; ++j) {
      row[j] += delta[j];
    }
    return;
  }
  std::span<float> slot = t_decode_ring.Claim(dim_);
  ReadRowInto(i, slot);
  for (size_t j = 0; j < dim_; ++j) {
    slot[j] += delta[j];
  }
  SetRow(i, slot);
}

void EmbeddingTable::Fill(float value) {
  if (f32_data_ != nullptr) {
    std::fill(f32_data_, f32_data_ + num_rows_ * dim_, value);
    return;
  }
  // Encode one constant row, then replicate its bytes.
  std::vector<float> scratch(dim_, value);
  std::vector<uint8_t> encoded(row_bytes_);
  EncodeColdRow(dtype_, scratch, encoded.data());
  for (size_t i = 0; i < num_rows_; ++i) {
    std::memcpy(encoded_ + i * row_bytes_, encoded.data(), row_bytes_);
  }
}

void EmbeddingTable::InitUniform(Rng* rng, float bound) {
  if (f32_data_ != nullptr) {
    const size_t n = num_rows_ * dim_;
    for (size_t k = 0; k < n; ++k) {
      f32_data_[k] = static_cast<float>(rng->NextUniform(-bound, bound));
    }
    return;
  }
  std::vector<float> scratch(dim_);
  for (size_t i = 0; i < num_rows_; ++i) {
    for (size_t j = 0; j < dim_; ++j) {
      scratch[j] = static_cast<float>(rng->NextUniform(-bound, bound));
    }
    SetRow(i, scratch);
  }
}

void EmbeddingTable::InitXavierUniform(Rng* rng) {
  InitUniform(rng, 6.0f / std::sqrt(static_cast<float>(dim_)));
}

void EmbeddingTable::InitGaussian(Rng* rng, float stddev) {
  if (f32_data_ != nullptr) {
    const size_t n = num_rows_ * dim_;
    for (size_t k = 0; k < n; ++k) {
      f32_data_[k] = static_cast<float>(rng->NextGaussian() * stddev);
    }
    return;
  }
  std::vector<float> scratch(dim_);
  for (size_t i = 0; i < num_rows_; ++i) {
    for (size_t j = 0; j < dim_; ++j) {
      scratch[j] = static_cast<float>(rng->NextGaussian() * stddev);
    }
    SetRow(i, scratch);
  }
}

void EmbeddingTable::L2NormalizeRow(size_t i) {
  if (f32_data_ != nullptr) {
    auto row = Row(i);
    const double norm = RowNorm(row);
    if (norm <= 1e-12) return;
    const float inv = static_cast<float>(1.0 / norm);
    for (float& v : row) {
      v *= inv;
    }
    return;
  }
  std::span<float> slot = t_decode_ring.Claim(dim_);
  ReadRowInto(i, slot);
  const double norm = RowNorm(slot);
  if (norm <= 1e-12) return;
  const float inv = static_cast<float>(1.0 / norm);
  for (float& v : slot) {
    v *= inv;
  }
  SetRow(i, slot);
}

Status EmbeddingTable::SyncCold() const {
  if (!tiered_) return Status::OK();
  return cold_.Sync();
}

void EmbeddingTable::DropColdResidency() const {
  if (tiered_) cold_.DropResidency();
}

void EmbeddingTable::AdviseRowWillNeed(size_t i) const {
  if (!tiered_ || i >= num_rows_) return;
  cold_.AdviseWillNeed(i * row_bytes_, row_bytes_);
}

double RowNorm(std::span<const float> row) {
  double sum = 0.0;
  for (float v : row) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

double RowDot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

}  // namespace hetkg::embedding
