#include "embedding/embedding_table.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hetkg::embedding {

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim)
    : num_rows_(num_rows), dim_(dim), data_(num_rows * dim, 0.0f) {
  assert(dim > 0);
}

void EmbeddingTable::SetRow(size_t i, std::span<const float> values) {
  assert(i < num_rows_);
  assert(values.size() == dim_);
  std::copy(values.begin(), values.end(), data_.begin() + i * dim_);
}

void EmbeddingTable::AccumulateRow(size_t i, std::span<const float> delta) {
  assert(i < num_rows_);
  assert(delta.size() == dim_);
  float* row = data_.data() + i * dim_;
  for (size_t j = 0; j < dim_; ++j) {
    row[j] += delta[j];
  }
}

void EmbeddingTable::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void EmbeddingTable::InitUniform(Rng* rng, float bound) {
  for (float& v : data_) {
    v = static_cast<float>(rng->NextUniform(-bound, bound));
  }
}

void EmbeddingTable::InitXavierUniform(Rng* rng) {
  InitUniform(rng, 6.0f / std::sqrt(static_cast<float>(dim_)));
}

void EmbeddingTable::InitGaussian(Rng* rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng->NextGaussian() * stddev);
  }
}

void EmbeddingTable::L2NormalizeRow(size_t i) {
  auto row = Row(i);
  const double norm = RowNorm(row);
  if (norm <= 1e-12) return;
  const float inv = static_cast<float>(1.0 / norm);
  for (float& v : row) {
    v *= inv;
  }
}

double RowNorm(std::span<const float> row) {
  double sum = 0.0;
  for (float v : row) {
    sum += static_cast<double>(v) * v;
  }
  return std::sqrt(sum);
}

double RowDot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

}  // namespace hetkg::embedding
