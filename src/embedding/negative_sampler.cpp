#include "embedding/negative_sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace hetkg::embedding {

UniformNegativeSampler::UniformNegativeSampler(size_t num_entities,
                                               size_t negatives_per_positive,
                                               uint64_t seed)
    : NegativeSampler(num_entities, negatives_per_positive, seed) {
  assert(num_entities >= 2);
}

Status UniformNegativeSampler::EnableRelationCorruption(
    double probability, size_t num_relations) {
  if (probability < 0.0 || probability > 1.0) {
    return Status::InvalidArgument("probability must be in [0, 1]");
  }
  if (probability > 0.0 && num_relations < 2) {
    return Status::InvalidArgument(
        "relation corruption needs at least two relations");
  }
  relation_corruption_prob_ = probability;
  num_relations_ = num_relations;
  return Status::OK();
}

Status UniformNegativeSampler::EnableDegreeWeighting(
    const std::vector<uint32_t>& entity_degrees) {
  if (entity_degrees.size() != num_entities_) {
    return Status::InvalidArgument("degree vector size mismatch");
  }
  std::vector<double> weights(entity_degrees.size());
  double total = 0.0;
  for (size_t e = 0; e < entity_degrees.size(); ++e) {
    // degree^0.75 with +1 smoothing so isolated entities stay samplable.
    weights[e] = std::pow(static_cast<double>(entity_degrees[e]) + 1.0, 0.75);
    total += weights[e];
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("degenerate degree distribution");
  }
  degree_sampler_ =
      std::make_unique<AliasSampler>(weights, rng_.NextUint64());
  return Status::OK();
}

EntityId UniformNegativeSampler::DrawEntity() {
  if (degree_sampler_ != nullptr) {
    return static_cast<EntityId>(degree_sampler_->Next());
  }
  return static_cast<EntityId>(rng_.NextBounded(num_entities_));
}

void UniformNegativeSampler::Sample(std::span<const Triple> positives,
                                    std::vector<NegativeSample>* out) {
  out->clear();
  out->reserve(positives.size() * negatives_per_positive_);
  for (uint32_t i = 0; i < positives.size(); ++i) {
    const Triple& pos = positives[i];
    for (size_t k = 0; k < negatives_per_positive_; ++k) {
      NegativeSample neg;
      neg.positive_index = i;
      neg.triple = pos;
      if (relation_corruption_prob_ > 0.0 &&
          rng_.NextBernoulli(relation_corruption_prob_)) {
        neg.corruption = Corruption::kRelation;
        neg.triple.relation =
            static_cast<RelationId>(rng_.NextBounded(num_relations_));
      } else if (rng_.NextBernoulli(0.5)) {
        neg.corruption = Corruption::kHead;
        neg.triple.head = DrawEntity();
      } else {
        neg.corruption = Corruption::kTail;
        neg.triple.tail = DrawEntity();
      }
      out->push_back(neg);
    }
  }
}

uint64_t UniformNegativeSampler::EntityDrawsPerBatch(size_t batch_size) const {
  return static_cast<uint64_t>(batch_size) * negatives_per_positive_;
}

BatchedNegativeSampler::BatchedNegativeSampler(size_t num_entities,
                                               size_t negatives_per_positive,
                                               size_t chunk_size,
                                               uint64_t seed)
    : NegativeSampler(num_entities, negatives_per_positive, seed),
      chunk_size_(std::max<size_t>(1, chunk_size)) {
  assert(num_entities >= 2);
}

void BatchedNegativeSampler::Sample(std::span<const Triple> positives,
                                    std::vector<NegativeSample>* out) {
  out->clear();
  out->reserve(positives.size() * negatives_per_positive_);
  std::vector<EntityId> pool(negatives_per_positive_);
  for (size_t chunk_begin = 0; chunk_begin < positives.size();
       chunk_begin += chunk_size_) {
    const size_t chunk_end =
        std::min(positives.size(), chunk_begin + chunk_size_);
    for (auto& e : pool) {
      e = static_cast<EntityId>(rng_.NextBounded(num_entities_));
    }
    // Whole chunk corrupts the same side, as in PBG's batched kernel.
    const Corruption corruption =
        rng_.NextBernoulli(0.5) ? Corruption::kHead : Corruption::kTail;
    for (size_t i = chunk_begin; i < chunk_end; ++i) {
      const Triple& pos = positives[i];
      for (EntityId replacement : pool) {
        NegativeSample neg;
        neg.positive_index = static_cast<uint32_t>(i);
        neg.triple = pos;
        neg.corruption = corruption;
        if (corruption == Corruption::kHead) {
          neg.triple.head = replacement;
        } else {
          neg.triple.tail = replacement;
        }
        out->push_back(neg);
      }
    }
  }
}

uint64_t BatchedNegativeSampler::EntityDrawsPerBatch(size_t batch_size) const {
  const uint64_t chunks = (batch_size + chunk_size_ - 1) / chunk_size_;
  return chunks * negatives_per_positive_;
}

Result<std::unique_ptr<NegativeSampler>> MakeNegativeSampler(
    const NegativeSamplerSpec& spec) {
  if (spec.num_entities < 2) {
    return Status::InvalidArgument("need at least two entities to corrupt");
  }
  if (spec.name == "uniform") {
    auto sampler = std::make_unique<UniformNegativeSampler>(
        spec.num_entities, spec.negatives_per_positive, spec.seed);
    if (spec.relation_corruption_prob > 0.0) {
      HETKG_RETURN_IF_ERROR(sampler->EnableRelationCorruption(
          spec.relation_corruption_prob, spec.num_relations));
    }
    if (spec.entity_degrees != nullptr) {
      HETKG_RETURN_IF_ERROR(
          sampler->EnableDegreeWeighting(*spec.entity_degrees));
    }
    return std::unique_ptr<NegativeSampler>(std::move(sampler));
  }
  if (spec.name == "batched") {
    if (spec.relation_corruption_prob > 0.0 ||
        spec.entity_degrees != nullptr) {
      return Status::InvalidArgument(
          "relation corruption / degree weighting require the uniform "
          "sampler");
    }
    return std::unique_ptr<NegativeSampler>(new BatchedNegativeSampler(
        spec.num_entities, spec.negatives_per_positive, spec.chunk_size,
        spec.seed));
  }
  return Status::InvalidArgument("unknown negative sampler: " + spec.name);
}

Result<std::unique_ptr<NegativeSampler>> MakeNegativeSampler(
    std::string_view name, size_t num_entities, size_t negatives_per_positive,
    size_t chunk_size, uint64_t seed) {
  NegativeSamplerSpec spec;
  spec.name = std::string(name);
  spec.num_entities = num_entities;
  spec.negatives_per_positive = negatives_per_positive;
  spec.chunk_size = chunk_size;
  spec.seed = seed;
  return MakeNegativeSampler(spec);
}

}  // namespace hetkg::embedding
