#include "embedding/complex.h"

#include <cassert>

namespace hetkg::embedding {

double ComplEx::Score(std::span<const float> h, std::span<const float> r,
                      std::span<const float> t) const {
  assert(h.size() % 2 == 0);
  assert(h.size() == r.size() && h.size() == t.size());
  const size_t m = h.size() / 2;
  const float* hr = h.data();
  const float* hi = h.data() + m;
  const float* rr = r.data();
  const float* ri = r.data() + m;
  const float* tr = t.data();
  const float* ti = t.data() + m;
  double acc = 0.0;
  for (size_t j = 0; j < m; ++j) {
    acc += static_cast<double>(hr[j]) * rr[j] * tr[j] +
           static_cast<double>(hi[j]) * rr[j] * ti[j] +
           static_cast<double>(hr[j]) * ri[j] * ti[j] -
           static_cast<double>(hi[j]) * ri[j] * tr[j];
  }
  return acc;
}

void ComplEx::ScoreBackward(std::span<const float> h, std::span<const float> r,
                            std::span<const float> t, double upstream,
                            std::span<float> gh, std::span<float> gr,
                            std::span<float> gt) const {
  assert(h.size() % 2 == 0);
  const size_t m = h.size() / 2;
  const float* hr = h.data();
  const float* hi = h.data() + m;
  const float* rr = r.data();
  const float* ri = r.data() + m;
  const float* tr = t.data();
  const float* ti = t.data() + m;
  float* ghr = gh.data();
  float* ghi = gh.data() + m;
  float* grr = gr.data();
  float* gri = gr.data() + m;
  float* gtr = gt.data();
  float* gti = gt.data() + m;
  const float u = static_cast<float>(upstream);
  for (size_t j = 0; j < m; ++j) {
    ghr[j] += u * (rr[j] * tr[j] + ri[j] * ti[j]);
    ghi[j] += u * (rr[j] * ti[j] - ri[j] * tr[j]);
    grr[j] += u * (hr[j] * tr[j] + hi[j] * ti[j]);
    gri[j] += u * (hr[j] * ti[j] - hi[j] * tr[j]);
    gtr[j] += u * (hr[j] * rr[j] - hi[j] * ri[j]);
    gti[j] += u * (hi[j] * rr[j] + hr[j] * ri[j]);
  }
}

}  // namespace hetkg::embedding
