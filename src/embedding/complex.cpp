#include "embedding/complex.h"

#include <cassert>

#include "embedding/kernels.h"

namespace hetkg::embedding {

// The math lives in embedding/kernels.cpp; the scalar API delegates to
// the canonical per-triple kernels so Score/ScoreBackward and the batch
// overrides share one floating-point operation order (DESIGN.md §10).
// The canonical score groups the sum by the h∘r complex product:
//   A_j = hRe_j rRe_j - hIm_j rIm_j,  B_j = hIm_j rRe_j + hRe_j rIm_j,
//   score = sum_j A_j tRe_j + B_j tIm_j
// which is the same Re(<h, r, conj(t)>) with the (A, B) intermediate
// hoistable across negatives sharing (h, r).

double ComplEx::Score(std::span<const float> h, std::span<const float> r,
                      std::span<const float> t) const {
  assert(h.size() % 2 == 0);
  assert(h.size() == r.size() && h.size() == t.size());
  return kernels::ComplExScore(h, r, t);
}

void ComplEx::ScoreBackward(std::span<const float> h, std::span<const float> r,
                            std::span<const float> t, double upstream,
                            std::span<float> gh, std::span<float> gr,
                            std::span<float> gt) const {
  assert(h.size() % 2 == 0);
  kernels::ComplExScoreBackward(h, r, t, upstream, gh, gr, gt);
}

void ComplEx::ScoreBatch(const TripleView& ref,
                         std::span<const TripleView> triples,
                         std::span<double> scores,
                         kernels::KernelScratch* scratch) const {
  kernels::ComplExScoreBatch(ref, triples, scores, scratch);
}

void ComplEx::ScoreBackwardBatch(const TripleView& ref,
                                 std::span<const TripleView> triples,
                                 std::span<const double> upstreams,
                                 std::span<const GradView> grads,
                                 kernels::KernelScratch* scratch) const {
  kernels::ComplExScoreBackwardBatch(ref, triples, upstreams, grads, scratch);
}

}  // namespace hetkg::embedding
