#include "embedding/hole.h"

#include <cassert>

namespace hetkg::embedding {

double HolE::Score(std::span<const float> h, std::span<const float> r,
                   std::span<const float> t) const {
  const size_t d = h.size();
  assert(r.size() == d && t.size() == d);
  double acc = 0.0;
  for (size_t k = 0; k < d; ++k) {
    double corr = 0.0;
    for (size_t i = 0; i < d; ++i) {
      corr += static_cast<double>(h[i]) * t[(k + i) % d];
    }
    acc += static_cast<double>(r[k]) * corr;
  }
  return acc;
}

void HolE::ScoreBackward(std::span<const float> h, std::span<const float> r,
                         std::span<const float> t, double upstream,
                         std::span<float> gh, std::span<float> gr,
                         std::span<float> gt) const {
  const size_t d = h.size();
  const float u = static_cast<float>(upstream);
  // score = sum_k r_k sum_i h_i t_{(k+i)%d}
  //   d/dr_k = sum_i h_i t_{(k+i)%d}
  //   d/dh_i = sum_k r_k t_{(k+i)%d}
  //   d/dt_m = sum_k r_k h_{(m-k+d)%d}
  for (size_t k = 0; k < d; ++k) {
    double corr = 0.0;
    for (size_t i = 0; i < d; ++i) {
      corr += static_cast<double>(h[i]) * t[(k + i) % d];
    }
    gr[k] += u * static_cast<float>(corr);
  }
  for (size_t i = 0; i < d; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < d; ++k) {
      acc += static_cast<double>(r[k]) * t[(k + i) % d];
    }
    gh[i] += u * static_cast<float>(acc);
  }
  for (size_t m = 0; m < d; ++m) {
    double acc = 0.0;
    for (size_t k = 0; k < d; ++k) {
      acc += static_cast<double>(r[k]) * h[(m + d - k) % d];
    }
    gt[m] += u * static_cast<float>(acc);
  }
}

}  // namespace hetkg::embedding
