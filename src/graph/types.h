#ifndef HETKG_GRAPH_TYPES_H_
#define HETKG_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>

namespace hetkg {

/// Dense 0-based identifiers for entities and relations. 32 bits covers
/// the scaled Freebase-86m configuration (8.6e5 entities) with ample
/// headroom; the full 86M-entity spec also fits.
using EntityId = uint32_t;
using RelationId = uint32_t;

/// One knowledge-graph edge (h, r, t).
struct Triple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;

  bool operator==(const Triple& other) const {
    return head == other.head && relation == other.relation &&
           tail == other.tail;
  }
};

/// Unified 64-bit key space addressing both embedding tables: bit 63
/// distinguishes relation keys from entity keys. The parameter server,
/// caches, and network accounting all speak EmbKey so a single code path
/// handles the heterogeneous id space the paper highlights.
using EmbKey = uint64_t;

inline constexpr EmbKey kRelationKeyBit = 1ULL << 63;

inline EmbKey EntityKey(EntityId id) { return static_cast<EmbKey>(id); }
inline EmbKey RelationKey(RelationId id) {
  return kRelationKeyBit | static_cast<EmbKey>(id);
}
inline bool IsRelationKey(EmbKey key) { return (key & kRelationKeyBit) != 0; }
inline EntityId KeyEntity(EmbKey key) { return static_cast<EntityId>(key); }
inline RelationId KeyRelation(EmbKey key) {
  return static_cast<RelationId>(key & ~kRelationKeyBit);
}

/// Mixes a Triple into a 64-bit hash (for dedup sets and filtered
/// evaluation). Collision-free packing is used when the id widths allow
/// it; otherwise a strong mix is applied.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t x = (static_cast<uint64_t>(t.head) << 32) ^
                 (static_cast<uint64_t>(t.tail) << 16) ^ t.relation;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace hetkg

#endif  // HETKG_GRAPH_TYPES_H_
