#include "graph/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace hetkg::graph {

namespace {

/// Packs a triple into a single uint64 when the id widths allow it;
/// returns false otherwise (dedup then falls back to a hash set of
/// Triple which is collision-checked by equality anyway).
bool PackTriple(const Triple& t, int entity_bits, int relation_bits,
                uint64_t* packed) {
  if (2 * entity_bits + relation_bits > 64) return false;
  *packed = (static_cast<uint64_t>(t.head) << (entity_bits + relation_bits)) |
            (static_cast<uint64_t>(t.tail) << relation_bits) |
            static_cast<uint64_t>(t.relation);
  return true;
}

int BitsFor(size_t n) {
  int bits = 1;
  while ((1ULL << bits) < n) ++bits;
  return bits;
}

}  // namespace

SyntheticSpec Fb15kSpec() {
  SyntheticSpec spec;
  spec.name = "FB15k";
  spec.num_entities = 14951;
  spec.num_relations = 1345;
  spec.num_triples = 592213;
  // Calibrated: with exponent 0.62 the top 1% of entities receive ~6% of
  // endpoint draws; with 1.05 the top 1% of relations receive ~36%.
  spec.entity_exponent = 0.62;
  spec.relation_exponent = 1.05;
  spec.tail_candidates = 96;
  spec.seed = 15;
  return spec;
}

SyntheticSpec Wn18Spec() {
  SyntheticSpec spec;
  spec.name = "WN18";
  spec.num_entities = 40943;
  spec.num_relations = 18;
  spec.num_triples = 151442;
  // WordNet is sparser and less skewed on entities, but its tiny
  // relation vocabulary is extremely skewed in practice.
  spec.entity_exponent = 0.45;
  spec.relation_exponent = 0.9;
  spec.tail_candidates = 96;
  spec.seed = 18;
  return spec;
}

SyntheticSpec Freebase86mSpec(double scale) {
  HETKG_CHECK(scale > 0.0 && scale <= 1.0) << "scale must be in (0, 1]";
  SyntheticSpec spec;
  spec.name = "Freebase-86m";
  spec.num_entities =
      std::max<size_t>(1000, static_cast<size_t>(86054151.0 * scale));
  // Keep the full relation vocabulary: the cache's entity/relation quota
  // behaviour (Fig. 8c) depends on its absolute size.
  spec.num_relations = 14824;
  spec.num_triples =
      std::max<size_t>(10000, static_cast<size_t>(338586276.0 * scale));
  spec.entity_exponent = 1.0;
  spec.relation_exponent = 1.0;
  spec.tail_candidates = 48;  // Generation cost scales with this.
  spec.seed = 86;
  // At full scale dedup bookkeeping would dominate; duplicates are
  // vanishingly rare there anyway.
  spec.deduplicate = scale <= 0.05;
  return spec;
}

Result<KnowledgeGraph> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.num_entities < 2) {
    return Status::InvalidArgument("need at least two entities");
  }
  if (spec.num_relations < 1) {
    return Status::InvalidArgument("need at least one relation");
  }
  // A (h, r, t) space smaller than ~4x the triple budget makes dedup
  // rejection sampling degenerate.
  const double space = static_cast<double>(spec.num_entities) *
                       static_cast<double>(spec.num_entities) *
                       static_cast<double>(spec.num_relations);
  if (spec.deduplicate && space < 4.0 * static_cast<double>(spec.num_triples)) {
    return Status::InvalidArgument(
        "triple budget too dense for deduplicated generation");
  }

  Rng rng(spec.seed);
  ZipfSampler entity_sampler(spec.num_entities, spec.entity_exponent,
                             rng.NextUint64());
  ZipfSampler relation_sampler(spec.num_relations, spec.relation_exponent,
                               rng.NextUint64());

  // Permutations decorrelate id value from popularity rank.
  std::vector<EntityId> entity_perm(spec.num_entities);
  std::iota(entity_perm.begin(), entity_perm.end(), 0);
  rng.Shuffle(&entity_perm);
  std::vector<RelationId> relation_perm(spec.num_relations);
  std::iota(relation_perm.begin(), relation_perm.end(), 0);
  rng.Shuffle(&relation_perm);

  const int entity_bits = BitsFor(spec.num_entities);
  const int relation_bits = BitsFor(spec.num_relations);
  std::unordered_set<uint64_t> seen_packed;
  std::unordered_set<Triple, TripleHash> seen_triples;
  const bool packable = 2 * entity_bits + relation_bits <= 64;
  if (spec.deduplicate) {
    if (packable) {
      seen_packed.reserve(spec.num_triples * 2);
    } else {
      seen_triples.reserve(spec.num_triples * 2);
    }
  }

  // Latent structure (see SyntheticSpec::planted_structure).
  std::vector<float> entity_latents;
  std::vector<float> relation_latents;
  const size_t k = spec.latent_dim;
  if (spec.planted_structure) {
    entity_latents.resize(spec.num_entities * k);
    for (auto& v : entity_latents) {
      v = static_cast<float>(rng.NextGaussian());
    }
    relation_latents.resize(spec.num_relations * k);
    for (auto& v : relation_latents) {
      v = static_cast<float>(rng.NextGaussian() * 0.7);
    }
  }
  auto latent_distance_sq = [&](EntityId tail, const float* target) {
    const float* z = entity_latents.data() + static_cast<size_t>(tail) * k;
    double acc = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const double d = static_cast<double>(target[i]) - z[i];
      acc += d * d;
    }
    return acc;
  };

  std::vector<float> target(k);
  std::vector<Triple> triples;
  triples.reserve(spec.num_triples);
  const size_t max_attempts = spec.num_triples * 20 + 1000;
  size_t attempts = 0;
  while (triples.size() < spec.num_triples && attempts < max_attempts) {
    ++attempts;
    Triple t;
    t.head = entity_perm[entity_sampler.Next()];
    t.relation = relation_perm[relation_sampler.Next()];
    if (spec.planted_structure) {
      const float* zh = entity_latents.data() +
                        static_cast<size_t>(t.head) * k;
      const float* vr = relation_latents.data() +
                        static_cast<size_t>(t.relation) * k;
      for (size_t i = 0; i < k; ++i) {
        target[i] = zh[i] + vr[i];
      }
      // Best of `tail_candidates` Zipf-drawn candidates: learnable
      // structure with preserved popularity skew.
      EntityId best = t.head;
      double best_dist = 0.0;
      bool found = false;
      for (size_t c = 0; c < spec.tail_candidates; ++c) {
        const EntityId cand = entity_perm[entity_sampler.Next()];
        if (cand == t.head) continue;
        const double dist = latent_distance_sq(cand, target.data());
        if (!found || dist < best_dist) {
          best = cand;
          best_dist = dist;
          found = true;
        }
      }
      if (!found) continue;
      t.tail = best;
    } else {
      t.tail = entity_perm[entity_sampler.Next()];
    }
    if (t.head == t.tail) continue;
    if (spec.deduplicate) {
      if (packable) {
        uint64_t packed = 0;
        PackTriple(t, entity_bits, relation_bits, &packed);
        if (!seen_packed.insert(packed).second) continue;
      } else {
        if (!seen_triples.insert(t).second) continue;
      }
    }
    triples.push_back(t);
  }
  if (triples.size() < spec.num_triples) {
    return Status::Internal("generator could not reach the triple budget (" +
                            std::to_string(triples.size()) + "/" +
                            std::to_string(spec.num_triples) + ")");
  }
  return KnowledgeGraph::Create(spec.num_entities, spec.num_relations,
                                std::move(triples), spec.name);
}

Result<SyntheticDataset> GenerateDataset(const SyntheticSpec& spec,
                                         double valid_fraction,
                                         double test_fraction) {
  HETKG_ASSIGN_OR_RETURN(KnowledgeGraph graph, GenerateSynthetic(spec));
  HETKG_ASSIGN_OR_RETURN(
      DatasetSplit split,
      SplitTriples(graph.triples(), valid_fraction, test_fraction,
                   spec.seed ^ 0xD1CEULL));
  return SyntheticDataset{std::move(graph), std::move(split)};
}

}  // namespace hetkg::graph
