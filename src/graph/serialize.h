#ifndef HETKG_GRAPH_SERIALIZE_H_
#define HETKG_GRAPH_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace hetkg::graph {

/// Binary snapshot of a dataset (graph + train/valid/test split), so
/// expensive synthetic generation runs once and benches reload in
/// milliseconds.
///
/// Format (little-endian):
///   magic "HETKGGR1" | u64 num_entities | u64 num_relations
///   | u64 name_len | name bytes
///   | u64 n_train | u64 n_valid | u64 n_test
///   | triples (u32 head, u32 relation, u32 tail) x (train+valid+test)
///   | u64 xor-checksum
struct SerializedDataset {
  KnowledgeGraph graph;  // All triples.
  DatasetSplit split;
};

/// Writes atomically (temp file + rename).
Status SaveDataset(const std::string& path, const KnowledgeGraph& graph,
                   const DatasetSplit& split);

/// Reads a snapshot; Corruption on structural damage. The graph is
/// rebuilt as train+valid+test in that order.
Result<SerializedDataset> LoadDataset(const std::string& path);

}  // namespace hetkg::graph

#endif  // HETKG_GRAPH_SERIALIZE_H_
