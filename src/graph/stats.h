#ifndef HETKG_GRAPH_STATS_H_
#define HETKG_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/knowledge_graph.h"

namespace hetkg::graph {

/// Skew statistics of an access-frequency vector, the quantity behind
/// the paper's Fig. 2 micro-benchmark and the Sec. IV-B observation
/// ("top 1% of entities and relations occupy 6% and 36% of the
/// embedding usage").
struct SkewStats {
  uint64_t total_accesses = 0;
  /// Share of total accesses captured by the most frequent `top_fraction`
  /// of ids, for top_fraction in {0.001, 0.01, 0.05, 0.1, 0.25, 0.5}.
  std::vector<std::pair<double, double>> top_share;
  /// Gini coefficient of the frequency distribution (1 = maximal skew).
  double gini = 0.0;
  uint64_t max_frequency = 0;
  double mean_frequency = 0.0;
};

/// Computes skew statistics from raw per-id access counts.
SkewStats ComputeSkew(const std::vector<uint32_t>& frequencies);

/// Returns the share of `frequencies`' mass held by its top
/// `fraction` most frequent ids.
double TopShare(const std::vector<uint32_t>& frequencies, double fraction);

/// Per-epoch embedding access frequencies induced by uniform positive
/// sampling plus `negatives_per_positive` corruptions (each corruption
/// touches one uniformly random replacement entity and re-touches the
/// kept endpoint and relation). This mirrors what the HET-KG prefetcher
/// observes and is the exact distribution the cache filters on.
struct AccessFrequencies {
  std::vector<uint32_t> entity;
  std::vector<uint32_t> relation;
};
AccessFrequencies CountEpochAccesses(const KnowledgeGraph& graph,
                                     size_t negatives_per_positive,
                                     uint64_t seed);

/// Sorted (descending) copy of a frequency vector; handy for plotting
/// rank/frequency series.
std::vector<uint32_t> SortedDescending(const std::vector<uint32_t>& freq);

}  // namespace hetkg::graph

#endif  // HETKG_GRAPH_STATS_H_
