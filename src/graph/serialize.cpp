#include "graph/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace hetkg::graph {

namespace {

constexpr char kMagic[8] = {'H', 'E', 'T', 'K', 'G', 'G', 'R', '1'};

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

uint64_t MixTriple(uint64_t state, const Triple& t) {
  uint64_t x = (static_cast<uint64_t>(t.head) << 32) ^
               (static_cast<uint64_t>(t.relation) << 16) ^ t.tail;
  return (state ^ x) * 0x100000001B3ULL;
}

void WriteTriples(std::ofstream& out, const std::vector<Triple>& triples,
                  uint64_t* checksum) {
  for (const Triple& t : triples) {
    out.write(reinterpret_cast<const char*>(&t.head), sizeof(t.head));
    out.write(reinterpret_cast<const char*>(&t.relation),
              sizeof(t.relation));
    out.write(reinterpret_cast<const char*>(&t.tail), sizeof(t.tail));
    *checksum = MixTriple(*checksum, t);
  }
}

bool ReadTriples(std::ifstream& in, size_t n, std::vector<Triple>* out,
                 uint64_t* checksum) {
  out->resize(n);
  for (Triple& t : *out) {
    in.read(reinterpret_cast<char*>(&t.head), sizeof(t.head));
    in.read(reinterpret_cast<char*>(&t.relation), sizeof(t.relation));
    in.read(reinterpret_cast<char*>(&t.tail), sizeof(t.tail));
    if (!in) return false;
    *checksum = MixTriple(*checksum, t);
  }
  return true;
}

}  // namespace

Status SaveDataset(const std::string& path, const KnowledgeGraph& graph,
                   const DatasetSplit& split) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    WriteU64(out, graph.num_entities());
    WriteU64(out, graph.num_relations());
    WriteU64(out, graph.name().size());
    out.write(graph.name().data(),
              static_cast<std::streamsize>(graph.name().size()));
    WriteU64(out, split.train.size());
    WriteU64(out, split.valid.size());
    WriteU64(out, split.test.size());
    uint64_t checksum = 0xCBF29CE484222325ULL;
    WriteTriples(out, split.train, &checksum);
    WriteTriples(out, split.valid, &checksum);
    WriteTriples(out, split.test, &checksum);
    WriteU64(out, checksum);
    if (!out) {
      return Status::IoError("short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::OK();
}

Result<SerializedDataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad dataset magic in " + path);
  }
  uint64_t num_entities = 0;
  uint64_t num_relations = 0;
  uint64_t name_len = 0;
  if (!ReadU64(in, &num_entities) || !ReadU64(in, &num_relations) ||
      !ReadU64(in, &name_len) || name_len > 4096) {
    return Status::Corruption("bad dataset header in " + path);
  }
  std::string name(name_len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(name_len));
  uint64_t n_train = 0;
  uint64_t n_valid = 0;
  uint64_t n_test = 0;
  if (!in || !ReadU64(in, &n_train) || !ReadU64(in, &n_valid) ||
      !ReadU64(in, &n_test)) {
    return Status::Corruption("bad dataset split sizes in " + path);
  }
  constexpr uint64_t kMaxTriples = 1ULL << 33;
  if (n_train + n_valid + n_test > kMaxTriples) {
    return Status::Corruption("implausible dataset size");
  }

  DatasetSplit split;
  uint64_t checksum = 0xCBF29CE484222325ULL;
  if (!ReadTriples(in, n_train, &split.train, &checksum) ||
      !ReadTriples(in, n_valid, &split.valid, &checksum) ||
      !ReadTriples(in, n_test, &split.test, &checksum)) {
    return Status::Corruption("truncated dataset payload in " + path);
  }
  uint64_t stored = 0;
  if (!ReadU64(in, &stored) || stored != checksum) {
    return Status::Corruption("dataset checksum mismatch in " + path);
  }

  std::vector<Triple> all;
  all.reserve(n_train + n_valid + n_test);
  all.insert(all.end(), split.train.begin(), split.train.end());
  all.insert(all.end(), split.valid.begin(), split.valid.end());
  all.insert(all.end(), split.test.begin(), split.test.end());
  HETKG_ASSIGN_OR_RETURN(KnowledgeGraph graph,
                         KnowledgeGraph::Create(num_entities, num_relations,
                                                std::move(all), name));
  return SerializedDataset{std::move(graph), std::move(split)};
}

}  // namespace hetkg::graph
