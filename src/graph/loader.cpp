#include "graph/loader.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace hetkg::graph {

uint32_t Vocabulary::GetOrAdd(const std::string& token) {
  auto [it, inserted] =
      ids_.try_emplace(token, static_cast<uint32_t>(tokens_.size()));
  if (inserted) {
    tokens_.push_back(token);
  }
  return it->second;
}

Result<uint32_t> Vocabulary::Get(const std::string& token) const {
  auto it = ids_.find(token);
  if (it == ids_.end()) {
    return Status::NotFound("unknown token: " + token);
  }
  return it->second;
}

Result<std::vector<Triple>> ParseTsvTriples(std::string_view body,
                                            Vocabulary* entities,
                                            Vocabulary* relations) {
  std::vector<Triple> triples;
  size_t line_no = 0;
  for (std::string_view line : SplitString(body, '\n')) {
    ++line_no;
    line = TrimString(line);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = SplitString(line, '\t');
    if (fields.size() != 3) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected 3 tab-separated fields, got " +
                                std::to_string(fields.size()));
    }
    Triple t;
    t.head = entities->GetOrAdd(std::string(TrimString(fields[0])));
    t.relation = relations->GetOrAdd(std::string(TrimString(fields[1])));
    t.tail = entities->GetOrAdd(std::string(TrimString(fields[2])));
    triples.push_back(t);
  }
  return triples;
}

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<LoadedDataset> LoadTsvDataset(const std::string& train_path,
                                     const std::string& valid_path,
                                     const std::string& test_path,
                                     std::string name) {
  Vocabulary entities;
  Vocabulary relations;

  HETKG_ASSIGN_OR_RETURN(std::string train_body, ReadFile(train_path));
  HETKG_ASSIGN_OR_RETURN(std::vector<Triple> train,
                         ParseTsvTriples(train_body, &entities, &relations));

  std::vector<Triple> valid;
  if (!valid_path.empty()) {
    HETKG_ASSIGN_OR_RETURN(std::string body, ReadFile(valid_path));
    HETKG_ASSIGN_OR_RETURN(valid,
                           ParseTsvTriples(body, &entities, &relations));
  }
  std::vector<Triple> test;
  if (!test_path.empty()) {
    HETKG_ASSIGN_OR_RETURN(std::string body, ReadFile(test_path));
    HETKG_ASSIGN_OR_RETURN(test, ParseTsvTriples(body, &entities, &relations));
  }

  std::vector<Triple> all;
  all.reserve(train.size() + valid.size() + test.size());
  all.insert(all.end(), train.begin(), train.end());
  all.insert(all.end(), valid.begin(), valid.end());
  all.insert(all.end(), test.begin(), test.end());

  HETKG_ASSIGN_OR_RETURN(
      KnowledgeGraph graph,
      KnowledgeGraph::Create(entities.size(), relations.size(), std::move(all),
                             std::move(name)));
  LoadedDataset out{std::move(graph),
                    DatasetSplit{std::move(train), std::move(valid),
                                 std::move(test)},
                    std::move(entities), std::move(relations)};
  return out;
}

}  // namespace hetkg::graph
