#ifndef HETKG_GRAPH_LOADER_H_
#define HETKG_GRAPH_LOADER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace hetkg::graph {

/// Bidirectional string<->id dictionary built while loading raw triples.
class Vocabulary {
 public:
  /// Returns the existing id or assigns the next one.
  uint32_t GetOrAdd(const std::string& token);

  /// Returns the id, or nullopt-like -1 cast if unknown.
  Result<uint32_t> Get(const std::string& token) const;

  const std::string& Token(uint32_t id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> tokens_;
};

/// A graph loaded from raw TSV splits with its dictionaries.
struct LoadedDataset {
  KnowledgeGraph graph;   // All triples (train + valid + test).
  DatasetSplit split;
  Vocabulary entities;
  Vocabulary relations;
};

/// Loads tab-separated "head<TAB>relation<TAB>tail" files, the standard
/// layout of the FB15k/WN18 distributions. Valid/test paths may be
/// empty, yielding empty evaluation sets. Ids are assigned in first-seen
/// order across the three files.
Result<LoadedDataset> LoadTsvDataset(const std::string& train_path,
                                     const std::string& valid_path,
                                     const std::string& test_path,
                                     std::string name = "tsv");

/// Parses one in-memory TSV body (used by tests and by LoadTsvDataset).
Result<std::vector<Triple>> ParseTsvTriples(std::string_view body,
                                            Vocabulary* entities,
                                            Vocabulary* relations);

}  // namespace hetkg::graph

#endif  // HETKG_GRAPH_LOADER_H_
