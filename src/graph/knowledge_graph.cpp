#include "graph/knowledge_graph.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace hetkg::graph {

Result<KnowledgeGraph> KnowledgeGraph::Create(size_t num_entities,
                                              size_t num_relations,
                                              std::vector<Triple> triples,
                                              std::string name) {
  if (num_entities == 0) {
    return Status::InvalidArgument("graph needs at least one entity");
  }
  if (num_relations == 0) {
    return Status::InvalidArgument("graph needs at least one relation");
  }
  for (const Triple& t : triples) {
    if (t.head >= num_entities || t.tail >= num_entities) {
      return Status::OutOfRange("entity id out of range in triple list");
    }
    if (t.relation >= num_relations) {
      return Status::OutOfRange("relation id out of range in triple list");
    }
  }
  KnowledgeGraph g;
  g.num_entities_ = num_entities;
  g.num_relations_ = num_relations;
  g.triples_ = std::move(triples);
  g.name_ = std::move(name);
  return g;
}

std::vector<uint32_t> KnowledgeGraph::EntityDegrees() const {
  std::vector<uint32_t> deg(num_entities_, 0);
  for (const Triple& t : triples_) {
    ++deg[t.head];
    ++deg[t.tail];
  }
  return deg;
}

std::vector<uint32_t> KnowledgeGraph::RelationFrequencies() const {
  std::vector<uint32_t> freq(num_relations_, 0);
  for (const Triple& t : triples_) {
    ++freq[t.relation];
  }
  return freq;
}

void KnowledgeGraph::BuildTripleSet() const {
  if (triple_set_built_) return;
  triple_set_.reserve(triples_.size() * 2);
  for (const Triple& t : triples_) {
    triple_set_.insert(t);
  }
  triple_set_built_ = true;
}

bool KnowledgeGraph::ContainsTriple(const Triple& t) const {
  BuildTripleSet();
  return triple_set_.contains(t);
}

const KnowledgeGraph::Csr& KnowledgeGraph::BuildCsr() const {
  if (csr_built_) return csr_;

  // Collect undirected endpoints, collapse parallel edges.
  std::vector<std::pair<EntityId, EntityId>> edges;
  edges.reserve(triples_.size());
  for (const Triple& t : triples_) {
    if (t.head == t.tail) continue;  // Self-loops do not affect cuts.
    const EntityId a = std::min(t.head, t.tail);
    const EntityId b = std::max(t.head, t.tail);
    edges.emplace_back(a, b);
  }
  std::sort(edges.begin(), edges.end());

  struct WeightedEdge {
    EntityId a;
    EntityId b;
    uint32_t w;
  };
  std::vector<WeightedEdge> collapsed;
  collapsed.reserve(edges.size());
  for (size_t i = 0; i < edges.size();) {
    size_t j = i;
    while (j < edges.size() && edges[j] == edges[i]) ++j;
    collapsed.push_back(
        {edges[i].first, edges[i].second, static_cast<uint32_t>(j - i)});
    i = j;
  }

  csr_.offsets.assign(num_entities_ + 1, 0);
  for (const auto& e : collapsed) {
    ++csr_.offsets[e.a + 1];
    ++csr_.offsets[e.b + 1];
  }
  std::partial_sum(csr_.offsets.begin(), csr_.offsets.end(),
                   csr_.offsets.begin());
  csr_.neighbors.resize(csr_.offsets.back());
  csr_.weights.resize(csr_.offsets.back());
  std::vector<uint64_t> cursor(csr_.offsets.begin(), csr_.offsets.end() - 1);
  for (const auto& e : collapsed) {
    csr_.neighbors[cursor[e.a]] = e.b;
    csr_.weights[cursor[e.a]++] = e.w;
    csr_.neighbors[cursor[e.b]] = e.a;
    csr_.weights[cursor[e.b]++] = e.w;
  }
  csr_built_ = true;
  return csr_;
}

Result<DatasetSplit> SplitTriples(const std::vector<Triple>& triples,
                                  double valid_fraction, double test_fraction,
                                  uint64_t seed) {
  if (valid_fraction < 0.0 || test_fraction < 0.0 ||
      valid_fraction + test_fraction >= 1.0) {
    return Status::InvalidArgument(
        "valid/test fractions must be non-negative and sum below 1");
  }
  std::vector<Triple> shuffled = triples;
  Rng rng(seed);
  rng.Shuffle(&shuffled);

  const size_t n = shuffled.size();
  const size_t n_valid = static_cast<size_t>(n * valid_fraction);
  const size_t n_test = static_cast<size_t>(n * test_fraction);

  DatasetSplit split;
  split.valid.assign(shuffled.begin(), shuffled.begin() + n_valid);
  split.test.assign(shuffled.begin() + n_valid,
                    shuffled.begin() + n_valid + n_test);
  split.train.assign(shuffled.begin() + n_valid + n_test, shuffled.end());
  return split;
}

}  // namespace hetkg::graph
