#ifndef HETKG_GRAPH_KNOWLEDGE_GRAPH_H_
#define HETKG_GRAPH_KNOWLEDGE_GRAPH_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace hetkg::graph {

/// An immutable triple store with optional CSR adjacency over entities.
///
/// The triple list is the unit the trainers iterate over; the CSR view
/// (undirected, parallel edges collapsed with multiplicity weights) is
/// what the METIS-style partitioner consumes.
class KnowledgeGraph {
 public:
  /// Validates ids against the declared entity/relation counts.
  static Result<KnowledgeGraph> Create(size_t num_entities,
                                       size_t num_relations,
                                       std::vector<Triple> triples,
                                       std::string name = "kg");

  size_t num_entities() const { return num_entities_; }
  size_t num_relations() const { return num_relations_; }
  size_t num_triples() const { return triples_.size(); }
  const std::string& name() const { return name_; }

  const std::vector<Triple>& triples() const { return triples_; }
  const Triple& triple(size_t i) const { return triples_[i]; }

  /// Entity degree counting each incident triple once (head + tail).
  std::vector<uint32_t> EntityDegrees() const;

  /// Number of triples carrying each relation.
  std::vector<uint32_t> RelationFrequencies() const;

  /// Membership test used by filtered link-prediction metrics. The set
  /// is built lazily on first call and cached.
  bool ContainsTriple(const Triple& t) const;

  /// Pre-builds the membership set (e.g., before sharing the graph with
  /// the read-only evaluator threads).
  void BuildTripleSet() const;

  /// Compressed sparse row view of the undirected entity graph.
  /// `neighbors(v)` enumerates distinct adjacent entities; `weight`
  /// carries the number of parallel triples between the pair. Self-loops
  /// are dropped.
  struct Csr {
    std::vector<uint64_t> offsets;    // size num_entities + 1
    std::vector<EntityId> neighbors;  // size = 2 * distinct edges
    std::vector<uint32_t> weights;    // parallel-edge multiplicity
  };

  /// Builds (and caches) the CSR adjacency.
  const Csr& BuildCsr() const;

 private:
  KnowledgeGraph() = default;

  size_t num_entities_ = 0;
  size_t num_relations_ = 0;
  std::vector<Triple> triples_;
  std::string name_;

  // Lazily built caches; logically const.
  mutable std::unordered_set<Triple, TripleHash> triple_set_;
  mutable bool triple_set_built_ = false;
  mutable Csr csr_;
  mutable bool csr_built_ = false;
};

/// A train/valid/test partition of a graph's triples. The split holds
/// indices into the parent graph's triple list plus materialized triple
/// vectors for the two evaluation sets.
struct DatasetSplit {
  std::vector<Triple> train;
  std::vector<Triple> valid;
  std::vector<Triple> test;
};

/// Shuffles deterministically (seeded) and splits by fraction. The
/// fractions must be in (0, 1] and sum to at most 1; any remainder goes
/// to train.
Result<DatasetSplit> SplitTriples(const std::vector<Triple>& triples,
                                  double valid_fraction, double test_fraction,
                                  uint64_t seed);

}  // namespace hetkg::graph

#endif  // HETKG_GRAPH_KNOWLEDGE_GRAPH_H_
