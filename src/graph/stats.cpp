#include "graph/stats.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/rng.h"

namespace hetkg::graph {

double TopShare(const std::vector<uint32_t>& frequencies, double fraction) {
  if (frequencies.empty()) return 0.0;
  std::vector<uint32_t> sorted = SortedDescending(frequencies);
  const uint64_t total =
      std::accumulate(sorted.begin(), sorted.end(), uint64_t{0});
  if (total == 0) return 0.0;
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(sorted.size()) * fraction));
  const uint64_t head = std::accumulate(sorted.begin(),
                                        sorted.begin() + std::min(k, sorted.size()),
                                        uint64_t{0});
  return static_cast<double>(head) / static_cast<double>(total);
}

SkewStats ComputeSkew(const std::vector<uint32_t>& frequencies) {
  SkewStats stats;
  if (frequencies.empty()) return stats;

  std::vector<uint32_t> sorted = SortedDescending(frequencies);
  stats.total_accesses =
      std::accumulate(sorted.begin(), sorted.end(), uint64_t{0});
  stats.max_frequency = sorted.front();
  stats.mean_frequency = static_cast<double>(stats.total_accesses) /
                         static_cast<double>(sorted.size());

  for (double f : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    const size_t k = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(sorted.size()) * f));
    const uint64_t head = std::accumulate(
        sorted.begin(), sorted.begin() + std::min(k, sorted.size()),
        uint64_t{0});
    const double share =
        stats.total_accesses == 0
            ? 0.0
            : static_cast<double>(head) / static_cast<double>(stats.total_accesses);
    stats.top_share.emplace_back(f, share);
  }

  // Gini over the ascending distribution: G = (2*sum(i*x_i))/(n*sum(x)) -
  // (n+1)/n with 1-based ranks.
  std::vector<uint32_t> asc = sorted;
  std::reverse(asc.begin(), asc.end());
  long double weighted = 0.0L;
  for (size_t i = 0; i < asc.size(); ++i) {
    weighted += static_cast<long double>(i + 1) * asc[i];
  }
  const long double n = static_cast<long double>(asc.size());
  const long double total = static_cast<long double>(stats.total_accesses);
  if (total > 0) {
    stats.gini =
        static_cast<double>((2.0L * weighted) / (n * total) - (n + 1.0L) / n);
  }
  return stats;
}

AccessFrequencies CountEpochAccesses(const KnowledgeGraph& graph,
                                     size_t negatives_per_positive,
                                     uint64_t seed) {
  AccessFrequencies out;
  out.entity.assign(graph.num_entities(), 0);
  out.relation.assign(graph.num_relations(), 0);
  Rng rng(seed);

  for (const Triple& t : graph.triples()) {
    // The positive triple touches h, r, t.
    ++out.entity[t.head];
    ++out.entity[t.tail];
    ++out.relation[t.relation];
    // Each negative corrupts head or tail with a uniform entity; the
    // kept endpoint and relation embeddings are read again.
    for (size_t k = 0; k < negatives_per_positive; ++k) {
      const EntityId corrupt =
          static_cast<EntityId>(rng.NextBounded(graph.num_entities()));
      ++out.entity[corrupt];
      if (rng.NextBernoulli(0.5)) {
        ++out.entity[t.tail];  // Head corrupted, tail re-read.
      } else {
        ++out.entity[t.head];
      }
      ++out.relation[t.relation];
    }
  }
  return out;
}

std::vector<uint32_t> SortedDescending(const std::vector<uint32_t>& freq) {
  std::vector<uint32_t> sorted = freq;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint32_t>());
  return sorted;
}

}  // namespace hetkg::graph
