#ifndef HETKG_GRAPH_SYNTHETIC_H_
#define HETKG_GRAPH_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace hetkg::graph {

/// Parameters of the synthetic knowledge-graph generator.
///
/// The paper evaluates on FB15k, WN18, and Freebase-86m, which are not
/// shippable with this repository; the generator reproduces the
/// statistics that matter to a hotness-aware cache:
///  * entity/relation/triple counts of the real dataset;
///  * a Zipf-like skew of entity degrees and relation frequencies,
///    calibrated so the "top 1% of entities ~ 6% of accesses, top 1% of
///    relations ~ 36% of accesses" observation from Sec. IV-B holds in
///    the FB15k configuration.
/// Heads/tails are drawn from the entity Zipf law through a fixed random
/// permutation so embedding ids carry no hotness information (real
/// datasets are not sorted by popularity either).
struct SyntheticSpec {
  std::string name = "synthetic";
  size_t num_entities = 1000;
  size_t num_relations = 10;
  size_t num_triples = 10000;
  /// Zipf exponent for entity endpoint popularity.
  double entity_exponent = 0.75;
  /// Zipf exponent for relation popularity.
  double relation_exponent = 1.1;
  /// Drop duplicate (h, r, t) triples (always possible for the scaled
  /// dataset sizes used here).
  bool deduplicate = true;
  uint64_t seed = 42;

  /// Planted semantic structure. When enabled, every entity gets a
  /// latent vector z_e and every relation a latent translation v_r; the
  /// tail of a generated triple is the closest (in L2) of
  /// `tail_candidates` Zipf-drawn candidates to z_h + v_r. Without
  /// this, triples are independent draws and link prediction cannot do
  /// better than popularity ranking — real KGs are learnable, so the
  /// accuracy experiments (Tables III-V, Figs. 5/9) need it. The Zipf
  /// draw of candidates preserves the access-frequency skew that the
  /// hotness cache experiments measure.
  bool planted_structure = true;
  size_t latent_dim = 8;
  size_t tail_candidates = 64;
};

/// FB15k-shaped spec: 14,951 entities, 1,345 relations, 592,213 triples.
SyntheticSpec Fb15kSpec();

/// WN18-shaped spec: 40,943 entities, 18 relations, 151,442 triples.
SyntheticSpec Wn18Spec();

/// Freebase-86m-shaped spec scaled by `scale` in (0, 1]: at scale
/// 1/100 (the default used by the benches) it has 860,542 entities,
/// 14,824 relations (relation vocabulary is kept full-size: hotness of
/// relations is a headline effect), and 3,385,863 triples.
SyntheticSpec Freebase86mSpec(double scale = 0.01);

/// Generates a graph from `spec`. Fails if the triple budget cannot be
/// met (e.g., dedup enabled on an over-dense spec).
Result<KnowledgeGraph> GenerateSynthetic(const SyntheticSpec& spec);

/// Convenience: generate + 90/5/5-style split in one call. FB15k/WN18
/// use the standard-benchmarks split fractions from the paper's Table II
/// setup (5% valid / 5% test).
struct SyntheticDataset {
  KnowledgeGraph graph;
  DatasetSplit split;
};
Result<SyntheticDataset> GenerateDataset(const SyntheticSpec& spec,
                                         double valid_fraction = 0.05,
                                         double test_fraction = 0.05);

}  // namespace hetkg::graph

#endif  // HETKG_GRAPH_SYNTHETIC_H_
