#ifndef HETKG_COMMON_LOGGING_H_
#define HETKG_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace hetkg {

/// Log severities in increasing order of urgency. `kFatal` aborts the
/// process after emitting the message.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is emitted. Defaults to kInfo;
/// benches raise it to kWarning to keep table output clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message; emits on destruction. Not for direct use —
/// go through the HETKG_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is filtered out.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace hetkg

/// Usage: HETKG_LOG(Info) << "epoch " << e << " done";
#define HETKG_LOG(severity)                                              \
  (::hetkg::LogLevel::k##severity < ::hetkg::GetLogLevel())              \
      ? (void)0                                                          \
      : ::hetkg::internal::LogMessageVoidify() &                         \
            ::hetkg::internal::LogMessage(::hetkg::LogLevel::k##severity, \
                                          __FILE__, __LINE__)            \
                .stream()

/// Invariant check that stays on in release builds; logs and aborts on
/// failure. Use for conditions whose violation means a library bug.
#define HETKG_CHECK(condition)                                       \
  (condition) ? (void)0                                              \
              : ::hetkg::internal::LogMessageVoidify() &             \
                    ::hetkg::internal::LogMessage(                   \
                        ::hetkg::LogLevel::kFatal, __FILE__, __LINE__) \
                        .stream()                                    \
                        << "Check failed: " #condition " "

#endif  // HETKG_COMMON_LOGGING_H_
