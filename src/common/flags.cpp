#include "common/flags.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace hetkg {

void FlagParser::Define(std::string name, std::string default_value,
                        std::string help) {
  FlagInfo info;
  info.value = default_value;
  info.default_value = std::move(default_value);
  info.help = std::move(help);
  flags_[std::move(name)] = std::move(info);
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("positional argument not supported: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // `--flag value` form, unless the next token is another flag or
      // missing, in which case the flag is boolean true.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    it->second.value = std::move(value);
    it->second.set = true;
  }
  return Status::OK();
}

const FlagParser::FlagInfo& FlagParser::Lookup(std::string_view name) const {
  auto it = flags_.find(name);
  HETKG_CHECK(it != flags_.end()) << "flag not defined: " << name;
  return it->second;
}

std::string FlagParser::GetString(std::string_view name) const {
  return Lookup(name).value;
}

int64_t FlagParser::GetInt(std::string_view name) const {
  int64_t v = 0;
  const std::string& raw = Lookup(name).value;
  HETKG_CHECK(ParseInt64(raw, &v)) << "flag --" << name
                                   << " is not an integer: " << raw;
  return v;
}

double FlagParser::GetDouble(std::string_view name) const {
  double v = 0.0;
  const std::string& raw = Lookup(name).value;
  HETKG_CHECK(ParseDouble(raw, &v)) << "flag --" << name
                                    << " is not a double: " << raw;
  return v;
}

bool FlagParser::GetBool(std::string_view name) const {
  const std::string& raw = Lookup(name).value;
  if (raw == "true" || raw == "1") return true;
  if (raw == "false" || raw == "0") return false;
  HETKG_CHECK(false) << "flag --" << name << " is not a boolean: " << raw;
  return false;
}

bool FlagParser::IsSet(std::string_view name) const {
  return Lookup(name).set;
}

std::string FlagParser::Usage(std::string_view program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    os << "  --" << name << " (default: " << info.default_value << ")  "
       << info.help << "\n";
  }
  return os.str();
}

}  // namespace hetkg
