#ifndef HETKG_COMMON_CRC32_H_
#define HETKG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hetkg {

/// IEEE CRC-32 (polynomial 0xEDB88320, the zlib/PNG variant), table
/// driven. Detects any single-byte corruption of a checkpoint payload,
/// unlike the order-sensitive XOR fold the HETKGCK1 format used (which
/// a pair of compensating flips could defeat).
///
/// `Crc32(data, size)` checksums one buffer; the Update form chains
/// over multiple buffers:
///   uint32_t crc = Crc32Init();
///   crc = Crc32Update(crc, a, na);
///   crc = Crc32Update(crc, b, nb);
///   crc = Crc32Finish(crc);
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);
uint32_t Crc32Finish(uint32_t crc);
uint32_t Crc32(const void* data, size_t size);

}  // namespace hetkg

#endif  // HETKG_COMMON_CRC32_H_
