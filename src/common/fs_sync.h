#ifndef HETKG_COMMON_FS_SYNC_H_
#define HETKG_COMMON_FS_SYNC_H_

#include <string>

#include "common/status.h"

namespace hetkg {

/// Crash-durability primitives for the atomic write-temp-then-rename
/// protocol (DESIGN.md §9). `std::rename` alone only guarantees the
/// *name* flips atomically; after a power loss the directory entry can
/// point at a file whose data blocks never reached the platter. The
/// durable sequence is
///   write(tmp) -> SyncFile(tmp) -> rename(tmp, final) -> SyncDir(parent)
/// — the file's bytes first, then the directory entry referencing them.
/// On platforms without POSIX fsync these degrade to no-ops, matching
/// the pre-durability behaviour.

/// fsync()s the file's data and metadata to stable storage.
Status SyncFile(const std::string& path);

/// fsync()s the directory itself, making its entries (a just-renamed
/// file) durable.
Status SyncDir(const std::string& path);

/// SyncDir on the parent directory of `path` ("." when `path` has no
/// directory component).
Status SyncParentDir(const std::string& path);

}  // namespace hetkg

#endif  // HETKG_COMMON_FS_SYNC_H_
