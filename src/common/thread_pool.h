#ifndef HETKG_COMMON_THREAD_POOL_H_
#define HETKG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hetkg {

/// Fixed-size worker pool shared by the training engines (deterministic
/// intra-batch parallelism), the link-prediction evaluator, and the
/// benches. A requested size of 0 is clamped to 1 worker so release
/// builds (where the old assert compiled out) cannot divide by zero.
///
/// ParallelFor tracks completion with a per-call latch: concurrent
/// ParallelFor calls from different threads, and nested calls issued
/// from inside a pool task, each wait for exactly their own chunks. The
/// calling thread helps drain the queue while it waits, so nested calls
/// cannot deadlock even on a fully busy single-worker pool.
class ThreadPool {
 public:
  /// Spawns max(1, num_threads) workers.
  explicit ThreadPool(size_t num_threads);

  /// Drains pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted SO FAR has finished. This is a
  /// pool-global drain: tasks submitted concurrently by other threads
  /// extend the wait. Fork-join work should use ParallelFor, which
  /// waits on a per-call latch instead.
  void Wait();

  /// Runs `fn(begin, end)` over [0, n) partitioned into contiguous
  /// chunks across the pool, and blocks until exactly these chunks are
  /// done. Safe to call concurrently from several threads and
  /// re-entrantly from inside pool tasks.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  /// Completion latch for one ParallelFor call.
  struct ForkState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  };

  void WorkerLoop();

  /// Pops and runs one queued task if one is available; returns whether
  /// it did. Used by waiting ParallelFor callers to help drain the
  /// queue.
  bool RunOneTask();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_THREAD_POOL_H_
