#ifndef HETKG_COMMON_THREAD_POOL_H_
#define HETKG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hetkg {

/// Fixed-size worker pool used by the link-prediction evaluator to rank
/// test triples in parallel. The training simulator itself is
/// deliberately single-threaded (determinism), so this pool only runs
/// read-only scoring work.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains pending tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs `fn(i)` for i in [0, n), partitioned into contiguous chunks
  /// across the pool, and blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_THREAD_POOL_H_
