#include "common/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <cstdio>

namespace hetkg {

std::vector<std::string_view> SplitString(std::string_view input, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      parts.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view TrimString(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && (input[begin] == ' ' || input[begin] == '\t' ||
                         input[begin] == '\r' || input[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (input[end - 1] == ' ' || input[end - 1] == '\t' ||
                         input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool ParseInt64(std::string_view input, int64_t* out) {
  if (input.empty()) return false;
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(std::string_view input, uint64_t* out) {
  if (input.empty() || input.front() == '-') return false;
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(std::string_view input, double* out) {
  if (input.empty()) return false;
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace hetkg
