#ifndef HETKG_COMMON_RNG_H_
#define HETKG_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/serialize.h"

namespace hetkg {

/// Deterministic pseudo-random number generator (xoshiro256**) seeded
/// through SplitMix64. All randomness in the library flows through
/// explicitly seeded `Rng` instances so every experiment is exactly
/// reproducible, which the tests rely on.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform value in [0, bound). `bound` must be nonzero. Uses
  /// rejection sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second sample).
  double NextGaussian();

  /// Bernoulli with success probability `p`.
  bool NextBernoulli(double p);

  /// Splits off an independent generator; the child stream is a pure
  /// function of the parent state, so splitting is also deterministic.
  Rng Split();

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Serializes the full generator state (stream position + cached
  /// Box-Muller sample) so a restored generator continues the exact
  /// stream it was saved at. Used by the HETKGCK2 training snapshots.
  void SaveState(ByteWriter* w) const {
    for (uint64_t s : state_) w->U64(s);
    w->F64(cached_gaussian_);
    w->U8(has_cached_gaussian_ ? 1 : 0);
  }
  bool LoadState(ByteReader* r) {
    for (uint64_t& s : state_) s = r->U64();
    cached_gaussian_ = r->F64();
    has_cached_gaussian_ = r->U8() != 0;
    return r->ok();
  }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Draws values in [0, n) with probability proportional to
/// 1 / (rank+1)^s, i.e., the classic Zipf distribution. This is the
/// workhorse behind the synthetic knowledge-graph generator: the paper's
/// hotness observation (Fig. 2) is exactly a Zipf-like skew of entity and
/// relation access frequencies.
///
/// Implementation: inverse-CDF over a precomputed cumulative table;
/// construction is O(n), each sample is O(log n).
class ZipfSampler {
 public:
  /// `n` must be >= 1 and `exponent` >= 0 (0 degenerates to uniform).
  ZipfSampler(size_t n, double exponent, uint64_t seed);

  /// Returns a rank in [0, n); rank 0 is the most probable.
  size_t Next();

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
  Rng rng_;
};

/// Samples from an arbitrary discrete distribution in O(1) per draw
/// using Walker's alias method. Used when the generator needs a custom
/// degree profile rather than a pure Zipf law.
class AliasSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and a
  /// positive sum.
  AliasSampler(const std::vector<double>& weights, uint64_t seed);

  /// Returns an index in [0, weights.size()).
  size_t Next();

  size_t size() const { return prob_.size(); }

  /// Stream-position snapshot (the alias tables are config-derived and
  /// rebuilt at construction; only the RNG advances).
  void SaveState(ByteWriter* w) const { rng_.SaveState(w); }
  bool LoadState(ByteReader* r) { return rng_.LoadState(r); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  Rng rng_;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_RNG_H_
