#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace hetkg {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  {
    std::unique_lock<std::mutex> lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) {
      all_done_.notify_all();
    }
  }
  return true;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, threads_.size());
  const size_t per_chunk = (n + chunks - 1) / chunks;

  // Per-call latch: this call returns when ITS chunks are done, not when
  // the pool-global task count drains, so concurrent and nested calls
  // cannot observe each other's completion.
  auto state = std::make_shared<ForkState>();
  size_t submitted = 0;
  for (size_t c = 0; c < chunks; ++c) {
    if (c * per_chunk >= n) break;
    ++submitted;
  }
  state->remaining = submitted;
  for (size_t c = 0; c < submitted; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    Submit([state, &fn, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  // Help drain the queue while this call's chunks are outstanding: the
  // caller may itself be a pool worker (nested ParallelFor), and parking
  // it on the latch would deadlock a fully busy pool.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->remaining == 0) return;
    }
    if (!RunOneTask()) break;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace hetkg
