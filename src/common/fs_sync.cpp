#include "common/fs_sync.h"

#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define HETKG_HAS_FSYNC 1
#else
#define HETKG_HAS_FSYNC 0
#endif

namespace hetkg {

namespace {

#if HETKG_HAS_FSYNC
Status SyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed for " + path);
  }
  return Status::OK();
}
#endif

}  // namespace

Status SyncFile(const std::string& path) {
#if HETKG_HAS_FSYNC
  return SyncPath(path, O_RDONLY);
#else
  (void)path;
  return Status::OK();
#endif
}

Status SyncDir(const std::string& path) {
#if HETKG_HAS_FSYNC
  return SyncPath(path, O_RDONLY | O_DIRECTORY);
#else
  (void)path;
  return Status::OK();
#endif
}

Status SyncParentDir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  return SyncDir(parent.empty() ? "." : parent.string());
}

}  // namespace hetkg
