#ifndef HETKG_COMMON_SERIALIZE_H_
#define HETKG_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace hetkg {

/// Append-only little-endian binary encoder backing the HETKGCK2
/// checkpoint sections. All multi-byte values are written via memcpy so
/// the encoding is identical on any host this library builds on
/// (little-endian is asserted at the checkpoint layer via the magic).
class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

  /// Length-prefixed (u64) packed float span.
  void FloatVec(std::span<const float> v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(float));
  }

  /// Length-prefixed (u64) packed u64 span.
  void U64Vec(std::span<const uint64_t> v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(uint64_t));
  }

  void Raw(const void* data, size_t size) {
    const auto* bytes = static_cast<const char*>(data);
    buffer_.append(bytes, size);
  }

  const std::string& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked decoder for ByteWriter output. A read past the end
/// latches `ok() == false` and returns zeros; callers validate `ok()`
/// once after decoding a section instead of checking every field.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t U8() { return Scalar<uint8_t>(); }
  uint32_t U32() { return Scalar<uint32_t>(); }
  uint64_t U64() { return Scalar<uint64_t>(); }
  float F32() { return Scalar<float>(); }
  double F64() { return Scalar<double>(); }

  std::string Str() {
    const uint32_t len = U32();
    std::string s;
    if (!Require(len)) return s;
    s.assign(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  std::vector<float> FloatVec() { return Vec<float>(); }
  std::vector<uint64_t> U64Vec() { return Vec<uint64_t>(); }

  bool ReadRaw(void* out, size_t size) {
    if (!Require(size)) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T Scalar() {
    T v{};
    if (Require(sizeof(T))) {
      std::memcpy(&v, data_ + pos_, sizeof(T));
      pos_ += sizeof(T);
    }
    return v;
  }

  template <typename T>
  std::vector<T> Vec() {
    const uint64_t n = U64();
    std::vector<T> v;
    if (!Require(n * sizeof(T))) return v;
    v.resize(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool Require(uint64_t size) {
    if (!ok_ || size > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_SERIALIZE_H_
