#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hetkg {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string message = stream_.str();
  {
    // One buffered write per message, serialized process-wide, so
    // concurrent engine threads can never interleave mid-line. (fputs
    // is atomic per POSIX stdio locking, but nothing guarantees that
    // for every libc, and the flush ordering was unspecified.)
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    std::fwrite(message.data(), 1, message.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace hetkg
