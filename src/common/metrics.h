#ifndef HETKG_COMMON_METRICS_H_
#define HETKG_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace hetkg {

/// A named bag of metrics: monotonically increasing counters, gauges
/// (point-in-time doubles), and latency/size histograms. Each simulated
/// component (PS client, cache, network link) owns one; benches merge
/// them for reporting. Not thread-safe by design: simulation accounting
/// is single-threaded and deterministic. The intra-batch compute
/// fan-out (core/parallel_batch.h) must therefore NEVER touch a
/// MetricRegistry from inside a parallel region — engines record
/// metrics before or after the fan-out, on the scheduling thread.
class MetricRegistry {
 public:
  // -- Counters ----------------------------------------------------------

  /// Adds `delta` to counter `name`, creating it at zero on first use.
  void Increment(const std::string& name, uint64_t delta = 1);

  /// Current value; zero for counters never touched.
  uint64_t Get(const std::string& name) const;

  // -- Gauges ------------------------------------------------------------

  /// Sets gauge `name` to `value` (last write wins).
  void SetGauge(const std::string& name, double value);

  /// Current gauge value; 0.0 for gauges never set.
  double GetGauge(const std::string& name) const;

  // -- Histograms --------------------------------------------------------

  /// Records one observation into histogram `name`, creating it empty
  /// on first use.
  void Observe(const std::string& name, double value);

  /// The named histogram, or nullptr when never observed.
  const Histogram* FindHistogram(const std::string& name) const;

  // -- Whole-registry operations ----------------------------------------

  /// Folds `other` into this registry: counters sum, gauges take
  /// `other`'s value when it has one (last write wins), histograms
  /// merge bucket-wise.
  void Merge(const MetricRegistry& other);

  /// Resets all metrics to zero/empty without forgetting their names.
  void Clear();

  /// Snapshot of all counters in name order. Deliberately counters-only
  /// so existing determinism tests comparing snapshots are unaffected
  /// by new gauge/histogram instrumentation.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Gauges in name order.
  std::vector<std::pair<std::string, double>> GaugeSnapshot() const;

  /// One JSON object covering everything:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                          "mean":..,"p50":..,"p95":..,"p99":..}}}
  /// Keys appear in name order; numbers use shortest-round-trip
  /// formatting, so output is deterministic.
  std::string SnapshotJson() const;

  /// Multi-line "name = value" rendering, for debug output.
  std::string ToString() const;

  /// Exact state round-trip (counters, gauges, histograms) for the
  /// HETKGCK2 training snapshots, so a resumed run's final metric
  /// snapshot is bit-identical to an uninterrupted run's.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Well-known counter names shared between the PS, cache, and network
/// layers so benches can aggregate without string drift.
namespace metric {
inline constexpr char kRemotePullRows[] = "ps.remote_pull_rows";
inline constexpr char kRemotePushRows[] = "ps.remote_push_rows";
inline constexpr char kLocalPullRows[] = "ps.local_pull_rows";
inline constexpr char kLocalPushRows[] = "ps.local_push_rows";
inline constexpr char kRemoteMessages[] = "net.remote_messages";
inline constexpr char kRemoteBytes[] = "net.remote_bytes";
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheRefreshRows[] = "cache.refresh_rows";
inline constexpr char kCacheRebuilds[] = "cache.rebuilds";
inline constexpr char kWriteBackFlushes[] = "cache.write_back_flushes";
inline constexpr char kTriplesTrained[] = "engine.triples_trained";
inline constexpr char kNegativesTrained[] = "engine.negatives_trained";
inline constexpr char kPartitionSwaps[] = "pbg.partition_swaps";
inline constexpr char kPartitionSwapBytes[] = "pbg.partition_swap_bytes";
inline constexpr char kDenseRelationBytes[] = "pbg.dense_relation_bytes";
// Fault-injection transport (sim/transport.h). These counters exist
// only when the corresponding fault fires, so fault-free runs keep
// their pre-transport metric snapshots byte-identical.
inline constexpr char kTransportRetries[] = "transport.retries";
inline constexpr char kTransportDroppedMessages[] =
    "transport.dropped_messages";
inline constexpr char kTransportDuplicates[] =
    "transport.duplicate_deliveries";
inline constexpr char kTransportDelayed[] = "transport.delayed_deliveries";
inline constexpr char kTransportExhaustedRetries[] =
    "transport.exhausted_retries";
// Degradation paths taken by the PS client when the transport gives up.
inline constexpr char kTransportStaleServes[] = "transport.stale_serves";
inline constexpr char kTransportDegradedReads[] =
    "transport.degraded_reads";
inline constexpr char kTransportLostPushRows[] =
    "transport.lost_push_rows";
inline constexpr char kTransportDuplicatesIgnored[] =
    "transport.duplicates_ignored";
inline constexpr char kTransportSkippedSyncs[] =
    "transport.skipped_relation_syncs";
// Observability (src/obs/). Gauges and histograms below are recorded
// only when tracing or metrics export is active, so plain runs keep
// their counter snapshots unchanged. All time values are *simulated*
// seconds from sim::ClusterSim — deterministic across thread counts —
// matching the per-phase taxonomy of the paper's Fig. 7.
inline constexpr char kPhasePrefetchSeconds[] = "phase.prefetch_s";
inline constexpr char kPhaseRebuildSeconds[] = "phase.rebuild_s";
inline constexpr char kPhasePullSeconds[] = "phase.pull_s";
inline constexpr char kPhaseComputeSeconds[] = "phase.compute_s";
inline constexpr char kPhasePushSeconds[] = "phase.push_s";
inline constexpr char kPhaseSwapSeconds[] = "phase.swap_s";
inline constexpr char kPhaseRelationSyncSeconds[] = "phase.relation_sync_s";
inline constexpr char kCacheHitRatio[] = "cache.hit_ratio";
inline constexpr char kSimSeconds[] = "sim.machine_seconds";
inline constexpr char kPullSimSeconds[] = "ps.pull_sim_seconds";
inline constexpr char kPushSimSeconds[] = "ps.push_sim_seconds";
inline constexpr char kTraceDroppedEvents[] = "trace.dropped_events";
// Real-transport profiling under --runtime=proc (DESIGN.md §14). The
// frame/byte counters and per-transport histograms
// (net.frame.bytes.<shm|tcp>, net.rpc.latency_us.<shm|tcp>) are
// recorded only when obs is enabled, and only into process-local
// registries that are never serialized — proc snapshots stay
// byte-identical to sim, obs on or off.
inline constexpr char kNetRpcLatency[] = "net.rpc.latency_us";
inline constexpr char kNetFrameBytes[] = "net.frame.bytes";
inline constexpr char kNetShipBytes[] = "net.ship.bytes";
inline constexpr char kNetFramesSent[] = "net.frames.sent";
inline constexpr char kNetFramesReceived[] = "net.frames.received";
inline constexpr char kNetBytesSent[] = "net.bytes.sent";
inline constexpr char kNetBytesReceived[] = "net.bytes.received";
// Real-transport fault hardening (DESIGN.md §15). Injection counters
// fire in the FaultChannel decorator; detection/healing counters fire
// in the Messenger's CRC + retransmit layer. All live in the
// never-serialized per-process net registries, and every entry is
// created lazily on its first increment — a fault-free run exports no
// net.fault.* keys at all.
inline constexpr char kNetFaultInjectedDrops[] = "net.fault.injected_drops";
inline constexpr char kNetFaultInjectedDuplicates[] =
    "net.fault.injected_duplicates";
inline constexpr char kNetFaultInjectedDelays[] = "net.fault.injected_delays";
inline constexpr char kNetFaultInjectedCorruptions[] =
    "net.fault.injected_corruptions";
inline constexpr char kNetFaultInjectedResets[] = "net.fault.injected_resets";
inline constexpr char kNetFaultCrcErrors[] = "net.fault.crc_errors";
inline constexpr char kNetFaultRetransmits[] = "net.fault.retransmits";
inline constexpr char kNetFaultDuplicatesDropped[] =
    "net.fault.duplicate_frames_dropped";
// Hung-worker watchdog (DESIGN.md §15). Heartbeats tick on every
// liveness frame a worker emits; escalations count SIGKILLs the
// coordinator issued after a liveness deadline expired.
inline constexpr char kWatchdogHeartbeats[] = "watchdog.heartbeats";
inline constexpr char kWatchdogEscalations[] = "watchdog.escalations";
// Orphaned flight-recorder spill files removed at proc-obs startup.
inline constexpr char kObsFlightOrphansRemoved[] =
    "obs.flight_orphans_removed";
// Tiered embedding storage (DESIGN.md §16). Reported only under
// --storage=tiered, in never-serialized registries: cold_reads counts
// rows dequantized out of the cold tier, promotions counts cold->cache
// admissions, bytes_mapped is the total mmap-backed footprint, and
// mem.rss_bytes samples /proc/self/status VmRSS at report time (the
// number the full-scale RSS budget in EXPERIMENTS.md tracks).
inline constexpr char kTierColdReads[] = "tier.cold_reads";
inline constexpr char kTierPromotions[] = "tier.promotions";
inline constexpr char kTierBytesMapped[] = "tier.bytes_mapped";
inline constexpr char kMemRssBytes[] = "mem.rss_bytes";
// Async pipeline engine (DESIGN.md §12). Reported only in --async
// runs: stall/depth counts depend on real thread scheduling, so the
// deterministic mode — whose reports are bit-identity-checked — never
// emits them.
inline constexpr char kPipelineStalls[] = "pipeline.stall";
inline constexpr char kPipelineStalenessWaits[] =
    "pipeline.staleness_waits";
inline constexpr char kPipelineQueueDepthSample[] =
    "pipeline.queue_depth.sample_pull";
inline constexpr char kPipelineQueueDepthCompute[] =
    "pipeline.queue_depth.pull_compute";
inline constexpr char kPipelineQueueDepthPush[] =
    "pipeline.queue_depth.compute_push";
inline constexpr char kPipelineMaxRowLag[] = "pipeline.max_row_lag";
// Resolved score/optimizer kernel path (embedding/kernels.h):
// 0 = scalar, 1 = portable vector, 2 = AVX2. Constant for a run; every
// value produces bit-identical training output.
inline constexpr char kKernelDispatch[] = "kernel.dispatch";
// Crash recovery (DESIGN.md §9). checkpoint.* counters exist only when
// periodic checkpointing is configured; both the crashed and the
// uninterrupted reference run take the same snapshot schedule, so the
// counters stay bit-identical across a crash + resume. recovery.*
// counters track in-sim process faults (kWorkerCrash/kPsShardRestart)
// and are deterministic functions of the fault plan.
inline constexpr char kCheckpointSaves[] = "checkpoint.saves";
inline constexpr char kCheckpointBytes[] = "checkpoint.bytes";
inline constexpr char kRecoveryWorkerCrashes[] = "recovery.worker_crashes";
inline constexpr char kRecoveryPsShardRestarts[] =
    "recovery.ps_shard_restarts";
inline constexpr char kRecoveryReplayedIterations[] =
    "recovery.replayed_iterations";
inline constexpr char kRecoveryReplaySkippedRows[] =
    "recovery.replay_skipped_push_rows";
// Process-local restore bookkeeping, kept OUT of the training metric
// snapshot (a resumed run restores once; the uninterrupted reference
// run never does, so these may not perturb the bit-identity contract).
// Engines expose them via RecoveryMetrics() instead.
inline constexpr char kCheckpointRestores[] = "checkpoint.restores";
inline constexpr char kCheckpointFallbacks[] =
    "checkpoint.manifest_fallbacks";
inline constexpr char kCheckpointOrphanTemps[] =
    "checkpoint.orphan_temps_removed";
}  // namespace metric

}  // namespace hetkg

#endif  // HETKG_COMMON_METRICS_H_
