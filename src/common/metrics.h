#ifndef HETKG_COMMON_METRICS_H_
#define HETKG_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetkg {

/// A named bag of monotonically increasing counters. Each simulated
/// component (PS client, cache, network link) owns one; benches merge
/// them for reporting. Not thread-safe by design: simulation accounting
/// is single-threaded and deterministic. The intra-batch compute
/// fan-out (core/parallel_batch.h) must therefore NEVER touch a
/// MetricRegistry from inside a parallel region — engines record
/// counters before or after the fan-out, on the scheduling thread.
class MetricRegistry {
 public:
  /// Adds `delta` to counter `name`, creating it at zero on first use.
  void Increment(const std::string& name, uint64_t delta = 1);

  /// Current value; zero for counters never touched.
  uint64_t Get(const std::string& name) const;

  /// Sums every counter of `other` into this registry.
  void Merge(const MetricRegistry& other);

  /// Resets all counters to zero without forgetting their names.
  void Clear();

  /// Snapshot of all counters in name order.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Multi-line "name = value" rendering, for debug output.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

/// Well-known counter names shared between the PS, cache, and network
/// layers so benches can aggregate without string drift.
namespace metric {
inline constexpr char kRemotePullRows[] = "ps.remote_pull_rows";
inline constexpr char kRemotePushRows[] = "ps.remote_push_rows";
inline constexpr char kLocalPullRows[] = "ps.local_pull_rows";
inline constexpr char kLocalPushRows[] = "ps.local_push_rows";
inline constexpr char kRemoteMessages[] = "net.remote_messages";
inline constexpr char kRemoteBytes[] = "net.remote_bytes";
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheRefreshRows[] = "cache.refresh_rows";
inline constexpr char kCacheRebuilds[] = "cache.rebuilds";
inline constexpr char kWriteBackFlushes[] = "cache.write_back_flushes";
inline constexpr char kTriplesTrained[] = "engine.triples_trained";
inline constexpr char kNegativesTrained[] = "engine.negatives_trained";
inline constexpr char kPartitionSwaps[] = "pbg.partition_swaps";
inline constexpr char kPartitionSwapBytes[] = "pbg.partition_swap_bytes";
inline constexpr char kDenseRelationBytes[] = "pbg.dense_relation_bytes";
// Fault-injection transport (sim/transport.h). These counters exist
// only when the corresponding fault fires, so fault-free runs keep
// their pre-transport metric snapshots byte-identical.
inline constexpr char kTransportRetries[] = "transport.retries";
inline constexpr char kTransportDroppedMessages[] =
    "transport.dropped_messages";
inline constexpr char kTransportDuplicates[] =
    "transport.duplicate_deliveries";
inline constexpr char kTransportDelayed[] = "transport.delayed_deliveries";
inline constexpr char kTransportExhaustedRetries[] =
    "transport.exhausted_retries";
// Degradation paths taken by the PS client when the transport gives up.
inline constexpr char kTransportStaleServes[] = "transport.stale_serves";
inline constexpr char kTransportDegradedReads[] =
    "transport.degraded_reads";
inline constexpr char kTransportLostPushRows[] =
    "transport.lost_push_rows";
inline constexpr char kTransportDuplicatesIgnored[] =
    "transport.duplicates_ignored";
inline constexpr char kTransportSkippedSyncs[] =
    "transport.skipped_relation_syncs";
}  // namespace metric

}  // namespace hetkg

#endif  // HETKG_COMMON_METRICS_H_
