#ifndef HETKG_COMMON_STATUS_H_
#define HETKG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace hetkg {

/// Coarse error taxonomy used across the library. Mirrors the
/// RocksDB/Arrow convention of returning status objects instead of
/// throwing exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK state carries no allocation; error states carry a code and a
/// message. Statuses are copyable and movable, and `ok()` must be
/// consulted before relying on any produced side effects.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value
/// of an errored result is a programming error (checked by assert).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps `return value;` ergonomic.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. The status must not be
  /// OK: an OK result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status to the caller.
#define HETKG_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::hetkg::Status _hetkg_status = (expr);    \
    if (!_hetkg_status.ok()) {                 \
      return _hetkg_status;                    \
    }                                          \
  } while (false)

#define HETKG_INTERNAL_CONCAT2(a, b) a##b
#define HETKG_INTERNAL_CONCAT(a, b) HETKG_INTERNAL_CONCAT2(a, b)

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define HETKG_ASSIGN_OR_RETURN(lhs, expr)                                 \
  HETKG_INTERNAL_ASSIGN_OR_RETURN(                                        \
      HETKG_INTERNAL_CONCAT(_hetkg_result_, __LINE__), lhs, expr)

#define HETKG_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) {                                      \
    return tmp.status();                                \
  }                                                     \
  lhs = std::move(tmp).value()

}  // namespace hetkg

#endif  // HETKG_COMMON_STATUS_H_
