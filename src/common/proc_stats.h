#ifndef HETKG_COMMON_PROC_STATS_H_
#define HETKG_COMMON_PROC_STATS_H_

#include <cstdint>

namespace hetkg {

/// Resident-set size of the calling process in bytes (Linux: VmRSS of
/// /proc/self/status). 0 when the platform offers no cheap way to read
/// it. Feeds the `mem.rss_bytes` gauge of tiered-storage runs and the
/// RSS column of the scaling benches.
uint64_t CurrentRssBytes();

/// High-water resident-set size in bytes (Linux: VmHWM). 0 when
/// unavailable. The bench tables report this one: a run's verdict
/// ("did full-scale Freebase fit the budget?") is about the peak, not
/// the instantaneous value at print time.
uint64_t PeakRssBytes();

}  // namespace hetkg

#endif  // HETKG_COMMON_PROC_STATS_H_
