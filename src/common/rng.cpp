#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hetkg {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound != 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(NextUint64()); }

ZipfSampler::ZipfSampler(size_t n, double exponent, uint64_t seed)
    : exponent_(exponent), rng_(seed) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // Guard against accumulated floating-point error.
}

size_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights, uint64_t seed)
    : rng_(seed) {
  assert(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  prob_.resize(n);
  alias_.resize(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasSampler::Next() {
  const size_t i = static_cast<size_t>(rng_.NextBounded(prob_.size()));
  return rng_.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace hetkg
