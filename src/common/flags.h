#ifndef HETKG_COMMON_FLAGS_H_
#define HETKG_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hetkg {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--name=value` and `--name value`; a bare `--name` is treated
/// as a boolean true. Unknown flags are an error so typos surface
/// immediately.
class FlagParser {
 public:
  /// Registers a flag with its default value and help text. Must be
  /// called before Parse().
  void Define(std::string name, std::string default_value, std::string help);

  /// Parses argv; returns InvalidArgument on unknown flags or malformed
  /// syntax. Positional arguments are rejected.
  Status Parse(int argc, char** argv);

  /// Typed accessors; CHECK-fail on flags that were never Define()d,
  /// which catches programming errors in the bench code itself.
  std::string GetString(std::string_view name) const;
  int64_t GetInt(std::string_view name) const;
  double GetDouble(std::string_view name) const;
  bool GetBool(std::string_view name) const;

  /// True when the user explicitly supplied the flag (vs default).
  bool IsSet(std::string_view name) const;

  /// Renders the registered flags and defaults as a usage string.
  std::string Usage(std::string_view program) const;

 private:
  struct FlagInfo {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };
  const FlagInfo& Lookup(std::string_view name) const;

  std::map<std::string, FlagInfo, std::less<>> flags_;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_FLAGS_H_
