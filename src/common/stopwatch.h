#ifndef HETKG_COMMON_STOPWATCH_H_
#define HETKG_COMMON_STOPWATCH_H_

#include <chrono>

namespace hetkg {

/// Measures wall-clock time. Simulated time (the quantity the benches
/// report for cluster experiments) lives in sim/clock.h; this class is
/// for real elapsed time only.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_STOPWATCH_H_
