#include "common/metrics.h"

#include <charconv>
#include <cmath>
#include <sstream>

namespace hetkg {

namespace {

// Local JSON helpers. common/ sits below obs/ in the layering, so the
// registry formats its own numbers instead of pulling in obs/json.h;
// both use std::to_chars shortest form, so output stays identical.
void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

void AppendNumber(std::string* out, uint64_t value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  out->append(buf, ptr);
}

void AppendKey(std::string* out, const std::string& name) {
  // Metric names are code-chosen identifiers (letters, digits, dots,
  // underscores), so quoting without escapes is safe.
  out->push_back('"');
  out->append(name);
  out->append("\":");
}

}  // namespace

void MetricRegistry::Increment(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t MetricRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricRegistry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double MetricRegistry::GetGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricRegistry::Observe(const std::string& name, double value) {
  histograms_[name].Add(value);
}

const Histogram* MetricRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
}

void MetricRegistry::Clear() {
  for (auto& [name, value] : counters_) {
    value = 0;
  }
  for (auto& [name, value] : gauges_) {
    value = 0.0;
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Clear();
  }
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::Snapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeSnapshot()
    const {
  return {gauges_.begin(), gauges_.end()};
}

std::string MetricRegistry::SnapshotJson() const {
  std::string out;
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(&out, name);
    AppendNumber(&out, value);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(&out, name);
    AppendNumber(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(&out, name);
    out.append("{\"count\":");
    AppendNumber(&out, histogram.count());
    out.append(",\"sum\":");
    AppendNumber(&out, histogram.sum());
    out.append(",\"min\":");
    AppendNumber(&out, histogram.min());
    out.append(",\"max\":");
    AppendNumber(&out, histogram.max());
    out.append(",\"mean\":");
    AppendNumber(&out, histogram.Mean());
    out.append(",\"p50\":");
    AppendNumber(&out, histogram.Quantile(0.50));
    out.append(",\"p95\":");
    AppendNumber(&out, histogram.Quantile(0.95));
    out.append(",\"p99\":");
    AppendNumber(&out, histogram.Quantile(0.99));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

void MetricRegistry::SaveState(ByteWriter* w) const {
  w->U64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w->Str(name);
    w->U64(value);
  }
  w->U64(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    w->Str(name);
    w->F64(value);
  }
  w->U64(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    w->Str(name);
    hist.SaveState(w);
  }
}

bool MetricRegistry::LoadState(ByteReader* r) {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  const uint64_t num_counters = r->U64();
  for (uint64_t i = 0; i < num_counters && r->ok(); ++i) {
    std::string name = r->Str();
    counters[std::move(name)] = r->U64();
  }
  const uint64_t num_gauges = r->U64();
  for (uint64_t i = 0; i < num_gauges && r->ok(); ++i) {
    std::string name = r->Str();
    gauges[std::move(name)] = r->F64();
  }
  const uint64_t num_histograms = r->U64();
  for (uint64_t i = 0; i < num_histograms && r->ok(); ++i) {
    std::string name = r->Str();
    Histogram hist;
    if (!hist.LoadState(r)) return false;
    histograms[std::move(name)] = std::move(hist);
  }
  if (!r->ok()) return false;
  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  return true;
}

std::string MetricRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " = " << histogram.ToString() << "\n";
  }
  return os.str();
}

}  // namespace hetkg
