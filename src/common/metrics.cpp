#include "common/metrics.h"

#include <sstream>

namespace hetkg {

void MetricRegistry::Increment(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t MetricRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricRegistry::Merge(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
}

void MetricRegistry::Clear() {
  for (auto& [name, value] : counters_) {
    value = 0;
  }
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::Snapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

std::string MetricRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace hetkg
