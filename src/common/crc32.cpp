#include "common/crc32.h"

#include <array>

namespace hetkg {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finish(Crc32Update(Crc32Init(), data, size));
}

}  // namespace hetkg
