#ifndef HETKG_COMMON_STRING_UTIL_H_
#define HETKG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hetkg {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimString(std::string_view input);

/// Parses a base-10 integer / double; returns false on any trailing
/// garbage or overflow.
bool ParseInt64(std::string_view input, int64_t* out);
bool ParseUint64(std::string_view input, uint64_t* out);
bool ParseDouble(std::string_view input, double* out);

/// Renders `bytes` with a binary unit suffix ("1.5 GiB").
std::string HumanBytes(double bytes);

/// Renders `seconds` adaptively ("1.2 ms", "3.4 s", "2.1 min").
std::string HumanSeconds(double seconds);

/// True when `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace hetkg

#endif  // HETKG_COMMON_STRING_UTIL_H_
