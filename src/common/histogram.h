#ifndef HETKG_COMMON_HISTOGRAM_H_
#define HETKG_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace hetkg {

/// Streaming summary of a scalar distribution: exact count/mean/min/max
/// plus approximate quantiles from power-of-two buckets. Used for access
/// frequency skew reporting (Fig. 2) and message-size accounting.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Values below 1 — including negatives,
  /// which the power-of-two buckets cannot represent — land in the
  /// first bucket; min/sum still record the true value.
  void Add(double value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;

  /// Approximate quantile in [0, 1]; interpolates within the bucket.
  double Quantile(double q) const;

  /// One-line rendering: count/mean/p50/p95/p99/max.
  std::string ToString() const;

  /// Exact state round-trip for the HETKGCK2 training snapshots.
  void SaveState(ByteWriter* w) const;
  bool LoadState(ByteReader* r);

 private:
  static constexpr size_t kNumBuckets = 128;

  /// Bucket index for `value`; bucket b covers [2^(b-1), 2^b).
  static size_t BucketFor(double value);
  /// Lower edge of bucket `b`.
  static double BucketLow(size_t b);
  /// Upper edge of bucket `b`.
  static double BucketHigh(size_t b);

  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<uint64_t> buckets_;
};

}  // namespace hetkg

#endif  // HETKG_COMMON_HISTOGRAM_H_
