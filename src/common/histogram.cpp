#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace hetkg {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(double value) {
  // Negative (and NaN) inputs clamp to bucket 0: log2 of a negative is
  // NaN, and casting NaN to int is undefined behaviour in release
  // builds where the old assert compiled away. min/sum still record the
  // true value.
  if (!(value >= 1.0)) return 0;
  const int e = static_cast<int>(std::floor(std::log2(value))) + 1;
  return std::min(static_cast<size_t>(e), kNumBuckets - 1);
}

double Histogram::BucketLow(size_t b) {
  if (b == 0) return 0.0;
  return std::pow(2.0, static_cast<double>(b - 1));
}

double Histogram::BucketHigh(size_t b) {
  return std::pow(2.0, static_cast<double>(b));
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Clear() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[b]);
    if (next >= target) {
      const double frac =
          buckets_[b] == 0 ? 0.0 : (target - seen) / static_cast<double>(buckets_[b]);
      const double lo = std::max(BucketLow(b), min_);
      const double hi = std::min(BucketHigh(b), max_);
      return lo + frac * (hi - lo);
    }
    seen = next;
  }
  return max_;
}

void Histogram::SaveState(ByteWriter* w) const {
  w->U64(count_);
  w->F64(sum_);
  w->F64(min_);
  w->F64(max_);
  w->U64Vec(buckets_);
}

bool Histogram::LoadState(ByteReader* r) {
  count_ = r->U64();
  sum_ = r->F64();
  min_ = r->F64();
  max_ = r->F64();
  std::vector<uint64_t> buckets = r->U64Vec();
  if (!r->ok() || buckets.size() != kNumBuckets) return false;
  buckets_ = std::move(buckets);
  return true;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Quantile(0.5)
     << " p95=" << Quantile(0.95) << " p99=" << Quantile(0.99)
     << " max=" << max();
  return os.str();
}

}  // namespace hetkg
