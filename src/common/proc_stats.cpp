#include "common/proc_stats.h"

#include <cstdio>
#include <cstring>

namespace hetkg {

namespace {

/// Parses one "Vm...:  <kB> kB" line from /proc/self/status.
uint64_t ReadStatusKb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, " %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

uint64_t CurrentRssBytes() { return ReadStatusKb("VmRSS:") * 1024; }

uint64_t PeakRssBytes() { return ReadStatusKb("VmHWM:") * 1024; }

}  // namespace hetkg
