#include "ps/parameter_server.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/trace.h"

namespace hetkg::ps {

Result<std::unique_ptr<ParameterServer>> ParameterServer::Create(
    const PsConfig& config, std::vector<uint32_t> entity_owner,
    sim::ClusterSim* cluster, sim::Transport* transport) {
  if (cluster == nullptr) {
    return Status::InvalidArgument("cluster must not be null");
  }
  if (config.num_entities == 0 || config.num_relations == 0) {
    return Status::InvalidArgument("empty entity or relation table");
  }
  if (config.entity_dim == 0 || config.relation_dim == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (entity_owner.size() != config.num_entities) {
    return Status::InvalidArgument("entity_owner size mismatch");
  }
  for (uint32_t owner : entity_owner) {
    if (owner >= cluster->num_machines()) {
      return Status::OutOfRange("entity owner machine " +
                                std::to_string(owner) +
                                " out of range (cluster has " +
                                std::to_string(cluster->num_machines()) +
                                " machines)");
    }
  }
  if (transport != nullptr && transport->cluster() != cluster) {
    return Status::InvalidArgument(
        "transport must account to the same cluster");
  }
  if (config.storage.enabled) {
    // Reclaim slabs a crashed run left behind before mapping new ones
    // (mirrors the checkpoint manager's "*.tmp" orphan sweep).
    const size_t swept =
        embedding::SweepOrphanedColdFiles(config.storage.cold_dir);
    if (swept > 0) {
      HETKG_LOG(Info) << "swept " << swept << " orphaned cold slab(s) from "
                      << config.storage.cold_dir;
    }
  }
  HETKG_ASSIGN_OR_RETURN(
      embedding::EmbeddingTable entity_table,
      embedding::EmbeddingTable::CreateTiered(
          config.num_entities, config.entity_dim, config.storage, "entity"));
  HETKG_ASSIGN_OR_RETURN(embedding::EmbeddingTable relation_table,
                         embedding::EmbeddingTable::CreateTiered(
                             config.num_relations, config.relation_dim,
                             config.storage, "relation"));
  // AdaGrad accumulators scale with the tables, so at tiered scale they
  // move behind mmap too — but always as fp32 (see adagrad.h).
  HETKG_ASSIGN_OR_RETURN(
      embedding::AdaGrad entity_opt,
      embedding::AdaGrad::CreateTiered(config.num_entities, config.entity_dim,
                                       config.learning_rate, config.storage,
                                       "entity.accum"));
  HETKG_ASSIGN_OR_RETURN(
      embedding::AdaGrad relation_opt,
      embedding::AdaGrad::CreateTiered(
          config.num_relations, config.relation_dim, config.learning_rate,
          config.storage, "relation.accum"));
  return std::unique_ptr<ParameterServer>(new ParameterServer(
      config, std::move(entity_owner), cluster, transport,
      std::move(entity_table), std::move(relation_table),
      std::move(entity_opt), std::move(relation_opt)));
}

ParameterServer::ParameterServer(const PsConfig& config,
                                 std::vector<uint32_t> entity_owner,
                                 sim::ClusterSim* cluster,
                                 sim::Transport* transport,
                                 embedding::EmbeddingTable entity_table,
                                 embedding::EmbeddingTable relation_table,
                                 embedding::AdaGrad entity_opt,
                                 embedding::AdaGrad relation_opt)
    : config_(config),
      entity_owner_(std::move(entity_owner)),
      cluster_(cluster),
      owned_transport_(transport == nullptr
                           ? std::make_unique<sim::Transport>(cluster)
                           : nullptr),
      transport_(transport == nullptr ? owned_transport_.get() : transport),
      entity_table_(std::move(entity_table)),
      relation_table_(std::move(relation_table)),
      entity_opt_(std::move(entity_opt)),
      relation_opt_(std::move(relation_opt)),
      push_seq_(cluster->num_machines(), 0),
      applied_push_seq_(cluster->num_machines(), 0),
      replaying_(cluster->num_machines(), 0) {}

void ParameterServer::InitEmbeddings() {
  Rng rng(config_.init_seed);
  entity_table_.InitXavierUniform(&rng);
  relation_table_.InitXavierUniform(&rng);
  if (config_.normalize_entities) {
    for (size_t e = 0; e < config_.num_entities; ++e) {
      entity_table_.L2NormalizeRow(e);
    }
  }
  // Bulk init touched every cold page; drop them so steady-state RSS
  // reflects the training working set, not the init sweep.
  DropColdResidency();
}

void ParameterServer::DropColdResidency() const {
  entity_table_.DropColdResidency();
  relation_table_.DropColdResidency();
  entity_opt_.DropColdResidency();
  relation_opt_.DropColdResidency();
}

void ParameterServer::AdviseHotKeys(std::span<const EmbKey> keys) const {
  if (!tiered()) return;
  for (const EmbKey key : keys) {
    if (IsRelationKey(key)) {
      relation_table_.AdviseRowWillNeed(KeyRelation(key));
    } else {
      entity_table_.AdviseRowWillNeed(KeyEntity(key));
    }
  }
}

uint32_t ParameterServer::OwnerOf(EmbKey key) const {
  if (IsRelationKey(key)) {
    // Relations are sharded round-robin across co-located servers.
    return static_cast<uint32_t>(KeyRelation(key) %
                                 cluster_->num_machines());
  }
  return entity_owner_[KeyEntity(key)];
}

std::span<const float> ParameterServer::Value(EmbKey key) const {
  if (IsRelationKey(key)) {
    return relation_table_.DecodedRow(KeyRelation(key));
  }
  return entity_table_.DecodedRow(KeyEntity(key));
}

void ParameterServer::ReadValueInto(EmbKey key, std::span<float> out) const {
  if (IsRelationKey(key)) {
    relation_table_.ReadRowInto(KeyRelation(key), out);
  } else {
    entity_table_.ReadRowInto(KeyEntity(key), out);
  }
}

void ParameterServer::SetValue(EmbKey key, std::span<const float> value) {
  if (IsRelationKey(key)) {
    relation_table_.SetRow(KeyRelation(key), value);
  } else {
    entity_table_.SetRow(KeyEntity(key), value);
  }
}

void ParameterServer::ApplyGradient(EmbKey key, std::span<const float> grad) {
  if (IsRelationKey(key)) {
    const RelationId r = KeyRelation(key);
    if (relation_table_.row_addressable()) {
      relation_opt_.ApplyBatch(r, relation_table_.Row(r), grad);
      return;
    }
    // Quantized row: dequantize, take the fp32 AdaGrad step (the
    // accumulator is fp32 regardless of the cold dtype), requantize.
    scratch_apply_row_.resize(config_.relation_dim);
    relation_table_.ReadRowInto(r, scratch_apply_row_);
    relation_opt_.ApplyBatch(r, scratch_apply_row_, grad);
    relation_table_.SetRow(r, scratch_apply_row_);
    return;
  }
  const EntityId e = KeyEntity(key);
  if (entity_table_.row_addressable()) {
    entity_opt_.ApplyBatch(e, entity_table_.Row(e), grad);
    if (config_.normalize_entities) {
      entity_table_.L2NormalizeRow(e);
    }
    return;
  }
  scratch_apply_row_.resize(config_.entity_dim);
  entity_table_.ReadRowInto(e, scratch_apply_row_);
  entity_opt_.ApplyBatch(e, scratch_apply_row_, grad);
  if (config_.normalize_entities) {
    const double norm = embedding::RowNorm(scratch_apply_row_);
    if (norm > 1e-12) {
      const float inv = static_cast<float>(1.0 / norm);
      for (float& v : scratch_apply_row_) v *= inv;
    }
  }
  entity_table_.SetRow(e, scratch_apply_row_);
}

PullResult ParameterServer::PullBatch(uint32_t worker_machine,
                                      std::span<const EmbKey> keys,
                                      std::span<std::span<float>> out) {
  HETKG_CHECK(keys.size() == out.size());
  obs::TraceSpan span("ps.pull_batch", "ps");
  span.Arg("rows", static_cast<double>(keys.size()));
  PullResult result;
  const size_t num_machines = cluster_->num_machines();
  scratch_owner_rows_.assign(num_machines, 0);
  scratch_payload_.assign(num_machines, 0);
  scratch_key_owner_.resize(keys.size());

  for (size_t i = 0; i < keys.size(); ++i) {
    const EmbKey key = keys[i];
    HETKG_CHECK(out[i].size() == RowDim(key))
        << "pull destination width mismatch for key " << key;
    const uint32_t owner = OwnerOf(key);
    scratch_key_owner_[i] = owner;
    ++scratch_owner_rows_[owner];
    scratch_payload_[owner] += RowBytes(key);
  }

  if (obs::Tracer::Enabled()) {
    uint64_t payload = 0;
    for (uint64_t b : scratch_payload_) payload += b;
    span.Arg("bytes", static_cast<double>(payload));
  }

  // One request/response exchange per remote shard; the request carries
  // the shard's key list, the response its rows.
  scratch_shard_ok_.assign(num_machines, 1);
  for (uint32_t owner = 0; owner < num_machines; ++owner) {
    if (scratch_owner_rows_[owner] == 0) continue;
    if (owner == worker_machine) {
      cluster_->RecordLocalCopy(worker_machine, scratch_payload_[owner]);
      metrics_.Increment(metric::kLocalPullRows, scratch_owner_rows_[owner]);
    } else {
      const sim::Delivery delivery = transport_->Exchange(
          worker_machine, owner,
          scratch_owner_rows_[owner] * sizeof(EmbKey),
          scratch_payload_[owner]);
      if (!delivery.delivered) {
        scratch_shard_ok_[owner] = 0;
        continue;
      }
      metrics_.Increment(metric::kRemotePullRows, scratch_owner_rows_[owner]);
      metrics_.Increment(metric::kRemoteMessages, 2);
      metrics_.Increment(metric::kRemoteBytes, scratch_payload_[owner]);
    }
  }

  for (size_t i = 0; i < keys.size(); ++i) {
    if (!scratch_shard_ok_[scratch_key_owner_[i]]) {
      result.failed.push_back(static_cast<uint32_t>(i));
      continue;
    }
    ReadValueInto(keys[i], out[i]);
  }
  return result;
}

PushResult ParameterServer::PushGradBatch(
    uint32_t worker_machine, std::span<const EmbKey> keys,
    std::span<const std::span<const float>> grads) {
  HETKG_CHECK(keys.size() == grads.size());
  obs::TraceSpan span("ps.push_batch", "ps");
  span.Arg("rows", static_cast<double>(keys.size()));
  PushResult result;
  const size_t num_machines = cluster_->num_machines();
  scratch_owner_rows_.assign(num_machines, 0);
  scratch_payload_.assign(num_machines, 0);
  scratch_key_owner_.resize(keys.size());

  for (size_t i = 0; i < keys.size(); ++i) {
    const EmbKey key = keys[i];
    HETKG_CHECK(grads[i].size() == RowDim(key))
        << "gradient width mismatch for key " << key;
    const uint32_t owner = OwnerOf(key);
    scratch_key_owner_[i] = owner;
    ++scratch_owner_rows_[owner];
    scratch_payload_[owner] += RowBytes(key) + sizeof(EmbKey);
  }

  if (obs::Tracer::Enabled()) {
    uint64_t payload = 0;
    for (uint64_t b : scratch_payload_) payload += b;
    span.Arg("bytes", static_cast<double>(payload));
  }

  // One message per remote shard, stamped with this worker's next
  // sequence number. The server applies a sequence at most once, so a
  // duplicated delivery cannot double-apply AdaGrad; a message that
  // exhausts its retries loses the shard's gradients.
  scratch_shard_ok_.assign(num_machines, 1);
  for (uint32_t owner = 0; owner < num_machines; ++owner) {
    if (scratch_owner_rows_[owner] == 0) continue;
    if (owner == worker_machine) {
      cluster_->RecordLocalCopy(worker_machine, scratch_payload_[owner]);
      metrics_.Increment(metric::kLocalPushRows, scratch_owner_rows_[owner]);
      continue;
    }
    const uint64_t seq = ++push_seq_[worker_machine];
    const sim::Delivery delivery =
        transport_->Send(worker_machine, owner, scratch_payload_[owner]);
    if (!delivery.delivered) {
      scratch_shard_ok_[owner] = 0;
      result.lost_rows += scratch_owner_rows_[owner];
      metrics_.Increment(metric::kTransportLostPushRows,
                         scratch_owner_rows_[owner]);
      continue;
    }
    // The push handler runs once per arrival; the sequence guard makes
    // the second arrival of a duplicated message a no-op.
    const uint32_t arrivals = delivery.duplicated ? 2 : 1;
    for (uint32_t arrival = 0; arrival < arrivals; ++arrival) {
      if (seq <= applied_push_seq_[worker_machine]) {
        ++result.duplicates_ignored;
        metrics_.Increment(metric::kTransportDuplicatesIgnored);
        continue;
      }
      applied_push_seq_[worker_machine] = seq;
      metrics_.Increment(metric::kRemotePushRows, scratch_owner_rows_[owner]);
      metrics_.Increment(metric::kRemoteMessages, 1);
      metrics_.Increment(metric::kRemoteBytes, scratch_payload_[owner]);
    }
  }

  // Replayed pushes (worker-crash recovery) repeat work the server has
  // already applied: the rewound sequence numbers make the remote
  // messages look like duplicates above, and here the apply loop is
  // suppressed wholesale, covering the local-shard rows that never
  // carry a sequence number.
  if (replaying_[worker_machine]) {
    metrics_.Increment(metric::kRecoveryReplaySkippedRows, keys.size());
    return result;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!scratch_shard_ok_[scratch_key_owner_[i]]) continue;
    ApplyGradient(keys[i], grads[i]);
  }
  return result;
}

void ParameterServer::BeginWorkerReplay(uint32_t machine,
                                        uint64_t snapshot_push_seq) {
  HETKG_CHECK(machine < replaying_.size());
  replaying_[machine] = 1;
  push_seq_[machine] = snapshot_push_seq;
}

void ParameterServer::EndWorkerReplay(uint32_t machine) {
  HETKG_CHECK(machine < replaying_.size());
  replaying_[machine] = 0;
  // Replay normally consumes exactly the original sequence numbers, but
  // never let a recovered worker reuse one the server already applied.
  push_seq_[machine] = std::max(push_seq_[machine],
                                applied_push_seq_[machine]);
}

void ParameterServer::SaveState(embedding::CheckpointWriter* w) const {
  const bool quantized =
      tiered() && config_.storage.dtype != embedding::ColdDtype::kFp32;
  if (!quantized) {
    // fp32 rows — in-RAM or behind mmap — serialize identically, so a
    // tiered-fp32 snapshot is byte-for-byte the in-RAM snapshot.
    AppendTableSection(w, embedding::SectionTag::kEntityTable, entity_table_);
    AppendTableSection(w, embedding::SectionTag::kRelationTable,
                       relation_table_);
    ByteWriter opt;
    entity_opt_.SaveState(&opt);
    relation_opt_.SaveState(&opt);
    w->AddSection(embedding::SectionTag::kPsOptimizer, std::move(opt));
  } else {
    // Quantized tables snapshot their encoded slabs as cold sidecars —
    // streamed from the mapping, never materialized in RAM — with the
    // fp32 accumulators alongside as fp32 sidecars.
    w->AddColdTable(embedding::SectionTag::kEntityTable, entity_table_);
    w->AddColdTable(embedding::SectionTag::kRelationTable, relation_table_);
    w->AddColdFloats(embedding::SectionTag::kEntityOptState,
                     entity_opt_.AccumulatorData(), config_.num_entities,
                     config_.entity_dim);
    w->AddColdFloats(embedding::SectionTag::kRelationOptState,
                     relation_opt_.AccumulatorData(), config_.num_relations,
                     config_.relation_dim);
  }
  ByteWriter runtime;
  runtime.U64Vec(push_seq_);
  runtime.U64Vec(applied_push_seq_);
  metrics_.SaveState(&runtime);
  w->AddSection(embedding::SectionTag::kPsRuntime, std::move(runtime));
}

Status ParameterServer::LoadState(const embedding::CheckpointReader& reader) {
  // Validate everything first, then commit. Table payloads are checked
  // structurally (shape + container/sidecar CRC, verified at Open)
  // before any live state is touched; the in-place table restore below
  // can then only fail on a filesystem-level IO error.
  const bool in_band_tables =
      reader.Find(embedding::SectionTag::kEntityTable) != nullptr;
  std::vector<float> entity_accum;
  std::vector<float> relation_accum;
  if (const std::string* opt =
          reader.Find(embedding::SectionTag::kPsOptimizer);
      opt != nullptr) {
    ByteReader opt_reader(*opt);
    entity_accum = opt_reader.FloatVec();
    relation_accum = opt_reader.FloatVec();
    if (!opt_reader.ok() || opt_reader.remaining() != 0) {
      return Status::Corruption("bad PS optimizer section");
    }
  } else {
    // Quantized snapshot: the accumulators live in fp32 sidecars.
    HETKG_ASSIGN_OR_RETURN(
        entity_accum,
        ReadColdFloats(reader, embedding::SectionTag::kEntityOptState));
    HETKG_ASSIGN_OR_RETURN(
        relation_accum,
        ReadColdFloats(reader, embedding::SectionTag::kRelationOptState));
  }
  if (entity_accum.size() != config_.num_entities * config_.entity_dim ||
      relation_accum.size() !=
          config_.num_relations * config_.relation_dim) {
    return Status::Corruption("bad PS optimizer section");
  }
  const std::string* runtime =
      reader.Find(embedding::SectionTag::kPsRuntime);
  if (runtime == nullptr) {
    return Status::Corruption("snapshot missing PS runtime section");
  }
  ByteReader rt_reader(*runtime);
  std::vector<uint64_t> push_seq = rt_reader.U64Vec();
  std::vector<uint64_t> applied = rt_reader.U64Vec();
  MetricRegistry metrics;
  if (!rt_reader.ok() || push_seq.size() != push_seq_.size() ||
      applied.size() != applied_push_seq_.size() ||
      !metrics.LoadState(&rt_reader) || rt_reader.remaining() != 0) {
    return Status::Corruption("bad PS runtime section");
  }
  if (!tiered() && in_band_tables) {
    // In-RAM path: materialize and swap (identical to historical
    // behavior, including on validation failure).
    HETKG_ASSIGN_OR_RETURN(
        embedding::EmbeddingTable entities,
        ReadTableSection(reader, embedding::SectionTag::kEntityTable));
    HETKG_ASSIGN_OR_RETURN(
        embedding::EmbeddingTable relations,
        ReadTableSection(reader, embedding::SectionTag::kRelationTable));
    if (entities.num_rows() != config_.num_entities ||
        entities.dim() != config_.entity_dim ||
        relations.num_rows() != config_.num_relations ||
        relations.dim() != config_.relation_dim) {
      return Status::Corruption("snapshot table shape mismatch");
    }
    entity_table_ = std::move(entities);
    relation_table_ = std::move(relations);
  } else {
    // Tiered path (or cross-format restore): stream into the existing
    // slabs without materializing a second full copy. A matching-dtype
    // sidecar raw-copies (bit-exact quantized resume); anything else
    // decodes + re-encodes row by row.
    HETKG_RETURN_IF_ERROR(LoadTableSectionInto(
        reader, embedding::SectionTag::kEntityTable, &entity_table_));
    HETKG_RETURN_IF_ERROR(LoadTableSectionInto(
        reader, embedding::SectionTag::kRelationTable, &relation_table_));
  }
  entity_opt_.SetAccumulatorData(entity_accum);
  relation_opt_.SetAccumulatorData(relation_accum);
  push_seq_ = std::move(push_seq);
  applied_push_seq_ = std::move(applied);
  metrics_ = std::move(metrics);
  std::fill(replaying_.begin(), replaying_.end(), 0);
  return Status::OK();
}

Status ParameterServer::RestartShard(
    uint32_t machine, const embedding::CheckpointReader* snapshot) {
  if (machine >= cluster_->num_machines()) {
    return Status::OutOfRange("shard machine out of range");
  }
  // Build the shard's reference state: the latest snapshot when one
  // exists, else a deterministic re-initialization from the seed (what
  // a freshly booted shard would compute) with cold accumulators.
  embedding::EmbeddingTable entities(config_.num_entities,
                                     config_.entity_dim);
  embedding::EmbeddingTable relations(config_.num_relations,
                                      config_.relation_dim);
  embedding::AdaGrad entity_opt(config_.num_entities, config_.entity_dim,
                                config_.learning_rate);
  embedding::AdaGrad relation_opt(config_.num_relations,
                                  config_.relation_dim,
                                  config_.learning_rate);
  if (snapshot != nullptr) {
    HETKG_ASSIGN_OR_RETURN(
        entities, ReadTableSection(*snapshot,
                                   embedding::SectionTag::kEntityTable));
    HETKG_ASSIGN_OR_RETURN(
        relations, ReadTableSection(*snapshot,
                                    embedding::SectionTag::kRelationTable));
    if (entities.num_rows() != config_.num_entities ||
        entities.dim() != config_.entity_dim ||
        relations.num_rows() != config_.num_relations ||
        relations.dim() != config_.relation_dim) {
      return Status::Corruption("snapshot table shape mismatch");
    }
    const std::string* opt =
        snapshot->Find(embedding::SectionTag::kPsOptimizer);
    if (opt != nullptr) {
      ByteReader opt_reader(*opt);
      if (!entity_opt.LoadState(&opt_reader) ||
          !relation_opt.LoadState(&opt_reader)) {
        return Status::Corruption("bad PS optimizer section");
      }
    } else {
      // Quantized snapshot: accumulators live in fp32 sidecars.
      HETKG_ASSIGN_OR_RETURN(
          const std::vector<float> entity_accum,
          ReadColdFloats(*snapshot, embedding::SectionTag::kEntityOptState));
      HETKG_ASSIGN_OR_RETURN(
          const std::vector<float> relation_accum,
          ReadColdFloats(*snapshot,
                         embedding::SectionTag::kRelationOptState));
      if (entity_accum.size() != config_.num_entities * config_.entity_dim ||
          relation_accum.size() !=
              config_.num_relations * config_.relation_dim) {
        return Status::Corruption("bad PS optimizer section");
      }
      entity_opt.SetAccumulatorData(entity_accum);
      relation_opt.SetAccumulatorData(relation_accum);
    }
  } else {
    Rng rng(config_.init_seed);
    entities.InitXavierUniform(&rng);
    relations.InitXavierUniform(&rng);
    if (config_.normalize_entities) {
      for (size_t e = 0; e < config_.num_entities; ++e) {
        entities.L2NormalizeRow(e);
      }
    }
  }
  // Overwrite only the rows this machine owns; the surviving shards
  // keep their live state.
  for (size_t e = 0; e < config_.num_entities; ++e) {
    if (entity_owner_[e] != machine) continue;
    entity_table_.SetRow(e, entities.Row(e));
    entity_opt_.SetAccumulatorRow(e, entity_opt.AccumulatorRow(e));
  }
  for (size_t r = 0; r < config_.num_relations; ++r) {
    if (r % cluster_->num_machines() != machine) continue;
    relation_table_.SetRow(r, relations.Row(r));
    relation_opt_.SetAccumulatorRow(r, relation_opt.AccumulatorRow(r));
  }
  metrics_.Increment(metric::kRecoveryPsShardRestarts);
  return Status::OK();
}

}  // namespace hetkg::ps
