#include "ps/parameter_server.h"

#include <cassert>

#include "common/logging.h"

namespace hetkg::ps {

Result<std::unique_ptr<ParameterServer>> ParameterServer::Create(
    const PsConfig& config, std::vector<uint32_t> entity_owner,
    sim::ClusterSim* cluster) {
  if (cluster == nullptr) {
    return Status::InvalidArgument("cluster must not be null");
  }
  if (config.num_entities == 0 || config.num_relations == 0) {
    return Status::InvalidArgument("empty entity or relation table");
  }
  if (config.entity_dim == 0 || config.relation_dim == 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (entity_owner.size() != config.num_entities) {
    return Status::InvalidArgument("entity_owner size mismatch");
  }
  for (uint32_t owner : entity_owner) {
    if (owner >= cluster->num_machines()) {
      return Status::OutOfRange("entity owner machine out of range");
    }
  }
  return std::unique_ptr<ParameterServer>(
      new ParameterServer(config, std::move(entity_owner), cluster));
}

ParameterServer::ParameterServer(const PsConfig& config,
                                 std::vector<uint32_t> entity_owner,
                                 sim::ClusterSim* cluster)
    : config_(config),
      entity_owner_(std::move(entity_owner)),
      cluster_(cluster),
      entity_table_(config.num_entities, config.entity_dim),
      relation_table_(config.num_relations, config.relation_dim),
      entity_opt_(config.num_entities, config.entity_dim,
                  config.learning_rate),
      relation_opt_(config.num_relations, config.relation_dim,
                    config.learning_rate) {}

void ParameterServer::InitEmbeddings() {
  Rng rng(config_.init_seed);
  entity_table_.InitXavierUniform(&rng);
  relation_table_.InitXavierUniform(&rng);
  if (config_.normalize_entities) {
    for (size_t e = 0; e < config_.num_entities; ++e) {
      entity_table_.L2NormalizeRow(e);
    }
  }
}

uint32_t ParameterServer::OwnerOf(EmbKey key) const {
  if (IsRelationKey(key)) {
    // Relations are sharded round-robin across co-located servers.
    return static_cast<uint32_t>(KeyRelation(key) %
                                 cluster_->num_machines());
  }
  return entity_owner_[KeyEntity(key)];
}

std::span<const float> ParameterServer::Value(EmbKey key) const {
  if (IsRelationKey(key)) {
    return relation_table_.Row(KeyRelation(key));
  }
  return entity_table_.Row(KeyEntity(key));
}

void ParameterServer::SetValue(EmbKey key, std::span<const float> value) {
  if (IsRelationKey(key)) {
    relation_table_.SetRow(KeyRelation(key), value);
  } else {
    entity_table_.SetRow(KeyEntity(key), value);
  }
}

void ParameterServer::ApplyGradient(EmbKey key, std::span<const float> grad) {
  if (IsRelationKey(key)) {
    const RelationId r = KeyRelation(key);
    relation_opt_.Apply(r, relation_table_.Row(r), grad);
    return;
  }
  const EntityId e = KeyEntity(key);
  entity_opt_.Apply(e, entity_table_.Row(e), grad);
  if (config_.normalize_entities) {
    entity_table_.L2NormalizeRow(e);
  }
}

void ParameterServer::PullBatch(uint32_t worker_machine,
                                std::span<const EmbKey> keys,
                                std::span<std::span<float>> out) {
  HETKG_CHECK(keys.size() == out.size());
  const size_t num_machines = cluster_->num_machines();
  scratch_owner_rows_.assign(num_machines, 0);
  std::vector<uint64_t> payload(num_machines, 0);

  for (size_t i = 0; i < keys.size(); ++i) {
    const EmbKey key = keys[i];
    const std::span<const float> value = Value(key);
    HETKG_CHECK(out[i].size() == value.size())
        << "pull destination width mismatch for key " << key;
    std::copy(value.begin(), value.end(), out[i].begin());

    const uint32_t owner = OwnerOf(key);
    ++scratch_owner_rows_[owner];
    payload[owner] += RowBytes(key);
  }

  for (uint32_t owner = 0; owner < num_machines; ++owner) {
    if (scratch_owner_rows_[owner] == 0) continue;
    if (owner == worker_machine) {
      cluster_->RecordLocalCopy(worker_machine, payload[owner]);
      metrics_.Increment(metric::kLocalPullRows, scratch_owner_rows_[owner]);
    } else {
      // Request carries the key list; response carries the rows.
      cluster_->RecordRemoteMessage(worker_machine, owner,
                                    scratch_owner_rows_[owner] * sizeof(EmbKey));
      cluster_->RecordRemoteMessage(owner, worker_machine, payload[owner]);
      metrics_.Increment(metric::kRemotePullRows, scratch_owner_rows_[owner]);
      metrics_.Increment(metric::kRemoteMessages, 2);
      metrics_.Increment(metric::kRemoteBytes, payload[owner]);
    }
  }
}

void ParameterServer::PushGradBatch(
    uint32_t worker_machine, std::span<const EmbKey> keys,
    std::span<const std::span<const float>> grads) {
  HETKG_CHECK(keys.size() == grads.size());
  const size_t num_machines = cluster_->num_machines();
  scratch_owner_rows_.assign(num_machines, 0);
  std::vector<uint64_t> payload(num_machines, 0);

  for (size_t i = 0; i < keys.size(); ++i) {
    const EmbKey key = keys[i];
    HETKG_CHECK(grads[i].size() == RowDim(key))
        << "gradient width mismatch for key " << key;
    ApplyGradient(key, grads[i]);

    const uint32_t owner = OwnerOf(key);
    ++scratch_owner_rows_[owner];
    payload[owner] += RowBytes(key) + sizeof(EmbKey);
  }

  for (uint32_t owner = 0; owner < num_machines; ++owner) {
    if (scratch_owner_rows_[owner] == 0) continue;
    if (owner == worker_machine) {
      cluster_->RecordLocalCopy(worker_machine, payload[owner]);
      metrics_.Increment(metric::kLocalPushRows, scratch_owner_rows_[owner]);
    } else {
      cluster_->RecordRemoteMessage(worker_machine, owner, payload[owner]);
      metrics_.Increment(metric::kRemotePushRows, scratch_owner_rows_[owner]);
      metrics_.Increment(metric::kRemoteMessages, 1);
      metrics_.Increment(metric::kRemoteBytes, payload[owner]);
    }
  }
}

}  // namespace hetkg::ps
