#ifndef HETKG_PS_PARAMETER_SERVER_H_
#define HETKG_PS_PARAMETER_SERVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "embedding/adagrad.h"
#include "embedding/embedding_table.h"
#include "graph/types.h"
#include "sim/cluster.h"

namespace hetkg::ps {

/// Configuration of the sharded parameter server.
struct PsConfig {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t entity_dim = 0;
  size_t relation_dim = 0;  // May exceed entity_dim (TransH, RESCAL).
  double learning_rate = 0.1;
  /// L2-normalize entity rows after each update (TransE convention).
  bool normalize_entities = false;
  uint64_t init_seed = 7;
};

/// Co-located sharded parameter server (Sec. V, "Parameter Server").
///
/// Entity rows are owned by the machine their METIS partition maps to;
/// relation rows are sharded round-robin across machines (DGL-KE's
/// KVStore layout). Workers pull values and push gradients in batches;
/// each batch becomes one request/response message per remote shard,
/// while same-machine traffic goes through the shared-memory
/// localPull/localPush path. All traffic is reported to the ClusterSim
/// and mirrored into a MetricRegistry.
///
/// The server applies AdaGrad on arrival of each gradient (Algorithm 4's
/// push handler); pulls always return the latest global value
/// (Algorithm 4's pull handler).
class ParameterServer {
 public:
  /// `entity_owner[e]` is the machine hosting entity e; values must be
  /// < `cluster->num_machines()`.
  static Result<std::unique_ptr<ParameterServer>> Create(
      const PsConfig& config, std::vector<uint32_t> entity_owner,
      sim::ClusterSim* cluster);

  /// Initializes both tables Xavier-uniform (and normalizes entity rows
  /// when configured).
  void InitEmbeddings();

  /// Owning machine of a key.
  uint32_t OwnerOf(EmbKey key) const;

  /// Width of the row addressed by `key`.
  size_t RowDim(EmbKey key) const {
    return IsRelationKey(key) ? config_.relation_dim : config_.entity_dim;
  }

  /// Batched pull issued by a worker on `worker_machine`: copies the
  /// current global value of each key into `out[i]` (spans of RowDim).
  /// Accounting: one message pair per distinct remote shard, plus
  /// payload bytes; local rows cost shared-memory bandwidth only.
  void PullBatch(uint32_t worker_machine, std::span<const EmbKey> keys,
                 std::span<std::span<float>> out);

  /// Batched gradient push: applies AdaGrad to each key's global row.
  /// Same accounting shape as PullBatch.
  void PushGradBatch(uint32_t worker_machine, std::span<const EmbKey> keys,
                     std::span<const std::span<const float>> grads);

  /// Unaccounted read of the current global value (evaluation only).
  std::span<const float> Value(EmbKey key) const;

  /// Unaccounted write (tests and checkpoint restore).
  void SetValue(EmbKey key, std::span<const float> value);

  const PsConfig& config() const { return config_; }
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  /// Total bytes of one pulled/pushed row for `key` on the wire.
  uint64_t RowBytes(EmbKey key) const {
    return RowDim(key) * sizeof(float);
  }

 private:
  ParameterServer(const PsConfig& config, std::vector<uint32_t> entity_owner,
                  sim::ClusterSim* cluster);

  /// Applies one gradient row to the global table.
  void ApplyGradient(EmbKey key, std::span<const float> grad);

  PsConfig config_;
  std::vector<uint32_t> entity_owner_;
  sim::ClusterSim* cluster_;  // Not owned.

  embedding::EmbeddingTable entity_table_;
  embedding::EmbeddingTable relation_table_;
  embedding::AdaGrad entity_opt_;
  embedding::AdaGrad relation_opt_;
  MetricRegistry metrics_;

  // Scratch, reused across batches to avoid per-call allocation.
  std::vector<uint32_t> scratch_owner_rows_;
};

}  // namespace hetkg::ps

#endif  // HETKG_PS_PARAMETER_SERVER_H_
