#ifndef HETKG_PS_PARAMETER_SERVER_H_
#define HETKG_PS_PARAMETER_SERVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "embedding/adagrad.h"
#include "embedding/checkpoint.h"
#include "embedding/embedding_table.h"
#include "graph/types.h"
#include "sim/cluster.h"
#include "sim/transport.h"

namespace hetkg::ps {

/// Configuration of the sharded parameter server.
struct PsConfig {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t entity_dim = 0;
  size_t relation_dim = 0;  // May exceed entity_dim (TransH, RESCAL).
  double learning_rate = 0.1;
  /// L2-normalize entity rows after each update (TransE convention).
  bool normalize_entities = false;
  uint64_t init_seed = 7;
  /// Tiered embedding storage (DESIGN.md §16): when enabled, the global
  /// tables and AdaGrad accumulators live behind mmap slabs in
  /// `storage.cold_dir`; hot rows stay in the workers' fp32 caches.
  embedding::TieredOptions storage;
};

/// Outcome of one batched pull under the fault-injection transport.
/// Fault-free transports always deliver, so `failed` stays empty and
/// the struct costs nothing.
struct PullResult {
  /// Indices into the pulled key list whose shard exchange exhausted
  /// its retries; the corresponding `out` spans were NOT written.
  std::vector<uint32_t> failed;
};

/// Outcome of one batched gradient push.
struct PushResult {
  /// Gradient rows lost because their shard message exhausted retries.
  uint64_t lost_rows = 0;
  /// Duplicate arrivals rejected by the sequence-number guard.
  uint64_t duplicates_ignored = 0;
};

/// Co-located sharded parameter server (Sec. V, "Parameter Server").
///
/// Entity rows are owned by the machine their METIS partition maps to;
/// relation rows are sharded round-robin across machines (DGL-KE's
/// KVStore layout). Workers pull values and push gradients in batches;
/// each batch becomes one request/response message per remote shard,
/// while same-machine traffic goes through the shared-memory
/// localPull/localPush path. All remote traffic flows through a
/// sim::Transport, so per-message faults (drop/duplicate/delay/outage)
/// and the retry costs they induce are charged to the ClusterSim and
/// mirrored into a MetricRegistry.
///
/// The server applies AdaGrad on arrival of each gradient (Algorithm 4's
/// push handler); pulls always return the latest global value
/// (Algorithm 4's pull handler). Push messages carry a per-worker
/// sequence number and the server applies each sequence at most once,
/// so a duplicated push never double-applies AdaGrad.
///
/// Under `--runtime=proc` (DESIGN.md §13) the server stays in the
/// coordinator process; worker processes reach PullBatch/PushGradBatch
/// through the core::PsBackend seam over net::Messenger channels,
/// whose sequence-numbered frames extend the same at-most-once push
/// guarantee across real process boundaries.
class ParameterServer {
 public:
  /// `entity_owner[e]` is the machine hosting entity e; any value
  /// >= `cluster->num_machines()` is rejected with OutOfRange.
  /// `transport` (optional) carries all remote traffic; when null the
  /// server owns a fault-free pass-through transport over `cluster`.
  static Result<std::unique_ptr<ParameterServer>> Create(
      const PsConfig& config, std::vector<uint32_t> entity_owner,
      sim::ClusterSim* cluster, sim::Transport* transport = nullptr);

  /// Initializes both tables Xavier-uniform (and normalizes entity rows
  /// when configured).
  void InitEmbeddings();

  /// Owning machine of a key.
  uint32_t OwnerOf(EmbKey key) const;

  /// Width of the row addressed by `key`.
  size_t RowDim(EmbKey key) const {
    return IsRelationKey(key) ? config_.relation_dim : config_.entity_dim;
  }

  /// Batched pull issued by a worker on `worker_machine`: copies the
  /// current global value of each key into `out[i]` (spans of RowDim).
  /// Accounting: one request/response exchange per distinct remote
  /// shard, plus payload bytes; local rows cost shared-memory bandwidth
  /// only. Shards whose exchange exhausts its retries leave their
  /// destination spans untouched and report the key indices in the
  /// result — the caller decides the degradation (serve the stale
  /// cached value, or fall back to a degraded read).
  PullResult PullBatch(uint32_t worker_machine, std::span<const EmbKey> keys,
                       std::span<std::span<float>> out);

  /// Batched gradient push: applies AdaGrad to each key's global row.
  /// Same accounting shape as PullBatch (one message per remote shard).
  /// A shard message that exhausts its retries loses its gradients
  /// (reported in the result); a duplicated delivery is applied exactly
  /// once via the per-worker sequence guard.
  PushResult PushGradBatch(uint32_t worker_machine,
                           std::span<const EmbKey> keys,
                           std::span<const std::span<const float>> grads);

  /// Unaccounted read of the current global value (evaluation only).
  /// On a quantized tiered server the returned span points into a
  /// thread-local decode ring (EmbeddingTable::DecodedRow) — valid for
  /// a batch of subsequent reads, but not indefinitely.
  std::span<const float> Value(EmbKey key) const;

  /// Decodes the current global value of `key` into `out` (RowDim).
  /// Works on every storage backend; the quantized dequantize-on-pull
  /// path counts toward TierColdReads().
  void ReadValueInto(EmbKey key, std::span<float> out) const;

  /// Unaccounted write (tests and checkpoint restore).
  void SetValue(EmbKey key, std::span<const float> value);

  // -- Tiered storage (DESIGN.md §16) ------------------------------------

  bool tiered() const { return config_.storage.enabled; }

  /// madvise(MADV_WILLNEED) the cold pages of `keys` — called with the
  /// hot filter's admitted set and the prefetch window, so rows the
  /// next iterations will pull fault in ahead of use. No-op when not
  /// tiered.
  void AdviseHotKeys(std::span<const EmbKey> keys) const;

  /// Rows dequantized from the cold tier so far (`tier.cold_reads`).
  uint64_t TierColdReads() const {
    return entity_table_.cold_reads() + relation_table_.cold_reads();
  }

  /// Bytes of mmap-backed state (`tier.bytes_mapped`): both cold slabs
  /// plus the accumulator slabs.
  uint64_t TierBytesMapped() const {
    return entity_table_.ColdBytes() + relation_table_.ColdBytes() +
           entity_opt_.ColdBytes() + relation_opt_.ColdBytes();
  }

  /// Drops resident cold pages after bulk passes (no-op when not
  /// tiered); steady-state residency then reflects actual row traffic.
  void DropColdResidency() const;

  const PsConfig& config() const { return config_; }
  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }

  /// Delivery layer carrying the server's remote traffic.
  sim::Transport& transport() { return *transport_; }
  const sim::Transport& transport() const { return *transport_; }

  /// Total bytes of one pulled/pushed row for `key` on the wire.
  uint64_t RowBytes(EmbKey key) const {
    return RowDim(key) * sizeof(float);
  }

  // -- Crash recovery (DESIGN.md §9) ------------------------------------

  /// Enters replay mode for `machine`'s worker: its push sequence
  /// counter is rewound to `snapshot_push_seq` so replayed pushes carry
  /// the same sequence numbers as the originals, and NO gradient from
  /// this worker is applied (local-shard rows bypass the sequence
  /// guard, so replay must suppress the apply loop wholesale). Skipped
  /// rows are counted in recovery.replay_skipped_push_rows.
  void BeginWorkerReplay(uint32_t machine, uint64_t snapshot_push_seq);

  /// Leaves replay mode; the sequence counter is fast-forwarded past
  /// every already-applied sequence, so post-recovery pushes are fresh.
  void EndWorkerReplay(uint32_t machine);

  bool IsReplaying(uint32_t machine) const {
    return replaying_[machine] != 0;
  }

  /// Sequence-ledger accessors for the engine's worker snapshots.
  uint64_t push_seq(uint32_t machine) const { return push_seq_[machine]; }
  uint64_t applied_push_seq(uint32_t machine) const {
    return applied_push_seq_[machine];
  }

  /// Advances `machine`'s push counter to at least `seq` (recovering a
  /// crashed worker without a snapshot: no replay happens, but future
  /// pushes must not reuse consumed sequence numbers).
  void FastForwardPushSeq(uint32_t machine, uint64_t seq) {
    push_seq_[machine] = std::max(push_seq_[machine], seq);
  }

  /// Appends the server's full state to a HETKGCK2 snapshot: both
  /// tables (the shared eval tags 1/2), both AdaGrad accumulators, the
  /// per-worker sequence ledger, and the server metrics.
  void SaveState(embedding::CheckpointWriter* w) const;

  /// Restores the state written by SaveState. Corruption when a section
  /// is missing or its shape disagrees with this server's config.
  Status LoadState(const embedding::CheckpointReader& reader);

  /// Simulates the PS shard on `machine` restarting: the rows and
  /// accumulators it owns are restored from `snapshot` when given, or
  /// re-initialized deterministically from `init_seed` (accumulators
  /// reset to zero) when not. Rows owned by other machines and the
  /// sequence ledger (modeled as durable, WAL-backed) are untouched.
  Status RestartShard(uint32_t machine,
                      const embedding::CheckpointReader* snapshot);

 private:
  ParameterServer(const PsConfig& config, std::vector<uint32_t> entity_owner,
                  sim::ClusterSim* cluster, sim::Transport* transport,
                  embedding::EmbeddingTable entity_table,
                  embedding::EmbeddingTable relation_table,
                  embedding::AdaGrad entity_opt,
                  embedding::AdaGrad relation_opt);

  /// Applies one gradient row to the global table. Quantized tables
  /// take the dequantize -> fp32 AdaGrad step -> requantize path; the
  /// accumulator itself is always fp32.
  void ApplyGradient(EmbKey key, std::span<const float> grad);

  PsConfig config_;
  std::vector<uint32_t> entity_owner_;
  sim::ClusterSim* cluster_;  // Not owned.

  /// Pass-through transport owned when the caller supplied none.
  std::unique_ptr<sim::Transport> owned_transport_;
  sim::Transport* transport_;  // Points at owned_transport_ or external.

  embedding::EmbeddingTable entity_table_;
  embedding::EmbeddingTable relation_table_;
  embedding::AdaGrad entity_opt_;
  embedding::AdaGrad relation_opt_;
  MetricRegistry metrics_;

  /// Per-worker push sequence numbers (stamped on outgoing messages)
  /// and the highest sequence each worker has had applied — the
  /// idempotence guard against duplicated deliveries.
  std::vector<uint64_t> push_seq_;
  std::vector<uint64_t> applied_push_seq_;

  /// Per-worker replay flags (BeginWorkerReplay/EndWorkerReplay).
  std::vector<char> replaying_;

  // Scratch, reused across batches to avoid per-call allocation.
  std::vector<uint32_t> scratch_owner_rows_;
  std::vector<uint32_t> scratch_key_owner_;
  std::vector<uint64_t> scratch_payload_;
  std::vector<char> scratch_shard_ok_;
  std::vector<float> scratch_apply_row_;  // Quantized apply staging.
};

}  // namespace hetkg::ps

#endif  // HETKG_PS_PARAMETER_SERVER_H_
