#ifndef HETKG_PARTITION_PARTITIONER_H_
#define HETKG_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace hetkg::partition {

/// An assignment of every entity to one of `num_parts` machines.
struct PartitionResult {
  size_t num_parts = 0;
  std::vector<uint32_t> entity_part;  // size = num_entities
};

/// Interface for entity partitioners. HET-KG and DGL-KE both partition
/// the knowledge graph before training (Sec. V, "Graph Partitioning") so
/// that a worker's mini-batches mostly touch locally owned embeddings.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string_view name() const = 0;

  /// Partitions the graph's entities into `num_parts` balanced parts.
  virtual Result<PartitionResult> Partition(const graph::KnowledgeGraph& g,
                                            size_t num_parts) = 0;
};

/// Uniform random assignment — the baseline METIS is compared against.
class RandomPartitioner : public Partitioner {
 public:
  explicit RandomPartitioner(uint64_t seed) : seed_(seed) {}
  std::string_view name() const override { return "random"; }
  Result<PartitionResult> Partition(const graph::KnowledgeGraph& g,
                                    size_t num_parts) override;

 private:
  uint64_t seed_;
};

/// Quality metrics of a partition over the triple list.
struct PartitionStats {
  uint64_t cut_triples = 0;   // head and tail on different parts
  double cut_fraction = 0.0;  // cut_triples / num_triples
  double balance = 0.0;       // max part entity count / mean
  std::vector<uint64_t> part_entities;
  std::vector<uint64_t> part_triples;  // by head-entity ownership
};
PartitionStats ComputePartitionStats(const graph::KnowledgeGraph& g,
                                     const PartitionResult& parts);

/// Distributes triples to workers for PS-style training: each triple
/// goes to the less-loaded of its endpoints' parts, which keeps worker
/// batches balanced while preserving locality. Deterministic.
std::vector<std::vector<Triple>> AssignTriples(const graph::KnowledgeGraph& g,
                                               const PartitionResult& parts);

}  // namespace hetkg::partition

#endif  // HETKG_PARTITION_PARTITIONER_H_
