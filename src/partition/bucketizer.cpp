#include "partition/bucketizer.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace hetkg::partition {

Result<BucketPlan> PbgBucketizer::Build(const graph::KnowledgeGraph& g,
                                        size_t num_partitions,
                                        size_t num_machines) const {
  if (num_partitions == 0 || num_machines == 0) {
    return Status::InvalidArgument(
        "num_partitions and num_machines must be positive");
  }
  BucketPlan plan;
  plan.num_partitions = num_partitions;

  // Uniform entity split via a shuffled block assignment, matching PBG's
  // hash partitioning.
  plan.entity_part.resize(g.num_entities());
  {
    std::vector<uint32_t> ids(g.num_entities());
    std::iota(ids.begin(), ids.end(), 0);
    Rng rng(seed_);
    rng.Shuffle(&ids);
    const size_t per_part =
        (g.num_entities() + num_partitions - 1) / num_partitions;
    for (size_t i = 0; i < ids.size(); ++i) {
      plan.entity_part[ids[i]] = static_cast<uint32_t>(i / per_part);
    }
  }

  plan.bucket_triples.assign(num_partitions * num_partitions, {});
  for (const Triple& t : g.triples()) {
    const uint32_t i = plan.entity_part[t.head];
    const uint32_t j = plan.entity_part[t.tail];
    plan.bucket_triples[i * num_partitions + j].push_back(t);
  }

  // Greedy lock-server schedule: fill rounds with buckets whose two
  // partitions are both free, up to num_machines buckets per round.
  std::vector<bool> done(plan.bucket_triples.size(), false);
  size_t remaining = 0;
  for (size_t b = 0; b < plan.bucket_triples.size(); ++b) {
    if (plan.bucket_triples[b].empty()) {
      done[b] = true;
    } else {
      ++remaining;
    }
  }
  while (remaining > 0) {
    std::vector<uint32_t> round;
    std::vector<bool> locked(num_partitions, false);
    for (size_t b = 0; b < plan.bucket_triples.size(); ++b) {
      if (done[b] || round.size() >= num_machines) continue;
      const uint32_t i = static_cast<uint32_t>(b / num_partitions);
      const uint32_t j = static_cast<uint32_t>(b % num_partitions);
      if (locked[i] || locked[j]) continue;
      locked[i] = true;
      locked[j] = true;
      round.push_back(static_cast<uint32_t>(b));
      done[b] = true;
      --remaining;
    }
    plan.schedule.push_back(std::move(round));
  }
  return plan;
}

}  // namespace hetkg::partition
