#include "partition/partitioner.h"

#include <algorithm>

#include "common/rng.h"

namespace hetkg::partition {

Result<PartitionResult> RandomPartitioner::Partition(
    const graph::KnowledgeGraph& g, size_t num_parts) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  PartitionResult result;
  result.num_parts = num_parts;
  result.entity_part.resize(g.num_entities());
  Rng rng(seed_);
  for (auto& p : result.entity_part) {
    p = static_cast<uint32_t>(rng.NextBounded(num_parts));
  }
  return result;
}

PartitionStats ComputePartitionStats(const graph::KnowledgeGraph& g,
                                     const PartitionResult& parts) {
  PartitionStats stats;
  stats.part_entities.assign(parts.num_parts, 0);
  stats.part_triples.assign(parts.num_parts, 0);
  for (uint32_t p : parts.entity_part) {
    ++stats.part_entities[p];
  }
  for (const Triple& t : g.triples()) {
    const uint32_t hp = parts.entity_part[t.head];
    const uint32_t tp = parts.entity_part[t.tail];
    if (hp != tp) ++stats.cut_triples;
    ++stats.part_triples[hp];
  }
  stats.cut_fraction =
      g.num_triples() == 0
          ? 0.0
          : static_cast<double>(stats.cut_triples) / g.num_triples();
  const uint64_t max_entities =
      *std::max_element(stats.part_entities.begin(), stats.part_entities.end());
  const double mean_entities =
      static_cast<double>(g.num_entities()) / parts.num_parts;
  stats.balance = mean_entities == 0.0 ? 0.0 : max_entities / mean_entities;
  return stats;
}

std::vector<std::vector<Triple>> AssignTriples(const graph::KnowledgeGraph& g,
                                               const PartitionResult& parts) {
  std::vector<std::vector<Triple>> out(parts.num_parts);
  std::vector<uint64_t> load(parts.num_parts, 0);
  for (const Triple& t : g.triples()) {
    const uint32_t hp = parts.entity_part[t.head];
    const uint32_t tp = parts.entity_part[t.tail];
    const uint32_t target = load[hp] <= load[tp] ? hp : tp;
    out[target].push_back(t);
    ++load[target];
  }
  return out;
}

}  // namespace hetkg::partition
