#ifndef HETKG_PARTITION_BUCKETIZER_H_
#define HETKG_PARTITION_BUCKETIZER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/knowledge_graph.h"

namespace hetkg::partition {

/// PBG-style block decomposition: entities are split uniformly into `p`
/// partitions, and each triple lands in bucket (part(head), part(tail)).
/// Training iterates over buckets; a machine working on bucket (i, j)
/// must hold entity partitions i and j in memory, and a lock server
/// guarantees no two machines share a partition concurrently (Sec. III-B
/// steps 1-4 of the paper's PBG description).
struct BucketPlan {
  size_t num_partitions = 0;
  std::vector<uint32_t> entity_part;
  /// bucket_triples[i * p + j] holds the triples of bucket (i, j).
  std::vector<std::vector<Triple>> bucket_triples;
  /// Rounds of concurrently trainable buckets: within one round no two
  /// buckets share an entity partition, so up to `num_machines` machines
  /// proceed in parallel. Empty buckets are never scheduled.
  std::vector<std::vector<uint32_t>> schedule;
};

class PbgBucketizer {
 public:
  explicit PbgBucketizer(uint64_t seed) : seed_(seed) {}

  /// Builds the plan. `num_partitions` must be >= 1; the PBG convention
  /// for `m` machines is p >= 2m so every round can keep all machines
  /// busy on disjoint partition pairs.
  Result<BucketPlan> Build(const graph::KnowledgeGraph& g,
                           size_t num_partitions, size_t num_machines) const;

 private:
  uint64_t seed_;
};

}  // namespace hetkg::partition

#endif  // HETKG_PARTITION_BUCKETIZER_H_
