#include "partition/metis_partitioner.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace hetkg::partition {

namespace {

/// Weighted undirected graph used internally across coarsening levels.
struct LevelGraph {
  std::vector<uint64_t> offsets;
  std::vector<uint32_t> neighbors;
  std::vector<uint64_t> edge_weights;
  std::vector<uint64_t> vertex_weights;

  size_t NumVertices() const { return vertex_weights.size(); }
  uint64_t TotalVertexWeight() const {
    return std::accumulate(vertex_weights.begin(), vertex_weights.end(),
                           uint64_t{0});
  }
};

LevelGraph FromCsr(const graph::KnowledgeGraph::Csr& csr, size_t num_vertices) {
  LevelGraph g;
  g.offsets = csr.offsets;
  g.neighbors = csr.neighbors;
  g.edge_weights.assign(csr.weights.begin(), csr.weights.end());
  // Weight vertices by (1 + weighted degree): balancing on degree
  // balances the per-partition TRIPLE load, which is what determines
  // worker runtime. Unit weights would let the partitioner cluster the
  // entire hot core into one part (low cut, terrible load balance) on
  // power-law graphs.
  g.vertex_weights.assign(num_vertices, 1);
  for (size_t v = 0; v < num_vertices; ++v) {
    uint64_t degree = 0;
    for (uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      degree += csr.weights[e];
    }
    g.vertex_weights[v] += degree;
  }
  return g;
}

/// Heavy-edge matching: pairs each unmatched vertex with the unmatched
/// neighbor sharing the heaviest edge. Returns the vertex -> coarse id
/// map and the coarse vertex count.
size_t HeavyEdgeMatching(const LevelGraph& g, Rng* rng,
                         std::vector<uint32_t>* coarse_of) {
  const size_t n = g.NumVertices();
  coarse_of->assign(n, UINT32_MAX);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  uint32_t next_coarse = 0;
  for (uint32_t v : order) {
    if ((*coarse_of)[v] != UINT32_MAX) continue;
    uint32_t best = UINT32_MAX;
    uint64_t best_weight = 0;
    for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const uint32_t u = g.neighbors[e];
      if (u == v || (*coarse_of)[u] != UINT32_MAX) continue;
      if (g.edge_weights[e] > best_weight) {
        best_weight = g.edge_weights[e];
        best = u;
      }
    }
    (*coarse_of)[v] = next_coarse;
    if (best != UINT32_MAX) {
      (*coarse_of)[best] = next_coarse;
    }
    ++next_coarse;
  }
  return next_coarse;
}

/// Contracts `fine` according to `coarse_of` into a graph with
/// `num_coarse` vertices, summing parallel edge weights and dropping
/// self-loops.
LevelGraph Contract(const LevelGraph& fine,
                    const std::vector<uint32_t>& coarse_of,
                    size_t num_coarse) {
  LevelGraph coarse;
  coarse.vertex_weights.assign(num_coarse, 0);
  for (size_t v = 0; v < fine.NumVertices(); ++v) {
    coarse.vertex_weights[coarse_of[v]] += fine.vertex_weights[v];
  }

  // Aggregate edges per coarse vertex with a scratch map reused across
  // vertices for cache friendliness.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> adj(num_coarse);
  {
    std::unordered_map<uint32_t, uint64_t> row;
    // Group fine vertices by coarse id.
    std::vector<uint32_t> members_offsets(num_coarse + 1, 0);
    for (size_t v = 0; v < fine.NumVertices(); ++v) {
      ++members_offsets[coarse_of[v] + 1];
    }
    std::partial_sum(members_offsets.begin(), members_offsets.end(),
                     members_offsets.begin());
    std::vector<uint32_t> members(fine.NumVertices());
    {
      std::vector<uint32_t> cursor(members_offsets.begin(),
                                   members_offsets.end() - 1);
      for (uint32_t v = 0; v < fine.NumVertices(); ++v) {
        members[cursor[coarse_of[v]]++] = v;
      }
    }
    for (uint32_t c = 0; c < num_coarse; ++c) {
      row.clear();
      for (uint32_t m = members_offsets[c]; m < members_offsets[c + 1]; ++m) {
        const uint32_t v = members[m];
        for (uint64_t e = fine.offsets[v]; e < fine.offsets[v + 1]; ++e) {
          const uint32_t cu = coarse_of[fine.neighbors[e]];
          if (cu == c) continue;  // Internal edge becomes a self-loop.
          row[cu] += fine.edge_weights[e];
        }
      }
      adj[c].assign(row.begin(), row.end());
      std::sort(adj[c].begin(), adj[c].end());
    }
  }

  coarse.offsets.assign(num_coarse + 1, 0);
  for (size_t c = 0; c < num_coarse; ++c) {
    coarse.offsets[c + 1] = coarse.offsets[c] + adj[c].size();
  }
  coarse.neighbors.resize(coarse.offsets.back());
  coarse.edge_weights.resize(coarse.offsets.back());
  for (size_t c = 0; c < num_coarse; ++c) {
    uint64_t pos = coarse.offsets[c];
    for (const auto& [u, w] : adj[c]) {
      coarse.neighbors[pos] = u;
      coarse.edge_weights[pos] = w;
      ++pos;
    }
  }
  return coarse;
}

/// Greedy region growing on the coarsest graph: grows each part by BFS
/// from an unassigned seed until the part reaches its weight target.
std::vector<uint32_t> InitialPartition(const LevelGraph& g, size_t num_parts,
                                       Rng* rng) {
  const size_t n = g.NumVertices();
  std::vector<uint32_t> part(n, UINT32_MAX);
  const uint64_t total = g.TotalVertexWeight();
  const double target = static_cast<double>(total) / num_parts;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  size_t seed_cursor = 0;

  for (uint32_t p = 0; p + 1 < num_parts; ++p) {
    uint64_t weight = 0;
    std::deque<uint32_t> frontier;
    while (weight < target) {
      if (frontier.empty()) {
        // Find a fresh unassigned seed.
        while (seed_cursor < n && part[order[seed_cursor]] != UINT32_MAX) {
          ++seed_cursor;
        }
        if (seed_cursor >= n) break;
        frontier.push_back(order[seed_cursor]);
      }
      const uint32_t v = frontier.front();
      frontier.pop_front();
      if (part[v] != UINT32_MAX) continue;
      part[v] = p;
      weight += g.vertex_weights[v];
      for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        if (part[g.neighbors[e]] == UINT32_MAX) {
          frontier.push_back(g.neighbors[e]);
        }
      }
    }
  }
  // Everything left goes to the last part.
  for (size_t v = 0; v < n; ++v) {
    if (part[v] == UINT32_MAX) {
      part[v] = static_cast<uint32_t>(num_parts - 1);
    }
  }
  return part;
}

/// Boundary Kernighan-Lin style refinement: greedily moves boundary
/// vertices to the neighboring part with the largest positive cut gain,
/// subject to the balance constraint.
void Refine(const LevelGraph& g, size_t num_parts, double imbalance,
            int passes, std::vector<uint32_t>* part) {
  const size_t n = g.NumVertices();
  std::vector<uint64_t> part_weight(num_parts, 0);
  for (size_t v = 0; v < n; ++v) {
    part_weight[(*part)[v]] += g.vertex_weights[v];
  }
  const double target =
      static_cast<double>(g.TotalVertexWeight()) / num_parts;
  const uint64_t max_weight =
      static_cast<uint64_t>(target * imbalance) + 1;

  std::vector<uint64_t> gain_to(num_parts, 0);
  std::vector<uint32_t> touched;
  for (int pass = 0; pass < passes; ++pass) {
    size_t moves = 0;
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t from = (*part)[v];
      // Tally edge weight toward each adjacent part.
      touched.clear();
      uint64_t internal = 0;
      for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const uint32_t p = (*part)[g.neighbors[e]];
        if (p == from) {
          internal += g.edge_weights[e];
          continue;
        }
        if (gain_to[p] == 0) touched.push_back(p);
        gain_to[p] += g.edge_weights[e];
      }
      uint32_t best_part = from;
      int64_t best_gain = 0;
      for (uint32_t p : touched) {
        const int64_t gain =
            static_cast<int64_t>(gain_to[p]) - static_cast<int64_t>(internal);
        const bool fits =
            part_weight[p] + g.vertex_weights[v] <= max_weight;
        if (fits && (gain > best_gain ||
                     (gain == best_gain && gain > 0 && p < best_part))) {
          best_gain = gain;
          best_part = p;
        }
        gain_to[p] = 0;
      }
      if (best_part != from && best_gain > 0) {
        part_weight[from] -= g.vertex_weights[v];
        part_weight[best_part] += g.vertex_weights[v];
        (*part)[v] = best_part;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

MetisPartitioner::MetisPartitioner(MetisOptions options)
    : options_(options) {}

Result<PartitionResult> MetisPartitioner::Partition(
    const graph::KnowledgeGraph& g, size_t num_parts) {
  if (num_parts == 0) {
    return Status::InvalidArgument("num_parts must be positive");
  }
  PartitionResult result;
  result.num_parts = num_parts;
  if (num_parts == 1) {
    result.entity_part.assign(g.num_entities(), 0);
    return result;
  }

  Rng rng(options_.seed);
  std::vector<LevelGraph> levels;
  std::vector<std::vector<uint32_t>> mappings;  // fine -> coarse per level
  levels.push_back(FromCsr(g.BuildCsr(), g.num_entities()));

  const size_t coarsen_target =
      std::max<size_t>(64, options_.coarsen_to_per_part * num_parts);
  while (levels.back().NumVertices() > coarsen_target) {
    std::vector<uint32_t> coarse_of;
    const size_t num_coarse =
        HeavyEdgeMatching(levels.back(), &rng, &coarse_of);
    // Stalled coarsening (pathological graphs): stop rather than loop.
    if (num_coarse >= levels.back().NumVertices() * 95 / 100) break;
    LevelGraph coarse = Contract(levels.back(), coarse_of, num_coarse);
    mappings.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  std::vector<uint32_t> part =
      InitialPartition(levels.back(), num_parts, &rng);
  Refine(levels.back(), num_parts, options_.imbalance,
         options_.refine_passes, &part);

  // Project back through the levels, refining at each.
  for (size_t level = levels.size() - 1; level-- > 0;) {
    const std::vector<uint32_t>& coarse_of = mappings[level];
    std::vector<uint32_t> fine_part(levels[level].NumVertices());
    for (size_t v = 0; v < fine_part.size(); ++v) {
      fine_part[v] = part[coarse_of[v]];
    }
    part = std::move(fine_part);
    Refine(levels[level], num_parts, options_.imbalance,
           options_.refine_passes, &part);
  }

  result.entity_part = std::move(part);
  return result;
}

}  // namespace hetkg::partition
