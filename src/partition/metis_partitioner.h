#ifndef HETKG_PARTITION_METIS_PARTITIONER_H_
#define HETKG_PARTITION_METIS_PARTITIONER_H_

#include "partition/partitioner.h"

namespace hetkg::partition {

/// Configuration of the multilevel partitioner.
struct MetisOptions {
  /// Allowed imbalance: a part may hold up to `imbalance` times the mean
  /// vertex weight (METIS' default ufactor corresponds to ~1.03; graph
  /// learning systems usually accept a little more slack).
  double imbalance = 1.05;
  /// Stop coarsening when at most this many vertices per part remain.
  size_t coarsen_to_per_part = 32;
  /// Boundary refinement passes per uncoarsening level.
  int refine_passes = 4;
  uint64_t seed = 1;
};

/// Multilevel min-edge-cut partitioner in the METIS mold (Karypis &
/// Kumar): heavy-edge-matching coarsening, greedy region-growing initial
/// partition on the coarsest graph, and boundary Kernighan-Lin style
/// refinement during uncoarsening. The paper relies on METIS to cut
/// cross-machine triples before training (Sec. V).
class MetisPartitioner : public Partitioner {
 public:
  explicit MetisPartitioner(MetisOptions options = {});
  std::string_view name() const override { return "metis"; }
  Result<PartitionResult> Partition(const graph::KnowledgeGraph& g,
                                    size_t num_parts) override;

 private:
  MetisOptions options_;
};

}  // namespace hetkg::partition

#endif  // HETKG_PARTITION_METIS_PARTITIONER_H_
