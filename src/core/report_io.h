#ifndef HETKG_CORE_REPORT_IO_H_
#define HETKG_CORE_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "core/trainer.h"

namespace hetkg::core {

/// Writes a TrainReport's per-epoch series as CSV:
///   epoch,mean_loss,compute_s,comm_s,total_s,cumulative_s,wall_s,
///   hit_ratio,remote_bytes,valid_mrr
/// (valid_mrr is empty when validation was not enabled). This is the
/// hand-off format for regenerating the paper's figures with any
/// plotting tool.
Status WriteTrainReportCsv(const TrainReport& report,
                           const std::string& path);

/// Renders the same series as a string (used by tests and for piping).
std::string TrainReportCsv(const TrainReport& report);

}  // namespace hetkg::core

#endif  // HETKG_CORE_REPORT_IO_H_
